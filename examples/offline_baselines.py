"""Offline telemetry export + traditional AIOps baselines (§2.5, §3.1).

Deploys HotelReservation, lets healthy traffic run, injects a fault,
exports the telemetry to disk (the same files `get_logs`/`get_metrics`/
`get_traces` save), and runs the three non-LLM baselines on it:

* MKSMC      — detection over the metric matrix;
* RMLAD      — localization from log-volume anomalies;
* PDiagnose  — localization from a KPI/log/trace vote.

Run:  python examples/offline_baselines.py
"""

import tempfile

from repro.baselines import MKSMC, PDiagnose, RMLAD
from repro.core import CloudEnvironment
from repro.apps import HotelReservation
from repro.faults import ApplicationFaultInjector


def main():
    env = CloudEnvironment(HotelReservation, seed=21, workload_rate=60,
                           export_root=tempfile.mkdtemp(prefix="aiopslab-"))

    print("warming up with healthy traffic...")
    env.advance(60)
    inject_t = env.clock.now

    print("injecting revoke_auth on mongodb-geo...")
    ApplicationFaultInjector(env.app)._inject(["mongodb-geo"], "revoke_auth")
    env.advance(60)

    root = env.exporter.export_all(env.namespace)
    print(f"telemetry exported to {root}\n")

    services = sorted(env.app.services)

    detector = MKSMC(seed=21)
    detector.fit(env.collector.metrics, services, until=inject_t)
    verdict = detector.detect(env.collector.metrics, services, since=inject_t)
    print(f"MKSMC     anomalous={verdict.anomalous}  "
          f"score={verdict.score:.2f}  threshold={verdict.threshold:.2f}")

    rmlad = RMLAD().localize(env.collector, env.namespace,
                             healthy_until=inject_t,
                             observe_until=env.clock.now)
    print(f"RMLAD     top-3: {rmlad.top(3)}")

    pdiag = PDiagnose().localize(env.collector, env.namespace, since=inject_t)
    print(f"PDiagnose top-3: {pdiag.top(3)}")

    print("\nground truth: mongodb-geo (fault), geo (first symptom)")


if __name__ == "__main__":
    main()
