"""A human-operator walkthrough of one incident, acting through the ACI.

No agent here — this script plays the operator, showing exactly what an
agent sees at each step of diagnosing and mitigating the Figure-4 fault
(revoked MongoDB privileges on mongodb-geo).

Run:  python examples/incident_walkthrough.py
"""

from repro.core import Orchestrator
from repro.core.aci import SubmissionReceived
from repro.problems import get_problem


def show(title, text, tail=12):
    print(f"\n$ {title}")
    lines = text.splitlines()
    print("\n".join(lines[:tail]))
    if len(lines) > tail:
        print(f"  ... ({len(lines) - tail} more lines)")


def main():
    orch = Orchestrator(seed=13)
    prob_desc, _, _ = orch.init_problem(
        get_problem("revoke_auth_hotel_res-mitigation-1"))
    print(prob_desc)

    aci = orch.actions
    ns = orch.env.namespace

    # 1. what is unhappy?
    show(f'get_logs("{ns}", "all")', aci.get_logs(ns, "all"))

    # 2. drill into the loudest service
    show(f'get_logs("{ns}", "geo")', aci.get_logs(ns, "geo", tail=4))

    # 3. confirm cluster state is fine (this is app-level, not k8s-level)
    show("kubectl get deployments",
         aci.exec_shell(f"kubectl get deployments -n {ns}"), tail=6)

    # 4. find the mongo pod and repair the privileges
    pods = aci.exec_shell(f"kubectl get pods -n {ns}")
    mongo_pod = next(line.split()[0] for line in pods.splitlines()
                     if line.startswith("mongodb-geo-"))
    fix = aci.exec_shell(
        f"kubectl exec {mongo_pod} -n {ns} -- mongo --eval "
        f"\"db.grantRolesToUser('admin', ['readWrite','dbAdmin'])\"")
    show("repair via mongo shell", fix)

    # 5. verify and submit
    show(f'get_logs("{ns}", "all") after fix', aci.get_logs(ns, "all"))
    try:
        aci.submit()
    except SubmissionReceived:
        pass
    result = orch.problem.eval(None, orch.session, 0.0, env=orch.env)
    print(f"\nmitigation check: success={result['success']} "
          f"({result['reason']})")


if __name__ == "__main__":
    main()
