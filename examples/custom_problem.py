"""Define a *new* problem beyond the built-in pool (§2.4.3, §4).

Shows the extensibility story the paper emphasizes:

1. a **multi-fault mitigation problem** — two faults injected concurrently
   into different services (revoked Mongo auth + a deployment scaled to
   zero), with the stock whole-system health oracle;
2. a **custom evaluation metric** added on top of the task's defaults.

Run:  python examples/custom_problem.py
"""

import asyncio

from repro.agents import build_agent
from repro.core import MitigationTask, Orchestrator
from repro.faults import VirtFaultInjector


class DoubleFaultMitigation(MitigationTask):
    """Two concurrent faults: the agent must repair both to pass.

    The evaluator inherits MitigationTask's whole-system health check, so
    fixing only one fault still fails — exactly the §2.1 semantics.
    """

    def __init__(self):
        super().__init__("RevokeAuth", target="mongodb-geo",
                         pid="double_fault_hotel_res-mitigation-custom")
        self.second_target = "recommendation"

    def inject_fault(self, env):
        super().inject_fault(env)  # revoke_auth on mongodb-geo
        self._virt = VirtFaultInjector(env.app)
        self._virt._inject([self.second_target], "scale_pod_zero")
        env.advance(15.0)

    def recover_fault(self, env):
        super().recover_fault(env)
        self._virt.recover_all()

    def eval(self, soln, trace, duration, env=None):
        res = super().eval(soln, trace, duration, env=env)
        # custom metric: how many distinct kubectl mutations the agent made
        res["mutating_actions"] = sum(
            1 for step in trace.steps
            if step.action_name == "exec_shell" and any(
                verb in step.action_raw
                for verb in ("scale", "patch", "exec", "set image", "helm"))
        )
        return res


def run_agent(name: str) -> None:
    problem = DoubleFaultMitigation()
    orch = Orchestrator(seed=7)
    ctx = orch.init_problem(problem)
    agent = build_agent(name, *ctx, task_type="mitigation", seed=7)
    orch.register_agent(agent, name=name)
    results = asyncio.run(orch.start_problem(max_steps=25))

    print(f"\n=== {name} on the double-fault problem ===")
    print("\n".join(orch.session.transcript(max_obs_chars=100)
                    .splitlines()[-10:]))
    for key in ("success", "reason", "TTM", "steps", "mutating_actions"):
        print(f"  {key}: {results.get(key)}")


def main():
    # the oracle profile shows the problem is solvable through the ACI;
    # FLASH may or may not repair both faults (its mitigation skill gates
    # each fix independently — exactly the Table-4d behaviour).
    run_agent("oracle")
    run_agent("flash")


if __name__ == "__main__":
    main()
