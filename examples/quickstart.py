"""Quickstart — the paper's Examples 2.1 and 2.3 on the v2 session API.

Defines the Kubernetes target-port misconfiguration problem on the
SocialNetwork application, onboards a minimal custom agent (a thin wrapper
around a model backend, ~15 lines), runs the session through an
Orchestrator session handle, and prints the evaluation.

Run:  python examples/quickstart.py
"""

import asyncio

from repro.agents.llm import PROFILES, SimulatedLLM
from repro.core import LocalizationTask, Orchestrator


# --- Example 2.1: define a problem in a few lines ------------------------
class K8STargetPortMisconf(LocalizationTask):
    """Localize a target-port misconfiguration on user-service."""

    def __init__(self):
        super().__init__("TargetPortMisconfig", target="user-service")
        self.ans = "user-service"


# --- Example 2.3: onboard an agent ---------------------------------------
class Agent:
    """A minimal agent: prompt + model, nothing else.

    Any LLM backend with a ``decide(state) -> response`` surface plugs in;
    here we use the simulated GPT-4 profile (offline reproduction).
    """

    def __init__(self, prob_desc, instructs, apis):
        self.prompt = f"{prob_desc}\n{instructs}\nAPIs:\n{apis}\n"
        self.llm = SimulatedLLM(PROFILES["gpt-4-w-shell"], "localization",
                                prob_desc, seed=42)

    async def get_action(self, state: str) -> str:
        return self.llm.decide(state).text


def main():
    orch = Orchestrator()
    # create_session deploys the app, warms it up, and injects the fault in
    # a private environment; the handle's context carries the problem
    # description, interaction instructions, and registry-rendered API docs.
    handle = orch.create_session(K8STargetPortMisconf(), seed=42)

    agent = Agent(*handle.context)
    handle.bind_agent(agent, name="myAgent")
    results = asyncio.run(handle.run(max_steps=10))

    print("=== trajectory ===")
    print(handle.session.transcript())
    print("\n=== evaluation ===")
    for key in ("pid", "success", "success@1", "success@3", "TTL", "steps"):
        print(f"  {key}: {results.get(key)}")


if __name__ == "__main__":
    main()
