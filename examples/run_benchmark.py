"""Run the full AIOpsLab benchmark and print every table and figure.

This regenerates the paper's evaluation section end to end: Tables 3,
4a–d (with the non-LLM baselines), 5, and Figures 5–7, plus the Noop
false-positive probe.  Expect ~5–10 minutes of wall time for the full
suite; pass ``--quick`` to use a reduced problem subset.

Run:  python examples/run_benchmark.py [--quick] [--seed N] [--concurrency N]
"""

import argparse

from repro.agents.registry import AGENT_NAMES
from repro.baselines import run_baseline_suite
from repro.bench import (
    BenchmarkRunner, figure5_step_limit, figure6_api_usage,
    figure7_action_distribution, render_series, render_table,
    table2_problem_pool, table3_overall, table4_by_task, table5_commands,
)
from repro.problems import list_problems, noop_pids

QUICK_PIDS = [
    "auth_missing_hotel_res-detection-1",
    "misconfig_k8s_social_net-localization-1",
    "revoke_auth_hotel_res-analysis-1",
    "scale_pod_zero_social_net-mitigation-1",
    "network_loss_hotel_res-detection-1",
    "buggy_app_image_hotel_res-mitigation-1",
]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--quick", action="store_true",
                    help="reduced problem subset")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--concurrency", type=int, default=4,
                    help="sessions in flight at once (results are "
                         "identical at any level)")
    args = ap.parse_args()

    runner = BenchmarkRunner(max_steps=20, seed=args.seed,
                             concurrency=args.concurrency)
    pids = QUICK_PIDS if args.quick else None

    headers, rows = table2_problem_pool()
    print(render_table(headers, rows, "Table 2 — problem pool"))

    print("\nrunning the agent suite...")
    results = runner.run_suite(pids=pids, verbose=True)

    headers, rows = table3_overall(results)
    print()
    print(render_table(headers, rows, "Table 3 — overall"))

    baselines = None
    if not args.quick:
        print("\nrunning non-LLM baselines...")
        baselines = {
            name: run_baseline_suite(name, seed=args.seed)
            for name in ("mksmc", "pdiagnose", "rmlad")
        }
    for task, (headers, rows) in table4_by_task(
            results, baselines=baselines).items():
        print()
        print(render_table(headers, rows, f"Table 4 — {task}"))

    headers, rows = table5_commands(results)
    print()
    print(render_table(headers, rows, "Table 5 — command occurrences"))

    print()
    print(render_series(
        "Figure 6 — % actions by API",
        figure6_api_usage(results)))
    print()
    print(render_series(
        "Figure 7 — action distribution by outcome",
        figure7_action_distribution(results)))

    sweep_pids = QUICK_PIDS if args.quick else list_problems()[:12]
    print("\nsweeping step limits (Figure 5)...")
    series = figure5_step_limit(runner, limits=(3, 5, 10, 15, 20),
                                pids=sweep_pids)
    print(render_series("Figure 5 — accuracy vs step limit", series))

    print("\nNoop false-positive probe (§3.6.4):")
    for agent in AGENT_NAMES:
        ok = all(runner.run_case(agent, pid).success for pid in noop_pids())
        print(f"  {agent:<18} {'correct' if ok else 'FALSE POSITIVE'}")


if __name__ == "__main__":
    main()
