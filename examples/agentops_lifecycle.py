"""AgentOps end to end — Figure 1's incident lifecycle on one live incident.

A single RevokeAuth incident is injected into HotelReservation; the agent
then runs the full pipeline on the *same* environment:

    detect → localize → root-cause analyze → mitigate

Each stage is graded by its task oracle, and an undetected incident never
reaches triage.  Run with the oracle profile to see the full pipeline
succeed, and with FLASH to see where a realistic agent drops the ball.

Run:  python examples/agentops_lifecycle.py
"""

from repro.agents import build_agent
from repro.core import IncidentLifecycle


def factory_for(agent_name: str):
    def factory(stage, prob_desc, instructs, apis):
        return build_agent(agent_name, prob_desc, instructs, apis,
                           task_type=stage, seed=11)
    return factory


def main():
    for agent_name in ("oracle", "flash"):
        lifecycle = IncidentLifecycle("RevokeAuth", seed=11,
                                      max_steps_per_stage=20)
        result = lifecycle.run(factory_for(agent_name))
        print(f"\n=== {agent_name} ===")
        print(result.summary())


if __name__ == "__main__":
    main()
