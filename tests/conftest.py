"""Shared fixtures: deployed environments and common builders."""

from __future__ import annotations

import pytest

from repro.apps import HotelReservation, SocialNetwork
from repro.kubesim import Cluster
from repro.simcore import SimClock
from repro.telemetry import TelemetryCollector
from repro.workload import ConstantRate, WorkloadDriver


class DeployedApp:
    """A deployed app bundle used across tests."""

    def __init__(self, app_cls, seed: int = 7, rate: float = 40.0):
        self.clock = SimClock()
        self.cluster = Cluster(clock=self.clock, seed=seed)
        self.collector = TelemetryCollector(self.clock, seed=seed)
        self.app = app_cls()
        self.runtime = self.app.deploy(self.cluster, self.collector, seed=seed)
        self.driver = WorkloadDriver(
            self.runtime, self.app.workload_mix(), ConstantRate(rate), seed=seed
        )


@pytest.fixture
def hotel() -> DeployedApp:
    """A freshly deployed HotelReservation with a bound workload driver."""
    return DeployedApp(HotelReservation)


@pytest.fixture
def social() -> DeployedApp:
    """A freshly deployed SocialNetwork with a bound workload driver."""
    return DeployedApp(SocialNetwork)


@pytest.fixture
def cluster() -> Cluster:
    """An empty cluster on a fresh clock."""
    return Cluster(clock=SimClock(), seed=3)
