"""Shared fixtures: deployed environments and common builders.

Also pins the hypothesis profiles used by the property suites
(``tests/problems/test_generator.py``, ``tests/faults/test_schedule.py``):
the ``ci`` profile is fully deterministic (derandomized, no example
database, no flaky deadlines) so a CI failure is always reproducible
locally with ``HYPOTHESIS_PROFILE=ci``."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.apps import HotelReservation, SocialNetwork

settings.register_profile(
    "ci",
    derandomize=True,
    database=None,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
from repro.kubesim import Cluster
from repro.simcore import SimClock
from repro.telemetry import TelemetryCollector
from repro.workload import ConstantRate, WorkloadDriver


class DeployedApp:
    """A deployed app bundle used across tests."""

    def __init__(self, app_cls, seed: int = 7, rate: float = 40.0):
        self.clock = SimClock()
        self.cluster = Cluster(clock=self.clock, seed=seed)
        self.collector = TelemetryCollector(self.clock, seed=seed)
        self.app = app_cls()
        self.runtime = self.app.deploy(self.cluster, self.collector, seed=seed)
        self.driver = WorkloadDriver(
            self.runtime, self.app.workload_mix(), ConstantRate(rate), seed=seed
        )


@pytest.fixture
def hotel() -> DeployedApp:
    """A freshly deployed HotelReservation with a bound workload driver."""
    return DeployedApp(HotelReservation)


@pytest.fixture
def social() -> DeployedApp:
    """A freshly deployed SocialNetwork with a bound workload driver."""
    return DeployedApp(SocialNetwork)


@pytest.fixture
def cluster() -> Cluster:
    """An empty cluster on a fresh clock."""
    return Cluster(clock=SimClock(), seed=3)
