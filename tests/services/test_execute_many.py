"""Statistical-equivalence harness for ``ServiceRuntime.execute_many``.

The aggregate tier must match the per-request reference *distributionally*:
for every fault family, a 5k-request batch and a 5k-iteration ``execute``
loop (independently seeded deployments of the same app) must agree on
error rate, per-service error attribution and mean end-to-end latency
within seeded tolerances — and the batch must be deterministic in
(seed, n).  Tolerances are sized at ~4 binomial standard deviations at
n=5000 (≈0.028 for a p=0.5 rate), so a correct implementation fails with
probability < 1e-4 per assertion while systematic skew is caught.
"""

from __future__ import annotations

import pytest

from repro.apps import HotelReservation
from repro.kubesim import Cluster, Helm, Kubectl
from repro.simcore import SimClock
from repro.telemetry import TelemetryCollector

N = 5000
SEED = 11
OP = "search_hotel"
#: absolute tolerance on rates (error rate, attribution fractions)
RATE_TOL = 0.03
#: relative tolerance on mean latency (CLT at n=5000 is well inside this)
LATENCY_RTOL = 0.05


class Deployed:
    def __init__(self, seed: int = SEED):
        self.clock = SimClock()
        self.cluster = Cluster(clock=self.clock, seed=seed)
        self.collector = TelemetryCollector(self.clock, seed=seed)
        self.app = HotelReservation()
        self.runtime = self.app.deploy(self.cluster, self.collector, seed=seed)


def _apply_healthy(d: Deployed) -> None:
    pass


def _apply_network_loss(d: Deployed) -> None:
    d.runtime.network_loss["search"] = 0.4


def _apply_backend_down(d: Deployed) -> None:
    d.app.backends["mongodb-geo"].up = False


def _apply_auth_failure(d: Deployed) -> None:
    d.app.backends["mongodb-geo"].revoke_roles("admin")


def _apply_buggy_image(d: Deployed) -> None:
    dep = d.cluster.get_deployment(d.app.namespace, "geo")
    dep.template.containers[0].image = "deathstarbench/hotel-geo:buggy-v2"
    d.cluster.reconcile()


FAULT_FAMILIES = {
    "healthy": _apply_healthy,
    "network_loss": _apply_network_loss,
    "backend_down": _apply_backend_down,
    "auth_failure": _apply_auth_failure,
    "buggy_image": _apply_buggy_image,
}


def _per_request_reference(apply_fault) -> tuple[float, dict[str, float], float]:
    """(error rate, per-service attribution fractions, mean latency) from
    an N-iteration ``execute`` loop on a fresh deployment."""
    d = Deployed()
    apply_fault(d)
    errors = 0
    latency_sum = 0.0
    attribution: dict[str, int] = {}
    for _ in range(N):
        r = d.runtime.execute(OP)
        if not r.ok:
            errors += 1
            for s in r.error_services:
                attribution[s] = attribution.get(s, 0) + 1
        latency_sum += r.latency_ms
    return (errors / N,
            {s: c / N for s, c in attribution.items()},
            latency_sum / N)


def _batch(apply_fault, n: int = N, seed: int = SEED):
    d = Deployed(seed)
    apply_fault(d)
    return d, d.runtime.execute_many(OP, n)


class TestStatisticalEquivalence:
    @pytest.mark.parametrize("family", sorted(FAULT_FAMILIES))
    def test_matches_per_request_reference(self, family):
        apply_fault = FAULT_FAMILIES[family]
        ref_err, ref_attr, ref_latency = _per_request_reference(apply_fault)
        _, batch = _batch(apply_fault)

        assert batch.n == N
        assert batch.error_rate == pytest.approx(ref_err, abs=RATE_TOL), \
            f"{family}: error rate diverged"
        assert batch.mean_latency_ms == pytest.approx(
            ref_latency, rel=LATENCY_RTOL), f"{family}: mean latency diverged"
        # error attribution: same service set, same per-service fractions
        batch_attr = {s: c / N for s, c in batch.error_services.items()}
        assert set(batch_attr) == set(ref_attr), \
            f"{family}: attributed services differ"
        for svc, frac in ref_attr.items():
            assert batch_attr[svc] == pytest.approx(frac, abs=RATE_TOL), \
                f"{family}: attribution for {svc} diverged"

    def test_error_kind_split_under_partial_loss(self):
        """With partial loss over an auth fault the batch must reproduce
        the drop-vs-auth competition, not just the total error rate."""
        def apply(d: Deployed) -> None:
            d.runtime.network_loss["search"] = 0.3
            d.app.backends["mongodb-geo"].revoke_roles("admin")

        _, batch = _batch(apply)
        assert batch.error_rate == 1.0
        drops = batch.error_kinds.get("network_drop", 0) / N
        auth = batch.error_kinds.get("not_authorized", 0) / N
        assert drops == pytest.approx(0.3, abs=RATE_TOL)
        assert auth == pytest.approx(0.7, abs=RATE_TOL)

    def test_collector_counts_are_exact(self):
        """Bulk telemetry counts (unlike latency percentiles) are not
        sampled: every request crossing a service lands in its window."""
        d, _ = _batch(_apply_healthy, n=1000)
        assert d.collector._window_requests["frontend"] == 1000
        assert d.collector._window_requests["geo"] == 1000
        assert d.collector._window_errors.get("frontend", 0) == 0
        d2, _ = _batch(_apply_backend_down, n=1000)
        assert d2.collector._window_errors["frontend"] == 1000
        # the down backend itself was entered and recorded every request
        assert d2.collector._window_requests["mongodb-geo"] == 1000
        assert d2.collector._window_errors["mongodb-geo"] == 1000

    def test_deterministic_given_seed_and_n(self):
        for family, apply_fault in FAULT_FAMILIES.items():
            _, a = _batch(apply_fault, n=2000)
            _, b = _batch(apply_fault, n=2000)
            assert a.errors == b.errors, family
            assert a.latency_sum_ms == b.latency_sum_ms, family
            assert a.error_services == b.error_services, family
            assert a.error_kinds == b.error_kinds, family
            assert [r.latency_ms for r in a.exemplars] == \
                [r.latency_ms for r in b.exemplars], family

    def test_independent_of_interleaved_per_request_calls(self):
        """The batch stream is derived from the seed, not the per-request
        generator state — executing requests first must not shift batches."""
        d1, ref = _batch(_apply_healthy, n=500)
        d2 = Deployed()
        for _ in range(50):
            d2.runtime.execute(OP)
        got = d2.runtime.execute_many(OP, 500)
        assert got.latency_sum_ms == ref.latency_sum_ms

    def test_bounded_exemplar_volume(self):
        d, batch = _batch(_apply_network_loss, n=N)
        profile = d.runtime._profiles[OP]
        cap = profile.n_outcomes * d.runtime.BATCH_TRACE_EXEMPLARS
        assert len(batch.exemplars) <= cap
        assert len(d.collector.traces) <= cap
        # exemplars cover both failed and successful branches
        assert {r.ok for r in batch.exemplars} == {True, False}

    def test_unknown_operation_rejected(self):
        d = Deployed()
        with pytest.raises(KeyError):
            d.runtime.execute_many("no_such_op", 10)

    def test_zero_and_negative_n(self):
        d = Deployed()
        assert d.runtime.execute_many(OP, 0).n == 0
        with pytest.raises(ValueError):
            d.runtime.execute_many(OP, -1)


class TestProfileCacheInvalidation:
    """The path profile is a derived cache over cluster/backend/helm state;
    every mutator an agent (or fault) can reach must invalidate it —
    the ``_dirty``-style staleness bug class this guards against."""

    def _compiles(self, d: Deployed) -> int:
        return d.runtime.profile_stats["compiles"]

    def test_cache_hit_without_mutation(self):
        d, _ = _batch(_apply_healthy, n=100)
        before = self._compiles(d)
        d.runtime.execute_many(OP, 100)
        assert self._compiles(d) == before
        assert d.runtime.profile_stats["hits"] >= 1

    def test_kubectl_set_image_invalidates(self):
        d, first = _batch(_apply_healthy, n=500)
        kubectl = Kubectl(d.cluster)
        out = kubectl.run(
            f"kubectl set image deployment/geo "
            f"geo=deathstarbench/hotel-geo:buggy-v2 -n {d.app.namespace}")
        assert "image updated" in out
        before = self._compiles(d)
        batch = d.runtime.execute_many(OP, 500)
        assert self._compiles(d) > before
        assert first.errors == 0 and batch.errors == 500
        assert batch.error_kinds == {"app_bug": 500}

    def test_helm_upgrade_invalidates(self):
        d, first = _batch(_apply_healthy, n=500)
        d.app.helm.upgrade(d.app.release_name,
                           {"mongo_credentials": {"mongodb-rate": None}})
        before = self._compiles(d)
        batch = d.runtime.execute_many(OP, 500)
        assert self._compiles(d) > before
        assert first.errors == 0 and batch.errors == 500
        assert "auth_failed" in batch.error_kinds

    def test_helm_values_surgery_invalidates(self):
        """The AuthenticationMissing injector edits release values in
        place (no revision bump) — the credentials snapshot must catch it."""
        d, first = _batch(_apply_healthy, n=500)
        release = d.app.helm.releases[d.app.release_name]
        release.values["mongo_credentials"]["mongodb-rate"] = None
        before = self._compiles(d)
        batch = d.runtime.execute_many(OP, 500)
        assert self._compiles(d) > before
        assert batch.errors == 500

    def test_pod_delete_invalidates(self):
        d, _ = _batch(_apply_healthy, n=100)
        pod = [p for p in d.cluster.pods_in(d.app.namespace)
               if p.owner == "geo"][0]
        d.cluster.delete_pod(d.app.namespace, pod.name)
        before = self._compiles(d)
        batch = d.runtime.execute_many(OP, 100)
        assert self._compiles(d) > before
        # the controller recreated the pod, so outcomes stay healthy
        assert batch.errors == 0

    def test_scale_to_zero_invalidates_and_shifts(self):
        d, first = _batch(_apply_healthy, n=500)
        d.cluster.scale_deployment(d.app.namespace, "search", 0)
        batch = d.runtime.execute_many(OP, 500)
        assert first.errors == 0 and batch.errors == 500
        assert batch.error_kinds == {"connection_refused": 500}
        # and back
        d.cluster.scale_deployment(d.app.namespace, "search", 1)
        assert d.runtime.execute_many(OP, 500).errors == 0

    def test_backend_toggle_invalidates(self):
        d, first = _batch(_apply_healthy, n=500)
        d.app.backends["memcached-rate"].up = False
        batch = d.runtime.execute_many(OP, 500)
        assert first.errors == 0 and batch.errors == 500
        assert batch.error_kinds == {"unavailable": 500}
        d.app.backends["memcached-rate"].up = True
        assert d.runtime.execute_many(OP, 500).errors == 0

    def test_mongo_user_mutations_invalidate(self):
        d, first = _batch(_apply_healthy, n=500)
        backend = d.app.backends["mongodb-geo"]
        backend.revoke_roles("admin")
        assert d.runtime.execute_many(OP, 500).errors == 500
        backend.grant_roles("admin", {"readWrite"})
        assert d.runtime.execute_many(OP, 500).errors == 0
        backend.drop_user("admin")
        batch = d.runtime.execute_many(OP, 500)
        assert batch.error_kinds == {"user_not_found": 500}

    def test_network_loss_change_invalidates(self):
        d, first = _batch(_apply_healthy, n=1000)
        d.runtime.network_loss["search"] = 0.5
        before = self._compiles(d)
        lossy = d.runtime.execute_many(OP, 1000)
        assert self._compiles(d) > before
        assert lossy.error_rate == pytest.approx(0.5, abs=0.06)
        del d.runtime.network_loss["search"]
        assert d.runtime.execute_many(OP, 1000).errors == 0

    def test_entry_unreachable_fast_fail(self):
        d, _ = _batch(_apply_healthy, n=10)
        d.cluster.scale_deployment(d.app.namespace, "frontend", 0)
        batch = d.runtime.execute_many(OP, 200)
        assert batch.errors == 200
        assert batch.error_kinds == {"connection_refused": 200}
        assert batch.error_services == {"frontend": 200}
        assert batch.latency_sum_ms == pytest.approx(200.0)


class TestAdaptiveTailReservoir:
    """A pending p50/p99 watch grows the batch exemplar reservoir, so a
    tail-latency trigger's fire time converges on the per-request fire
    time as the reservoir grows (satellite of the trigger-timeline PR)."""

    THRESHOLD = 22.0   # between healthy frontend p50 and p99
    SUSTAIN = 15.0     # three consecutive 5s scrapes

    def _fire_time(self, fidelity, tail_exemplars=None, seed=3):
        from repro.core import CloudEnvironment
        from repro.telemetry import MetricWatch
        env = CloudEnvironment(HotelReservation, seed=seed,
                               workload_rate=300, fidelity=fidelity)
        if tail_exemplars is not None:
            env.runtime.BATCH_TRACE_EXEMPLARS_TAIL = tail_exemplars
        watch = MetricWatch("frontend", "latency_p99_ms", self.THRESHOLD,
                            sustain_s=self.SUSTAIN)
        env.queue.attach_watch(watch)
        env.collector.add_watch(watch)
        env.driver.run_events(60.0)
        env.close()
        return watch.fired_at  # None if it never fired

    def test_direct_execute_many_grows_exemplars_for_tail_watch(self):
        from repro.telemetry import MetricWatch
        d = Deployed()
        no_watch = d.runtime.execute_many(OP, 2000)
        assert len(no_watch.exemplars) == d.runtime.BATCH_TRACE_EXEMPLARS
        d.collector.add_watch(MetricWatch("frontend", "latency_p99_ms", 1.0))
        watched = d.runtime.execute_many(OP, 2000)
        assert len(watched.exemplars) == d.runtime.BATCH_TRACE_EXEMPLARS_TAIL

    def test_non_tail_watch_does_not_grow_exemplars(self):
        from repro.telemetry import MetricWatch
        d = Deployed()
        d.collector.add_watch(MetricWatch("frontend", "error_rate", 1.0))
        batch = d.runtime.execute_many(OP, 2000)
        assert len(batch.exemplars) == d.runtime.BATCH_TRACE_EXEMPLARS

    def test_unrelated_service_watch_does_not_grow_exemplars(self):
        from repro.telemetry import MetricWatch
        d = Deployed()
        d.collector.add_watch(MetricWatch("not-in-this-op",
                                          "latency_p99_ms", 1.0))
        batch = d.runtime.execute_many(OP, 2000)
        assert len(batch.exemplars) == d.runtime.BATCH_TRACE_EXEMPLARS

    def test_fire_times_converge_with_reservoir_growth(self):
        t_pr = self._fire_time("per_request")
        assert t_pr == 5.0 + self.SUSTAIN  # satisfied from the first scrape

        def err(fired_at):
            return float("inf") if fired_at is None else abs(fired_at - t_pr)

        errors = [err(self._fire_time("aggregate", tail_exemplars=k))
                  for k in (2, 8, 24)]
        # monotone convergence toward the per-request fire time...
        assert all(e2 <= e1 for e1, e2 in zip(errors, errors[1:]))
        # ...and the adaptive default lands within one scrape interval
        assert errors[-1] <= 5.0
        # while a starved reservoir visibly mis-times the trigger
        assert errors[0] > 5.0


class TestEngineDeterminism:
    """Fixed-seed pins for the two sampling engines.

    Each engine must be exactly reproducible in (seed, n); the engines'
    values may differ from each other (they consume the batch stream in
    different shapes) but their *counts* cannot — the multinomial outcome
    split is the first draw on the stream under both engines."""

    def test_vectorized_engine_active_by_default(self):
        from repro.services import vectorized
        assert vectorized.AVAILABLE
        d = Deployed()
        assert d.runtime.vectorize == vectorized.enabled()

    def test_identical_across_fresh_deployments(self):
        for family, apply_fault in sorted(FAULT_FAMILIES.items()):
            _, a = _batch(apply_fault, n=3000)
            _, b = _batch(apply_fault, n=3000)
            assert a.latency_sum_ms == b.latency_sum_ms, family
            assert a.error_kinds == b.error_kinds, family
            assert [r.latency_ms for r in a.exemplars] == \
                [r.latency_ms for r in b.exemplars], family

    def test_execute_many_is_single_op_execute_many_all(self):
        d1 = Deployed()
        one = d1.runtime.execute_many(OP, 1500)
        d2 = Deployed()
        [fused] = d2.runtime.execute_many_all([(OP, 1500)])
        assert one.latency_sum_ms == fused.latency_sum_ms
        assert one.error_kinds == fused.error_kinds
        assert [r.latency_ms for r in one.exemplars] == \
            [r.latency_ms for r in fused.exemplars]

    def test_multi_op_fused_call_deterministic(self):
        reqs = [("search_hotel", 700), ("recommend", 500),
                ("reserve", 300)]
        d1, d2 = Deployed(), Deployed()
        a = d1.runtime.execute_many_all(reqs)
        b = d2.runtime.execute_many_all(reqs)
        assert [x.operation for x in a] == [r[0] for r in reqs]
        assert [x.latency_sum_ms for x in a] == \
            [x.latency_sum_ms for x in b]
        assert [x.n for x in a] == [700, 500, 300]

    def test_counts_identical_across_engines(self, monkeypatch):
        _, vec = _batch(_apply_auth_failure, n=2000)
        monkeypatch.setenv("REPRO_SCALAR_SAMPLING", "1")
        _, scal = _batch(_apply_auth_failure, n=2000)
        assert vec.errors == scal.errors
        assert vec.error_kinds == scal.error_kinds
        assert vec.error_services == scal.error_services


class TestScalarFallback:
    """``REPRO_SCALAR_SAMPLING=1`` (or a missing numpy) selects the
    value-by-value scalar engine; it must stay statistically equivalent
    and independently deterministic."""

    def test_env_gate_disables_vectorization(self, monkeypatch):
        from repro.services import vectorized
        monkeypatch.setenv("REPRO_SCALAR_SAMPLING", "1")
        assert not vectorized.enabled()
        d = Deployed()
        assert d.runtime.vectorize is False

    def test_scalar_engine_deterministic(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR_SAMPLING", "1")
        _, a = _batch(_apply_network_loss, n=2000)
        _, b = _batch(_apply_network_loss, n=2000)
        assert a.latency_sum_ms == b.latency_sum_ms
        assert [r.latency_ms for r in a.exemplars] == \
            [r.latency_ms for r in b.exemplars]

    def test_scalar_matches_vectorized_statistically(self, monkeypatch):
        _, vec = _batch(_apply_healthy, n=N)
        monkeypatch.setenv("REPRO_SCALAR_SAMPLING", "1")
        _, scal = _batch(_apply_healthy, n=N)
        assert scal.mean_latency_ms == pytest.approx(
            vec.mean_latency_ms, rel=LATENCY_RTOL)


class TestSharedProfileStore:
    """Compiled profiles are shared across sessions through a value-keyed
    store: equal observable state → same profile object; any divergence →
    a different fingerprint, so staleness is impossible by construction."""

    @pytest.fixture(autouse=True)
    def fresh_store(self, monkeypatch):
        from repro.services.profile import ProfileStore
        from repro.services.runtime import ServiceRuntime
        self.store = ProfileStore()
        monkeypatch.setattr(ServiceRuntime, "profile_store", self.store)

    def test_cross_session_hit(self):
        d1, first = _batch(_apply_healthy, n=500)
        assert d1.runtime.profile_stats["shared_hits"] == 0
        assert self.store.stats["stores"] == 1
        d2, second = _batch(_apply_healthy, n=500)
        assert d2.runtime.profile_stats["shared_hits"] == 1
        # same seed + same profile → bit-identical batches
        assert second.latency_sum_ms == first.latency_sum_ms
        assert self.store.hit_rate == 0.5

    def test_store_fetch_still_counts_as_install(self):
        """'compiles' means profile installs — cold or store-served — so
        the invalidation tests above hold for co-tenant sessions too."""
        d1, _ = _batch(_apply_healthy, n=100)
        d2, _ = _batch(_apply_healthy, n=100)
        assert d1.runtime.profile_stats["compiles"] == 1
        assert d2.runtime.profile_stats["compiles"] == 1

    def test_mutated_session_never_sees_cotenant_profile(self):
        d1, healthy = _batch(_apply_healthy, n=500)
        d2 = Deployed()
        d2.app.backends["mongodb-geo"].up = False
        broken = d2.runtime.execute_many(OP, 500)
        assert healthy.errors == 0
        assert broken.errors == 500
        assert d2.runtime.profile_stats["shared_hits"] == 0
        # and the healthy co-tenant is equally unaffected afterwards
        assert d1.runtime.execute_many(OP, 500).errors == 0

    def test_mutation_after_sharing_diverges(self):
        d1, _ = _batch(_apply_healthy, n=200)
        d2, _ = _batch(_apply_healthy, n=200)
        assert d2.runtime.profile_stats["shared_hits"] == 1
        d2.runtime.network_loss["search"] = 0.5
        lossy = d2.runtime.execute_many(OP, 1000)
        assert lossy.error_rate == pytest.approx(0.5, abs=0.06)
        assert d1.runtime.execute_many(OP, 1000).errors == 0

    def test_disabled_store_still_compiles(self, monkeypatch):
        from repro.services.runtime import ServiceRuntime
        monkeypatch.setattr(ServiceRuntime, "profile_store", None)
        d1, a = _batch(_apply_healthy, n=300)
        d2, b = _batch(_apply_healthy, n=300)
        assert a.latency_sum_ms == b.latency_sum_ms
        assert d2.runtime.profile_stats["shared_hits"] == 0

    def test_lru_eviction_bounds_the_store(self):
        from repro.services.profile import ProfileStore
        store = ProfileStore(maxsize=2)
        p = object()
        store.put(("a",), p)
        store.put(("b",), p)
        store.put(("c",), p)
        assert len(store) == 2
        assert store.get(("a",)) is None   # oldest evicted
        assert store.get(("c",)) is p

    def test_lru_get_refreshes_recency(self):
        from repro.services.profile import ProfileStore
        store = ProfileStore(maxsize=2)
        p = object()
        store.put(("a",), p)
        store.put(("b",), p)
        assert store.get(("a",)) is p      # touch a → b becomes oldest
        store.put(("c",), p)
        assert store.get(("b",)) is None
        assert store.get(("a",)) is p
