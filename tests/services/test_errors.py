from repro.services import errors as err
from repro.services.errors import RpcErrorKind


class TestErrorSignatures:
    """Each error factory must emit the log signature agents key on."""

    def test_connection_refused_names_service_and_port(self):
        e = err.connection_refused("user-service", 9100)
        assert e.kind is RpcErrorKind.CONNECTION_REFUSED
        assert 'service "user-service" port 9100' in e.message
        assert "connection refused" in e.message

    def test_network_drop(self):
        e = err.network_drop("search")
        assert e.kind is RpcErrorKind.NETWORK_DROP
        assert "packet dropped" in e.message

    def test_timeout_includes_deadline(self):
        e = err.timeout("rate", 150.0)
        assert "DeadlineExceeded" in e.message and "150ms" in e.message

    def test_auth_failed_mentions_db(self):
        e = err.auth_failed("mongodb-geo", "geo-db")
        assert e.kind is RpcErrorKind.AUTH_FAILED
        assert 'Authentication failed on db "geo-db"' in e.message

    def test_not_authorized_matches_figure4(self):
        """The paper's Figure 4 message shape: not authorized on geo-db."""
        e = err.not_authorized("mongodb-geo", "geo-db", "find")
        assert "not authorized on geo-db to execute command" in e.message

    def test_user_not_found_names_user(self):
        e = err.user_not_found("mongodb-user", "user-db", "admin")
        assert 'Could not find user "admin"' in e.message

    def test_app_bug_is_a_panic(self):
        e = err.app_bug("geo", "img:buggy-v2")
        assert e.message.startswith("panic:")
        assert "buggy-v2" in e.message

    def test_str_contains_kind_and_service(self):
        e = err.unavailable("db", "down")
        assert "unavailable" in str(e) and "db" in str(e)
