import pytest

from repro.services.errors import RpcErrorKind


class TestHealthyExecution:
    def test_all_operations_succeed(self, hotel):
        for op in hotel.app.operations:
            result = hotel.runtime.execute(op)
            assert result.ok, f"{op} failed: {result.error}"

    def test_latency_positive_and_composed(self, hotel):
        result = hotel.runtime.execute("search_hotel")
        assert result.latency_ms > 1.0

    def test_traces_recorded(self, hotel):
        before = len(hotel.collector.traces)
        hotel.runtime.execute("search_hotel")
        assert len(hotel.collector.traces) == before + 1

    def test_trace_covers_call_graph(self, hotel):
        result = hotel.runtime.execute("search_hotel")
        trace = hotel.collector.traces.query()[-1]
        services = {s.service for s in trace.spans}
        assert {"frontend", "search", "geo", "mongodb-geo"} <= services

    def test_unknown_operation_rejected(self, hotel):
        with pytest.raises(KeyError):
            hotel.runtime.execute("no_such_op")

    def test_request_metrics_recorded(self, hotel):
        hotel.runtime.execute("search_hotel")
        hotel.collector.scrape(hotel.cluster, hotel.app.namespace)
        assert hotel.collector.metrics.snapshot_latest("request_rate")


class TestMongoFaultPath:
    def test_revoked_auth_fails_geo_path(self, hotel):
        hotel.app.backends["mongodb-geo"].revoke_roles("admin")
        result = hotel.runtime.execute("search_hotel")
        assert not result.ok
        assert result.error.kind is RpcErrorKind.NOT_AUTHORIZED

    def test_error_logged_at_caller_service(self, hotel):
        """Figure 4: injection at mongodb-geo, geo generates error logs."""
        hotel.app.backends["mongodb-geo"].revoke_roles("admin")
        hotel.runtime.execute("search_hotel")
        geo_logs = hotel.collector.logs.query(
            namespace=hotel.app.namespace, service="geo", level="ERROR")
        assert any("not authorized on geo-db" in r.message for r in geo_logs)

    def test_error_propagates_up_the_chain(self, hotel):
        hotel.app.backends["mongodb-geo"].revoke_roles("admin")
        hotel.runtime.execute("search_hotel")
        for svc in ("geo", "search", "frontend"):
            logs = hotel.collector.logs.query(
                namespace=hotel.app.namespace, service=svc, level="ERROR")
            assert logs, f"{svc} should log the propagated failure"

    def test_unrelated_operation_unaffected(self, hotel):
        hotel.app.backends["mongodb-geo"].revoke_roles("admin")
        result = hotel.runtime.execute("login")  # user path, not geo
        assert result.ok

    def test_dropped_user_yields_user_not_found(self, hotel):
        hotel.app.backends["mongodb-user"].drop_user("admin")
        result = hotel.runtime.execute("login")
        assert not result.ok
        assert result.error.kind is RpcErrorKind.USER_NOT_FOUND

    def test_error_span_marked(self, hotel):
        hotel.app.backends["mongodb-geo"].revoke_roles("admin")
        result = hotel.runtime.execute("search_hotel")
        trace = [t for t in hotel.collector.traces.query()
                 if t.trace_id == result.trace_id][0]
        assert trace.has_error
        assert "mongodb-geo" in trace.error_services()


class TestConnectivityFaultPath:
    def test_scaled_to_zero_is_connection_refused(self, social):
        social.cluster.scale_deployment(social.app.namespace,
                                        "post-storage-service", 0)
        result = social.runtime.execute("read_home_timeline")
        assert not result.ok
        assert result.error.kind is RpcErrorKind.CONNECTION_REFUSED
        assert 'service "post-storage-service"' in result.error.message

    def test_network_loss_drops_requests(self, hotel):
        hotel.runtime.network_loss["search"] = 1.0
        result = hotel.runtime.execute("search_hotel")
        assert not result.ok
        assert result.error.kind is RpcErrorKind.NETWORK_DROP

    def test_partial_loss_is_probabilistic(self, hotel):
        hotel.runtime.network_loss["search"] = 0.5
        outcomes = {hotel.runtime.execute("search_hotel").ok
                    for _ in range(40)}
        assert outcomes == {True, False}

    def test_buggy_image_read_from_live_deployment(self, hotel):
        """`kubectl set image` on the deployment template must drive the
        runtime's behaviour (so mitigation by image rollback works)."""
        dep = hotel.cluster.get_deployment(hotel.app.namespace, "geo")
        dep.template.containers[0].image = "hotel-geo:buggy-v2"
        result = hotel.runtime.execute("search_hotel")
        assert not result.ok
        assert result.error.kind is RpcErrorKind.APP_BUG
        # rollback
        dep.template.containers[0].image = "hotel-geo:latest"
        assert hotel.runtime.execute("search_hotel").ok

    def test_frontend_down_fails_fast(self, hotel):
        hotel.cluster.scale_deployment(hotel.app.namespace, "frontend", 0)
        result = hotel.runtime.execute("search_hotel")
        assert not result.ok
        assert result.error.kind is RpcErrorKind.CONNECTION_REFUSED


class TestLogPodAttribution:
    """`_pod_for` is memoized (it used to scan every pod per log line);
    the memo must track pod churn, not serve stale names."""

    def test_log_attribution_tracks_pod_delete(self, hotel):
        ns = hotel.app.namespace
        rt = hotel.runtime
        pod_before = rt._pod_for("geo")
        assert pod_before.startswith("geo-")
        hotel.cluster.delete_pod(ns, pod_before)
        pod_after = rt._pod_for("geo")
        assert pod_after.startswith("geo-")
        assert pod_after != pod_before, \
            "stale memo: logs still attributed to the deleted pod"
        rt._log("geo", "INFO", "post-delete line")
        rec = hotel.collector.logs.query(namespace=ns, service="geo")[-1]
        assert rec.pod == pod_after
        # the recreated pod exists and is the attribution target
        assert any(p.name == pod_after
                   for p in hotel.cluster.pods_in(ns) if p.owner == "geo")

    def test_log_attribution_tracks_crash_loop_flag(self, hotel):
        """Crash-loop flips mutate pods in place (no dict-version bump);
        the reconcile-driven state version must still invalidate the memo."""
        ns = hotel.app.namespace
        rt = hotel.runtime
        assert rt._pod_for("geo").startswith("geo-")
        for pod in hotel.cluster.pods_in(ns):
            if pod.owner == "geo":
                pod.crash_looping = True
        hotel.cluster.reconcile()
        assert rt._pod_for("geo") == "geo-<none>"

    def test_memo_hit_is_stable_between_mutations(self, hotel):
        rt = hotel.runtime
        first = rt._pod_for("search")
        assert rt._pod_for("search") is first  # same cached string object


class TestCredentialsProvider:
    def test_missing_credentials_fail_handshake(self, hotel):
        release = hotel.app.helm.releases[hotel.app.release_name]
        release.values["mongo_credentials"]["mongodb-rate"] = None
        result_errors = [
            hotel.runtime.execute("search_hotel").error for _ in range(3)
        ]
        kinds = {e.kind for e in result_errors if e}
        assert RpcErrorKind.AUTH_FAILED in kinds

    def test_helm_upgrade_restores_access(self, hotel):
        release = hotel.app.helm.releases[hotel.app.release_name]
        release.values["mongo_credentials"]["mongodb-rate"] = None
        assert not hotel.runtime.execute("search_hotel").ok
        release.values["mongo_credentials"]["mongodb-rate"] = {
            "username": "admin", "password": "rate-pass"}
        assert hotel.runtime.execute("search_hotel").ok
