from repro.services.model import CallEdge, Microservice, Operation


class TestMicroservice:
    def test_default_image_derived_from_name(self):
        ms = Microservice(name="geo", port=8083)
        assert ms.image == "deathstarbench/geo:latest"

    def test_explicit_image_kept(self):
        ms = Microservice(name="geo", port=8083, image="custom:1")
        assert ms.image == "custom:1"


class TestOperation:
    def test_all_services_includes_entry(self):
        op = Operation(name="op", entry="frontend")
        assert op.all_services() == {"frontend"}

    def test_all_services_walks_tree(self):
        op = Operation(
            name="op", entry="a",
            tree=[CallEdge("b", children=[CallEdge("c"), CallEdge("d")])],
        )
        assert op.all_services() == {"a", "b", "c", "d"}

    def test_shared_subtree_counted_once(self):
        shared = CallEdge("db")
        op = Operation(name="op", entry="a",
                       tree=[CallEdge("b", children=[shared]),
                             CallEdge("c", children=[shared])])
        assert op.all_services() == {"a", "b", "c", "db"}
