from repro.services.backends import MemcachedBackend, MongoBackend, RedisBackend


class TestMongoAuth:
    def make(self):
        backend = MongoBackend("geo-db")
        backend.create_user("admin", "pw", roles={"readWrite", "dbAdmin"})
        return backend

    def test_authenticate_success(self):
        assert self.make().authenticate("admin", "pw") == ""

    def test_authenticate_no_credentials(self):
        assert self.make().authenticate(None, None) == "no_credentials"

    def test_authenticate_unknown_user(self):
        assert self.make().authenticate("ghost", "pw") == "user_not_found"

    def test_authenticate_bad_password(self):
        assert self.make().authenticate("admin", "wrong") == "bad_password"

    def test_auth_disabled_accepts_anything(self):
        backend = MongoBackend("db", require_auth=False)
        assert backend.authenticate(None, None) == ""
        assert backend.authorize(None) == ""

    def test_authorize_success(self):
        assert self.make().authorize("admin", "find") == ""

    def test_authorize_after_revoke(self):
        backend = self.make()
        backend.revoke_roles("admin")
        assert backend.authorize("admin") == "not_authorized"
        # authentication still succeeds — only authorization fails
        assert backend.authenticate("admin", "pw") == ""

    def test_revoke_missing_user(self):
        assert not self.make().revoke_roles("ghost")

    def test_grant_restores_access(self):
        backend = self.make()
        backend.revoke_roles("admin")
        backend.grant_roles("admin", {"readWrite"})
        assert backend.authorize("admin") == ""

    def test_grant_missing_user(self):
        assert not self.make().grant_roles("ghost", {"readWrite"})

    def test_drop_user(self):
        backend = self.make()
        assert backend.drop_user("admin")
        assert backend.authenticate("admin", "pw") == "user_not_found"
        assert backend.authorize("admin") == "user_not_found"

    def test_drop_missing_user(self):
        assert not self.make().drop_user("ghost")

    def test_recreate_after_drop(self):
        backend = self.make()
        backend.drop_user("admin")
        backend.create_user("admin", "pw", roles={"readWrite"})
        assert backend.authenticate("admin", "pw") == ""
        assert backend.authorize("admin") == ""

    def test_revoke_specific_roles(self):
        backend = self.make()
        backend.revoke_roles("admin", {"dbAdmin"})
        # readWrite remains, so commands still authorized
        assert backend.authorize("admin") == ""


class TestCaches:
    def test_redis_set_get(self):
        r = RedisBackend("r")
        r.set("k", "v")
        assert r.get("k") == "v" and len(r) == 1

    def test_redis_missing_key(self):
        assert RedisBackend("r").get("nope") is None

    def test_memcached_set_get_flush(self):
        m = MemcachedBackend("m")
        m.set("k", "v")
        assert m.get("k") == "v"
        m.flush()
        assert m.get("k") is None
