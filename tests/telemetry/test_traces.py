from repro.telemetry.traces import Span, Trace, TraceStore


def make_trace(store, services_status, start=0.0):
    """Build a linear trace: first service is root, each child nested."""
    trace = Trace(trace_id=store.new_trace_id())
    parent = None
    for svc, status in services_status:
        span = Span(
            span_id=store.new_span_id(), trace_id=trace.trace_id,
            parent_id=parent, service=svc, operation="op",
            start=start, duration_ms=1.0, status=status,
        )
        trace.spans.append(span)
        parent = span.span_id
    store.add(trace)
    return trace


class TestTrace:
    def test_root_is_parentless_span(self):
        store = TraceStore()
        trace = make_trace(store, [("a", "OK"), ("b", "OK")])
        assert trace.root.service == "a"

    def test_has_error(self):
        store = TraceStore()
        trace = make_trace(store, [("a", "OK"), ("b", "ERROR")])
        assert trace.has_error

    def test_error_services_deepest_first(self):
        store = TraceStore()
        trace = make_trace(store, [("a", "ERROR"), ("b", "ERROR"),
                                   ("c", "ERROR")])
        assert trace.error_services() == ["c", "b", "a"]

    def test_to_dict_roundtrip_fields(self):
        store = TraceStore()
        trace = make_trace(store, [("a", "OK")])
        d = trace.to_dict()
        assert d["traceID"] == trace.trace_id
        assert d["spans"][0]["serviceName"] == "a"


class TestTraceStore:
    def test_ids_unique(self):
        store = TraceStore()
        ids = {store.new_trace_id() for _ in range(100)}
        assert len(ids) == 100

    def test_query_time_window(self):
        store = TraceStore()
        make_trace(store, [("a", "OK")], start=1.0)
        make_trace(store, [("a", "OK")], start=10.0)
        assert len(store.query(since=5.0)) == 1
        assert len(store.query(until=5.0)) == 1

    def test_query_only_errors(self):
        store = TraceStore()
        make_trace(store, [("a", "OK")])
        make_trace(store, [("a", "ERROR")])
        assert len(store.query(only_errors=True)) == 1

    def test_error_rate_by_service(self):
        store = TraceStore()
        make_trace(store, [("a", "OK"), ("b", "ERROR")])
        make_trace(store, [("a", "OK"), ("b", "OK")])
        rates = store.error_rate_by_service()
        assert rates["b"] == 0.5 and rates["a"] == 0.0

    def test_capacity_eviction(self):
        store = TraceStore(capacity=50)
        for _ in range(80):
            make_trace(store, [("a", "OK")])
        assert len(store) <= 80
