from hypothesis import given, settings, strategies as st

from repro.telemetry.templates import (
    WILDCARD, TemplateMiner, similarity, tokenize,
)
import pytest


class TestTokenize:
    def test_numbers_masked(self):
        assert tokenize("request took 42 ms") == ["request", "took",
                                                  WILDCARD, "ms"]

    def test_percentages_and_ports_masked(self):
        tokens = tokenize("drop 50% on 9090")
        assert tokens == ["drop", WILDCARD, "on", WILDCARD]

    def test_words_kept(self):
        assert tokenize("not authorized on geo-db") == \
            ["not", "authorized", "on", "geo-db"]


class TestSimilarity:
    def test_identical(self):
        assert similarity(["a", "b"], ["a", "b"]) == 1.0

    def test_length_mismatch_is_zero(self):
        assert similarity(["a"], ["a", "b"]) == 0.0

    def test_partial(self):
        assert similarity(["a", "b", "c", "d"], ["a", "x", "c", "y"]) == 0.5


class TestMiner:
    def test_same_shape_lines_cluster(self):
        miner = TemplateMiner()
        miner.add("failed to call geo.find after 10 ms")
        tmpl = miner.add("failed to call rate.find after 20 ms")
        assert tmpl.count == 2
        assert WILDCARD in tmpl.render()
        assert len(miner.templates) == 1

    def test_template_generalizes_divergent_positions(self):
        miner = TemplateMiner()
        miner.add("connect to user-service refused")
        tmpl = miner.add("connect to text-service refused")
        assert tmpl.tokens == ["connect", "to", WILDCARD, "refused"]

    def test_distinct_messages_stay_separate(self):
        miner = TemplateMiner()
        miner.add("authentication failed for admin user account")
        miner.add("pod scheduled onto node zero ok")
        assert len(miner.templates) == 2

    def test_counts_and_top(self):
        miner = TemplateMiner()
        for _ in range(5):
            miner.add("request handled in 3 ms")
        miner.add("connection refused entirely")
        (top_template, top_count) = miner.top(1)[0]
        assert top_count == 5

    def test_fit_iterable(self):
        miner = TemplateMiner().fit(["a b 1", "a b 2", "c d e"])
        assert sum(miner.counts().values()) == 3

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            TemplateMiner(similarity_threshold=0.0)

    def test_real_runtime_logs_compress(self, hotel):
        """Mining the simulator's own error logs should compress heavily:
        thousands of lines but a handful of templates."""
        hotel.app.backends["mongodb-geo"].revoke_roles("admin")
        hotel.driver.run_events(20)
        lines = [r.message for r in hotel.collector.logs.query(
            namespace=hotel.app.namespace, level="ERROR")]
        assert len(lines) > 50
        miner = TemplateMiner().fit(lines)
        assert len(miner.templates) <= 5

    @given(st.lists(st.text(alphabet="ab ", min_size=1, max_size=20),
                    min_size=1, max_size=30))
    @settings(max_examples=30)
    def test_total_count_equals_lines(self, lines):
        miner = TemplateMiner().fit(lines)
        non_empty = [l for l in lines if l.split()]
        assert sum(miner.counts().values()) == len(non_empty)
