import numpy as np
from hypothesis import given, settings, strategies as st

from repro.telemetry.metrics import MetricSeries, MetricStore


class TestMetricSeries:
    def test_add_and_latest(self):
        s = MetricSeries("svc", "cpu")
        s.add(1.0, 10.0)
        s.add(2.0, 20.0)
        assert s.latest() == 20.0

    def test_latest_empty(self):
        assert MetricSeries("s", "m").latest() is None

    def test_window_bounds_inclusive(self):
        s = MetricSeries("svc", "cpu")
        for t in range(5):
            s.add(float(t), float(t))
        t, v = s.window(since=1.0, until=3.0)
        assert list(t) == [1.0, 2.0, 3.0]

    def test_window_no_bounds(self):
        s = MetricSeries("svc", "cpu")
        s.add(0.0, 1.0)
        t, v = s.window()
        assert len(t) == 1


class TestMetricStore:
    def test_record_creates_series(self):
        store = MetricStore()
        store.record(0.0, "a", "cpu_usage", 5.0)
        assert store.series("a", "cpu_usage") is not None

    def test_services_sorted(self):
        store = MetricStore()
        store.record(0.0, "b", "cpu_usage", 1.0)
        store.record(0.0, "a", "cpu_usage", 1.0)
        assert store.services() == ["a", "b"]

    def test_metrics_for(self):
        store = MetricStore()
        store.record(0.0, "a", "cpu_usage", 1.0)
        store.record(0.0, "a", "error_rate", 0.0)
        assert store.metrics_for("a") == ["cpu_usage", "error_rate"]

    def test_snapshot_latest(self):
        store = MetricStore()
        store.record(0.0, "a", "cpu_usage", 1.0)
        store.record(1.0, "a", "cpu_usage", 9.0)
        assert store.snapshot_latest("cpu_usage") == {"a": 9.0}

    def test_matrix_shape(self):
        store = MetricStore()
        for t in range(4):
            for svc in ("a", "b", "c"):
                store.record(float(t), svc, "cpu_usage", 1.0)
        times, m = store.matrix(["a", "b", "c"], "cpu_usage")
        assert m.shape == (4, 3)

    def test_matrix_missing_service_zero_filled(self):
        store = MetricStore()
        for t in range(3):
            store.record(float(t), "a", "cpu_usage", 2.0)
        times, m = store.matrix(["a", "ghost"], "cpu_usage")
        assert m.shape[1] == 2
        assert np.all(m[:, 1] == 0)

    def test_matrix_empty(self):
        store = MetricStore()
        times, m = store.matrix(["a"], "cpu_usage")
        assert m.shape[0] == 0

    def test_matrix_ragged_truncates(self):
        store = MetricStore()
        for t in range(5):
            store.record(float(t), "a", "cpu_usage", 1.0)
        for t in range(3):
            store.record(float(t), "b", "cpu_usage", 1.0)
        _, m = store.matrix(["a", "b"], "cpu_usage")
        assert m.shape == (3, 2)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=40))
    @settings(max_examples=30)
    def test_window_round_trip(self, values):
        s = MetricSeries("svc", "m")
        for i, v in enumerate(values):
            s.add(float(i), v)
        t, v = s.window(since=0.0, until=float(len(values)))
        assert len(t) == len(values)
