from hypothesis import given, settings, strategies as st

from repro.telemetry.logs import LogRecord, LogStore


def emit(store, t=0.0, ns="ns", svc="svc", pod="pod-1", level="INFO", msg="m"):
    return store.emit(t, ns, svc, pod, level, msg)


class TestLogStore:
    def test_emit_and_len(self):
        store = LogStore()
        emit(store)
        assert len(store) == 1

    def test_query_by_service(self):
        store = LogStore()
        emit(store, svc="a")
        emit(store, svc="b")
        assert len(store.query(service="a")) == 1

    def test_query_by_level(self):
        store = LogStore()
        emit(store, level="ERROR")
        emit(store, level="INFO")
        assert [r.level for r in store.query(level="ERROR")] == ["ERROR"]

    def test_query_time_window(self):
        store = LogStore()
        for t in (1.0, 5.0, 9.0):
            emit(store, t=t)
        assert len(store.query(since=2.0, until=8.0)) == 1

    def test_query_conjunction(self):
        store = LogStore()
        emit(store, svc="a", level="ERROR", t=5.0)
        emit(store, svc="a", level="INFO", t=5.0)
        emit(store, svc="b", level="ERROR", t=5.0)
        assert len(store.query(service="a", level="ERROR")) == 1

    def test_tail_returns_last_n(self):
        store = LogStore()
        for i in range(10):
            emit(store, pod="p", msg=f"line{i}")
        text = store.tail("ns", "p", n=3)
        assert "line9" in text and "line6" not in text

    def test_tail_service(self):
        store = LogStore()
        emit(store, svc="geo", msg="hello-geo")
        assert "hello-geo" in store.tail_service("ns", "geo")

    def test_error_counts(self):
        store = LogStore()
        emit(store, svc="a", level="ERROR")
        emit(store, svc="a", level="ERROR")
        emit(store, svc="b", level="ERROR")
        assert store.error_counts("ns") == {"a": 2, "b": 1}

    def test_error_counts_respects_since(self):
        store = LogStore()
        emit(store, svc="a", level="ERROR", t=1.0)
        emit(store, svc="a", level="ERROR", t=10.0)
        assert store.error_counts("ns", since=5.0) == {"a": 1}

    def test_services_seen(self):
        store = LogStore()
        emit(store, svc="x")
        emit(store, svc="y")
        assert store.services_seen("ns") == {"x", "y"}

    def test_capacity_eviction_keeps_recent(self):
        store = LogStore(capacity=100)
        for i in range(150):
            emit(store, msg=f"m{i}")
        assert len(store) <= 150
        assert any("m149" in r.message for r in store.query())

    def test_render_contains_level_and_service(self):
        rec = LogRecord(65.0, "ns", "geo", "geo-1", "ERROR", "boom")
        text = rec.render()
        assert "ERROR" in text and "[geo]" in text and "boom" in text

    @given(st.lists(st.sampled_from(["INFO", "WARN", "ERROR"]), max_size=30))
    @settings(max_examples=30)
    def test_query_partitions_by_level(self, levels):
        store = LogStore()
        for i, level in enumerate(levels):
            emit(store, t=float(i), level=level)
        total = sum(len(store.query(level=l)) for l in ("INFO", "WARN", "ERROR"))
        assert total == len(levels)
