"""MetricWatch: scrape-time threshold evaluation with sustain windows."""

import pytest

from repro.simcore import SimClock
from repro.telemetry import MetricWatch, TelemetryCollector


class TestMetricWatchUnit:
    def test_fires_on_first_satisfying_scrape(self):
        fired = []
        w = MetricWatch("svc", "error_rate", 2.0, callback=lambda: fired.append(1))
        assert not w.evaluate(5.0, 1.0)
        assert w.satisfied_since is None
        assert w.evaluate(10.0, 3.0)
        assert fired == [1]
        assert w.fired_at == 10.0 and w.fired

    def test_strict_comparison(self):
        w = MetricWatch("svc", "error_rate", 2.0)
        assert not w.evaluate(5.0, 2.0)   # above is strict
        b = MetricWatch("svc", "error_rate", 2.0, above=False)
        assert not b.evaluate(5.0, 2.0)   # below is strict
        assert b.evaluate(10.0, 1.9)

    def test_sustain_window_resets_on_dip(self):
        w = MetricWatch("svc", "latency_p99_ms", 800.0, sustain_s=10.0)
        assert not w.evaluate(5.0, 900.0)    # window opens
        assert not w.evaluate(10.0, 900.0)   # 5s held
        assert not w.evaluate(15.0, 700.0)   # dip resets
        assert w.satisfied_since is None
        assert not w.evaluate(20.0, 900.0)   # reopens
        assert not w.evaluate(25.0, 900.0)
        assert w.evaluate(30.0, 900.0)       # 10s sustained
        assert w.fired_at == 30.0

    def test_fires_once(self):
        fired = []
        w = MetricWatch("svc", "error_rate", 1.0, callback=lambda: fired.append(1))
        assert w.evaluate(5.0, 2.0)
        assert not w.evaluate(10.0, 2.0)
        assert fired == [1]

    def test_rearm_resets_state(self):
        w = MetricWatch("svc", "error_rate", 1.0)
        w.evaluate(5.0, 2.0)
        w.rearm()
        assert w.pending and w.satisfied_since is None and w.fired_at is None
        assert w.evaluate(10.0, 2.0)

    def test_needs_tail_only_for_percentile_metrics(self):
        assert MetricWatch("svc", "latency_p99_ms", 1.0).needs_tail
        assert MetricWatch("svc", "latency_p50_ms", 1.0).needs_tail
        assert not MetricWatch("svc", "error_rate", 1.0).needs_tail

    def test_negative_sustain_rejected(self):
        with pytest.raises(ValueError, match="sustain_s"):
            MetricWatch("svc", "error_rate", 1.0, sustain_s=-1.0)

    def test_describe(self):
        w = MetricWatch("frontend", "latency_p99_ms", 800.0, sustain_s=30.0)
        assert w.describe() == "frontend.latency_p99_ms > 800 for 30s"


class TestCollectorWatchEvaluation:
    """Watches evaluate against the scrape that just recorded their series."""

    def _scraped(self, hotel, watch):
        hotel.collector.add_watch(watch)
        return hotel

    def test_watch_fires_at_scrape(self, hotel):
        fired = []
        w = MetricWatch("frontend", "request_rate", 10.0,
                        callback=lambda: fired.append(hotel.clock.now))
        hotel.collector.add_watch(w)
        hotel.driver.run_events(10.0)   # 40 rps fixture; scrapes at 5, 10
        assert fired == [5.0]
        assert w not in hotel.collector._watches  # swept after firing

    def test_unscraped_series_skipped(self, hotel):
        w = MetricWatch("no-such-service", "request_rate", 0.0)
        hotel.collector.add_watch(w)
        hotel.driver.run_events(10.0)
        assert w.pending  # never evaluated, never fired

    def test_remove_watch(self, hotel):
        w = MetricWatch("frontend", "request_rate", 10.0)
        hotel.collector.add_watch(w)
        hotel.collector.remove_watch(w)
        hotel.driver.run_events(10.0)
        assert w.pending

    def test_pending_and_tail_views(self):
        clock = SimClock()
        collector = TelemetryCollector(clock, seed=0)
        tail = MetricWatch("geo", "latency_p99_ms", 800.0)
        rate = MetricWatch("frontend", "error_rate", 2.0)
        collector.add_watch(tail)
        collector.add_watch(rate)
        assert set(collector.pending_watches()) == {tail, rate}
        assert collector.tail_watch_services() == {"geo"}
        tail.cancel()
        assert collector.tail_watch_services() == frozenset()

    def test_rearm_survives_post_fire_sweep(self, hotel):
        """rearm() must re-register with the collector (which sweeps
        resolved watches) so a repeating trigger can trip again."""
        fired = []
        w = MetricWatch("frontend", "request_rate", 10.0,
                        callback=lambda: fired.append(hotel.clock.now))
        hotel.collector.add_watch(w)
        hotel.driver.run_events(6.0)     # fires at the t=5 scrape
        assert fired == [5.0]
        w.rearm()
        assert w in hotel.collector._watches
        hotel.driver.run_events(6.0)     # fires again at t=10
        assert fired == [5.0, 10.0]

    def test_callback_order_is_registration_order(self, hotel):
        fired = []
        for name in ("a", "b"):
            hotel.collector.add_watch(MetricWatch(
                "frontend", "request_rate", 10.0,
                callback=lambda n=name: fired.append(n)))
        hotel.driver.run_events(6.0)
        assert fired == ["a", "b"]
