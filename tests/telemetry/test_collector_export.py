import json

from repro.telemetry import TelemetryExporter


class TestCollectorScrape:
    def test_scrape_records_standard_metrics(self, hotel):
        hotel.driver.run_events(10)
        hotel.collector.scrape(hotel.cluster, hotel.app.namespace)
        store = hotel.collector.metrics
        for metric in store.STANDARD_METRICS:
            assert store.series("frontend", metric) is not None, metric

    def test_scraped_cpu_zero_for_scaled_down_service(self, hotel):
        hotel.cluster.scale_deployment(hotel.app.namespace, "geo", 0)
        hotel.driver.run_events(10)
        hotel.collector.scrape(hotel.cluster, hotel.app.namespace)
        assert hotel.collector.metrics.snapshot_latest("cpu_usage")["geo"] == 0.0

    def test_request_window_resets_between_scrapes(self, hotel):
        hotel.driver.run_events(10)  # driver scrapes internally at t=5 and t=10
        r1 = hotel.collector.metrics.snapshot_latest("request_rate")["frontend"]
        # no load between scrapes → zero rate
        hotel.clock.advance(5)
        hotel.collector.scrape(hotel.cluster, hotel.app.namespace)
        r2 = hotel.collector.metrics.snapshot_latest("request_rate")["frontend"]
        assert r1 > 0 and r2 == 0.0

    def test_error_rate_reflects_faults(self, hotel):
        hotel.app.backends["mongodb-geo"].revoke_roles("admin")
        hotel.driver.run_events(10)  # internal scrape captures the error window
        assert hotel.collector.metrics.snapshot_latest("error_rate")["geo"] > 0

    def test_baselines_stable_across_scrapes(self, hotel):
        hotel.driver.run_events(6)
        hotel.collector.scrape(hotel.cluster, hotel.app.namespace)
        c1 = hotel.collector.metrics.snapshot_latest("cpu_usage")["frontend"]
        hotel.driver.run_events(6)
        hotel.collector.scrape(hotel.cluster, hotel.app.namespace)
        c2 = hotel.collector.metrics.snapshot_latest("cpu_usage")["frontend"]
        # same baseline with small noise, not wildly different
        assert abs(c1 - c2) / c1 < 0.5


class TestExporter:
    def test_export_logs_writes_per_service_files(self, hotel, tmp_path):
        hotel.driver.run_events(20)
        exporter = TelemetryExporter(hotel.collector, tmp_path)
        out = exporter.export_logs(hotel.app.namespace)
        assert (out / "all.jsonl").exists()
        # structured lines parse back
        lines = (out / "all.jsonl").read_text().splitlines()
        assert lines and all("service" in json.loads(l) for l in lines[:5])

    def test_export_metrics_csv(self, hotel, tmp_path):
        hotel.driver.run_events(10)
        hotel.collector.scrape(hotel.cluster, hotel.app.namespace)
        exporter = TelemetryExporter(hotel.collector, tmp_path)
        out = exporter.export_metrics()
        csv_text = (out / "cpu_usage.csv").read_text()
        assert csv_text.startswith("time,service,value")
        assert "frontend" in csv_text

    def test_export_traces_json(self, hotel, tmp_path):
        hotel.driver.run_events(5)
        exporter = TelemetryExporter(hotel.collector, tmp_path)
        out = exporter.export_traces()
        payload = json.loads((out / "traces.json").read_text())
        assert payload["data"], "expected at least one trace"
        assert "spans" in payload["data"][0]

    def test_export_all_creates_tree(self, hotel, tmp_path):
        hotel.driver.run_events(5)
        hotel.collector.scrape(hotel.cluster, hotel.app.namespace)
        exporter = TelemetryExporter(hotel.collector, tmp_path)
        root = exporter.export_all(hotel.app.namespace)
        assert (root / "logs").is_dir()
        assert (root / "metrics").is_dir()
        assert (root / "traces").is_dir()

    def test_export_since_filters(self, hotel, tmp_path):
        hotel.driver.run_events(10)
        cutoff = hotel.clock.now
        exporter = TelemetryExporter(hotel.collector, tmp_path)
        out = exporter.export_logs(hotel.app.namespace, since=cutoff)
        lines = (out / "all.jsonl").read_text().splitlines() \
            if (out / "all.jsonl").exists() else []
        assert all(json.loads(l)["time"] >= cutoff for l in lines)
