"""Property suite for procedural scenario synthesis.

Hand review certified the 24 hand-written scenarios; these properties
are what certify the unbounded generated pool: (a) every generated
timeline passes arm-time validity, (b) every generated problem runs
end-to-end through ``Orchestrator.create_session`` and grades without
error, (c) per-family grading agrees between the ``per_request`` and
``aggregate`` fidelity tiers on fixed seeds, and (d) the generator is
deterministic — same ``(n, seed)`` yields byte-identical pid lists and
timelines, in any order, in any process.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.agents.registry import build_agent_for
from repro.core import Orchestrator
from repro.faults.schedule import resolve_fault_spec
from repro.faults.triggers import AfterEvent, MetricTrigger
from repro.problems import (
    ScenarioGenerator,
    generated_pool,
    get_problem,
    split_pid,
    template_space,
)
from repro.problems.generator import (
    APP_CLASSES,
    SHAPES,
    GeneratedSpec,
    build_schedule_for,
    describe_timeline,
    is_generated_pid,
)

SEEDS = st.integers(min_value=0, max_value=9999)
INDICES = st.integers(min_value=0, max_value=499)


def run_session(prob, agent_name="gpt-4-w-shell", seed=11, max_steps=5):
    orch = Orchestrator(seed=0)
    handle = orch.create_session(prob, seed=seed)
    agent = build_agent_for(agent_name, handle.context, prob.task_type,
                            seed=seed)
    handle.bind_agent(agent, name=agent_name)
    result = handle.run_sync(max_steps=max_steps)
    orch.release(handle)
    return result


class TestDeterminism:
    """Property (d): byte-identical reproduction from (seed, index)."""

    @given(seed=SEEDS, n=st.integers(min_value=1, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_pid_lists_and_timelines_byte_identical(self, seed, n):
        a, b = ScenarioGenerator(seed), ScenarioGenerator(seed)
        assert a.pids(n) == b.pids(n)
        for i in range(n):
            assert a.spec(i) == b.spec(i)  # frozen dataclass: full recipe
            assert describe_timeline(a.spec(i)) == describe_timeline(b.spec(i))

    @given(seed=SEEDS, index=INDICES)
    @settings(max_examples=25, deadline=None)
    def test_spec_is_order_independent(self, seed, index):
        """spec(i) is pure in (seed, i): computing it cold equals
        computing it after a full in-order sweep."""
        cold = ScenarioGenerator(seed).spec(index)
        warm_gen = ScenarioGenerator(seed)
        warm_gen.specs(min(index, 10))
        assert warm_gen.spec(index) == cold

    def test_different_seeds_differ(self):
        assert ScenarioGenerator(0).pids(20) != ScenarioGenerator(1).pids(20)


class TestArmValidity:
    """Property (a): every generated schedule arms cleanly — tags
    resolve, no trigger cycles, arm-time validation passes."""

    @given(seed=SEEDS, index=INDICES)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_generated_schedule_arms_cleanly(self, seed, index):
        gen = ScenarioGenerator(seed)
        spec = gen.spec(index)
        prob = gen.problem(index)
        sched = prob.build_schedule().validate()  # arm-time checks, env-free
        tags = {e.tag for e in sched.entries if e.tag}
        for entry in sched.entries:
            if isinstance(entry.trigger, AfterEvent):
                assert entry.trigger.tag in tags
                assert entry.trigger.delay >= 0
            if entry.at is not None:
                assert entry.at >= 0
            if isinstance(entry.trigger, MetricTrigger):
                assert entry.trigger.namespace == spec.watch_namespace
        env = prob.create_environment(seed=1)
        armed = sched.arm(env)  # would raise on any invalid timeline
        armed.cancel_pending()
        env.close()

    @given(seed=SEEDS, index=INDICES)
    @settings(max_examples=50, deadline=None)
    def test_spec_invariants(self, seed, index):
        """Structural recipe invariants grading correctness rests on."""
        spec = ScenarioGenerator(seed).spec(index)
        assert is_generated_pid(spec.pid)
        stem, task, _ = split_pid(spec.pid)
        assert task == spec.task
        assert spec.shape in SHAPES
        entries = build_schedule_for(spec).entries
        injects = [e for e in entries if e.kind == "inject"]
        if spec.task == "detection":
            assert spec.expected == ("yes" if injects else "no")
            assert (spec.shape == "quiet") == (not injects)
        else:
            assert injects, "non-detection problems must inject"
        if spec.task == "localization":
            assert injects[0].targets == (spec.target,)
        if spec.task == "mitigation":
            assert 4 in resolve_fault_spec(spec.fault).task_levels
        # hosted app set: 1-3 apps, distinct namespaces
        keys = [spec.app_name] + [n[0] for n in spec.neighbors]
        assert 1 <= len(keys) <= 3
        namespaces = [APP_CLASSES[k].namespace for k in keys]
        assert len(set(namespaces)) == len(namespaces)


class TestEndToEnd:
    """Property (b): generated problems run through create_session and
    grade without error."""

    @given(seed=st.integers(min_value=0, max_value=99),
           index=st.integers(min_value=0, max_value=99))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sessions_run_and_grade(self, seed, index):
        gen = ScenarioGenerator(seed)
        spec = gen.spec(index)
        result = run_session(get_problem(spec.pid), max_steps=4)
        assert result["pid"] == spec.pid
        assert isinstance(result["success"], bool)
        assert isinstance(result["steps"], int) and result["steps"] >= 1

    def test_quiet_scenario_grades_no_fault_correctly(self):
        gen = ScenarioGenerator(0)
        quiet = next(i for i in range(20) if gen.spec(i).shape == "quiet")
        prob = gen.problem(quiet)
        assert prob.ans == "no"
        result = run_session(prob)
        assert result["success"] is True  # scripted agent reports healthy


class TestFidelityAgreement:
    """Property (c): per-family grading agreement between the
    per_request and aggregate tiers on fixed seeds (the PR 4/5
    agreement harness applied to generated problems).

    Families are seed-0 indices with per_request-sized rates (so the
    aggregate rerun measures the kernel, not per-tick clipping), one per
    trigger shape."""

    FAMILIES = [
        ("delayed", 0),
        ("flapping", 15),
        ("cascade", 2),
        ("metric", 17),
        ("chain", 11),
        ("crossing", 5),
        ("quiet", 6),
    ]

    @pytest.mark.parametrize("shape,index", FAMILIES)
    def test_tiers_agree(self, shape, index):
        gen = ScenarioGenerator(0)
        spec = gen.spec(index)
        assert spec.shape == shape and spec.fidelity == "per_request"
        per_req = run_session(gen.problem(index, fidelity="per_request"),
                              max_steps=6)
        aggregate = run_session(gen.problem(index, fidelity="aggregate"),
                                max_steps=6)
        assert per_req["success"] == aggregate["success"]
        assert per_req["steps"] == aggregate["steps"]


class TestPoolCoverage:
    """The acceptance criterion on the documented seed-0 pool."""

    N = 200

    def test_pool_coverage_and_reproducibility(self):
        pids = generated_pool(self.N, seed=0)
        assert len(pids) == self.N
        assert len(set(pids)) == self.N, "pids must be distinct"
        assert pids == ScenarioGenerator(0).pids(self.N)

        specs = ScenarioGenerator(0).specs(self.N)
        assert {s.app_name for s in specs} >= {"HotelReservation",
                                               "SocialNetwork"}
        assert len({s.fault for s in specs if s.fault}) >= 4
        shapes = {s.shape for s in specs}
        # all four trigger mechanisms: AtTime (delayed/flapping/cascade),
        # MetricAbove+sustain, AfterEvent chains, every_crossing loops
        assert {"delayed", "metric", "chain", "crossing"} <= shapes
        assert {s.fidelity for s in specs} == {"per_request", "aggregate"}
        assert all(split_pid(p) is not None for p in pids)

    def test_sampled_pool_problems_arm(self):
        gen = ScenarioGenerator(0)
        for index in range(0, self.N, 13):
            prob = gen.problem(index)
            env = prob.create_environment(seed=1)
            armed = prob.build_schedule().arm(env)
            armed.cancel_pending()
            env.close()

    def test_get_problem_resolves_registered_and_unregistered(self):
        import repro.problems.pool as pool
        pids = generated_pool(5, seed=3)
        assert all(pid in pool.GENERATED_FACTORIES for pid in pids)
        assert get_problem(pids[0]).pid == pids[0]
        # never-registered pid from another seed resolves via the recipe
        cold_pid = ScenarioGenerator(4).spec(2).pid
        assert cold_pid not in pool.GENERATED_FACTORIES
        assert get_problem(cold_pid).pid == cold_pid

    def test_doctored_pid_is_rejected(self):
        pid = ScenarioGenerator(0).spec(1).pid
        doctored = pid.replace("-localization-", "-detection-") \
            if "-localization-" in pid else pid.replace("-detection-",
                                                        "-localization-")
        with pytest.raises(KeyError, match="does not match its recipe"):
            get_problem(doctored)

    def test_generator_input_validation(self):
        with pytest.raises(ValueError):
            ScenarioGenerator(-1)
        with pytest.raises(ValueError):
            ScenarioGenerator(0).spec(-1)

    def test_template_space_axes(self):
        space = template_space()
        assert set(space) >= {"task", "trigger shape", "primary app",
                              "rate policy", "fidelity"}
        assert all(isinstance(v, tuple) and v for v in space.values())
