import pytest

from repro.problems import (
    benchmark_pids, generated_pool, get_problem, list_problems, noop_pids,
    pool_summary, scenario_pids, split_pid,
)


class TestPoolComposition:
    """The §3.3 accounting: 48 problems, Table 4 denominators 13/13/11/11."""

    def test_total_is_48(self):
        assert len(benchmark_pids()) == 48

    def test_task_counts_match_table4_denominators(self):
        summary = pool_summary()
        assert summary["detection"] == 13
        assert summary["localization"] == 13
        assert summary["analysis"] == 11
        assert summary["mitigation"] == 11

    def test_two_noop_probes(self):
        assert len(noop_pids()) == 2

    def test_noop_probes_cover_both_apps(self):
        assert any("hotel" in p for p in noop_pids())
        assert any("social" in p for p in noop_pids())

    def test_pids_unique(self):
        pids = benchmark_pids() + noop_pids()
        assert len(pids) == len(set(pids))

    def test_target_port_misconfig_has_12_problems(self):
        """Table 2: Fault 2 instantiates 12 problems (3 targets × 4 levels)."""
        count = sum(1 for p in benchmark_pids()
                    if p.startswith("misconfig_k8s_"))
        assert count == 12

    def test_symptomatic_only_levels_1_2(self):
        for key in ("network_loss", "pod_failure"):
            tasks = {p.split("-")[1] for p in benchmark_pids()
                     if p.startswith(key)}
            assert tasks == {"detection", "localization"}

    def test_list_problems_filter(self):
        for task in ("detection", "localization", "analysis", "mitigation"):
            assert all(f"-{task}-" in p for p in list_problems(task))

    def test_list_problems_include_noop(self):
        assert len(list_problems(include_noop=True)) == 50


class TestPidGrammar:
    """One grammar for every pool: ``stem-task-index`` with a hyphen-free
    stem; the task filter parses it instead of substring-matching."""

    def test_every_pool_pid_parses(self):
        pids = (benchmark_pids() + noop_pids() + scenario_pids()
                + generated_pool(30, seed=0))
        for pid in pids:
            parsed = split_pid(pid)
            assert parsed is not None, pid
            stem, task, index = parsed
            assert stem and "-" not in stem
            assert index >= 1

    def test_split_pid_rejects_nonconforming(self):
        for bad in ("", "detection", "stem-detection", "stem-bogus-1",
                    "stem-detection-x", "-detection-1",
                    "two-part-stem-detection-1"):
            assert split_pid(bad) is None, bad

    def test_filter_parses_task_field_exactly(self):
        """A stem *containing* a task name must not leak through the
        filter (the old substring check would match it)."""
        trap = "fake_detection_stem-mitigation-1"
        assert "-detection-" not in trap  # guard: trap is substring-proof
        assert split_pid(trap) == ("fake_detection_stem", "mitigation", 1)
        parsed = split_pid("user_unregistered_hotel_res-detection-1")
        assert parsed == ("user_unregistered_hotel_res", "detection", 1)

    def test_filter_covers_generated_pids(self):
        pids = generated_pool(21, seed=0)
        by_task = {t: [p for p in pids if split_pid(p)[1] == t]
                   for t in ("detection", "localization", "mitigation")}
        # the filter result partitions exactly on the parsed field
        all_listed = list_problems(include_noop=True)
        for task, members in by_task.items():
            listed = list_problems(task)
            assert all(split_pid(p)[1] == task for p in listed)
            assert not set(members) & set(all_listed)  # pools stay separate

    def test_unknown_task_type_raises(self):
        with pytest.raises(ValueError, match="unknown task type"):
            list_problems("deteccion")

    def test_scenario_pids_generated_mode(self):
        hand = scenario_pids()
        assert scenario_pids(n=None) == hand
        gen = scenario_pids(n=12, seed=5)
        assert len(gen) == 12
        assert gen == scenario_pids(n=12, seed=5)
        assert not set(gen) & set(hand)


class TestProblemInstantiation:
    def test_every_pid_instantiates(self):
        for pid in benchmark_pids() + noop_pids():
            problem = get_problem(pid)
            assert problem.pid == pid

    def test_problems_are_fresh_instances(self):
        pid = benchmark_pids()[0]
        assert get_problem(pid) is not get_problem(pid)

    def test_unknown_pid(self):
        with pytest.raises(KeyError, match="unknown problem id"):
            get_problem("bogus")

    def test_paper_style_pid_resolves(self):
        p = get_problem("misconfig_k8s_social_net-mitigation-1")
        assert p.task_type == "mitigation"
        assert p.target == "user-service"

    def test_targets_differ_across_indices(self):
        p1 = get_problem("misconfig_k8s_social_net-localization-1")
        p2 = get_problem("misconfig_k8s_social_net-localization-2")
        p3 = get_problem("misconfig_k8s_social_net-localization-3")
        assert {p1.target, p2.target, p3.target} == {
            "user-service", "text-service", "post-storage-service"}
