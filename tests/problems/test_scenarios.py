"""Scenario problems: scheduled-fault timelines end-to-end via sessions."""

import pytest

from repro.agents.registry import build_agent_for
from repro.core import Orchestrator
from repro.problems import (
    benchmark_pids,
    get_problem,
    list_problems,
    scenario_pids,
)


class TestScenarioRegistration:
    def test_at_least_four_scenarios(self):
        assert len(scenario_pids()) >= 4

    def test_benchmark_set_untouched(self):
        assert len(benchmark_pids()) == 48
        assert not set(scenario_pids()) & set(benchmark_pids())

    def test_default_listing_excludes_scenarios(self):
        assert len(list_problems()) == 48
        with_scen = list_problems(include_scenarios=True)
        assert set(scenario_pids()) <= set(with_scen)

    def test_get_problem_resolves_scenarios(self):
        for pid in scenario_pids():
            prob = get_problem(pid)
            assert prob.pid == pid

    def test_scenario_shapes_present(self):
        pids = " ".join(scenario_pids())
        assert "delayed" in pids
        assert "flapping" in pids
        assert "cascade" in pids


class TestScenarioSessions:
    @pytest.mark.parametrize("pid", [
        "delayed_revoke_auth_hotel_res-detection-1",
        "flapping_network_loss_hotel_res-detection-1",
        "flapping_pod_failure_hotel_res-localization-1",
        "cascade_geo_outage_hotel_res-localization-1",
        "surge_revoke_auth_hotel_res-mitigation-1",
    ])
    def test_runs_end_to_end_via_create_session(self, pid):
        orch = Orchestrator(seed=0)
        prob = get_problem(pid)
        handle = orch.create_session(prob, seed=11)
        agent = build_agent_for("gpt-4-w-shell", handle.context,
                                prob.task_type, seed=11)
        handle.bind_agent(agent, name="gpt-4-w-shell")
        result = handle.run_sync(max_steps=12)
        assert result["pid"] == pid
        assert isinstance(result["success"], bool)
        assert result["steps"] >= 1
        assert prob.armed is not None, "timeline must be armed"
        orch.release(handle)

    def test_timeline_fires_during_session(self):
        """The environment changes *while the agent works* — the dynamic
        property the scenarios exist to exercise."""
        orch = Orchestrator(seed=0)
        prob = get_problem("flapping_network_loss_hotel_res-detection-1")
        handle = orch.create_session(prob, seed=11)
        started = handle.env.clock.now
        agent = build_agent_for("flash", handle.context, prob.task_type,
                                seed=11)
        handle.bind_agent(agent, name="flash")
        handle.run_sync(max_steps=12)
        fired_during_session = [t for t, _ in prob.armed.log if t > started]
        assert fired_during_session, \
            "at least one timeline entry must fire mid-session"
        orch.release(handle)

    def test_recover_fault_stops_and_cleans(self):
        prob = get_problem("delayed_revoke_auth_hotel_res-detection-1")
        env = prob.create_environment(seed=4)
        prob.start_workload(env)
        prob.inject_fault(env)
        assert prob.armed.pending == 1
        prob.recover_fault(env)
        assert prob.armed.pending == 0
        env.advance(60.0)
        assert prob.armed.log == []
        assert env.probe_error_rate(10.0) == 0.0
        env.close()

    def test_delayed_onset_healthy_at_session_start(self):
        prob = get_problem("delayed_revoke_auth_hotel_res-detection-1")
        env = prob.create_environment(seed=4)
        prob.start_workload(env)
        prob.inject_fault(env)     # soak 30s < 40s onset delay
        assert env.driver.stats.errors == 0
        env.advance(20.0)          # ...but it breaks shortly after
        assert env.driver.stats.errors > 0
        env.close()
