"""Scenario problems: scheduled-fault timelines end-to-end via sessions."""

import pytest

from repro.agents.registry import build_agent_for
from repro.core import Orchestrator
from repro.problems import (
    benchmark_pids,
    get_problem,
    list_problems,
    scenario_pids,
)


def run_session(prob, agent_name="gpt-4-w-shell", seed=11, max_steps=12):
    orch = Orchestrator(seed=0)
    handle = orch.create_session(prob, seed=seed)
    agent = build_agent_for(agent_name, handle.context, prob.task_type,
                            seed=seed)
    handle.bind_agent(agent, name=agent_name)
    result = handle.run_sync(max_steps=max_steps)
    orch.release(handle)
    return result


class TestScenarioRegistration:
    def test_at_least_nineteen_scenarios(self):
        assert len(scenario_pids()) >= 19

    def test_benchmark_set_untouched(self):
        assert len(benchmark_pids()) == 48
        assert not set(scenario_pids()) & set(benchmark_pids())

    def test_default_listing_excludes_scenarios(self):
        assert len(list_problems()) == 48
        with_scen = list_problems(include_scenarios=True)
        assert set(scenario_pids()) <= set(with_scen)

    def test_get_problem_resolves_scenarios(self):
        for pid in scenario_pids():
            prob = get_problem(pid)
            assert prob.pid == pid

    def test_scenario_shapes_present(self):
        pids = " ".join(scenario_pids())
        assert "delayed" in pids
        assert "flapping" in pids
        assert "cascade" in pids
        assert "load_triggered" in pids
        assert "chained" in pids
        assert "highrate" in pids
        assert "multi" in pids

    def test_at_least_four_multi_app_scenarios(self):
        multi = [p for p in scenario_pids() if "_multi_" in p]
        assert len(multi) >= 4
        assert any("highrate" in p for p in multi)

    def test_both_apps_covered(self):
        assert any("hotel_res" in p for p in scenario_pids())
        assert any("social_net" in p for p in scenario_pids())

    def test_at_least_two_load_triggered(self):
        assert sum("load_triggered" in p or "error_cascade" in p
                   for p in scenario_pids()) >= 2

    def test_at_least_two_high_rate_aggregate(self):
        high = [p for p in scenario_pids() if "highrate" in p]
        assert len(high) >= 2
        for pid in high:
            prob = get_problem(pid)
            assert prob.fidelity == "aggregate"
            assert prob.workload_rate >= 1000.0


class TestScenarioSessions:
    @pytest.mark.parametrize("pid", sorted(
        __import__("repro.problems", fromlist=["scenario_pids"])
        .scenario_pids()))
    def test_runs_end_to_end_via_create_session(self, pid):
        prob = get_problem(pid)
        result = run_session(prob)
        assert result["pid"] == pid
        assert isinstance(result["success"], bool)
        assert result["steps"] >= 1
        assert prob.armed is not None, "timeline must be armed"

    def test_timeline_fires_during_session(self):
        """The environment changes *while the agent works* — the dynamic
        property the scenarios exist to exercise."""
        orch = Orchestrator(seed=0)
        prob = get_problem("flapping_network_loss_hotel_res-detection-1")
        handle = orch.create_session(prob, seed=11)
        started = handle.env.clock.now
        agent = build_agent_for("flash", handle.context, prob.task_type,
                                seed=11)
        handle.bind_agent(agent, name="flash")
        handle.run_sync(max_steps=12)
        fired_during_session = [t for t, _ in prob.armed.log if t > started]
        assert fired_during_session, \
            "at least one timeline entry must fire mid-session"
        orch.release(handle)

    def test_recover_fault_stops_and_cleans(self):
        prob = get_problem("delayed_revoke_auth_hotel_res-detection-1")
        env = prob.create_environment(seed=4)
        prob.start_workload(env)
        prob.inject_fault(env)
        assert prob.armed.pending == 1
        prob.recover_fault(env)
        assert prob.armed.pending == 0
        env.advance(60.0)
        assert prob.armed.log == []
        assert env.probe_error_rate(10.0) == 0.0
        env.close()

    def test_delayed_onset_healthy_at_session_start(self):
        prob = get_problem("delayed_revoke_auth_hotel_res-detection-1")
        env = prob.create_environment(seed=4)
        prob.start_workload(env)
        prob.inject_fault(env)     # soak 30s < 40s onset delay
        assert env.driver.stats.errors == 0
        env.advance(20.0)          # ...but it breaks shortly after
        assert env.driver.stats.errors > 0
        env.close()


class TestConditionTriggeredScenarios:
    def test_load_triggered_fault_waits_for_the_burst(self):
        """The fault must not exist until traffic actually crosses the
        threshold — condition, not appointment."""
        prob = get_problem("load_triggered_network_loss_hotel_res-detection-1")
        env = prob.create_environment(seed=4)
        prob.start_workload(env)       # bursts [0,15) [45,60) ...
        prob.inject_fault(env)         # arms at t=30, soaks to t=60
        (t, desc), = prob.armed.log
        assert "NetworkLoss" in desc
        assert t == 50.0               # first scrape inside the t=45 burst
        assert env.driver.stats.errors > 0
        env.close()

    def test_error_cascade_second_fault_is_conditioned(self):
        """The pod failure fires only after the revoked auth has pushed
        the frontend error rate over threshold for the sustain window."""
        prob = get_problem("error_cascade_hotel_res-localization-1")
        env = prob.create_environment(seed=4)
        prob.start_workload(env)
        prob.inject_fault(env)
        times = dict((d, t) for t, d in prob.armed.log)
        root = times["inject RevokeAuth -> ['mongodb-geo']"]
        cascade = times["inject PodFailure -> ['recommendation']"]
        assert cascade >= root + 10.0  # at least the sustain window later
        env.close()

    def test_chained_relapse_anchors_to_firing_times(self):
        prob = get_problem("chained_loss_relapse_hotel_res-detection-1")
        env = prob.create_environment(seed=4)
        prob.start_workload(env)
        prob.inject_fault(env)
        env.advance(120.0)
        kinds = [d.split()[0] for _, d in prob.armed.log]
        times = [t for t, _ in prob.armed.log]
        assert kinds == ["inject", "recover", "inject"]
        assert times[1] == times[0] + 25.0
        assert times[2] == times[1] + 20.0
        env.close()

    def test_high_rate_aggregate_delivers_offered_load(self):
        """1000 rps is actually delivered (no per-tick cap) and grading
        sees the fault through aggregate telemetry."""
        prob = get_problem("highrate_revoke_auth_hotel_res-detection-1")
        env = prob.create_environment(seed=4)
        prob.start_workload(env)      # 30s warmup at 1000 rps
        assert env.driver.stats.requests == pytest.approx(30_000, abs=100)
        prob.inject_fault(env)
        env.advance(30.0)             # past the 40s onset
        assert env.driver.stats.errors > 0
        env.close()


class TestAggregateGradingAgreement:
    """Satellite: every scenario family's detection/localization grading
    must agree across execution fidelities on fixed seeds — the scenarios'
    signals are aggregate telemetry, so the batched tier grades the same
    incidents the per-request tier does."""

    #: (pid, fixed seed).  Outcomes are deterministic per (fidelity, seed);
    #: agreement is asserted on a pinned seed per family because the
    #: simulated agent reads observation *text*, and aggregate telemetry
    #: carries exemplar-sampled (not per-request) logs/traces — on some
    #: seeds that nudges the agent down a different-but-valid path.
    FAMILIES = [
        ("delayed_revoke_auth_hotel_res-detection-1", 11),
        ("flapping_network_loss_hotel_res-detection-1", 11),
        ("flapping_pod_failure_hotel_res-localization-1", 4),
        ("cascade_geo_outage_hotel_res-localization-1", 11),
        ("load_triggered_network_loss_hotel_res-detection-1", 11),
        ("error_cascade_hotel_res-localization-1", 11),
        ("chained_loss_relapse_hotel_res-detection-1", 11),
        ("delayed_scale_zero_social_net-detection-1", 11),
        ("flapping_misconfig_social_net-detection-1", 11),
        ("cascade_social_outage_social_net-localization-1", 11),
        ("load_triggered_scale_zero_social_net-localization-1", 11),
        # multi-app families (cross-app triggers; high-rate variant
        # excluded like the other highrate pids — the per-request tick
        # cap clips 1k+ rps offered load, and since PR 8 warns about it
        # loudly; those pids declare fidelity="aggregate" and have no
        # per-request tier to agree with)
        ("noisy_neighbor_multi_hotel_res-detection-1", 11),
        ("shared_backend_cascade_multi_hotel_res-localization-1", 11),
        ("cross_app_remediation_multi_social_net-detection-1", 11),
    ]

    @pytest.mark.parametrize("pid,seed", FAMILIES)
    def test_grading_agrees_across_fidelities(self, pid, seed):
        from repro.problems.scenarios import SCENARIO_FACTORIES
        results = {}
        for fidelity in ("per_request", "aggregate"):
            prob = SCENARIO_FACTORIES[pid]()
            prob.fidelity = fidelity
            results[fidelity] = run_session(prob, seed=seed)
        pr, ag = results["per_request"], results["aggregate"]
        assert pr["success"] == ag["success"]
        assert pr["steps"] == ag["steps"]


class TestMultiAppScenarios:
    """Scenarios hosted on a two-app CloudEnvironment: the trigger watches
    one app's telemetry, the fault lands in the other."""

    def test_noisy_neighbor_cross_app_wiring(self):
        prob = get_problem("noisy_neighbor_multi_hotel_res-detection-1")
        env = prob.create_environment(seed=4)
        assert len(env.apps) == 2
        prob.start_workload(env)
        prob.inject_fault(env)
        (t, desc), = prob.armed.log
        assert t == 50.0  # first scrape inside the neighbor's t=45 burst
        assert "@test-hotel-reservation" in desc
        # fault lives in the hotel app; the storming neighbor stays healthy
        env.advance(20.0)
        assert env.driver_for("test-hotel-reservation").stats.errors > 0
        assert env.driver_for("test-social-network").stats.errors == 0
        env.close()

    def test_remediation_loop_cycles(self):
        prob = get_problem("cross_app_remediation_multi_social_net-detection-1")
        env = prob.create_environment(seed=4)
        prob.start_workload(env)
        prob.inject_fault(env)
        env.advance(150.0)
        kinds = [d.split()[0] for _, d in prob.armed.log]
        assert kinds.count("inject") >= 2, "storm must re-trigger interference"
        assert kinds.count("recover") >= 2, "remediation must re-fire too"
        prob.recover_fault(env)
        assert prob.armed.pending == 0
        env.close()

    def test_description_introduces_both_namespaces(self):
        prob = get_problem("noisy_neighbor_multi_hotel_res-detection-1")
        env = prob.create_environment(seed=4)
        desc = prob.problem_description(env)
        # the primary namespace leads (scaffolds parse the first match)
        assert desc.index('namespace "test-hotel-reservation"') < \
            desc.index('namespace "test-social-network"')
        assert desc.rstrip().splitlines()[-1].startswith("Task:")
        env.close()

    def test_shared_backend_cascade_unfolds_in_order(self):
        prob = get_problem(
            "shared_backend_cascade_multi_hotel_res-localization-1")
        env = prob.create_environment(seed=4)
        prob.start_workload(env)
        prob.inject_fault(env)
        env.advance(60.0)
        times = {d.split()[1]: t for t, d in prob.armed.log}
        assert times["PodFailure"] == times["RevokeAuth"] + 30.0
        env.close()

    def test_highrate_variant_delivers_aggregate_load(self):
        prob = get_problem("highrate_noisy_neighbor_multi_hotel_res-detection-1")
        assert prob.fidelity == "aggregate"
        env = prob.create_environment(seed=4)
        prob.start_workload(env)
        assert env.driver.stats.requests == pytest.approx(30_000, abs=100)
        prob.inject_fault(env)
        env.advance(30.0)
        assert prob.armed.log, "cross-app trigger must fire at scale"
        assert env.driver.stats.errors > 0
        env.close()
