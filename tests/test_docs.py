"""Generated docs must match the registries they document.

`scripts/gen_docs.py` renders `docs/api/actions.md` from the `@action`
registry and `docs/scenarios.md` from the scenario pool; both are
committed.  This test (and the CI `docs-check` step, which runs
`gen_docs.py --check`) fails when either file is stale.
"""

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _gen_docs():
    spec = importlib.util.spec_from_file_location(
        "gen_docs", REPO / "scripts" / "gen_docs.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules["gen_docs"] = module
    spec.loader.exec_module(module)
    return module


class TestGeneratedDocs:
    def test_actions_reference_is_current(self):
        gen = _gen_docs()
        path = REPO / "docs" / "api" / "actions.md"
        assert path.exists(), "run: PYTHONPATH=src python scripts/gen_docs.py"
        assert path.read_text() == gen.render_actions_md(), \
            "docs/api/actions.md is stale — regenerate with scripts/gen_docs.py"

    def test_scenario_catalog_is_current(self):
        gen = _gen_docs()
        path = REPO / "docs" / "scenarios.md"
        assert path.exists(), "run: PYTHONPATH=src python scripts/gen_docs.py"
        assert path.read_text() == gen.render_scenarios_md(), \
            "docs/scenarios.md is stale — regenerate with scripts/gen_docs.py"

    def test_catalog_lists_every_scenario(self):
        from repro.problems import scenario_pids
        text = (REPO / "docs" / "scenarios.md").read_text()
        for pid in scenario_pids():
            assert f"`{pid}`" in text

    def test_readme_python_blocks_run(self):
        """Every ```python block in the README must execute end-to-end —
        the quickstart and multi-app examples are living documentation,
        not prose."""
        import re
        text = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert len(blocks) >= 3, "README lost its examples"
        for i, block in enumerate(blocks):
            exec(compile(block, f"<README block {i}>", "exec"), {})

    def test_actions_reference_covers_every_task_surface(self):
        from repro.core.aci import registry_for
        text = (REPO / "docs" / "api" / "actions.md").read_text()
        for task in ("detection", "localization", "analysis", "mitigation"):
            assert f"## {task} surface" in text
            for name in registry_for(task).names():
                assert f"`{name}`" in text
