"""Repeating triggers: ``FaultSchedule.every_crossing`` + ``MetricWatch.rearm``.

The first schedule shape built on watch re-arming: an armed metric entry
whose watch re-arms itself after each firing, with crossing semantics
(``require_clear``) so it fires once per threshold *crossing*, not once
per scrape while the signal stays high.  Covers the loop itself, the
repeat cap, cancellation mid-loop, and per-request/aggregate parity of
the firing times.
"""

import pytest

from repro.apps import HotelReservation
from repro.core import CloudEnvironment
from repro.faults import FaultSchedule, MetricAbove
from repro.faults.schedule import TimelineEntry
from repro.telemetry.watch import MetricWatch
from repro.workload import BurstRate

#: bursts [0,15), [45,60), [90,105), ... at 4× base — each burst is one
#: distinct crossing of a request-rate threshold between base and peak
BURSTY = dict(base=40.0, burst_factor=4.0, interval=45.0,
              burst_duration=15.0)


def bursty_env(seed=4, fidelity="per_request"):
    return CloudEnvironment(HotelReservation, seed=seed,
                            policy=BurstRate(**BURSTY), fidelity=fidelity)


def crossing_schedule(max_fires=0):
    return FaultSchedule.every_crossing(
        MetricAbove("frontend", "request_rate", 100.0),
        "NetworkLoss", ("search",), max_fires=max_fires)


class TestWatchRequireClear:
    def test_fires_once_per_crossing_not_per_scrape(self):
        w = MetricWatch("svc", "request_rate", 10.0, require_clear=True)
        fired = []
        w.callback = lambda: (fired.append(w.fired_at), w.rearm())
        # crossing 1: two satisfying scrapes → exactly one firing
        assert w.evaluate(5.0, 20.0) and not w.evaluate(10.0, 20.0)
        # still high → blocked until a clear scrape
        assert not w.evaluate(15.0, 30.0)
        # clear, then crossing 2
        assert not w.evaluate(20.0, 5.0)
        assert w.evaluate(25.0, 20.0)
        assert fired == [5.0, 25.0]
        assert w.fire_count == 2

    def test_sustain_window_restarts_each_crossing(self):
        w = MetricWatch("svc", "request_rate", 10.0, sustain_s=10.0,
                        require_clear=True)
        w.callback = w.rearm
        assert not w.evaluate(0.0, 20.0)
        assert w.evaluate(10.0, 20.0)          # sustained 10 s → fire 1
        assert not w.evaluate(15.0, 5.0)       # clear
        assert not w.evaluate(20.0, 20.0)      # sustain restarts...
        assert not w.evaluate(25.0, 20.0)
        assert w.evaluate(30.0, 20.0)          # ...and completes → fire 2
        assert w.fire_count == 2

    def test_plain_watch_unaffected(self):
        """Without require_clear a rearmed watch may re-fire while the
        signal is still past the threshold (every-satisfying-scrape)."""
        w = MetricWatch("svc", "request_rate", 10.0)
        w.callback = w.rearm
        assert w.evaluate(5.0, 20.0)
        assert w.evaluate(10.0, 20.0)
        assert w.fire_count == 2


class TestEveryCrossing:
    def test_entry_validation(self):
        with pytest.raises(ValueError, match="metric-triggered"):
            TimelineEntry(5.0, "inject", "NetworkLoss", ("search",),
                          repeat=0)
        with pytest.raises(ValueError, match="repeat must be >= 0"):
            TimelineEntry(MetricAbove("a", "error_rate", 1.0), "inject",
                          "NetworkLoss", ("search",), repeat=-1)

    def test_fires_once_per_burst(self):
        """Every 45 s burst crosses the threshold once; the entry fires
        exactly once per burst however many scrapes the burst spans."""
        env = bursty_env()
        armed = crossing_schedule().arm(env)
        env.advance(140.0)  # bursts [0,15), [45,60), [90,105), [135,140]
        times = [t for t, _ in armed.log]
        assert times == [5.0, 50.0, 95.0, 140.0]
        assert armed.watches[0].fire_count == 4
        assert armed.pending == 1  # the re-armed watch is live again
        env.close()

    def test_max_fires_caps_the_loop(self):
        env = bursty_env()
        armed = crossing_schedule(max_fires=2).arm(env)
        env.advance(200.0)
        assert len(armed.log) == 2
        assert armed.watches[0].fire_count == 2
        assert armed.pending == 0  # budget spent: watch not re-armed
        env.close()

    def test_cancel_mid_loop_stops_rearming(self):
        env = bursty_env()
        armed = crossing_schedule().arm(env)
        env.advance(60.0)
        fired = len(armed.log)
        assert fired >= 2
        armed.cancel_pending()
        assert armed.pending == 0
        env.advance(100.0)  # two more bursts — nothing may fire
        assert len(armed.log) == fired
        assert not armed.watches[0].pending
        assert env.collector.pending_watches() == []
        env.close()

    def test_inject_recover_loop_via_two_repeating_entries(self):
        """The auto-remediation composition: one repeating entry injects
        on load crossings, a second repeating entry recovers on the error
        crossings the first one causes."""
        env = bursty_env()
        armed = (FaultSchedule
                 .every_crossing(
                     MetricAbove("frontend", "request_rate", 100.0),
                     "NetworkLoss", ("search",))
                 .when(MetricAbove("frontend", "error_rate", 0.5,
                                   sustain_s=5.0),
                       "NetworkLoss", ("search",), kind="recover",
                       repeat=0)).arm(env)
        env.advance(120.0)
        kinds = [d.split()[0] for _, d in armed.log]
        assert kinds.count("inject") >= 2
        assert kinds.count("recover") >= 2
        # strict alternation: every recover follows its inject
        assert all(a != b for a, b in zip(kinds, kinds[1:]))
        env.close()


class TestRepeatingAggregateParity:
    """A repeating trigger must fire at the same simulated times (± one
    scrape interval) under per_request and aggregate fidelity — the
    rearmed watch stays attached to the queue, so aggregate spans never
    coalesce past its next possible evaluation."""

    def _fire_times(self, fidelity, seed):
        env = bursty_env(seed=seed, fidelity=fidelity)
        armed = crossing_schedule().arm(env)
        env.advance(140.0)
        times = [t for t, _ in armed.log]
        env.close()
        return times

    @pytest.mark.parametrize("seed", [0, 4, 9])
    def test_fire_times_within_one_scrape(self, seed):
        pr = self._fire_times("per_request", seed)
        ag = self._fire_times("aggregate", seed)
        assert len(pr) == len(ag) >= 3
        for a, b in zip(pr, ag):
            assert abs(a - b) <= 5.0  # the scrape interval
