"""FaultSchedule: timelines armed on the environment's event kernel."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import HotelReservation
from repro.core import CloudEnvironment
from repro.faults import FaultSchedule, resolve_fault_spec
from repro.workload import BurstRate, ConstantRate


@pytest.fixture
def env():
    return CloudEnvironment(HotelReservation, seed=1, workload_rate=30)


class TestResolveFaultSpec:
    def test_by_name_number_and_key(self):
        assert resolve_fault_spec("RevokeAuth").fault_key == "revoke_auth"
        assert resolve_fault_spec(3).fault_key == "revoke_auth"
        assert resolve_fault_spec("revoke_auth").name == "RevokeAuth"

    def test_unknown_fault_raises(self):
        with pytest.raises(KeyError):
            resolve_fault_spec("NoSuchFault")


class TestBuilders:
    def test_delayed(self):
        s = FaultSchedule.delayed("RevokeAuth", ("mongodb-geo",), 45.0)
        assert [(e.at, e.kind) for e in s.entries] == [(45.0, "inject")]
        assert s.duration == 45.0

    def test_flapping_shape(self):
        s = FaultSchedule.flapping("NetworkLoss", ("search",), start=5.0,
                                   period=30.0, on_for=15.0, cycles=3)
        assert [(e.at, e.kind) for e in s.entries] == [
            (5.0, "inject"), (20.0, "recover"),
            (35.0, "inject"), (50.0, "recover"),
            (65.0, "inject"), (80.0, "recover"),
        ]

    def test_flapping_validation(self):
        with pytest.raises(ValueError, match="on_for"):
            FaultSchedule.flapping("NetworkLoss", ("search",),
                                   period=10.0, on_for=10.0)
        with pytest.raises(ValueError, match="cycles"):
            FaultSchedule.flapping("NetworkLoss", ("search",), cycles=0)

    def test_cascade_orders_entries(self):
        s = FaultSchedule.cascade([
            (50.0, "PodFailure", ("recommendation",)),
            (10.0, "RevokeAuth", ("mongodb-geo",)),
        ])
        assert [e.at for e in s.entries] == [10.0, 50.0]

    def test_unknown_fault_fails_at_build_time(self):
        with pytest.raises(KeyError):
            FaultSchedule().inject(1.0, "Bogus", ("x",))

    def test_injectorless_fault_fails_at_build_time(self):
        with pytest.raises(ValueError, match="no injector"):
            FaultSchedule().inject(1.0, "Noop", ("geo",))

    def test_prebuilt_entries_validated_in_init(self):
        from repro.faults import TimelineEntry
        with pytest.raises(KeyError):
            FaultSchedule([TimelineEntry(5.0, "inject", "RevokeAuht",
                                         ("mongodb-geo",))])
        with pytest.raises(ValueError, match="unknown timeline kind"):
            FaultSchedule([TimelineEntry(5.0, "explode", "RevokeAuth",
                                         ("mongodb-geo",))])
        with pytest.raises(ValueError, match=">= 0"):
            FaultSchedule([TimelineEntry(-5.0, "inject", "RevokeAuth",
                                         ("mongodb-geo",))])

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultSchedule().set_rate(-1.0, ConstantRate(0.0))


class TestArmedSchedule:
    def test_delayed_onset_fires_mid_run(self, env):
        armed = FaultSchedule.delayed("RevokeAuth", ("mongodb-geo",),
                                      20.0).arm(env)
        env.advance(10.0)
        assert env.driver.stats.errors == 0
        assert armed.pending == 1
        env.advance(30.0)
        assert armed.pending == 0
        assert env.driver.stats.errors > 0
        assert armed.log and armed.log[0][0] == 20.0

    def test_flapping_injects_and_recovers(self, env):
        armed = FaultSchedule.flapping(
            "RevokeAuth", ("mongodb-geo",), start=5.0, period=20.0,
            on_for=10.0, cycles=2).arm(env)
        env.advance(60.0)
        kinds = [d.split()[0] for _, d in armed.log]
        assert kinds == ["inject", "recover", "inject", "recover"]
        # fault off at the end: fresh traffic succeeds again
        assert env.probe_error_rate(10.0) == 0.0

    def test_cascade_two_stages(self, env):
        armed = FaultSchedule.cascade([
            (5.0, "RevokeAuth", ("mongodb-geo",)),
            (15.0, "PodFailure", ("recommendation",)),
        ]).arm(env)
        env.advance(10.0)
        assert len(armed.log) == 1
        env.advance(10.0)
        assert len(armed.log) == 2
        pods = [p for p in env.cluster.pods_in(env.namespace)
                if p.owner == "recommendation"]
        assert pods and all(p.crash_looping for p in pods)

    def test_set_rate_swaps_policy_at_time(self, env):
        burst = BurstRate(base=30.0)
        FaultSchedule().set_rate(12.0, burst).arm(env)
        env.advance(10.0)
        assert env.driver.policy is not burst
        env.advance(5.0)
        assert env.driver.policy is burst

    def test_cancel_pending_stops_timeline(self, env):
        armed = FaultSchedule.delayed("RevokeAuth", ("mongodb-geo",),
                                      20.0).arm(env)
        armed.cancel_pending()
        env.advance(40.0)
        assert armed.log == []
        assert env.driver.stats.errors == 0

    def test_recover_all_undoes_live_injections(self, env):
        armed = FaultSchedule.delayed("RevokeAuth", ("mongodb-geo",),
                                      5.0).arm(env)
        env.advance(10.0)
        assert env.driver.stats.errors > 0
        armed.recover_all()
        assert env.probe_error_rate(10.0) == 0.0

    def test_relative_to_arm_time(self, env):
        env.advance(30.0)
        armed = FaultSchedule.delayed("RevokeAuth", ("mongodb-geo",),
                                      10.0).arm(env)
        env.advance(20.0)
        assert armed.log[0][0] == 40.0

    def test_zero_rate_fast_forward_still_fires_timeline(self):
        """Timeline events land inside fast-forwarded idle spans."""
        env = CloudEnvironment(HotelReservation, seed=1,
                               policy=ConstantRate(0.0))
        armed = FaultSchedule.delayed("RevokeAuth", ("mongodb-geo",),
                                      333.3).arm(env)
        env.advance(1000.0)
        assert [t for t, _ in armed.log] == [333.3]

    def test_infinite_horizon_hint(self):
        assert ConstantRate(0.0).zero_until(0.0) == math.inf
        assert ConstantRate(10.0).zero_until(0.0) is None


class TestTriggers:
    """The trigger layer: entries fire on conditions, not just clocks."""

    def test_float_coerces_to_attime(self):
        from repro.faults import AtTime, TimelineEntry
        e = TimelineEntry(5.0, "inject", "RevokeAuth", ("mongodb-geo",))
        assert e.trigger == AtTime(5.0)
        assert e.at == 5.0

    def test_metric_entry_has_no_at(self):
        from repro.faults import FaultSchedule, MetricAbove
        s = FaultSchedule().when(MetricAbove("frontend", "error_rate", 2.0),
                                 "RevokeAuth", ("mongodb-geo",))
        assert s.entries[0].at is None
        assert s.duration == 0.0  # no a-priori fire time

    def test_when_rejects_set_rate(self):
        from repro.faults import FaultSchedule, MetricAbove
        with pytest.raises(ValueError, match="inject/recover"):
            FaultSchedule().when(MetricAbove("f", "error_rate", 1.0),
                                 "RevokeAuth", ("x",), kind="set_rate")

    def test_trigger_validation(self):
        from repro.faults import AfterEvent, MetricAbove
        with pytest.raises(ValueError, match=">= 0"):
            MetricAbove("f", "error_rate", 1.0, sustain_s=-1.0)
        with pytest.raises(ValueError, match="tag"):
            AfterEvent("")
        with pytest.raises(ValueError, match=">= 0"):
            AfterEvent("x", delay=-1.0)
        with pytest.raises(TypeError, match="Trigger"):
            from repro.faults import as_trigger
            as_trigger("soon")

    def test_duplicate_tag_rejected(self):
        from repro.faults import FaultSchedule
        s = FaultSchedule().inject(1.0, "RevokeAuth", ("a",), tag="t")
        with pytest.raises(ValueError, match="duplicate"):
            s.inject(2.0, "RevokeAuth", ("b",), tag="t")

    def test_unknown_watch_service_rejected_at_arm(self, env):
        """A typo'd service would otherwise never be evaluated (the
        collector can't tell 'not scraped yet' from 'does not exist')."""
        from repro.faults import FaultSchedule, MetricAbove
        s = FaultSchedule().when(MetricAbove("frontned", "error_rate", 1.0),
                                 "RevokeAuth", ("mongodb-geo",))
        with pytest.raises(ValueError, match="unknown service"):
            s.arm(env)

    def test_unknown_watch_metric_rejected_at_arm(self, env):
        from repro.faults import FaultSchedule, MetricAbove
        s = FaultSchedule().when(MetricAbove("frontend", "p99", 1.0),
                                 "RevokeAuth", ("mongodb-geo",))
        with pytest.raises(ValueError, match="unknown metric"):
            s.arm(env)

    def test_unknown_after_tag_rejected_at_arm(self, env):
        from repro.faults import FaultSchedule
        s = FaultSchedule().after("ghost", "RevokeAuth", ("mongodb-geo",))
        with pytest.raises(ValueError, match="unknown tag"):
            s.arm(env)

    def test_after_cycle_rejected_at_arm(self, env):
        from repro.faults import FaultSchedule
        s = (FaultSchedule()
             .after("b", "RevokeAuth", ("mongodb-geo",), new_tag="a")
             .after("a", "PodFailure", ("recommendation",), new_tag="b"))
        with pytest.raises(ValueError, match="cycle"):
            s.arm(env)

    def test_metric_trigger_fires_at_scrape(self, env):
        """Error-rate watch trips one scrape after the root fault lands."""
        from repro.faults import FaultSchedule, MetricAbove
        armed = (FaultSchedule()
                 .inject(8.0, "RevokeAuth", ("mongodb-geo",))
                 .when(MetricAbove("frontend", "error_rate", 1.0),
                       "PodFailure", ("recommendation",))
                 ).arm(env)
        assert armed.pending == 2
        assert env.queue.pending_watch_count == 1
        env.advance(30.0)
        times = dict((d, t) for t, d in armed.log)
        assert times["inject PodFailure -> ['recommendation']"] == 10.0
        assert env.queue.pending_watch_count == 0

    def test_after_event_chains_off_metric_trigger(self, env):
        """AfterEvent anchors to the upstream entry's *firing*, even when
        that firing time was decided by a metric watch."""
        from repro.faults import FaultSchedule, MetricAbove
        armed = (FaultSchedule()
                 .inject(8.0, "RevokeAuth", ("mongodb-geo",))
                 .when(MetricAbove("frontend", "error_rate", 1.0),
                       "PodFailure", ("recommendation",), tag="cascade")
                 .after("cascade", "NetworkLoss", ("search",), delay=7.5)
                 ).arm(env)
        env.advance(40.0)
        times = dict((d, t) for t, d in armed.log)
        assert times["inject PodFailure -> ['recommendation']"] == 10.0
        assert times["inject NetworkLoss -> ['search']"] == 17.5

    def test_cancel_pending_cancels_watches_and_chains(self, env):
        from repro.faults import FaultSchedule, MetricAbove
        armed = (FaultSchedule()
                 .inject(8.0, "RevokeAuth", ("mongodb-geo",), tag="root")
                 .when(MetricAbove("frontend", "error_rate", 1.0),
                       "PodFailure", ("recommendation",))
                 .after("root", "NetworkLoss", ("search",), delay=100.0)
                 ).arm(env)
        env.advance(3.0)          # nothing fired yet
        armed.cancel_pending()
        assert armed.pending == 0
        assert env.queue.pending_watch_count == 0
        env.advance(60.0)
        assert armed.log == []
        assert env.driver.stats.errors == 0

class TestTimelineValidationProperties:
    """Property: arm-time validation rejects *every* invalid timeline
    the scenario generator's template space could express — unknown
    AfterEvent tags, trigger cycles of any length, negative
    delays/offsets/sustains — each with a clear error message.
    ``FaultSchedule.validate()`` runs the same checks env-free."""

    TAGS = ("t0", "t1", "t2", "t3")

    @given(known=st.lists(st.sampled_from(TAGS), unique=True,
                          min_size=0, max_size=4),
           delay=st.floats(min_value=0.0, max_value=60.0,
                           allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_unknown_after_tag_always_rejected(self, known, delay):
        s = FaultSchedule()
        for i, tag in enumerate(known):
            s.inject(float(i + 1), "RevokeAuth", ("mongodb-geo",), tag=tag)
        s.after("ghost", "PodFailure", ("recommendation",), delay=delay)
        with pytest.raises(ValueError, match="unknown tag 'ghost'"):
            s.validate()

    @given(length=st.integers(min_value=1, max_value=4),
           extra_valid=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_cycles_of_any_length_rejected(self, length, extra_valid):
        """Self-cycles (length 1) through 4-hop loops all fail, even when
        valid entries surround the cycle."""
        s = FaultSchedule()
        if extra_valid:
            s.inject(1.0, "RevokeAuth", ("mongodb-geo",), tag="root")
            s.after("root", "NetworkLoss", ("search",), delay=5.0)
        for j in range(length):
            s.after(f"c{(j + 1) % length}", "RevokeAuth", ("mongodb-geo",),
                    delay=1.0, new_tag=f"c{j}")
        with pytest.raises(ValueError, match="cycle"):
            s.validate()

    @given(bad=st.floats(max_value=-1e-6, min_value=-1e6,
                         allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_negative_times_rejected_at_construction(self, bad):
        """Negative offsets/delays/sustains never even reach arm(): the
        trigger layer rejects them when the timeline is built."""
        from repro.faults import AfterEvent, MetricAbove
        with pytest.raises(ValueError, match=">= 0"):
            FaultSchedule().inject(bad, "RevokeAuth", ("mongodb-geo",))
        with pytest.raises(ValueError, match=">= 0"):
            FaultSchedule().set_rate(bad, ConstantRate(10.0))
        with pytest.raises(ValueError, match=">= 0"):
            AfterEvent("x", delay=bad)
        with pytest.raises(ValueError, match=">= 0"):
            MetricAbove("frontend", "error_rate", 1.0, sustain_s=bad)

    @given(tags=st.lists(st.sampled_from(TAGS), unique=True,
                         min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_valid_chains_pass_and_validate_chains(self, tags):
        """Acyclic tag chains validate; validate() returns the schedule
        so it composes with arm()."""
        s = FaultSchedule()
        s.inject(1.0, "RevokeAuth", ("mongodb-geo",), tag=tags[0])
        for up, down in zip(tags, tags[1:]):
            s.after(up, "RevokeAuth", ("mongodb-geo",), delay=2.0,
                    new_tag=down)
        assert s.validate() is s


class TestSustainedTrigger:
    def test_sustained_trigger_holds_out_for_window(self, env):
        from repro.faults import FaultSchedule, MetricAbove
        armed = (FaultSchedule()
                 .inject(8.0, "RevokeAuth", ("mongodb-geo",))
                 .when(MetricAbove("frontend", "error_rate", 1.0,
                                   sustain_s=10.0),
                       "PodFailure", ("recommendation",))
                 ).arm(env)
        env.advance(40.0)
        times = dict((d, t) for t, d in armed.log)
        # satisfied from the t=10 scrape on; 10s sustain -> fires at t=20
        assert times["inject PodFailure -> ['recommendation']"] == 20.0
