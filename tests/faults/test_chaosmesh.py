import pytest

from repro.faults import ChaosMesh, NetworkChaos, PodChaos
from repro.simcore import InvalidAction


class TestNetworkChaos:
    def test_apply_sets_loss(self, hotel):
        chaos = ChaosMesh(hotel.app)
        chaos.apply(NetworkChaos("nl", ["search"], loss=0.5))
        assert hotel.runtime.network_loss["search"] == 0.5

    def test_delete_clears_loss(self, hotel):
        chaos = ChaosMesh(hotel.app)
        chaos.apply(NetworkChaos("nl", ["search"]))
        chaos.delete("nl")
        assert "search" not in hotel.runtime.network_loss

    def test_invalid_loss_rejected(self):
        with pytest.raises(InvalidAction):
            NetworkChaos("nl", ["x"], loss=1.5)

    def test_duplicate_name_rejected(self, hotel):
        chaos = ChaosMesh(hotel.app)
        chaos.apply(NetworkChaos("nl", ["search"]))
        with pytest.raises(InvalidAction):
            chaos.apply(NetworkChaos("nl", ["geo"]))

    def test_delete_unknown_rejected(self, hotel):
        with pytest.raises(InvalidAction):
            ChaosMesh(hotel.app).delete("ghost")


class TestPodChaos:
    def test_apply_crashloops_pods(self, hotel):
        chaos = ChaosMesh(hotel.app)
        chaos.apply(PodChaos("pf", ["recommendation"]))
        pods = [p for p in hotel.cluster.pods_in(hotel.app.namespace)
                if p.owner == "recommendation"]
        assert pods and all(p.crash_looping for p in pods)

    def test_apply_records_backoff_event(self, hotel):
        ChaosMesh(hotel.app).apply(PodChaos("pf", ["recommendation"]))
        reasons = [e.reason for e in
                   hotel.cluster.events_in(hotel.app.namespace)]
        assert "BackOff" in reasons

    def test_service_unreachable_under_pod_chaos(self, hotel):
        ChaosMesh(hotel.app).apply(PodChaos("pf", ["recommendation"]))
        assert not hotel.cluster.service_reachable(
            hotel.app.namespace, "recommendation")

    def test_delete_restores(self, hotel):
        chaos = ChaosMesh(hotel.app)
        chaos.apply(PodChaos("pf", ["recommendation"]))
        chaos.delete("pf")
        assert hotel.cluster.service_reachable(
            hotel.app.namespace, "recommendation")
