"""Probabilistic flapping: ``fire_probability`` / ``jitter_s`` on
repeating metric entries — seeded, reproducible, and validated."""

import pytest

from repro.faults import FaultSchedule, MetricAbove
from repro.faults.schedule import TimelineEntry

from tests.faults.test_repeating import BURSTY, bursty_env


def flap_schedule(fire_probability=1.0, jitter_s=0.0):
    return FaultSchedule.every_crossing(
        MetricAbove("frontend", "request_rate", 100.0),
        "NetworkLoss", ("search",),
        fire_probability=fire_probability, jitter_s=jitter_s)


def run_flaps(seed, fire_probability, jitter_s=0.0, seconds=320.0):
    env = bursty_env(seed=seed)
    armed = flap_schedule(fire_probability, jitter_s).arm(env)
    env.advance(seconds)
    log = list(armed.log)
    env.close()
    return log


class TestEntryValidation:
    def test_flap_knobs_are_metric_only(self):
        with pytest.raises(ValueError, match="metric-triggered"):
            TimelineEntry(5.0, "inject", "NetworkLoss", ("search",),
                          fire_probability=0.5)
        with pytest.raises(ValueError, match="metric-triggered"):
            TimelineEntry(5.0, "inject", "NetworkLoss", ("search",),
                          jitter_s=2.0)

    def test_fire_probability_range(self):
        trig = MetricAbove("a", "error_rate", 1.0)
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="fire_probability"):
                TimelineEntry(trig, "inject", "NetworkLoss", ("search",),
                              fire_probability=bad)

    def test_jitter_nonnegative(self):
        trig = MetricAbove("a", "error_rate", 1.0)
        with pytest.raises(ValueError, match="jitter_s"):
            TimelineEntry(trig, "inject", "NetworkLoss", ("search",),
                          jitter_s=-1.0)


class TestFlapRngLifecycle:
    def test_plain_timeline_allocates_no_flap_stream(self):
        """Schedules without flapping entries must not create the stream —
        arming them stays RNG-free (the bit-identity contract)."""
        env = bursty_env()
        armed = flap_schedule().arm(env)
        assert armed._flap_rng is None
        env.close()

    def test_flapping_timeline_gets_a_seeded_stream(self):
        env = bursty_env()
        armed = flap_schedule(fire_probability=0.5).arm(env)
        assert armed._flap_rng is not None
        env.close()


class TestFlapDeterminism:
    def test_same_seed_identical_flap_history(self):
        """Skips and jitter delays replay exactly under the same seed —
        both RNG paths (bernoulli skip + uniform jitter) exercised."""
        a = run_flaps(seed=4, fire_probability=0.6, jitter_s=3.0)
        b = run_flaps(seed=4, fire_probability=0.6, jitter_s=3.0)
        assert a == b
        assert len(a) >= 5            # every crossing leaves a log entry

    def test_skips_are_logged_but_not_injected(self):
        log = run_flaps(seed=4, fire_probability=0.5)
        skipped = [d for _, d in log if "(crossing skipped)" in d]
        fired = [d for _, d in log if "(crossing skipped)" not in d]
        assert skipped, "p=0.5 over 8 crossings never skipped"
        assert fired, "p=0.5 over 8 crossings never fired"

    def test_different_seed_diverges(self):
        a = run_flaps(seed=4, fire_probability=0.5)
        b = run_flaps(seed=5, fire_probability=0.5)
        assert [d for _, d in a] != [d for _, d in b]

    def test_certain_fire_matches_plain_schedule(self):
        """fire_probability=1.0, jitter_s=0 takes the exact legacy path:
        same firing times as a schedule without the knobs."""
        plain = run_flaps(seed=4, fire_probability=1.0, seconds=140.0)
        assert [t for t, _ in plain] == [5.0, 50.0, 95.0, 140.0]


class TestJitter:
    def test_jitter_defers_off_the_scrape_grid(self):
        """Crossings are detected at 5 s scrapes; jitter moves the actual
        injection to a uniform offset past the crossing."""
        # 145 s, not 140: the t=140 crossing's jittered injection lands
        # up to 4 s past the crossing and must still fall in the window
        base = run_flaps(seed=4, fire_probability=1.0, seconds=145.0)
        jittered = run_flaps(seed=4, fire_probability=1.0, jitter_s=4.0,
                             seconds=145.0)
        base_times = [t for t, _ in base]
        jit_times = [t for t, _ in jittered]
        assert len(jit_times) == len(base_times)
        for b, j in zip(base_times, jit_times):
            assert b <= j < b + 4.0
        assert jit_times != base_times  # some delay actually drawn
