"""Property-style invariant: every fault breaks the system observably and
every recovery restores it — the precondition for all 48 problems being
solvable."""

import pytest

from repro.apps import HotelReservation, SocialNetwork
from repro.faults import (
    ApplicationFaultInjector, SymptomaticFaultInjector, VirtFaultInjector,
)
from tests.conftest import DeployedApp

CASES = [
    (HotelReservation, VirtFaultInjector, "auth_missing", "mongodb-rate"),
    (SocialNetwork, VirtFaultInjector, "misconfig_k8s", "user-service"),
    (SocialNetwork, VirtFaultInjector, "misconfig_k8s", "text-service"),
    (SocialNetwork, VirtFaultInjector, "misconfig_k8s", "post-storage-service"),
    (HotelReservation, ApplicationFaultInjector, "revoke_auth", "mongodb-geo"),
    (HotelReservation, ApplicationFaultInjector, "revoke_auth", "mongodb-profile"),
    (HotelReservation, ApplicationFaultInjector, "user_unregistered", "mongodb-user"),
    (HotelReservation, ApplicationFaultInjector, "user_unregistered",
     "mongodb-reservation"),
    (HotelReservation, ApplicationFaultInjector, "buggy_app_image", "geo"),
    (SocialNetwork, VirtFaultInjector, "scale_pod_zero", "compose-post-service"),
    (SocialNetwork, VirtFaultInjector, "assign_to_non_existent_node",
     "user-timeline-service"),
    (HotelReservation, SymptomaticFaultInjector, "network_loss", "search"),
    (HotelReservation, SymptomaticFaultInjector, "pod_failure", "recommendation"),
]


@pytest.mark.parametrize(
    "app_cls,inj_cls,fault,target",
    CASES,
    ids=[f"{fault}:{target}" for _, _, fault, target in CASES],
)
def test_fault_roundtrip(app_cls, inj_cls, fault, target):
    bundle = DeployedApp(app_cls, seed=11)
    injector = inj_cls(bundle.app)

    bundle.driver.run_events(10)
    baseline_errors = bundle.driver.stats.errors
    assert baseline_errors == 0, "system must be healthy before injection"

    injector._inject([target], fault)
    bundle.driver.run_events(20)
    fault_errors = bundle.driver.stats.errors - baseline_errors
    assert fault_errors > 0, f"{fault} on {target} produced no failures"

    injector._recover([target], fault)
    before = bundle.driver.stats.errors
    bundle.driver.run_events(10)
    assert bundle.driver.stats.errors == before, \
        f"{fault} on {target} still failing after recovery"
