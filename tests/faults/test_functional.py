import pytest

from repro.faults import ApplicationFaultInjector, VirtFaultInjector
from repro.simcore import InvalidAction


class TestTargetPortMisconfig:
    def test_inject_breaks_endpoints(self, social):
        inj = VirtFaultInjector(social.app)
        inj._inject(["user-service"], "misconfig_k8s")
        assert not social.cluster.service_reachable(
            social.app.namespace, "user-service")

    def test_recover_restores_original_port(self, social):
        inj = VirtFaultInjector(social.app)
        original = social.cluster.get_service(
            social.app.namespace, "user-service").ports[0].target_port
        inj._inject(["user-service"], "misconfig_k8s")
        inj._recover(["user-service"], "misconfig_k8s")
        svc = social.cluster.get_service(social.app.namespace, "user-service")
        assert svc.ports[0].target_port == original
        assert social.cluster.service_reachable(
            social.app.namespace, "user-service")

    def test_multiple_targets(self, social):
        inj = VirtFaultInjector(social.app)
        targets = ["user-service", "text-service"]
        inj._inject(targets, "misconfig_k8s")
        for t in targets:
            assert not social.cluster.service_reachable(social.app.namespace, t)


class TestScalePodZero:
    def test_inject_and_recover(self, social):
        inj = VirtFaultInjector(social.app)
        inj._inject(["compose-post-service"], "scale_pod_zero")
        dep = social.cluster.get_deployment(social.app.namespace,
                                            "compose-post-service")
        assert dep.replicas == 0
        inj._recover(["compose-post-service"], "scale_pod_zero")
        dep = social.cluster.get_deployment(social.app.namespace,
                                            "compose-post-service")
        assert dep.replicas == 1


class TestAssignNonExistentNode:
    def test_pods_go_pending(self, social):
        inj = VirtFaultInjector(social.app)
        inj._inject(["user-timeline-service"], "assign_to_non_existent_node")
        pods = [p for p in social.cluster.pods_in(social.app.namespace)
                if p.owner == "user-timeline-service"]
        assert pods and all(p.phase.value == "Pending" for p in pods)

    def test_recover_reschedules(self, social):
        inj = VirtFaultInjector(social.app)
        inj._inject(["user-timeline-service"], "assign_to_non_existent_node")
        inj._recover(["user-timeline-service"], "assign_to_non_existent_node")
        pods = [p for p in social.cluster.pods_in(social.app.namespace)
                if p.owner == "user-timeline-service"]
        assert pods and all(p.phase.value == "Running" for p in pods)


class TestAuthMissing:
    def test_inject_nullifies_helm_credentials(self, hotel):
        inj = VirtFaultInjector(hotel.app)
        inj._inject(["mongodb-rate"], "auth_missing")
        assert hotel.app.get_credentials("rate", "mongodb-rate") is None

    def test_recover_restores_credentials(self, hotel):
        inj = VirtFaultInjector(hotel.app)
        inj._inject(["mongodb-rate"], "auth_missing")
        inj._recover(["mongodb-rate"], "auth_missing")
        assert hotel.app.get_credentials("rate", "mongodb-rate") == \
            ("admin", "rate-pass")


class TestRevokeAuth:
    def test_inject_revokes_roles(self, hotel):
        inj = ApplicationFaultInjector(hotel.app)
        inj._inject(["mongodb-geo"], "revoke_auth")
        assert hotel.app.backends["mongodb-geo"].authorize("admin") == \
            "not_authorized"

    def test_recover_restores_saved_roles(self, hotel):
        inj = ApplicationFaultInjector(hotel.app)
        inj._inject(["mongodb-geo"], "revoke_auth")
        inj._recover(["mongodb-geo"], "revoke_auth")
        assert hotel.app.backends["mongodb-geo"].authorize("admin") == ""

    def test_non_mongo_target_rejected(self, hotel):
        inj = ApplicationFaultInjector(hotel.app)
        with pytest.raises(InvalidAction):
            inj._inject(["frontend"], "revoke_auth")


class TestUserUnregistered:
    def test_inject_drops_user(self, hotel):
        inj = ApplicationFaultInjector(hotel.app)
        inj._inject(["mongodb-user"], "user_unregistered")
        assert "admin" not in hotel.app.backends["mongodb-user"].users

    def test_recover_recreates_with_original_password(self, hotel):
        inj = ApplicationFaultInjector(hotel.app)
        inj._inject(["mongodb-user"], "user_unregistered")
        inj._recover(["mongodb-user"], "user_unregistered")
        backend = hotel.app.backends["mongodb-user"]
        assert backend.authenticate("admin", "user-pass") == ""


class TestBuggyAppImage:
    def test_inject_swaps_image(self, hotel):
        inj = ApplicationFaultInjector(hotel.app)
        inj._inject(["geo"], "buggy_app_image")
        dep = hotel.cluster.get_deployment(hotel.app.namespace, "geo")
        assert "buggy" in dep.template.containers[0].image

    def test_recover_restores_image(self, hotel):
        inj = ApplicationFaultInjector(hotel.app)
        original = hotel.cluster.get_deployment(
            hotel.app.namespace, "geo").template.containers[0].image
        inj._inject(["geo"], "buggy_app_image")
        inj._recover(["geo"], "buggy_app_image")
        dep = hotel.cluster.get_deployment(hotel.app.namespace, "geo")
        assert dep.template.containers[0].image == original


class TestInjectorDispatch:
    def test_unknown_fault_rejected(self, hotel):
        inj = VirtFaultInjector(hotel.app)
        with pytest.raises(InvalidAction):
            inj._inject(["x"], "no_such_fault")

    def test_undeployed_app_rejected(self):
        from repro.apps import HotelReservation
        with pytest.raises(InvalidAction):
            VirtFaultInjector(HotelReservation())

    def test_recover_all_unwinds_everything(self, hotel):
        inj = ApplicationFaultInjector(hotel.app)
        inj._inject(["mongodb-geo"], "revoke_auth")
        inj._inject(["mongodb-user"], "user_unregistered")
        inj.recover_all()
        assert hotel.app.backends["mongodb-geo"].authorize("admin") == ""
        assert "admin" in hotel.app.backends["mongodb-user"].users

    def test_live_records_track_state(self, hotel):
        inj = ApplicationFaultInjector(hotel.app)
        record = inj._inject(["mongodb-geo"], "revoke_auth")
        assert record.active
        inj._recover(["mongodb-geo"], "revoke_auth")
        assert not record.active
