import pytest

from repro.faults import FAULT_LIBRARY, get_fault_spec


class TestFaultLibrary:
    def test_table2_has_ten_rows(self):
        assert len(FAULT_LIBRARY) == 10

    def test_numbers_sequential(self):
        assert [s.number for s in FAULT_LIBRARY] == list(range(1, 11))

    def test_lookup_by_number_and_name(self):
        assert get_fault_spec(2).name == "TargetPortMisconfig"
        assert get_fault_spec("RevokeAuth").number == 3

    def test_lookup_missing(self):
        with pytest.raises(KeyError):
            get_fault_spec("NoSuchFault")

    def test_functional_faults_cover_all_levels(self):
        for n in range(1, 8):
            assert get_fault_spec(n).task_levels == (1, 2, 3, 4)

    def test_symptomatic_faults_limited_to_levels_1_2(self):
        """§3.3: symptomatic faults only instantiate detection and
        localization problems (no root cause to analyze or fix)."""
        for n in (8, 9):
            assert get_fault_spec(n).task_levels == (1, 2)

    def test_target_port_misconfig_has_three_social_targets(self):
        spec = get_fault_spec(2)
        assert spec.targets["SocialNetwork"] == (
            "user-service", "text-service", "post-storage-service")

    def test_every_fault_has_rca_ground_truth(self):
        for spec in FAULT_LIBRARY:
            if spec.injector != "none":
                assert spec.rca_system_level and spec.rca_fault_type

    def test_applications_valid(self):
        for spec in FAULT_LIBRARY:
            assert spec.application in ("HotelReservation", "SocialNetwork",
                                        "both")
