import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_problems_flags(self):
        args = build_parser().parse_args(
            ["list-problems", "--task", "detection", "--include-noop"])
        assert args.task == "detection" and args.include_noop


class TestCommands:
    def test_list_problems(self, capsys):
        assert main(["list-problems"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 48

    def test_list_problems_task_filter(self, capsys):
        main(["list-problems", "--task", "mitigation"])
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 11 and all("-mitigation-" in p for p in out)

    def test_show_pool(self, capsys):
        assert main(["show-pool"]) == 0
        out = capsys.readouterr().out
        assert "TargetPortMisconfig" in out and "# Problems" in out

    def test_run_problem_oracle(self, capsys, tmp_path):
        save = tmp_path / "traj.jsonl"
        rc = main(["run-problem", "revoke_auth_hotel_res-detection-1",
                   "--agent", "oracle", "--seed", "3",
                   "--save", str(save)])
        out = capsys.readouterr().out
        assert rc == 0 and "success: True" in out
        assert save.exists()

    def test_run_problem_failure_exit_code(self, capsys):
        rc = main(["run-problem", "revoke_auth_hotel_res-mitigation-1",
                   "--agent", "random", "--seed", "3", "--max-steps", "5"])
        assert rc == 1

    def test_run_benchmark_reduced(self, capsys):
        rc = main(["run-benchmark", "--agents", "oracle",
                   "--task", "detection", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0 and "Overall (Table 3)" in out

    def test_make_report_flags_parse(self):
        args = build_parser().parse_args(
            ["make-report", "--seed", "7", "-o", "out.md"])
        assert args.seed == 7 and args.output == "out.md"
