import numpy as np
import pytest

from repro.baselines import MKSMC, PDiagnose, RMLAD
from repro.faults import ApplicationFaultInjector, SymptomaticFaultInjector


class TestMKSMC:
    def test_fit_then_detect_healthy(self, hotel):
        hotel.driver.run_events(60)
        services = sorted(hotel.app.services)
        det = MKSMC(seed=0)
        det.fit(hotel.collector.metrics, services, until=40.0)
        verdict = det.detect(hotel.collector.metrics, services, since=40.0)
        assert verdict.threshold > 0
        assert verdict.score >= 0

    def test_detects_gross_resource_anomaly(self, hotel):
        hotel.driver.run_events(60)
        # fabricate a massive CPU spike on one service (overwrite the last
        # scrape so series stay aligned across services)
        hotel.collector.metrics.series("geo", "cpu_usage").values[-1] = 100000.0
        services = sorted(hotel.app.services)
        det = MKSMC(seed=0)
        det.fit(hotel.collector.metrics, services, until=40.0)
        verdict = det.detect(hotel.collector.metrics, services, since=40.0)
        assert verdict.anomalous

    def test_fit_without_data_rejected(self, hotel):
        det = MKSMC(seed=0)
        with pytest.raises(ValueError):
            det.fit(hotel.collector.metrics, sorted(hotel.app.services))

    def test_score_before_fit_rejected(self, hotel):
        with pytest.raises(RuntimeError):
            MKSMC().score(hotel.collector.metrics, ["a"])

    def test_monte_carlo_threshold_reproducible(self, hotel):
        hotel.driver.run_events(30)
        services = sorted(hotel.app.services)
        t1 = MKSMC(seed=5).fit(hotel.collector.metrics, services).threshold
        t2 = MKSMC(seed=5).fit(hotel.collector.metrics, services).threshold
        assert t1 == t2


class TestRMLAD:
    def test_ranks_log_anomalous_service_high(self, hotel):
        hotel.driver.run_events(30)
        ApplicationFaultInjector(hotel.app)._inject(["mongodb-geo"],
                                                    "revoke_auth")
        hotel.driver.run_events(30)
        result = RMLAD().localize(hotel.collector, hotel.app.namespace,
                                  healthy_until=30.0, observe_until=60.0)
        # geo's error logging explodes: it must rank in the top few
        assert "geo" in result.top(5)

    def test_scores_nonnegative(self, hotel):
        hotel.driver.run_events(40)
        result = RMLAD().localize(hotel.collector, hotel.app.namespace,
                                  healthy_until=20.0, observe_until=40.0)
        assert all(v >= 0 for v in result.scores.values())

    def test_top_k_bounds(self, hotel):
        hotel.driver.run_events(20)
        result = RMLAD().localize(hotel.collector, hotel.app.namespace,
                                  healthy_until=10.0, observe_until=20.0)
        assert len(result.top(3)) <= 3


class TestPDiagnose:
    def test_votes_combine_modalities(self, hotel):
        hotel.driver.run_events(30)
        SymptomaticFaultInjector(hotel.app)._inject(["recommendation"],
                                                    "pod_failure")
        hotel.driver.run_events(30)
        result = PDiagnose().localize(hotel.collector, hotel.app.namespace,
                                      since=30.0)
        assert result.ranking, "expected a non-empty ranking"
        assert all(v >= 0 for v in result.votes.values())

    def test_weights_respected(self, hotel):
        hotel.driver.run_events(30)
        zero = PDiagnose(kpi_weight=0, log_weight=0, trace_weight=0)
        result = zero.localize(hotel.collector, hotel.app.namespace, since=15.0)
        assert all(v == 0 for v in result.votes.values())


class TestBaselineSuiteRunner:
    def test_reduced_suite_row_shape(self):
        from repro.baselines import run_baseline_suite
        from repro.problems import list_problems
        row = run_baseline_suite("mksmc",
                                 pids=list_problems("detection")[:2], seed=1)
        assert row["task"] == "detection"
        assert 0.0 <= row["accuracy"] <= 1.0
        assert row["time_s"] >= 0

    def test_localizer_suite_reports_top1_and_top3(self):
        from repro.baselines import run_baseline_suite
        from repro.problems import list_problems
        row = run_baseline_suite("pdiagnose",
                                 pids=list_problems("localization")[:2], seed=1)
        assert row["accuracy@1"] <= row["accuracy"]

    def test_unknown_baseline(self):
        from repro.baselines import run_baseline_suite
        with pytest.raises(KeyError):
            run_baseline_suite("nope")
