"""The resource plane: capacity-aware scheduling, demand rollup, and the
pressure/overload curves — plus property tests for scheduling determinism."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kubesim import Cluster, NodeSpec, ResourcePlane
from repro.kubesim.objects import (
    Container, ContainerPort, Deployment, ObjectMeta, PodTemplate,
)
from repro.kubesim.resources import (
    QUANT_STEP,
    overload_probability,
    pressure_multiplier,
    quantize,
)
from repro.simcore import SimClock


def sized_deployment(name, cpu, mem=128.0, replicas=1, ns="default"):
    return Deployment(
        meta=ObjectMeta(name=name, namespace=ns),
        replicas=replicas,
        selector={"app": name},
        template=PodTemplate(
            labels={"app": name},
            containers=[Container(name, "img:latest", [ContainerPort(8080)],
                                  cpu_request=cpu, mem_request=mem)],
        ),
    )


class TestCurves:
    def test_pressure_flat_below_knee(self):
        for u in (0.0, 0.3, 0.69, 0.7):
            assert pressure_multiplier(u) == 1.0

    def test_pressure_quadratic_above_knee(self):
        assert pressure_multiplier(1.0) == pytest.approx(4.0)
        assert pressure_multiplier(0.85) == pytest.approx(1.75)

    def test_pressure_saturates(self):
        assert pressure_multiplier(1.3) == pytest.approx(13.0)
        assert pressure_multiplier(5.0) == pytest.approx(13.0)

    def test_overload_zero_below_knee(self):
        for u in (0.0, 0.5, 0.9):
            assert overload_probability(u) == 0.0

    def test_overload_linear_then_capped(self):
        assert overload_probability(1.05) == pytest.approx(0.25)
        assert overload_probability(1.2) == pytest.approx(0.5)
        assert overload_probability(2.0) == pytest.approx(0.5)

    def test_quantize(self):
        assert quantize(1.0) == 1.0
        assert quantize(1.02) == 1.0
        assert quantize(1.03) == 1.05
        assert quantize(0.49) == 0.5
        assert abs(quantize(3.14159) - 3.15) < 1e-9

    def test_quantize_keeps_small_jitter_invisible(self):
        """Two utilizations within half a step quantize identically —
        the property that keeps profile fingerprints quiet at steady
        state."""
        a = quantize(pressure_multiplier(0.800))
        b = quantize(pressure_multiplier(0.801))
        assert a == b
        assert round(a / QUANT_STEP) * QUANT_STEP == pytest.approx(a)


class TestCapacityScheduling:
    def test_node_specs_shape_the_pool(self):
        cluster = Cluster(clock=SimClock(), node_specs=[
            NodeSpec("big", cpu_capacity=16000.0),
            NodeSpec("small", cpu_capacity=500.0, mem_capacity=1024.0),
        ])
        assert set(cluster.nodes) == {"big", "small"}
        assert cluster.nodes["small"].cpu_capacity == 500.0
        assert cluster.nodes["small"].mem_capacity == 1024.0

    def test_pods_pack_within_requests(self):
        cluster = Cluster(clock=SimClock(), node_specs=[
            NodeSpec("node-0", cpu_capacity=1000.0),
        ])
        cluster.create_deployment(sized_deployment("web", cpu=400.0,
                                                   replicas=2))
        bound = [p for p in cluster.pods_in("default") if p.bound_node]
        assert len(bound) == 2

    def test_insufficient_cpu_leaves_pod_pending(self):
        cluster = Cluster(clock=SimClock(), node_specs=[
            NodeSpec("node-0", cpu_capacity=1000.0),
        ])
        cluster.create_deployment(sized_deployment("web", cpu=400.0,
                                                   replicas=3))
        pods = cluster.pods_in("default")
        pending = [p for p in pods if p.bound_node is None]
        assert len(pending) == 1
        msgs = [e.message for e in cluster.events
                if e.reason == "FailedScheduling"]
        assert any("Insufficient cpu" in m for m in msgs)

    def test_insufficient_memory_reported_distinctly(self):
        cluster = Cluster(clock=SimClock(), node_specs=[
            NodeSpec("node-0", cpu_capacity=32000.0, mem_capacity=256.0),
        ])
        cluster.create_deployment(sized_deployment("web", cpu=100.0,
                                                   mem=200.0, replicas=2))
        msgs = [e.message for e in cluster.events
                if e.reason == "FailedScheduling"]
        assert any("Insufficient memory" in m for m in msgs)

    def test_pending_pod_schedules_once_capacity_appears(self):
        cluster = Cluster(clock=SimClock(), node_specs=[
            NodeSpec("node-0", cpu_capacity=500.0),
        ])
        cluster.create_deployment(sized_deployment("web", cpu=400.0,
                                                   replicas=2))
        assert any(p.bound_node is None for p in cluster.pods_in("default"))
        cluster.add_node("node-1", cpu_capacity=500.0)
        cluster.reconcile()
        assert all(p.bound_node for p in cluster.pods_in("default"))

    def test_requests_spread_over_least_loaded_node(self):
        cluster = Cluster(clock=SimClock(), node_specs=[
            NodeSpec("a", cpu_capacity=1000.0),
            NodeSpec("b", cpu_capacity=1000.0),
        ])
        cluster.create_deployment(sized_deployment("web", cpu=300.0,
                                                   replicas=2))
        nodes = sorted(p.bound_node for p in cluster.pods_in("default"))
        assert nodes == ["a", "b"]


# an operation is (kind, deployment_index, amount)
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["scale", "delete_pod", "reconcile", "add_node"]),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=4),
    ),
    max_size=12,
)

#: per-deployment (cpu request, replicas) shapes for the determinism test
shapes_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),   # cpu request × 100 mcores
        st.integers(min_value=1, max_value=4),
    ),
    min_size=1, max_size=5,
)


def build_sized_cluster(shapes):
    cluster = Cluster(clock=SimClock(), seed=1, node_specs=[
        NodeSpec("n0", cpu_capacity=1200.0),
        NodeSpec("n1", cpu_capacity=1200.0),
    ])
    for i, (cpu, replicas) in enumerate(shapes):
        cluster.create_deployment(sized_deployment(
            f"svc{i}", cpu=100.0 * cpu, replicas=replicas))
    return cluster


def apply_op(cluster, op):
    kind, idx, amount = op
    name = f"svc{idx}"
    if kind == "scale":
        if ("default", name) in cluster.deployments:
            cluster.scale_deployment("default", name, amount)
    elif kind == "delete_pod":
        pods = [p for p in cluster.pods_in("default") if p.owner == name]
        if pods:
            cluster.delete_pod("default", pods[0].name)
    elif kind == "reconcile":
        cluster.reconcile()
    elif kind == "add_node":
        node = f"extra-{amount}"
        if node not in cluster.nodes:
            cluster.add_node(node, cpu_capacity=1200.0)


class TestSchedulingDeterminism:
    @given(shapes=shapes_strategy, ops=ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_same_history_same_placement(self, shapes, ops):
        """Two clusters fed the identical operation sequence bind every
        pod to the identical node — scheduling never depends on dict
        iteration order or hidden global state."""
        a, b = build_sized_cluster(shapes), build_sized_cluster(shapes)
        for op in ops:
            apply_op(a, op)
            apply_op(b, op)
        a.reconcile()
        b.reconcile()
        pa = {p.name: p.bound_node for p in a.pods_in("default")}
        pb = {p.name: p.bound_node for p in b.pods_in("default")}
        assert pa == pb

    @given(shapes=shapes_strategy, ops=ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_bound_requests_never_exceed_capacity(self, shapes, ops):
        """Whatever the history, the scheduler never overcommits a node's
        CPU or memory *requests* (usage may exceed; requests may not)."""
        cluster = build_sized_cluster(shapes)
        for op in ops:
            apply_op(cluster, op)
        cluster.reconcile()
        for node in cluster.nodes.values():
            cpu = sum(p.cpu_request() for p in cluster.pods.values()
                      if p.bound_node == node.name)
            mem = sum(p.mem_request() for p in cluster.pods.values()
                      if p.bound_node == node.name)
            assert cpu <= node.cpu_capacity
            assert mem <= node.mem_capacity


class _StubService:
    def __init__(self, busy):
        self.busy_mcores_per_rps = busy


class _StubRuntime:
    def __init__(self, namespace, services):
        self.namespace = namespace
        self.services = services


class TestRollup:
    def make_plane(self, coupled=True, capacity=1000.0):
        clock = SimClock()
        cluster = Cluster(clock=clock, node_specs=[
            NodeSpec("node-0", cpu_capacity=capacity),
        ])
        cluster.create_deployment(sized_deployment("web", cpu=100.0))
        plane = ResourcePlane(cluster, clock, coupled=coupled)
        plane.register_runtime(_StubRuntime(
            "default", {"web": _StubService(busy=2.0)}))
        return clock, cluster, plane

    def test_demand_is_rps_times_busy_time(self):
        clock, cluster, plane = self.make_plane()
        for _ in range(500):          # 500 requests over 5 s = 100 rps
            plane.account("default", "web")
        clock.advance(5.0)
        plane.rollup()
        # 100 rps × 2 mcores/rps = 200 mcores on a 1000-mcore node
        usage, = plane.node_usage()
        assert usage.used_mcores == pytest.approx(200.0)
        assert usage.cpu_utilization == pytest.approx(0.2)

    def test_pressure_published_only_when_coupled(self):
        for coupled in (True, False):
            clock, cluster, plane = self.make_plane(coupled=coupled,
                                                    capacity=1000.0)
            for _ in range(2500):     # 500 rps × 2 = 1000 mcores → U = 1.0
                plane.account("default", "web")
            clock.advance(5.0)
            plane.rollup()
            usage, = plane.node_usage()
            assert usage.cpu_utilization == pytest.approx(1.0)
            if coupled:
                assert plane.multiplier_for("default", "web") == \
                    pytest.approx(4.0)
                assert plane.overload_p("default", "web") > 0.0
            else:
                assert plane.multiplier_for("default", "web") == 1.0
                assert plane.overload_p("default", "web") == 0.0

    def test_fingerprint_bumps_only_on_regime_change(self):
        clock, cluster, plane = self.make_plane()
        assert plane.fingerprint("default") == 0
        # quiet rollups: no demand, no bump
        clock.advance(5.0)
        plane.rollup()
        assert plane.fingerprint("default") == 0
        # overload regime: bump
        for _ in range(2500):
            plane.account("default", "web")
        clock.advance(5.0)
        plane.rollup()
        v = plane.fingerprint("default")
        assert v == 1
        # same regime next window: no churn
        for _ in range(2500):
            plane.account("default", "web")
        clock.advance(5.0)
        plane.rollup()
        assert plane.fingerprint("default") == v
        # back to idle: bump again
        clock.advance(5.0)
        plane.rollup()
        assert plane.fingerprint("default") == v + 1

    def test_rollup_is_rng_free(self):
        """The plane draws no randomness — rolling up must not advance
        the cluster's RNG stream."""
        clock, cluster, plane = self.make_plane()
        before = cluster.rng.uniform(0.0, 1.0)
        clock2 = SimClock()
        cluster2 = Cluster(clock=clock2, node_specs=[
            NodeSpec("node-0", cpu_capacity=1000.0),
        ])
        cluster2.create_deployment(sized_deployment("web", cpu=100.0))
        plane2 = ResourcePlane(cluster2, clock2)
        plane2.register_runtime(_StubRuntime(
            "default", {"web": _StubService(busy=2.0)}))
        for _ in range(100):
            plane2.account("default", "web")
            clock2.advance(1.0)
            plane2.rollup()
        after = cluster2.rng.uniform(0.0, 1.0)
        assert before == after

    def test_utilization_of_divides_by_replicas_and_request(self):
        clock, cluster, plane = self.make_plane()
        for _ in range(250):          # 50 rps × 2 = 100 mcores demand
            plane.account("default", "web")
        clock.advance(5.0)
        plane.rollup()
        # one replica × 100 m request → 100 % of request
        assert plane.utilization_of("default", "web", 1) == pytest.approx(1.0)
        assert plane.utilization_of("default", "web", 2) == pytest.approx(0.5)
        assert plane.utilization_of("default", "web", 0) == 0.0

    def test_node_metrics_source_rows(self):
        clock, cluster, plane = self.make_plane()
        for _ in range(500):
            plane.account("default", "web")
        clock.advance(5.0)
        plane.rollup()
        rows = plane.kubectl_node_metrics_source()()
        (name, used, cpu_pct, mib, mem_pct, pods), = rows
        assert name == "node-0"
        assert used == pytest.approx(200.0)
        assert cpu_pct == pytest.approx(20.0)
        assert pods == 1
