import pytest

from repro.kubesim import Cluster
from repro.kubesim.objects import (
    ConfigMap, Container, ContainerPort, Deployment, ObjectMeta, PodTemplate,
    Secret, Service, ServicePort,
)
from repro.simcore import InvalidAction, ResourceNotFound, SimClock


def make_deployment(name="web", ns="default", replicas=2, port=8080,
                    image="img:latest", node_name=None):
    return Deployment(
        meta=ObjectMeta(name=name, namespace=ns),
        replicas=replicas,
        selector={"app": name},
        template=PodTemplate(
            labels={"app": name},
            containers=[Container(name, image, [ContainerPort(port)])],
            node_name=node_name,
        ),
    )


def make_service(name="web", ns="default", port=8080, target=None):
    return Service(
        meta=ObjectMeta(name=name, namespace=ns),
        selector={"app": name},
        ports=[ServicePort(port=port, target_port=target or port)],
    )


class TestNamespaces:
    def test_default_namespaces_exist(self, cluster):
        assert "default" in cluster.namespaces
        assert "kube-system" in cluster.namespaces

    def test_create_and_delete(self, cluster):
        cluster.create_namespace("app")
        assert "app" in cluster.namespaces
        cluster.delete_namespace("app")
        assert "app" not in cluster.namespaces

    def test_delete_namespace_removes_contents(self, cluster):
        cluster.create_namespace("app")
        cluster.create_deployment(make_deployment(ns="app"))
        cluster.delete_namespace("app")
        assert cluster.pods_in("app") == []
        assert cluster.deployments_in("app") == []

    def test_delete_missing_namespace(self, cluster):
        with pytest.raises(ResourceNotFound):
            cluster.delete_namespace("ghost")


class TestDeployments:
    def test_create_spawns_pods(self, cluster):
        cluster.create_deployment(make_deployment(replicas=3))
        assert len(cluster.pods_in("default")) == 3

    def test_pods_are_running_and_ready(self, cluster):
        cluster.create_deployment(make_deployment())
        for pod in cluster.pods_in("default"):
            assert pod.phase.value == "Running"
            assert pod.ready

    def test_pod_names_follow_deployment(self, cluster):
        cluster.create_deployment(make_deployment(name="api"))
        assert all(p.name.startswith("api-") for p in cluster.pods_in("default"))

    def test_duplicate_rejected(self, cluster):
        cluster.create_deployment(make_deployment())
        with pytest.raises(InvalidAction):
            cluster.create_deployment(make_deployment())

    def test_scale_up(self, cluster):
        cluster.create_deployment(make_deployment(replicas=1))
        cluster.scale_deployment("default", "web", 4)
        assert len(cluster.pods_in("default")) == 4

    def test_scale_down_to_zero(self, cluster):
        cluster.create_deployment(make_deployment(replicas=2))
        cluster.scale_deployment("default", "web", 0)
        assert cluster.pods_in("default") == []

    def test_scale_negative_rejected(self, cluster):
        cluster.create_deployment(make_deployment())
        with pytest.raises(InvalidAction):
            cluster.scale_deployment("default", "web", -1)

    def test_scale_missing_deployment(self, cluster):
        with pytest.raises(ResourceNotFound):
            cluster.scale_deployment("default", "ghost", 1)

    def test_delete_removes_pods(self, cluster):
        cluster.create_deployment(make_deployment())
        cluster.delete_deployment("default", "web")
        assert cluster.pods_in("default") == []

    def test_scaling_records_events(self, cluster):
        cluster.create_deployment(make_deployment())
        cluster.scale_deployment("default", "web", 5)
        reasons = [e.reason for e in cluster.events_in("default")]
        assert "ScalingReplicaSet" in reasons


class TestServicesAndEndpoints:
    def test_endpoints_track_ready_pods(self, cluster):
        cluster.create_deployment(make_deployment(replicas=2))
        cluster.create_service(make_service())
        ep = cluster.get_endpoints("default", "web")
        assert len(ep.addresses) == 2

    def test_service_reachable(self, cluster):
        cluster.create_deployment(make_deployment())
        cluster.create_service(make_service())
        assert cluster.service_reachable("default", "web")

    def test_target_port_mismatch_empties_endpoints(self, cluster):
        cluster.create_deployment(make_deployment(port=8080))
        cluster.create_service(make_service(port=8080, target=9999))
        assert not cluster.service_reachable("default", "web")

    def test_endpoints_follow_scale_to_zero(self, cluster):
        cluster.create_deployment(make_deployment())
        cluster.create_service(make_service())
        cluster.scale_deployment("default", "web", 0)
        assert not cluster.service_reachable("default", "web")

    def test_endpoints_recover_after_scale_up(self, cluster):
        cluster.create_deployment(make_deployment())
        cluster.create_service(make_service())
        cluster.scale_deployment("default", "web", 0)
        cluster.scale_deployment("default", "web", 2)
        assert cluster.service_reachable("default", "web")

    def test_crashlooping_pod_excluded_from_endpoints(self, cluster):
        cluster.create_deployment(make_deployment(replicas=1))
        cluster.create_service(make_service())
        for pod in cluster.pods_in("default"):
            pod.crash_looping = True
        cluster.reconcile()
        assert not cluster.service_reachable("default", "web")

    def test_delete_service_removes_endpoints(self, cluster):
        cluster.create_deployment(make_deployment())
        cluster.create_service(make_service())
        cluster.delete_service("default", "web")
        assert ("default", "web") not in cluster.endpoints

    def test_selector_mismatch_no_endpoints(self, cluster):
        cluster.create_deployment(make_deployment(name="web"))
        svc = make_service(name="other")
        svc.selector = {"app": "other"}
        cluster.create_service(svc)
        assert not cluster.service_reachable("default", "other")


class TestSchedulerBehaviour:
    def test_nonexistent_node_leaves_pending(self, cluster):
        cluster.create_deployment(make_deployment(node_name="node-404"))
        pods = cluster.pods_in("default")
        assert all(p.phase.value == "Pending" for p in pods)

    def test_nonexistent_node_records_warning_event(self, cluster):
        cluster.create_deployment(make_deployment(node_name="node-404"))
        warnings = [e for e in cluster.events_in("default")
                    if e.event_type == "Warning"]
        assert any("FailedScheduling" == e.reason for e in warnings)

    def test_existing_node_name_schedules(self, cluster):
        cluster.create_deployment(make_deployment(node_name="node-0"))
        assert all(p.phase.value == "Running"
                   for p in cluster.pods_in("default"))

    def test_adding_node_unblocks_pending(self, cluster):
        cluster.create_deployment(make_deployment(node_name="node-9"))
        cluster.add_node("node-9")
        cluster.reconcile()
        assert all(p.phase.value == "Running"
                   for p in cluster.pods_in("default"))

    def test_load_balances_across_nodes(self, cluster):
        cluster.add_node("node-1")
        cluster.create_deployment(make_deployment(replicas=4))
        nodes = {p.bound_node for p in cluster.pods_in("default")}
        assert nodes == {"node-0", "node-1"}


class TestReconcileIdempotence:
    def test_reconcile_converges(self, cluster):
        cluster.create_deployment(make_deployment(replicas=3))
        cluster.create_service(make_service())
        pods_before = sorted(p.name for p in cluster.pods_in("default"))
        for _ in range(5):
            cluster.reconcile()
        pods_after = sorted(p.name for p in cluster.pods_in("default"))
        assert pods_before == pods_after


class TestConfigMapsAndSecrets:
    def test_configmap_roundtrip(self, cluster):
        cluster.create_configmap(ConfigMap(
            meta=ObjectMeta("cfg", "default"), data={"k": "v"}))
        assert cluster.get_configmap("default", "cfg").data == {"k": "v"}

    def test_secret_roundtrip(self, cluster):
        cluster.create_secret(Secret(
            meta=ObjectMeta("sec", "default"), data={"password": "p"}))
        assert cluster.get_secret("default", "sec").data["password"] == "p"

    def test_missing_configmap(self, cluster):
        with pytest.raises(ResourceNotFound):
            cluster.get_configmap("default", "ghost")
