"""Property-based tests: the cluster's controllers maintain invariants
under arbitrary operation sequences."""

from hypothesis import given, settings, strategies as st

from repro.kubesim import Cluster
from repro.kubesim.objects import PodPhase
from repro.simcore import SimClock
from tests.kubesim.test_cluster import make_deployment, make_service

# an operation is (kind, deployment_index, amount)
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["scale", "delete_pod", "reconcile", "add_node"]),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=4),
    ),
    max_size=12,
)


def build_cluster() -> Cluster:
    cluster = Cluster(clock=SimClock(), seed=1)
    for i in range(3):
        cluster.create_deployment(
            make_deployment(name=f"svc{i}", replicas=2, port=8000 + i))
        cluster.create_service(make_service(name=f"svc{i}", port=8000 + i))
    return cluster


def apply(cluster: Cluster, op) -> None:
    kind, idx, amount = op
    name = f"svc{idx}"
    if kind == "scale":
        cluster.scale_deployment("default", name, amount)
    elif kind == "delete_pod":
        pods = [p for p in cluster.pods_in("default") if p.owner == name]
        if pods:
            cluster.delete_pod("default", pods[0].name)
    elif kind == "reconcile":
        cluster.reconcile()
    elif kind == "add_node":
        node = f"extra-node-{amount}"
        if node not in cluster.nodes:
            cluster.add_node(node)


class TestClusterInvariants:
    @given(ops=ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_pod_count_matches_replicas(self, ops):
        cluster = build_cluster()
        for op in ops:
            apply(cluster, op)
        cluster.reconcile()
        for dep in cluster.deployments_in("default"):
            pods = cluster.pods_for_deployment(dep)
            assert len(pods) == dep.replicas

    @given(ops=ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_endpoints_only_reference_ready_pods(self, ops):
        cluster = build_cluster()
        for op in ops:
            apply(cluster, op)
        cluster.reconcile()
        for (ns, name), ep in cluster.endpoints.items():
            pod_names = {p.name for p in cluster.pods_in(ns)
                         if p.ready and p.phase is PodPhase.RUNNING}
            for addr in ep.addresses:
                assert addr.pod_name in pod_names

    @given(ops=ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_reconcile_idempotent_after_any_sequence(self, ops):
        cluster = build_cluster()
        for op in ops:
            apply(cluster, op)
        cluster.reconcile()
        snapshot = sorted(cluster.pods)
        cluster.reconcile()
        assert sorted(cluster.pods) == snapshot

    @given(ops=ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_every_running_pod_is_bound_to_existing_node(self, ops):
        cluster = build_cluster()
        for op in ops:
            apply(cluster, op)
        cluster.reconcile()
        for pod in cluster.pods_in("default"):
            if pod.phase is PodPhase.RUNNING:
                assert pod.bound_node in cluster.nodes
