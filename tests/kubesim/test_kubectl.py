import pytest

from repro.kubesim import Cluster, Kubectl
from repro.kubesim.kubectl import format_age
from tests.kubesim.test_cluster import make_deployment, make_service


@pytest.fixture
def kubectl(cluster):
    cluster.create_namespace("app")
    cluster.create_deployment(make_deployment(name="web", ns="app", replicas=2))
    cluster.create_service(make_service(name="web", ns="app"))
    return Kubectl(cluster)


class TestFormatAge:
    def test_seconds(self):
        assert format_age(42) == "42s"

    def test_minutes(self):
        assert format_age(300) == "5m"

    def test_hours(self):
        assert format_age(7200) == "2h"

    def test_days(self):
        assert format_age(3 * 86400) == "3d"

    def test_negative_clamped(self):
        assert format_age(-5) == "0s"


class TestGet:
    def test_get_pods(self, kubectl):
        out = kubectl.run("kubectl get pods -n app")
        assert "NAME" in out and "Running" in out
        assert out.count("web-") == 2

    def test_get_pods_empty_namespace(self, kubectl, cluster):
        cluster.create_namespace("empty")
        out = kubectl.run("kubectl get pods -n empty")
        assert "No resources found" in out

    def test_get_pods_unknown_namespace(self, kubectl):
        out = kubectl.run("kubectl get pods -n ghost")
        assert "NotFound" in out

    def test_get_services(self, kubectl):
        out = kubectl.run("kubectl get svc -n app")
        assert "web" in out and "ClusterIP" in out

    def test_get_deployments(self, kubectl):
        out = kubectl.run("kubectl get deployments -n app")
        assert "2/2" in out

    def test_get_endpoints(self, kubectl):
        out = kubectl.run("kubectl get endpoints -n app")
        assert ":8080" in out

    def test_get_nodes(self, kubectl):
        out = kubectl.run("kubectl get nodes")
        assert "node-0" in out and "Ready" in out

    def test_get_namespaces(self, kubectl):
        out = kubectl.run("kubectl get ns")
        assert "app" in out and "default" in out

    def test_get_events(self, kubectl):
        out = kubectl.run("kubectl get events -n app")
        assert "SuccessfulCreate" in out or "Scheduled" in out

    def test_get_all_namespaces_flag(self, kubectl):
        out = kubectl.run("kubectl get pods -A")
        assert "NAMESPACE" in out

    def test_unknown_resource_type(self, kubectl):
        out = kubectl.run("kubectl get widgets -n app")
        assert "doesn't have a resource type" in out

    def test_unknown_verb(self, kubectl):
        out = kubectl.run("kubectl frobnicate")
        assert "unknown command" in out

    def test_named_pod(self, kubectl, cluster):
        pod = cluster.pods_in("app")[0]
        out = kubectl.run(f"kubectl get pod {pod.name} -n app")
        assert pod.name in out


class TestDescribe:
    def test_describe_pod(self, kubectl, cluster):
        pod = cluster.pods_in("app")[0]
        out = kubectl.run(f"kubectl describe pod {pod.name} -n app")
        assert "Status:" in out and "Events:" in out

    def test_describe_service_shows_target_port(self, kubectl):
        out = kubectl.run("kubectl describe service web -n app")
        assert "TargetPort:        8080/TCP" in out

    def test_describe_deployment_shows_image(self, kubectl):
        out = kubectl.run("kubectl describe deployment web -n app")
        assert "image=img:latest" in out

    def test_describe_missing(self, kubectl):
        out = kubectl.run("kubectl describe pod ghost -n app")
        assert "NotFound" in out


class TestMutations:
    def test_scale(self, kubectl, cluster):
        out = kubectl.run("kubectl scale deployment web --replicas=5 -n app")
        assert "scaled" in out
        assert len(cluster.pods_in("app")) == 5

    def test_scale_requires_replicas(self, kubectl):
        out = kubectl.run("kubectl scale deployment web -n app")
        assert "--replicas is required" in out

    def test_delete_pod(self, kubectl, cluster):
        pod = cluster.pods_in("app")[0].name
        out = kubectl.run(f"kubectl delete pod {pod} -n app")
        assert "deleted" in out
        # deployment controller replaces it
        assert len(cluster.pods_in("app")) == 2

    def test_patch_service_target_port(self, kubectl, cluster):
        patch = '{"spec":{"ports":[{"port":8080,"targetPort":9999}]}}'
        out = kubectl.run(f"kubectl patch service web -n app -p '{patch}'")
        assert "patched" in out
        assert not cluster.service_reachable("app", "web")

    def test_patch_invalid_json(self, kubectl):
        out = kubectl.run("kubectl patch service web -n app -p '{bad json'")
        assert "unable to parse" in out

    def test_set_image(self, kubectl, cluster):
        out = kubectl.run("kubectl set image deployment/web web=img:v2 -n app")
        assert "image updated" in out
        dep = cluster.get_deployment("app", "web")
        assert dep.template.containers[0].image == "img:v2"

    def test_set_image_recreates_pods(self, kubectl, cluster):
        before = {p.name for p in cluster.pods_in("app")}
        kubectl.run("kubectl set image deployment/web web=img:v2 -n app")
        after = {p.name for p in cluster.pods_in("app")}
        assert before.isdisjoint(after)

    def test_rollout_restart(self, kubectl, cluster):
        before = {p.name for p in cluster.pods_in("app")}
        out = kubectl.run("kubectl rollout restart deployment/web -n app")
        assert "restarted" in out
        assert before.isdisjoint({p.name for p in cluster.pods_in("app")})

    def test_rollout_status_healthy(self, kubectl):
        out = kubectl.run("kubectl rollout status deployment/web -n app")
        assert "successfully rolled out" in out

    def test_patch_deployment_node_name(self, kubectl, cluster):
        patch = '{"spec":{"template":{"spec":{"nodeName":"node-404"}}}}'
        kubectl.run(f"kubectl patch deployment web -n app -p '{patch}'")
        assert all(p.phase.value == "Pending" for p in cluster.pods_in("app"))

    def test_edit_not_supported(self, kubectl):
        out = kubectl.run("kubectl edit svc web")
        assert "not supported" in out

    def test_apply_explains_alternative(self, kubectl):
        out = kubectl.run("kubectl apply -f x.yaml")
        assert "imperative" in out


class TestLogsExecTop:
    def test_logs_uses_source(self, cluster):
        cluster.create_namespace("app")
        cluster.create_deployment(make_deployment(name="web", ns="app"))
        pod = cluster.pods_in("app")[0].name
        k = Kubectl(cluster, log_source=lambda ns, p, n: f"{ns}/{p} tail={n}")
        out = k.run(f"kubectl logs {pod} -n app --tail 7")
        assert out == f"app/{pod} tail=7"

    def test_logs_missing_pod(self, cluster):
        k = Kubectl(cluster)
        out = k.run("kubectl logs ghost -n default")
        assert "NotFound" in out

    def test_exec_routes_to_handler(self, cluster):
        cluster.create_namespace("app")
        cluster.create_deployment(make_deployment(name="db", ns="app"))
        pod = cluster.pods_in("app")[0].name
        k = Kubectl(cluster, exec_handler=lambda ns, p, argv: " ".join(argv))
        out = k.run(f"kubectl exec {pod} -n app -- mongo --eval x")
        assert out == "mongo --eval x"

    def test_exec_without_handler(self, cluster):
        cluster.create_namespace("app")
        cluster.create_deployment(make_deployment(name="db", ns="app"))
        pod = cluster.pods_in("app")[0].name
        out = Kubectl(cluster).run(f"kubectl exec {pod} -n app -- ls")
        assert "not available" in out

    def test_top_without_metrics(self, cluster):
        out = Kubectl(cluster).run("kubectl top pods -n default")
        assert "Metrics API not available" in out

    def test_empty_command(self, cluster):
        out = Kubectl(cluster).run("")
        assert "error" in out.lower()
