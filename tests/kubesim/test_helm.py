import pytest

from repro.kubesim import Cluster, Helm, HelmChart
from repro.kubesim.helm import ChartService, merge_values
from repro.simcore import InvalidAction, ResourceNotFound


@pytest.fixture
def chart():
    return HelmChart(
        name="demo",
        services=[
            ChartService(name="front", image="front:1", port=80),
            ChartService(name="db", image="db:1", port=5432, replicas=2),
        ],
        default_values={"auth": {"enabled": True}, "tag": "v1"},
    )


@pytest.fixture
def helm(cluster):
    return Helm(cluster)


class TestMergeValues:
    def test_override_scalar(self):
        assert merge_values({"a": 1}, {"a": 2}) == {"a": 2}

    def test_deep_merge(self):
        out = merge_values({"a": {"x": 1, "y": 2}}, {"a": {"y": 3}})
        assert out == {"a": {"x": 1, "y": 3}}

    def test_none_override_replaces_dict(self):
        out = merge_values({"a": {"x": 1}}, {"a": None})
        assert out == {"a": None}

    def test_dict_override_replaces_none(self):
        out = merge_values({"a": None}, {"a": {"x": 1}})
        assert out == {"a": {"x": 1}}

    def test_no_mutation_of_base(self):
        base = {"a": {"x": 1}}
        merge_values(base, {"a": {"x": 2}})
        assert base == {"a": {"x": 1}}

    def test_none_override_arg(self):
        assert merge_values({"a": 1}, None) == {"a": 1}


class TestInstall:
    def test_install_creates_objects(self, helm, chart, cluster):
        helm.install("rel", chart, "ns1")
        assert len(cluster.deployments_in("ns1")) == 2
        assert len(cluster.services_in("ns1")) == 2
        assert len(cluster.pods_in("ns1")) == 3  # 1 front + 2 db

    def test_install_creates_namespace(self, helm, chart, cluster):
        helm.install("rel", chart, "brand-new")
        assert "brand-new" in cluster.namespaces

    def test_values_merged_over_defaults(self, helm, chart):
        rel = helm.install("rel", chart, "ns1", values={"tag": "v2"})
        assert rel.values["tag"] == "v2"
        assert rel.values["auth"] == {"enabled": True}

    def test_duplicate_release_rejected(self, helm, chart):
        helm.install("rel", chart, "ns1")
        with pytest.raises(InvalidAction):
            helm.install("rel", chart, "ns1")

    def test_services_reachable_after_install(self, helm, chart, cluster):
        helm.install("rel", chart, "ns1")
        assert cluster.service_reachable("ns1", "front")
        assert cluster.service_reachable("ns1", "db")


class TestUpgrade:
    def test_upgrade_bumps_revision(self, helm, chart):
        helm.install("rel", chart, "ns1")
        rel = helm.upgrade("rel", values={"tag": "v3"})
        assert rel.revision == 2
        assert rel.values["tag"] == "v3"

    def test_upgrade_rerenders_pods(self, helm, chart, cluster):
        helm.install("rel", chart, "ns1")
        before = {p.name for p in cluster.pods_in("ns1")}
        helm.upgrade("rel")
        after = {p.name for p in cluster.pods_in("ns1")}
        assert before.isdisjoint(after) and len(after) == 3

    def test_upgrade_missing_release(self, helm):
        with pytest.raises(ResourceNotFound):
            helm.upgrade("ghost")


class TestUninstall:
    def test_uninstall_removes_objects(self, helm, chart, cluster):
        helm.install("rel", chart, "ns1")
        helm.uninstall("rel")
        assert cluster.deployments_in("ns1") == []
        assert cluster.pods_in("ns1") == []

    def test_uninstall_missing(self, helm):
        with pytest.raises(ResourceNotFound):
            helm.uninstall("ghost")
