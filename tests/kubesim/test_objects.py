from hypothesis import given, settings, strategies as st

from repro.kubesim.objects import (
    Container, ContainerPort, ObjectMeta, Pod, PodPhase,
)


class TestObjectMeta:
    def test_matches_empty_selector(self):
        assert ObjectMeta("x", labels={"a": "1"}).matches({})

    def test_matches_subset(self):
        meta = ObjectMeta("x", labels={"a": "1", "b": "2"})
        assert meta.matches({"a": "1"})

    def test_mismatch_value(self):
        assert not ObjectMeta("x", labels={"a": "1"}).matches({"a": "2"})

    def test_missing_key(self):
        assert not ObjectMeta("x", labels={}).matches({"a": "1"})

    label_st = st.dictionaries(
        st.text(min_size=1, max_size=5), st.text(min_size=1, max_size=5),
        max_size=4)

    @given(labels=label_st)
    @settings(max_examples=40)
    def test_labels_always_match_themselves(self, labels):
        assert ObjectMeta("x", labels=labels).matches(dict(labels))


class TestPod:
    def make(self, **kw):
        return Pod(meta=ObjectMeta("p1"),
                   containers=[Container("c", "img", [ContainerPort(80)])],
                   **kw)

    def test_container_ports(self):
        assert self.make().container_ports() == {80}

    def test_ready_display_not_ready(self):
        assert self.make().ready_display() == "0/1"

    def test_ready_display_ready(self):
        pod = self.make()
        pod.ready = True
        assert pod.ready_display() == "1/1"

    def test_status_display_phases(self):
        pod = self.make()
        pod.phase = PodPhase.RUNNING
        assert pod.status_display() == "Running"

    def test_status_display_crashloop_overrides(self):
        pod = self.make()
        pod.phase = PodPhase.RUNNING
        pod.crash_looping = True
        assert pod.status_display() == "CrashLoopBackOff"

    def test_status_display_terminating(self):
        pod = self.make()
        pod.deletion_requested = True
        assert pod.status_display() == "Terminating"

    def test_container_has_port(self):
        c = Container("c", "img", [ContainerPort(80), ContainerPort(443)])
        assert c.has_port(443) and not c.has_port(8080)
