import pytest
from hypothesis import given, settings, strategies as st

from repro.simcore import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=40))
    @settings(max_examples=50)
    def test_always_63_bit_nonnegative(self, seed, label):
        out = derive_seed(seed, label)
        assert 0 <= out < 2**63


class TestRngStream:
    def test_same_seed_same_sequence(self):
        a = RngStream(5, "x")
        b = RngStream(5, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_labels_differ(self):
        a = RngStream(5, "x")
        b = RngStream(5, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_child_streams_independent_of_parent_consumption(self):
        """Drawing from a parent must not shift its children (isolation)."""
        parent1 = RngStream(9, "p")
        child_before = parent1.child("c").random()
        parent2 = RngStream(9, "p")
        _ = [parent2.random() for _ in range(100)]
        child_after = parent2.child("c").random()
        assert child_before == child_after

    def test_bernoulli_bounds_validated(self):
        rng = RngStream(0, "t")
        with pytest.raises(ValueError):
            rng.bernoulli(1.5)

    def test_bernoulli_extremes(self):
        rng = RngStream(0, "t")
        assert all(rng.bernoulli(1.0) for _ in range(20))
        assert not any(rng.bernoulli(0.0) for _ in range(20))

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            RngStream(0, "t").choice([])

    def test_choice_returns_member(self):
        rng = RngStream(0, "t")
        seq = ["a", "b", "c"]
        assert all(rng.choice(seq) in seq for _ in range(20))

    def test_choice_weighted_degenerate(self):
        rng = RngStream(0, "t")
        assert all(rng.choice(["a", "b"], p=[0.0, 1.0]) == "b" for _ in range(10))

    def test_exponential_scale_validated(self):
        with pytest.raises(ValueError):
            RngStream(0, "t").exponential(0.0)

    def test_integers_range(self):
        rng = RngStream(0, "t")
        assert all(0 <= rng.integers(0, 5) < 5 for _ in range(100))

    def test_shuffle_preserves_elements(self):
        rng = RngStream(0, "t")
        out = rng.shuffle([1, 2, 3, 4])
        assert sorted(out) == [1, 2, 3, 4]

    def test_shuffle_does_not_mutate_input(self):
        rng = RngStream(0, "t")
        original = [1, 2, 3, 4]
        rng.shuffle(original)
        assert original == [1, 2, 3, 4]

    @given(st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=30)
    def test_lognormal_positive(self, scale):
        import math
        rng = RngStream(1, "t")
        assert rng.lognormal(math.log(scale), 0.5) > 0
