import pytest

from repro.simcore import SimClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_starts_at_custom_time(self):
        assert SimClock(start=42.5).now == 42.5

    def test_advance_moves_forward(self):
        clock = SimClock()
        assert clock.advance(3.0) == 3.0
        assert clock.now == 3.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now == 4.0

    def test_advance_zero_is_noop(self):
        clock = SimClock(start=5.0)
        clock.advance(0.0)
        assert clock.now == 5.0

    def test_advance_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError, match="negative"):
            clock.advance(-1.0)

    def test_advance_to_absolute(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_same_time_allowed(self):
        clock = SimClock(start=10.0)
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(9.0)
