import pytest

from repro.simcore import EventQueue, SimClock


@pytest.fixture
def queue():
    return EventQueue(SimClock())


class TestEventQueue:
    def test_schedule_and_run(self, queue):
        fired = []
        queue.schedule_at(5.0, lambda: fired.append("a"))
        assert queue.run_until(10.0) == 1
        assert fired == ["a"]

    def test_clock_ends_at_run_until_time(self, queue):
        queue.schedule_at(3.0, lambda: None)
        queue.run_until(10.0)
        assert queue.clock.now == 10.0

    def test_events_fire_in_time_order(self, queue):
        fired = []
        queue.schedule_at(5.0, lambda: fired.append("late"))
        queue.schedule_at(2.0, lambda: fired.append("early"))
        queue.run_until(10.0)
        assert fired == ["early", "late"]

    def test_same_time_fires_in_insertion_order(self, queue):
        fired = []
        for name in ("first", "second", "third"):
            queue.schedule_at(1.0, lambda n=name: fired.append(n))
        queue.run_until(1.0)
        assert fired == ["first", "second", "third"]

    def test_schedule_in_relative(self, queue):
        queue.clock.advance(4.0)
        ev = queue.schedule_in(2.0, lambda: None)
        assert ev.time == 6.0

    def test_schedule_in_past_rejected(self, queue):
        queue.clock.advance(5.0)
        with pytest.raises(ValueError, match="past"):
            queue.schedule_at(1.0, lambda: None)

    def test_cancelled_event_does_not_fire(self, queue):
        fired = []
        ev = queue.schedule_at(2.0, lambda: fired.append("x"))
        ev.cancel()
        assert queue.run_until(5.0) == 0
        assert fired == []

    def test_len_excludes_cancelled(self, queue):
        e1 = queue.schedule_at(1.0, lambda: None)
        queue.schedule_at(2.0, lambda: None)
        e1.cancel()
        assert len(queue) == 1

    def test_events_only_fire_within_window(self, queue):
        fired = []
        queue.schedule_at(1.0, lambda: fired.append("in"))
        queue.schedule_at(20.0, lambda: fired.append("out"))
        queue.run_until(10.0)
        assert fired == ["in"]
        assert queue.peek_time() == 20.0

    def test_step_advances_clock_to_event(self, queue):
        queue.schedule_at(7.0, lambda: None)
        ev = queue.step()
        assert ev is not None and queue.clock.now == 7.0

    def test_step_on_empty_returns_none(self, queue):
        assert queue.step() is None

    def test_event_scheduling_event(self, queue):
        """Events may schedule further events that fire in the same run."""
        fired = []
        def outer():
            fired.append("outer")
            queue.schedule_in(1.0, lambda: fired.append("inner"))
        queue.schedule_at(1.0, outer)
        queue.run_until(5.0)
        assert fired == ["outer", "inner"]

    def test_run_for_relative_window(self, queue):
        queue.clock.advance(10.0)
        fired = []
        queue.schedule_at(12.0, lambda: fired.append("x"))
        assert queue.run_for(5.0) == 1
        assert queue.clock.now == 15.0

    def test_cancel_after_fire_is_noop(self, queue):
        ev = queue.schedule_at(1.0, lambda: None)
        queue.run_until(2.0)
        assert ev.fired
        ev.cancel()          # must not corrupt the queue's bookkeeping
        assert not ev.cancelled
        assert len(queue) == 0


class TestWatchRegistry:
    """Watches: timeless pending conditions counted as queue activity."""

    def test_attach_and_resolve(self, queue):
        from repro.simcore import Watch
        w = Watch(label="w")
        queue.attach_watch(w)
        assert queue.pending_watch_count == 1
        assert w.pending
        w.resolve()
        assert w.fired and not w.pending
        assert queue.pending_watch_count == 0

    def test_cancel_detaches(self, queue):
        from repro.simcore import Watch
        w = queue.attach_watch(Watch())
        w.cancel()
        assert queue.pending_watch_count == 0
        w.cancel()   # idempotent
        w.resolve()  # resolving a cancelled watch is a no-op
        assert not w.fired

    def test_rearm_reregisters(self, queue):
        from repro.simcore import Watch
        w = queue.attach_watch(Watch())
        w.resolve()
        assert queue.pending_watch_count == 0
        w.rearm()
        assert w.pending
        assert queue.pending_watch_count == 1

    def test_attach_resolved_watch_rejected(self, queue):
        from repro.simcore import Watch
        w = Watch()
        w.resolve()
        with pytest.raises(ValueError, match="resolved watch"):
            queue.attach_watch(w)

    def test_watches_never_enter_next_active_time(self, queue):
        """Watches have no fire time; planners read pending_watch_count."""
        from repro.simcore import Watch
        queue.attach_watch(Watch())
        assert queue.next_active_time() is None


class TestCancellationCompaction:
    """Cancelled events must not accumulate in the heap forever."""

    def test_heap_compacts_when_cancelled_majority(self, queue):
        events = [queue.schedule_at(float(i + 1), lambda: None)
                  for i in range(100)]
        for ev in events[:60]:
            ev.cancel()
        # more than half the heap was cancelled -> it must have compacted
        # at least once (without compaction all 100 entries would remain)
        assert len(queue._heap) <= 50
        assert len(queue) == 40

    def test_small_heaps_skip_compaction(self, queue):
        events = [queue.schedule_at(float(i + 1), lambda: None)
                  for i in range(4)]
        for ev in events[:3]:
            ev.cancel()
        # under the compaction minimum the dead entries just wait for pops
        assert len(queue._heap) == 4
        assert len(queue) == 1

    def test_compaction_preserves_order_and_len(self, queue):
        fired = []
        events = [queue.schedule_at(float(i + 1), lambda i=i: fired.append(i))
                  for i in range(50)]
        for ev in events[::2]:       # cancel every even event
            ev.cancel()
        assert len(queue) == 25
        queue.run_until(100.0)
        assert fired == list(range(1, 50, 2))

    def test_repeated_cancel_counts_once(self, queue):
        events = [queue.schedule_at(float(i + 1), lambda: None)
                  for i in range(20)]
        for _ in range(5):
            events[0].cancel()
        assert len(queue) == 19

    def test_churny_timeline_stays_bounded(self, queue):
        """Schedule/cancel cycles (flapping timelines) keep the heap small."""
        for round_ in range(50):
            evs = [queue.schedule_at(round_ * 10.0 + i + 1, lambda: None)
                   for i in range(20)]
            for ev in evs:
                ev.cancel()
        assert len(queue) == 0
        assert len(queue._heap) < 20


class TestScheduleEvery:
    def test_recurring_fires_each_interval(self, queue):
        fired = []
        queue.schedule_every(10.0, lambda: fired.append(queue.clock.now))
        queue.run_until(35.0)
        assert fired == [10.0, 20.0, 30.0]

    def test_first_at_override(self, queue):
        fired = []
        queue.schedule_every(10.0, lambda: fired.append(queue.clock.now),
                             first_at=3.0)
        queue.run_until(25.0)
        assert fired == [3.0, 13.0, 23.0]

    def test_cancel_stops_series(self, queue):
        fired = []
        handle = queue.schedule_every(5.0, lambda: fired.append(1))
        queue.run_until(12.0)
        handle.cancel()
        queue.run_until(50.0)
        assert handle.fired == 2
        assert fired == [1, 1]

    def test_cancel_from_inside_action(self, queue):
        handle = queue.schedule_every(5.0, lambda: handle.cancel())
        queue.run_until(50.0)
        assert handle.fired == 1

    def test_invalid_interval_rejected(self, queue):
        with pytest.raises(ValueError, match="interval"):
            queue.schedule_every(0.0, lambda: None)
