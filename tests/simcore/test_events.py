import pytest

from repro.simcore import EventQueue, SimClock


@pytest.fixture
def queue():
    return EventQueue(SimClock())


class TestEventQueue:
    def test_schedule_and_run(self, queue):
        fired = []
        queue.schedule_at(5.0, lambda: fired.append("a"))
        assert queue.run_until(10.0) == 1
        assert fired == ["a"]

    def test_clock_ends_at_run_until_time(self, queue):
        queue.schedule_at(3.0, lambda: None)
        queue.run_until(10.0)
        assert queue.clock.now == 10.0

    def test_events_fire_in_time_order(self, queue):
        fired = []
        queue.schedule_at(5.0, lambda: fired.append("late"))
        queue.schedule_at(2.0, lambda: fired.append("early"))
        queue.run_until(10.0)
        assert fired == ["early", "late"]

    def test_same_time_fires_in_insertion_order(self, queue):
        fired = []
        for name in ("first", "second", "third"):
            queue.schedule_at(1.0, lambda n=name: fired.append(n))
        queue.run_until(1.0)
        assert fired == ["first", "second", "third"]

    def test_schedule_in_relative(self, queue):
        queue.clock.advance(4.0)
        ev = queue.schedule_in(2.0, lambda: None)
        assert ev.time == 6.0

    def test_schedule_in_past_rejected(self, queue):
        queue.clock.advance(5.0)
        with pytest.raises(ValueError, match="past"):
            queue.schedule_at(1.0, lambda: None)

    def test_cancelled_event_does_not_fire(self, queue):
        fired = []
        ev = queue.schedule_at(2.0, lambda: fired.append("x"))
        ev.cancel()
        assert queue.run_until(5.0) == 0
        assert fired == []

    def test_len_excludes_cancelled(self, queue):
        e1 = queue.schedule_at(1.0, lambda: None)
        queue.schedule_at(2.0, lambda: None)
        e1.cancel()
        assert len(queue) == 1

    def test_events_only_fire_within_window(self, queue):
        fired = []
        queue.schedule_at(1.0, lambda: fired.append("in"))
        queue.schedule_at(20.0, lambda: fired.append("out"))
        queue.run_until(10.0)
        assert fired == ["in"]
        assert queue.peek_time() == 20.0

    def test_step_advances_clock_to_event(self, queue):
        queue.schedule_at(7.0, lambda: None)
        ev = queue.step()
        assert ev is not None and queue.clock.now == 7.0

    def test_step_on_empty_returns_none(self, queue):
        assert queue.step() is None

    def test_event_scheduling_event(self, queue):
        """Events may schedule further events that fire in the same run."""
        fired = []
        def outer():
            fired.append("outer")
            queue.schedule_in(1.0, lambda: fired.append("inner"))
        queue.schedule_at(1.0, outer)
        queue.run_until(5.0)
        assert fired == ["outer", "inner"]
