"""The documented public API surface (paper Examples 2.1/2.3 imports)."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "2.7.0"

    def test_paper_example_imports(self):
        """Example 2.1 of the paper imports these names directly."""
        from repro import LocalizationTask, SocialNetwork  # noqa: F401
        from repro import Wrk, VirtFaultInjector  # noqa: F401

    def test_example_2_3_imports(self):
        from repro import Orchestrator  # noqa: F401

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_paper_example_2_1_shape(self):
        """The paper's problem-definition snippet, verbatim in structure."""
        from repro import LocalizationTask, SocialNetwork

        class K8STargetPortMisconf(LocalizationTask):
            def __init__(self):
                super().__init__("TargetPortMisconfig", target="user-service")
                self.app = SocialNetwork()
                self.ans = "user-service"

        problem = K8STargetPortMisconf()
        assert problem.ans == "user-service"
        assert problem.task_type == "localization"
