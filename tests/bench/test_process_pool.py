"""The process-pool executor must be bit-identical to asyncio and serial:
every case seed derives from (seed, agent, pid), each worker owns a
private environment, and outcomes come back in spec order — so the
executor choice can only change wall-clock, never results."""

import pickle
import re

import pytest

from repro.agents.registry import agent_factory
from repro.bench import BenchmarkRunner
from repro.core.batch import (
    SessionSpec,
    run_sessions_process,
    run_sessions_sync,
)


def case_key(case):
    return (case.agent, case.pid, case.success, case.steps,
            case.duration_s, case.input_tokens, case.output_tokens,
            sorted(case.details.items()))


#: fixed mini-suite; delayed_revoke's trigger timeline mutates the cluster
#: mid-session, so the pool must reproduce time-driven fault injection too
PIDS = [
    "misconfig_k8s_social_net-detection-1",
    "delayed_revoke_auth_hotel_res-detection-1",
    "scale_pod_zero_social_net-mitigation-1",
]
AGENTS = ("gpt-4-w-shell", "flash")


def _specs(max_steps=8, seed=7):
    import hashlib
    out = []
    for agent in AGENTS:
        for pid in PIDS:
            digest = hashlib.sha256(f"{seed}:{agent}:{pid}".encode()).digest()
            out.append(SessionSpec(
                problem=pid, agent=agent_factory(agent), agent_name=agent,
                seed=int.from_bytes(digest[:4], "little"),
                max_steps=max_steps))
    return out


def _norm(text):
    # temp export roots are OS-random (differ between ANY two runs,
    # serial included); everything else in an observation is seed-driven
    return re.sub(r"/tmp/aiopslab-[\w-]+", "/tmp/aiopslab-X", text)


def _outcome_key(outcome):
    return (outcome.spec.agent_name, outcome.result,
            [(s.action_raw, _norm(s.observation))
             for s in outcome.session.steps])


class TestProcessPoolDeterminism:
    def test_three_executors_bit_identical(self):
        serial = run_sessions_sync(_specs(), concurrency=1,
                                   release_handles=True)
        fanout = run_sessions_sync(_specs(), concurrency=4,
                                   release_handles=True)
        pooled = run_sessions_sync(_specs(), executor="process",
                                   concurrency=4)
        assert len(serial) == len(fanout) == len(pooled) == 6
        serial_keys = [_outcome_key(o) for o in serial]
        assert serial_keys == [_outcome_key(o) for o in fanout]
        assert serial_keys == [_outcome_key(o) for o in pooled]

    def test_runner_process_executor_matches_async(self):
        kwargs = dict(agents=("flash",), pids=PIDS)
        async_run = BenchmarkRunner(max_steps=8, seed=3,
                                    concurrency=2).run_suite(**kwargs)
        pool_run = BenchmarkRunner(max_steps=8, seed=3, concurrency=2,
                                   executor="process").run_suite(**kwargs)
        assert [case_key(c) for c in async_run.cases] == \
            [case_key(c) for c in pool_run.cases]

    def test_pool_size_never_changes_results(self):
        one = run_sessions_process(_specs(max_steps=5), processes=1)
        many = run_sessions_process(_specs(max_steps=5), processes=4)
        assert [_outcome_key(o) for o in one] == \
            [_outcome_key(o) for o in many]


class TestProcessPoolMechanics:
    def test_registry_factory_is_picklable(self):
        factory = agent_factory("flash")
        clone = pickle.loads(pickle.dumps(factory))
        assert clone.name == "flash"
        assert repr(clone) == "agent_factory('flash')"

    def test_empty_batch(self):
        assert run_sessions_process([], processes=2) == []

    def test_invalid_processes_rejected(self):
        with pytest.raises(ValueError):
            run_sessions_process(_specs()[:1], processes=0)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            run_sessions_sync(_specs()[:1], executor="threads")
        with pytest.raises(ValueError):
            BenchmarkRunner(executor="threads")

    def test_orchestrator_incompatible_with_process_executor(self):
        from repro.core.orchestrator import Orchestrator
        with pytest.raises(ValueError):
            run_sessions_sync(_specs()[:1], executor="process",
                              orchestrator=Orchestrator())

    def test_worker_failure_isolated_on_outcome(self):
        specs = [SessionSpec(problem="no-such-problem-id",
                             agent=agent_factory("flash"),
                             agent_name="flash", seed=1, max_steps=3),
                 _specs(max_steps=5)[0]]
        outcomes = run_sessions_process(specs, processes=2)
        assert outcomes[0].error is not None
        assert outcomes[1].ok

    def test_worker_failure_fail_fast_raises(self):
        specs = [SessionSpec(problem="no-such-problem-id",
                             agent=agent_factory("flash"),
                             agent_name="flash", seed=1, max_steps=3)]
        with pytest.raises(Exception):
            run_sessions_process(specs, processes=1, fail_fast=True)

    def test_progress_called_per_case(self):
        seen = []
        run_sessions_process(_specs(max_steps=5)[:2], processes=2,
                             progress=lambda o: seen.append(o.spec.agent_name))
        assert len(seen) == 2
