"""Concurrency must never change benchmark results: case seeds derive from
(seed, agent, pid) and every session owns a private environment, so any
fan-out level is bit-identical to the serial run."""

from repro.bench import BenchmarkRunner

PIDS = [
    "revoke_auth_hotel_res-detection-1",
    "misconfig_k8s_social_net-localization-1",
    "scale_pod_zero_social_net-analysis-1",
    "scale_pod_zero_social_net-mitigation-1",
]
AGENTS = ("gpt-4-w-shell", "flash")


def case_key(case):
    return (case.agent, case.pid, case.success, case.steps,
            case.duration_s, case.input_tokens, case.output_tokens,
            sorted(case.details.items()))


class TestConcurrencyDeterminism:
    def test_run_suite_concurrent_identical_to_serial(self):
        serial = BenchmarkRunner(max_steps=15, seed=2).run_suite(
            agents=AGENTS, pids=PIDS)
        fanout = BenchmarkRunner(max_steps=15, seed=2, concurrency=4).run_suite(
            agents=AGENTS, pids=PIDS)
        assert len(serial.cases) == len(fanout.cases) == 8
        assert [case_key(c) for c in serial.cases] == \
            [case_key(c) for c in fanout.cases]

    def test_per_call_concurrency_override(self):
        runner = BenchmarkRunner(max_steps=10, seed=5)
        serial = runner.run_suite(agents=("flash",), pids=PIDS[:2])
        fanout = runner.run_suite(agents=("flash",), pids=PIDS[:2],
                                  concurrency=2)
        assert [case_key(c) for c in serial.cases] == \
            [case_key(c) for c in fanout.cases]

    def test_sweep_step_limit_concurrent_identical(self):
        kwargs = dict(limits=(2, 8), agents=("oracle",), pids=PIDS[:1])
        serial = BenchmarkRunner(seed=4).sweep_step_limit(**kwargs)
        fanout = BenchmarkRunner(seed=4, concurrency=4).sweep_step_limit(
            **kwargs)
        assert serial == fanout

    def test_verbose_streams_one_line_per_case(self, capsys):
        BenchmarkRunner(max_steps=6, seed=2, concurrency=2).run_suite(
            agents=("flash",), pids=PIDS[:2], verbose=True)
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        assert len(lines) == 2
        assert all(l.startswith(("[+]", "[-]")) and "flash" in l
                   for l in lines)

    def test_invalid_concurrency_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            BenchmarkRunner(seed=1).run_suite(agents=("flash",),
                                              pids=PIDS[:1], concurrency=0)

    def test_trajectories_preserved_under_concurrency(self):
        fanout = BenchmarkRunner(max_steps=10, seed=2, concurrency=4).run_suite(
            agents=("flash",), pids=PIDS[:2])
        for case in fanout.cases:
            assert case.session is not None
            assert case.session.agent_name == case.agent
            assert len(case.session.steps) == case.steps
