import pytest

from repro.bench import (
    BenchmarkRunner,
    figure6_api_usage,
    figure7_action_distribution,
    render_series,
    render_table,
    table2_problem_pool,
    table3_overall,
    table4_by_task,
    table5_commands,
)

# One problem per task, shared across the module (runs take ~1s each).
PIDS = [
    "revoke_auth_hotel_res-detection-1",
    "misconfig_k8s_social_net-localization-1",
    "scale_pod_zero_social_net-analysis-1",
    "scale_pod_zero_social_net-mitigation-1",
]


@pytest.fixture(scope="module")
def results():
    runner = BenchmarkRunner(max_steps=20, seed=2)
    return runner.run_suite(agents=("gpt-4-w-shell", "flash"), pids=PIDS)


class TestRunner:
    def test_case_count(self, results):
        assert len(results.cases) == 8

    def test_case_fields_populated(self, results):
        case = results.cases[0]
        assert case.steps > 0 and case.duration_s > 0
        assert case.session is not None

    def test_accuracy_bounds(self, results):
        for agent in ("gpt-4-w-shell", "flash"):
            assert 0.0 <= results.accuracy(agent) <= 1.0

    def test_for_task_filter(self, results):
        det = results.for_task("detection")
        assert all(c.task_type == "detection" for c in det)

    def test_case_seeds_reproducible(self):
        r = BenchmarkRunner(max_steps=10, seed=9)
        c1 = r.run_case("gpt-4-w-shell", PIDS[0])
        c2 = r.run_case("gpt-4-w-shell", PIDS[0])
        assert c1.success == c2.success and c1.steps == c2.steps
        assert c1.input_tokens == c2.input_tokens


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["A", "BB"], [["1", "2"], ["33", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4 and "-+-" in lines[1]

    def test_table2_counts_sum_to_50(self):
        headers, rows = table2_problem_pool()
        assert headers[-1] == "# Problems"
        assert sum(r[-1] for r in rows) == 50  # 48 benchmark + 2 noop

    def test_table2_row_for_target_port(self):
        _, rows = table2_problem_pool()
        row = next(r for r in rows if r[1] == "TargetPortMisconfig")
        assert row[-1] == 12

    def test_table3_rows_per_agent(self, results):
        headers, rows = table3_overall(results,
                                       agents=("gpt-4-w-shell", "flash"))
        assert len(rows) == 2
        assert headers == ["Agent", "LoC", "Time (s)", "# Steps", "Tokens",
                           "Acc."]

    def test_table4_has_all_tasks(self, results):
        tables = table4_by_task(results, agents=("gpt-4-w-shell", "flash"))
        assert set(tables) == {"detection", "localization", "analysis",
                               "mitigation"}

    def test_table4_localization_has_both_accuracies(self, results):
        headers, _ = table4_by_task(results)["localization"]
        assert "Acc.@3" in headers and "Acc.@1" in headers

    def test_table4_includes_baseline_rows(self, results):
        baselines = {"mksmc": {"task": "detection", "accuracy": 0.15,
                               "time_s": 1.0}}
        _, rows = table4_by_task(results, agents=("flash",),
                                 baselines=baselines)["detection"]
        assert any(r[0] == "MKSMC" for r in rows)

    def test_table5_counts_mongo_commands(self, results):
        headers, rows = table5_commands(results, agents=("flash",))
        assert "mongo" in headers


class TestFigures:
    def test_figure6_percentages_sum_to_100(self, results):
        usage = figure6_api_usage(results, agents=("gpt-4-w-shell", "flash"))
        for agent, buckets in usage.items():
            assert sum(buckets.values()) == pytest.approx(100.0, abs=0.1)

    def test_figure7_splits_by_outcome(self, results):
        dist = figure7_action_distribution(results)
        assert set(dist) == {"successful", "failure"}

    def test_render_series_contains_points(self):
        text = render_series("Fig", {"agent": {3: 0.5, 5: 0.6}})
        assert "3:0.500" in text
