from repro.bench.report import (
    ExperimentReport, PAPER, _measured_acc, render_markdown,
)
from repro.bench.runner import CaseResult, SuiteResults
from repro.core.session import Session, Step


def fake_case(agent, task, pid, success, details=None, steps=3):
    session = Session(pid=pid, agent_name=agent, started_at=0.0)
    session.ended_at = 10.0
    for i in range(steps):
        session.add_step(Step(i, float(i), 'get_logs("ns","all")',
                              "get_logs", ("ns", "all"), "obs"))
    session.add_step(Step(steps, float(steps), "submit(...)", "submit",
                          (), "Solution submitted."))
    session.submitted = True
    return CaseResult(
        agent=agent, pid=pid, task_type=task, success=success,
        duration_s=10.0, steps=steps + 1, input_tokens=100, output_tokens=10,
        details=details or {}, session=session,
    )


def fake_report():
    results = SuiteResults()
    for agent in ("gpt-4-w-shell", "gpt-3.5-w-shell", "react", "flash"):
        results.cases.append(fake_case(agent, "detection", "d-1", True))
        results.cases.append(fake_case(
            agent, "localization", "l-1", True,
            {"success@1": True, "success@3": True}))
        results.cases.append(fake_case(
            agent, "analysis", "a-1", False, {"subtasks_correct": 1}))
        results.cases.append(fake_case(agent, "mitigation", "m-1",
                                       agent == "flash"))
    return ExperimentReport(
        seed=0, results=results,
        baselines={
            "mksmc": {"task": "detection", "accuracy": 0.15,
                      "accuracy@1": 0.15, "time_s": 0.1},
            "pdiagnose": {"task": "localization", "accuracy": 0.1,
                          "accuracy@1": 0.1, "time_s": 0.1},
            "rmlad": {"task": "localization", "accuracy": 0.05,
                      "accuracy@1": 0.05, "time_s": 0.1},
        },
        figure5={"flash": {3: 0.3, 20: 0.6}},
        noop_outcome={"gpt-4-w-shell": True, "gpt-3.5-w-shell": False,
                      "react": False, "flash": False},
    )


class TestMeasuredAcc:
    def test_overall(self):
        report = fake_report()
        assert _measured_acc(report.results, "flash") == 100.0 * 3 / 4

    def test_analysis_uses_subtasks(self):
        report = fake_report()
        assert _measured_acc(report.results, "react", "analysis") == 50.0

    def test_localization_at_k(self):
        report = fake_report()
        assert _measured_acc(report.results, "react", "localization",
                             at=3) == 100.0

    def test_missing_agent_zero(self):
        assert _measured_acc(SuiteResults(), "nobody") == 0.0


class TestRenderMarkdown:
    def test_contains_all_sections(self):
        text = render_markdown(fake_report())
        for heading in ("Headline comparison", "Table 2", "Table 3",
                        "Table 4 — detection", "Table 4 — mitigation",
                        "Table 5", "Figure 5", "Figure 6", "Figure 7",
                        "Noop false-positive"):
            assert heading in text, heading

    def test_paper_numbers_present(self):
        text = render_markdown(fake_report())
        assert "59.3%" in text       # paper FLASH overall
        assert "15.4%" in text       # paper MKSMC / PDiagnose

    def test_noop_verdicts_rendered(self):
        text = render_markdown(fake_report())
        assert "gpt-4-w-shell: correct" in text
        assert "flash: FALSE POSITIVE" in text

    def test_paper_reference_numbers_complete(self):
        for key, values in PAPER.items():
            assert values, key
