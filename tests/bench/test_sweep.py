from repro.bench import BenchmarkRunner


class TestStepLimitSweep:
    def test_sweep_shape(self):
        runner = BenchmarkRunner(max_steps=20, seed=4)
        pids = ["revoke_auth_hotel_res-detection-1"]
        series = runner.sweep_step_limit(limits=(2, 8), agents=("oracle",),
                                         pids=pids)
        assert set(series) == {"oracle"}
        assert set(series["oracle"]) == {2, 8}
        assert all(0.0 <= v <= 1.0 for v in series["oracle"].values())

    def test_oracle_improves_with_budget(self):
        """With 1 step the oracle cannot even look before submitting; with
        8 it solves the problem — the Figure-5 mechanism in miniature."""
        runner = BenchmarkRunner(max_steps=20, seed=4)
        pids = ["revoke_auth_hotel_res-localization-1"]
        series = runner.sweep_step_limit(limits=(1, 10), agents=("oracle",),
                                         pids=pids)
        assert series["oracle"][10] >= series["oracle"][1]
        assert series["oracle"][10] == 1.0
