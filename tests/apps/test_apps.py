import pytest

from repro.apps import HotelReservation, SocialNetwork


class TestTopologies:
    def test_social_network_has_28_services(self, social):
        assert len(social.app.services) == 28

    def test_hotel_reservation_service_count(self, hotel):
        assert len(hotel.app.services) == 19

    def test_paper_localization_targets_exist_in_social(self, social):
        """Table 2's TargetPortMisconfig targets must be real services."""
        for target in ("user-service", "text-service", "post-storage-service"):
            assert target in social.app.services

    def test_all_operation_services_are_deployed(self, hotel, social):
        for bundle in (hotel, social):
            for op in bundle.app.operations.values():
                for svc in op.all_services():
                    assert svc in bundle.app.services, \
                        f"{op.name} references unknown service {svc}"

    def test_every_service_has_kubernetes_objects(self, hotel):
        ns = hotel.app.namespace
        for name in hotel.app.services:
            hotel.cluster.get_deployment(ns, name)
            hotel.cluster.get_service(ns, name)

    def test_mongo_backends_created(self, hotel):
        assert set(hotel.app.mongo_services()) == {
            "mongodb-geo", "mongodb-rate", "mongodb-recommendation",
            "mongodb-user", "mongodb-reservation", "mongodb-profile"}

    def test_workload_mix_references_real_operations(self, hotel, social):
        for bundle in (hotel, social):
            for op in bundle.app.workload_mix():
                assert op in bundle.app.operations

    def test_frontend_url_shape(self, hotel):
        assert hotel.app.frontend_url == \
            "http://frontend.test-hotel-reservation.svc.cluster.local:5000"

    def test_credential_secrets_provisioned(self, hotel):
        sec = hotel.cluster.get_secret(hotel.app.namespace,
                                       "mongodb-geo-credentials")
        assert sec.data["username"] == "admin"
        assert sec.data["password"] == "geo-pass"


class TestCredentials:
    def test_default_credentials_resolve(self, hotel):
        creds = hotel.app.get_credentials("geo", "mongodb-geo")
        assert creds == ("admin", "geo-pass")

    def test_unknown_backend_returns_none(self, hotel):
        assert hotel.app.get_credentials("geo", "not-a-backend") is None

    def test_credentials_read_live_from_release(self, hotel):
        release = hotel.app.helm.releases[hotel.app.release_name]
        release.values["mongo_credentials"]["mongodb-geo"] = None
        assert hotel.app.get_credentials("geo", "mongodb-geo") is None


class TestExecHandler:
    def _mongo_pod(self, bundle, service):
        pods = [p for p in bundle.cluster.pods_in(bundle.app.namespace)
                if p.owner == service]
        return pods[0].name

    def test_grant_roles_via_mongo_shell(self, hotel):
        backend = hotel.app.backends["mongodb-geo"]
        backend.revoke_roles("admin")
        pod = self._mongo_pod(hotel, "mongodb-geo")
        out = hotel.app.exec_handler(
            hotel.app.namespace, pod,
            ["mongo", "--eval", "db.grantRolesToUser('admin', ['readWrite'])"])
        assert '"ok" : 1' in out
        assert backend.authorize("admin") == ""

    def test_create_user_via_mongo_shell(self, hotel):
        backend = hotel.app.backends["mongodb-user"]
        backend.drop_user("admin")
        pod = self._mongo_pod(hotel, "mongodb-user")
        out = hotel.app.exec_handler(
            hotel.app.namespace, pod,
            ["mongo", "--eval",
             "db.createUser({user: 'admin', pwd: 'user-pass', roles: ['readWrite']})"])
        assert '"ok" : 1' in out
        assert backend.authenticate("admin", "user-pass") == ""

    def test_get_users_lists_accounts(self, hotel):
        pod = self._mongo_pod(hotel, "mongodb-geo")
        out = hotel.app.exec_handler(hotel.app.namespace, pod,
                                     ["mongo", "--eval", "db.getUsers()"])
        assert "admin" in out

    def test_grant_on_missing_user_errors(self, hotel):
        backend = hotel.app.backends["mongodb-geo"]
        backend.drop_user("admin")
        pod = self._mongo_pod(hotel, "mongodb-geo")
        out = hotel.app.exec_handler(
            hotel.app.namespace, pod,
            ["mongo", "--eval", "db.grantRolesToUser('admin', ['readWrite'])"])
        assert "Could not find user" in out

    def test_mongo_shell_on_non_mongo_pod(self, hotel):
        pods = [p for p in hotel.cluster.pods_in(hotel.app.namespace)
                if p.owner == "frontend"]
        out = hotel.app.exec_handler(hotel.app.namespace, pods[0].name,
                                     ["mongo", "--eval", "db.getUsers()"])
        assert "command not found" in out

    def test_unknown_binary(self, hotel):
        pod = self._mongo_pod(hotel, "mongodb-geo")
        out = hotel.app.exec_handler(hotel.app.namespace, pod, ["python3"])
        assert "command not found" in out

    def test_wrong_namespace_rejected(self, hotel):
        out = hotel.app.exec_handler("other-ns", "pod", ["ls"])
        assert "not managed" in out


class TestDeployGuards:
    def test_deploy_is_required_before_runtime(self):
        app = HotelReservation()
        assert app.runtime is None

    def test_two_apps_can_coexist(self, cluster):
        from repro.telemetry import TelemetryCollector
        collector = TelemetryCollector(cluster.clock, seed=0)
        h = HotelReservation()
        s = SocialNetwork()
        h.deploy(cluster, collector, seed=0)
        s.deploy(cluster, collector, seed=0)
        assert h.runtime.execute("search_hotel").ok
        assert s.runtime.execute("read_home_timeline").ok
