import pytest

from repro.core.session import Session, Step
from repro.core.trajectory import load_session, save_all, save_session


def make_session():
    s = Session(pid="revoke_auth_hotel_res-detection-1",
                agent_name="react", started_at=10.0)
    s.ended_at = 42.0
    s.add_tokens(1500, 90)
    s.add_step(Step(0, 12.0, 'get_logs("ns", "all")', "get_logs",
                    ("ns", "all"), "ERROR lines: geo 5"))
    s.add_step(Step(1, 20.0, 'exec_shell("kubectl get pods -n ns")',
                    "exec_shell", ("kubectl get pods -n ns",),
                    "NAME READY", shell_command="kubectl"))
    s.add_step(Step(2, 30.0, 'submit("yes")', "submit", ("yes",),
                    "Solution submitted."))
    s.submitted = True
    s.solution = "yes"
    return s


class TestRoundTrip:
    def test_save_load_preserves_header(self, tmp_path):
        path = save_session(make_session(), tmp_path / "t.jsonl")
        loaded = load_session(path)
        assert loaded.pid == "revoke_auth_hotel_res-detection-1"
        assert loaded.agent_name == "react"
        assert loaded.started_at == 10.0 and loaded.ended_at == 42.0
        assert loaded.input_tokens == 1500 and loaded.output_tokens == 90
        assert loaded.submitted and loaded.solution == "yes"

    def test_save_load_preserves_steps(self, tmp_path):
        path = save_session(make_session(), tmp_path / "t.jsonl")
        loaded = load_session(path)
        assert len(loaded.steps) == 3
        assert loaded.steps[0].action_name == "get_logs"
        assert loaded.steps[1].shell_command == "kubectl"
        assert loaded.steps[2].action_args == ("yes",)

    def test_analytics_survive_roundtrip(self, tmp_path):
        original = make_session()
        loaded = load_session(save_session(original, tmp_path / "t.jsonl"))
        assert loaded.action_histogram() == original.action_histogram()
        assert loaded.shell_command_histogram() == \
            original.shell_command_histogram()

    def test_non_jsonable_solution_reprs(self, tmp_path):
        s = make_session()
        s.solution = {1, 2}  # sets are not JSON
        loaded = load_session(save_session(s, tmp_path / "t.jsonl"))
        assert "1" in loaded.solution

    def test_save_all_batch(self, tmp_path):
        paths = save_all([make_session(), make_session()], tmp_path / "batch")
        assert len(paths) == 2
        assert all(p.exists() for p in paths)
        assert len({p.name for p in paths}) == 2

    def test_load_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_session(path)

    def test_load_non_trajectory_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "step"}\n')
        with pytest.raises(ValueError, match="header"):
            load_session(path)

    def test_creates_parent_directories(self, tmp_path):
        path = save_session(make_session(), tmp_path / "a" / "b" / "t.jsonl")
        assert path.exists()
