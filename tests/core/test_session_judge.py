from repro.core.judge import LlmJudge
from repro.core.session import Session, Step


def make_session(steps, solution=None, submitted=True):
    s = Session(pid="p", agent_name="a", started_at=0.0)
    s.ended_at = 10.0
    for i, (name, obs) in enumerate(steps):
        s.add_step(Step(index=i, time=float(i), action_raw=f"{name}(...)",
                        action_name=name, action_args=(), observation=obs))
    s.solution = solution
    s.submitted = submitted
    return s


class TestSession:
    def test_elapsed(self):
        s = make_session([])
        assert s.elapsed() == 10.0

    def test_elapsed_unended(self):
        s = Session(pid="p", agent_name="a", started_at=5.0)
        assert s.elapsed() == 0.0

    def test_action_histogram(self):
        s = make_session([("get_logs", ""), ("get_logs", ""), ("submit", "")])
        assert s.action_histogram() == {"get_logs": 2, "submit": 1}

    def test_shell_command_histogram(self):
        s = make_session([])
        s.add_step(Step(0, 0.0, 'exec_shell("kubectl get pods")', "exec_shell",
                        ("kubectl get pods",), "", shell_command="kubectl"))
        s.add_step(Step(1, 1.0, 'exec_shell("helm list")', "exec_shell",
                        ("helm list",), "", shell_command="helm"))
        assert s.shell_command_histogram() == {"kubectl": 1, "helm": 1}

    def test_token_accumulation(self):
        s = make_session([])
        s.add_tokens(10, 5)
        s.add_tokens(20, 5)
        assert (s.input_tokens, s.output_tokens) == (30, 10)

    def test_transcript_truncates_observations(self):
        s = make_session([("get_logs", "x" * 1000)])
        assert "truncated" in s.transcript(max_obs_chars=100)


class TestJudgeRubric:
    def test_grounded_yes_with_evidence(self):
        s = make_session(
            [("get_logs", "geo: 12 ERROR lines")], solution="yes")
        verdict = LlmJudge().judge(s, "detection")
        assert verdict.grounded and verdict.score == 1.0

    def test_ungrounded_yes_without_evidence(self):
        """§4's failure case: claiming a fault citing normal workload."""
        s = make_session(
            [("get_logs", "No ERROR-level log lines found")], solution="yes")
        verdict = LlmJudge().judge(s, "detection")
        assert not verdict.grounded

    def test_grounded_no_on_clean_system(self):
        s = make_session(
            [("get_logs", "No ERROR-level log lines found in namespace ns")],
            solution="no")
        assert LlmJudge().judge(s, "detection").grounded

    def test_ungrounded_no_despite_errors(self):
        s = make_session(
            [("get_logs", "geo: 10 ERROR lines")], solution="no")
        assert not LlmJudge().judge(s, "detection").grounded

    def test_ungrounded_no_without_checking(self):
        s = make_session([], solution="no")
        assert not LlmJudge().judge(s, "detection").grounded

    def test_localization_names_must_appear_in_evidence(self):
        s = make_session(
            [("get_logs",
              "ERROR [geo] failed to call mongodb-geo: not authorized")],
            solution=["mongodb-geo"])
        assert LlmJudge().judge(s, "localization").grounded

    def test_localization_unseen_name_ungrounded(self):
        s = make_session(
            [("get_logs", "ERROR [geo] failure")], solution=["rate"])
        assert not LlmJudge().judge(s, "localization").grounded

    def test_custom_llm_callable_overrides(self):
        s = make_session([("get_logs", "geo: 5 ERROR lines")], solution="yes")
        judge = LlmJudge(llm=lambda prompt: "UNGROUNDED: suspicious")
        verdict = judge.judge(s, "detection")
        assert not verdict.grounded and "suspicious" in verdict.rationale
