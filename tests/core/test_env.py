import pytest

from repro.apps import HotelReservation, SocialNetwork
from repro.core import CloudEnvironment


class TestCloudEnvironment:
    def test_builds_all_subsystems(self):
        env = CloudEnvironment(HotelReservation, seed=1)
        assert env.cluster is not None
        assert env.runtime is not None
        assert env.kubectl is not None
        assert env.exporter is not None

    def test_namespace_from_app(self):
        env = CloudEnvironment(SocialNetwork, seed=1)
        assert env.namespace == "test-social-network"

    def test_advance_runs_workload(self):
        env = CloudEnvironment(HotelReservation, seed=1, workload_rate=30)
        env.advance(10)
        assert env.driver.stats.requests == 300
        assert env.clock.now == pytest.approx(10.0)

    def test_probe_error_rate_healthy(self):
        env = CloudEnvironment(HotelReservation, seed=1, workload_rate=30)
        env.advance(5)
        assert env.probe_error_rate(5) == 0.0

    def test_probe_error_rate_under_fault(self):
        env = CloudEnvironment(HotelReservation, seed=1, workload_rate=30)
        env.app.backends["mongodb-geo"].revoke_roles("admin")
        assert env.probe_error_rate(10) > 0.1

    def test_kubectl_wired_to_logs(self):
        env = CloudEnvironment(HotelReservation, seed=1, workload_rate=30)
        env.app.backends["mongodb-geo"].revoke_roles("admin")
        env.advance(10)
        pod = next(p.name for p in env.cluster.pods_in(env.namespace)
                   if p.owner == "geo")
        out = env.kubectl.run(f"kubectl logs {pod} -n {env.namespace}")
        assert "not authorized" in out

    def test_kubectl_top_wired_to_metrics(self):
        env = CloudEnvironment(HotelReservation, seed=1, workload_rate=30)
        env.advance(10)
        out = env.kubectl.run(f"kubectl top pods -n {env.namespace}")
        assert "CPU" in out and "Mi" in out

    def test_exec_wired_to_app(self):
        env = CloudEnvironment(HotelReservation, seed=1)
        pod = next(p.name for p in env.cluster.pods_in(env.namespace)
                   if p.owner == "mongodb-geo")
        out = env.kubectl.run(
            f"kubectl exec {pod} -n {env.namespace} -- mongo --eval "
            f'"db.getUsers()"')
        assert "admin" in out

    def test_custom_export_root(self, tmp_path):
        env = CloudEnvironment(HotelReservation, seed=1,
                               export_root=tmp_path / "telemetry")
        assert str(env.exporter.root).endswith("telemetry")

    def test_seeds_reproduce_environments(self):
        a = CloudEnvironment(HotelReservation, seed=9, workload_rate=30)
        b = CloudEnvironment(HotelReservation, seed=9, workload_rate=30)
        a.advance(10)
        b.advance(10)
        assert a.driver.stats.errors == b.driver.stats.errors
        assert a.driver.stats.per_operation == b.driver.stats.per_operation


class TestEnvironmentKernel:
    def test_env_owns_one_queue_on_shared_clock(self):
        env = CloudEnvironment(HotelReservation, seed=1)
        assert env.queue.clock is env.clock
        assert env.driver.queue is env.queue

    def test_scheduled_event_fires_during_advance(self):
        env = CloudEnvironment(HotelReservation, seed=1, workload_rate=30)
        fired = []
        env.queue.schedule_at(7.5, lambda: fired.append(env.clock.now))
        env.advance(10)
        assert fired == [7.5]

    def test_periodic_resync_scheduled(self):
        env = CloudEnvironment(HotelReservation, seed=1, workload_rate=30,
                               resync_interval=20.0)
        env.advance(50)
        assert env._resync.fired == 2
        env2 = CloudEnvironment(HotelReservation, seed=1, workload_rate=30,
                                resync_interval=0.0)
        assert env2._resync is None


class TestEnvironmentClose:
    def test_close_removes_owned_export_root(self):
        env = CloudEnvironment(HotelReservation, seed=1)
        env.exporter.export_metrics()
        root = env.export_root
        assert root.exists()
        env.close()
        assert not root.exists()
        assert env.closed

    def test_close_is_idempotent(self):
        env = CloudEnvironment(HotelReservation, seed=1)
        env.close()
        env.close()

    def test_close_keeps_caller_provided_root(self, tmp_path):
        root = tmp_path / "telemetry"
        env = CloudEnvironment(HotelReservation, seed=1, export_root=root)
        env.exporter.export_metrics()
        env.close()
        assert root.exists()

    def test_orchestrator_release_closes_env(self):
        from repro.core import Orchestrator
        from repro.problems import benchmark_pids

        orch = Orchestrator(seed=0)
        handle = orch.create_session(benchmark_pids()[0])
        root = handle.env.export_root
        assert root.exists()
        orch.release(handle)
        assert not root.exists()

    def test_batch_release_handles_closes_envs(self):
        from repro.agents.registry import agent_factory
        from repro.core.batch import SessionSpec, run_sessions_sync

        spec = SessionSpec(
            problem="revoke_auth_hotel_res-detection-1",
            agent=agent_factory("flash"), agent_name="flash",
            seed=2, max_steps=4)
        outcomes = run_sessions_sync([spec], concurrency=1,
                                     release_handles=True)
        assert outcomes[0].ok
        assert outcomes[0].handle is None

    def test_batch_release_handles_closes_env_on_failure(self):
        """A case whose agent factory raises must still release its env
        (no one-leaked-dir-per-failed-case)."""
        from repro.core.problem import DetectionTask
        from repro.core.batch import SessionSpec, run_sessions_sync

        class RememberingProblem(DetectionTask):
            def create_environment(self, seed=0):
                self.env_ref = super().create_environment(seed)
                return self.env_ref

        def exploding_factory(context, task_type, seed):
            raise RuntimeError("boom")

        prob = RememberingProblem("RevokeAuth")
        spec = SessionSpec(problem=prob, agent=exploding_factory, seed=2)
        outcomes = run_sessions_sync([spec], concurrency=1,
                                     release_handles=True)
        assert not outcomes[0].ok
        assert isinstance(outcomes[0].error, RuntimeError)
        assert outcomes[0].handle is None
        assert prob.env_ref.closed
        assert not prob.env_ref.export_root.exists()

    def test_batch_release_handles_untracks_from_orchestrator(self):
        from repro.agents.registry import agent_factory
        from repro.core import Orchestrator
        from repro.core.batch import SessionSpec, run_sessions_sync

        orch = Orchestrator(seed=0)
        spec = SessionSpec(
            problem="revoke_auth_hotel_res-detection-1",
            agent=agent_factory("flash"), agent_name="flash",
            seed=2, max_steps=4)
        outcomes = run_sessions_sync([spec], concurrency=1,
                                     orchestrator=orch,
                                     release_handles=True)
        assert outcomes[0].ok
        assert orch.handles == []

    def test_batch_failure_keeps_partial_trajectory(self):
        """A case that fails mid-run still exposes its partial session."""
        from repro.core.problem import DetectionTask
        from repro.core.batch import SessionSpec, run_sessions_sync

        class FlakyAgent:
            def __init__(self):
                self.calls = 0

            def get_action(self, state):
                self.calls += 1
                if self.calls > 1:
                    raise RuntimeError("mid-run crash")
                return 'get_metrics("test-hotel-reservation")'

        spec = SessionSpec(problem=DetectionTask("RevokeAuth"),
                           agent=FlakyAgent(), seed=2, max_steps=5)
        outcomes = run_sessions_sync([spec], concurrency=1,
                                     release_handles=True)
        assert not outcomes[0].ok
        assert outcomes[0].handle is None
        assert outcomes[0].session is not None
        assert len(outcomes[0].session.steps) == 1
