import pytest

from repro.apps import HotelReservation, SocialNetwork
from repro.core import CloudEnvironment


class TestCloudEnvironment:
    def test_builds_all_subsystems(self):
        env = CloudEnvironment(HotelReservation, seed=1)
        assert env.cluster is not None
        assert env.runtime is not None
        assert env.kubectl is not None
        assert env.exporter is not None

    def test_namespace_from_app(self):
        env = CloudEnvironment(SocialNetwork, seed=1)
        assert env.namespace == "test-social-network"

    def test_advance_runs_workload(self):
        env = CloudEnvironment(HotelReservation, seed=1, workload_rate=30)
        env.advance(10)
        assert env.driver.stats.requests == 300
        assert env.clock.now == pytest.approx(10.0)

    def test_probe_error_rate_healthy(self):
        env = CloudEnvironment(HotelReservation, seed=1, workload_rate=30)
        env.advance(5)
        assert env.probe_error_rate(5) == 0.0

    def test_probe_error_rate_under_fault(self):
        env = CloudEnvironment(HotelReservation, seed=1, workload_rate=30)
        env.app.backends["mongodb-geo"].revoke_roles("admin")
        assert env.probe_error_rate(10) > 0.1

    def test_kubectl_wired_to_logs(self):
        env = CloudEnvironment(HotelReservation, seed=1, workload_rate=30)
        env.app.backends["mongodb-geo"].revoke_roles("admin")
        env.advance(10)
        pod = next(p.name for p in env.cluster.pods_in(env.namespace)
                   if p.owner == "geo")
        out = env.kubectl.run(f"kubectl logs {pod} -n {env.namespace}")
        assert "not authorized" in out

    def test_kubectl_top_wired_to_metrics(self):
        env = CloudEnvironment(HotelReservation, seed=1, workload_rate=30)
        env.advance(10)
        out = env.kubectl.run(f"kubectl top pods -n {env.namespace}")
        assert "CPU" in out and "Mi" in out

    def test_exec_wired_to_app(self):
        env = CloudEnvironment(HotelReservation, seed=1)
        pod = next(p.name for p in env.cluster.pods_in(env.namespace)
                   if p.owner == "mongodb-geo")
        out = env.kubectl.run(
            f"kubectl exec {pod} -n {env.namespace} -- mongo --eval "
            f'"db.getUsers()"')
        assert "admin" in out

    def test_custom_export_root(self, tmp_path):
        env = CloudEnvironment(HotelReservation, seed=1,
                               export_root=tmp_path / "telemetry")
        assert str(env.exporter.root).endswith("telemetry")

    def test_seeds_reproduce_environments(self):
        a = CloudEnvironment(HotelReservation, seed=9, workload_rate=30)
        b = CloudEnvironment(HotelReservation, seed=9, workload_rate=30)
        a.advance(10)
        b.advance(10)
        assert a.driver.stats.errors == b.driver.stats.errors
        assert a.driver.stats.per_operation == b.driver.stats.per_operation
