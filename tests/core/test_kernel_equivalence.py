"""The event kernel must be bit-identical to the seed's tick loop.

``CloudEnvironment.advance`` runs the discrete-event kernel
(``driver.run_events``).  The seed's hand-rolled 1-second tick loop — the
bit-exact reference implementation — lives *only* here now, as the
private :func:`legacy_run_for` fixture below (``WorkloadDriver.run_for``
was removed: it advanced the clock without firing queue events, so fault
timelines and resync stalled under it).  For any window sequence and
fixed seed the two must produce the same ``WorkloadStats``, the same RNG
draw order (hence bit-equal telemetry values) and the same scrape
timestamps — this is what lets the 48-problem benchmark keep its
per-problem results unchanged while the environment gains scheduled fault
timelines.
"""

import numpy as np
import pytest

from repro.apps import HotelReservation, SocialNetwork
from repro.bench import BenchmarkRunner
from repro.core import CloudEnvironment
from repro.problems import scenario_pids
from repro.workload import BurstRate, ConstantRate, DiurnalRate

#: deliberately irregular: fractional windows move the tick grid around,
#: which is exactly what agent think-time latencies do in real sessions
WINDOWS = [30.0, 3.7, 5.0, 0.4, 12.3, 1.0, 17.77, 0.0, 8.25]


def legacy_run_for(driver, seconds: float):
    """The seed's 1-second tick loop, preserved bit-for-bit.

    This is the reference implementation the kernel is proven against:
    identical ``rate(t) * step + carry`` float expressions in identical
    order, the same ``now - last_scrape >= interval`` scrape check at the
    same post-advance boundaries.  It advances the clock directly and
    fires no queue events — which is exactly why it was removed from the
    public driver surface.
    """
    if seconds < 0:
        raise ValueError(f"seconds must be >= 0, got {seconds}")
    clock = driver.runtime.clock
    end = clock.now + seconds
    while clock.now < end:
        step = min(1.0, end - clock.now)
        t = clock.now
        want = driver.policy.rate(t) * step + driver._carry
        n = int(want)
        driver._carry = want - n
        for _ in range(min(n, driver.max_requests_per_tick)):
            driver._issue_one()
        clock.advance(step)
        if clock.now - driver._last_scrape >= driver.scrape_interval:
            driver._scrape()
    return driver.stats


def stats_key(env):
    s = env.driver.stats
    return (s.requests, s.errors, s.latency_sum_ms, dict(s.per_operation))


def scrape_series(env, service="geo"):
    """(timestamps, values) of a scraped metric — bit-equal iff scrape
    times and the telemetry RNG draw order both match."""
    series = env.collector.metrics.series(service, "cpu_usage")
    assert series is not None
    return series.window()


class TestKernelEquivalence:
    def _pair(self, app=HotelReservation, **kwargs):
        return (CloudEnvironment(app, **kwargs),
                CloudEnvironment(app, **kwargs))

    def test_irregular_windows_bit_identical(self):
        kernel, legacy = self._pair(seed=3, workload_rate=45)
        for w in WINDOWS:
            kernel.advance(w)
            legacy_run_for(legacy.driver, w)
        assert kernel.clock.now == legacy.clock.now
        assert stats_key(kernel) == stats_key(legacy)
        tk, vk = scrape_series(kernel)
        tl, vl = scrape_series(legacy)
        assert np.array_equal(tk, tl), "scrape timestamps diverged"
        assert np.array_equal(vk, vl), "telemetry RNG draw order diverged"

    def test_social_network_app_equivalent(self):
        kernel, legacy = self._pair(app=SocialNetwork, seed=9,
                                    workload_rate=30)
        for w in [30.0, 2.5, 2.5, 41.0]:
            kernel.advance(w)
            legacy_run_for(legacy.driver, w)
        assert stats_key(kernel) == stats_key(legacy)
        tk, vk = scrape_series(kernel, "user-service")
        tl, vl = scrape_series(legacy, "user-service")
        assert np.array_equal(tk, tl) and np.array_equal(vk, vl)

    def test_fault_mid_run_equivalent(self):
        """Error outcomes (and their RNG draws) line up under a fault."""
        kernel, legacy = self._pair(seed=5, workload_rate=40)
        for env in (kernel, legacy):
            env.app.backends["mongodb-geo"].revoke_roles("admin")
        kernel.advance(25.0)
        legacy_run_for(legacy.driver, 25.0)
        assert kernel.driver.stats.errors > 0
        assert stats_key(kernel) == stats_key(legacy)

    def test_zero_rate_fast_forward_equivalent(self):
        """The idle fast-path skips boundaries but not scrapes."""
        kernel, legacy = self._pair(seed=7, policy=ConstantRate(0.0))
        kernel.advance(1000.0)
        legacy_run_for(legacy.driver, 1000.0)
        assert kernel.driver.stats.requests == 0
        assert stats_key(kernel) == stats_key(legacy)
        tk, vk = scrape_series(kernel)
        tl, vl = scrape_series(legacy)
        assert len(tk) == 200  # every 5s scrape still happened
        assert np.array_equal(tk, tl) and np.array_equal(vk, vl)

    def test_zero_rate_fractional_window_grid(self):
        """Fast-forwarded boundary times must use the same float
        accumulation as the loop even off the integer grid."""
        kernel, legacy = self._pair(seed=1, policy=ConstantRate(0.0))
        for w in [7.3, 93.1, 0.6, 55.55]:
            kernel.advance(w)
            legacy_run_for(legacy.driver, w)
        tk, _ = scrape_series(kernel)
        tl, _ = scrape_series(legacy)
        assert np.array_equal(tk, tl)

    def test_diurnal_zero_hint_armed_equivalent(self):
        """DiurnalRate with amplitude > 1 clips to zero for part of each
        cycle; the kernel fast-forwards those spans via the new
        ``zero_until`` hint and must stay bit-identical to the loop."""
        policy = DiurnalRate(base=40, amplitude=1.6, period=120.0)
        kernel, legacy = self._pair(seed=4, policy=policy)
        for w in [30.0, 47.3, 61.2, 0.9, 100.0, 33.33]:
            kernel.advance(w)
            legacy_run_for(legacy.driver, w)
        assert kernel.driver.stats.requests > 0  # load does flow
        assert stats_key(kernel) == stats_key(legacy)
        tk, vk = scrape_series(kernel)
        tl, vl = scrape_series(legacy)
        assert np.array_equal(tk, tl) and np.array_equal(vk, vl)

    def test_burst_zero_hint_armed_equivalent(self):
        """burst_factor=0 makes every burst window a provably idle span."""
        policy = BurstRate(base=50, burst_factor=0.0, interval=40.0,
                           burst_duration=12.0)
        kernel, legacy = self._pair(seed=8, policy=policy)
        for w in [25.0, 40.0, 7.5, 61.2, 90.0]:
            kernel.advance(w)
            legacy_run_for(legacy.driver, w)
        assert kernel.driver.stats.requests > 0
        assert stats_key(kernel) == stats_key(legacy)
        tk, vk = scrape_series(kernel)
        tl, vl = scrape_series(legacy)
        assert np.array_equal(tk, tl) and np.array_equal(vk, vl)

    def test_probe_error_rate_equivalent(self):
        kernel, legacy = self._pair(seed=2, workload_rate=30)
        for env in (kernel, legacy):
            env.app.backends["mongodb-geo"].revoke_roles("admin")
        k = kernel.probe_error_rate(10)
        legacy_run_for(legacy.driver, 10)
        s = legacy.driver.stats
        assert k == pytest.approx(s.errors / s.requests)
        assert stats_key(kernel) == stats_key(legacy)


class TestKernelRobustness:
    def test_legacy_run_for_does_not_poison_queue(self):
        """run_for advances the clock past pending events (it bypasses the
        queue); the next advance() must fire them late, not crash."""
        env = CloudEnvironment(HotelReservation, seed=1, workload_rate=30)
        legacy_run_for(env.driver, 40.0)          # resync event at t=30 now overdue
        env.advance(10.0)                 # must not raise
        assert env.clock.now == 50.0

    def test_fast_forward_respects_queued_rate_change(self):
        """A set_rate-style event inside an idle span must not be skipped
        over: load resumes at the first boundary after it fires."""
        from repro.workload import ConstantRate as CR
        env = CloudEnvironment(HotelReservation, seed=1, policy=CR(0.0))
        env.queue.schedule_at(
            2.0, lambda: setattr(env.driver, "policy", CR(50.0)))
        env.advance(10.0)
        # boundaries 2..9 each issue 50 requests under the new policy
        assert env.driver.stats.requests == 400

    def test_passive_resync_does_not_cap_fast_forward(self):
        """The recurring resync is passive, so idle spans still skip whole
        scrape intervals across its fire times (and it still fires)."""
        env = CloudEnvironment(HotelReservation, seed=1,
                               policy=ConstantRate(0.0),
                               resync_interval=30.0)
        env.driver.scrape_interval = 300.0
        env.advance(900.0)
        assert env._resync.fired == 30
        assert env.driver.stats.requests == 0


class TestTriggerFidelityEquivalence:
    """Metric-triggered timeline entries must fire at the same simulated
    time (± one scrape interval) under ``per_request`` and ``aggregate``
    fidelity: both tiers scrape at identical timestamps, request/error
    rates are exact counts in both, and aggregate spans never coalesce
    past a scrape (the earliest possible watch evaluation)."""

    def _fire_time(self, fidelity, seed, sustain=0.0):
        from repro.faults import FaultSchedule, MetricAbove
        env = CloudEnvironment(HotelReservation, seed=seed,
                               workload_rate=60, fidelity=fidelity)
        armed = (FaultSchedule()
                 .inject(10.0, "RevokeAuth", ("mongodb-geo",))
                 .when(MetricAbove("frontend", "error_rate", 2.0,
                                   sustain_s=sustain),
                       "PodFailure", ("recommendation",))
                 ).arm(env)
        env.advance(120.0)
        fired = {d: t for t, d in armed.log}
        env.close()
        return fired["inject PodFailure -> ['recommendation']"]

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_metric_trigger_same_time_across_fidelities(self, seed):
        scrape = 5.0  # the environments' scrape interval
        t_pr = self._fire_time("per_request", seed)
        t_ag = self._fire_time("aggregate", seed)
        assert abs(t_pr - t_ag) <= scrape

    def test_sustained_trigger_same_time_across_fidelities(self):
        t_pr = self._fire_time("per_request", 3, sustain=15.0)
        t_ag = self._fire_time("aggregate", 3, sustain=15.0)
        assert t_pr >= 10.0 + 15.0  # sustain window actually enforced
        assert abs(t_pr - t_ag) <= 5.0

    def test_trigger_fires_in_fast_forwarded_idle_span(self):
        """A pending watch must not be skipped by the idle fast-forward:
        scrapes still run, so a metric trigger on a quiet system fires."""
        from repro.faults import FaultSchedule, MetricBelow
        env = CloudEnvironment(HotelReservation, seed=1,
                               policy=ConstantRate(0.0))
        armed = (FaultSchedule()
                 .when(MetricBelow("frontend", "request_rate", 0.5),
                       "NetworkLoss", ("search",))
                 ).arm(env)
        env.advance(100.0)
        assert armed.log and armed.log[0][0] == 5.0  # first scrape
        env.close()


class TestKernelConcurrencyDeterminism:
    """Scenario problems run on the kernel; fan-out must stay bit-identical
    to serial, exactly like the benchmark problems."""

    PIDS = ("delayed_revoke_auth_hotel_res-detection-1",
            "cascade_geo_outage_hotel_res-localization-1")

    @staticmethod
    def case_key(case):
        return (case.agent, case.pid, case.success, case.steps,
                case.duration_s, case.input_tokens, case.output_tokens,
                sorted(case.details.items()))

    def test_concurrency_1_and_4_identical(self):
        assert set(self.PIDS) <= set(scenario_pids())
        serial = BenchmarkRunner(max_steps=12, seed=6, concurrency=1) \
            .run_suite(agents=("gpt-4-w-shell",), pids=self.PIDS)
        fanout = BenchmarkRunner(max_steps=12, seed=6, concurrency=4) \
            .run_suite(agents=("gpt-4-w-shell",), pids=self.PIDS)
        assert [self.case_key(c) for c in serial.cases] == \
            [self.case_key(c) for c in fanout.cases]
