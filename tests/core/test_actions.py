"""The v2 action registry: @action marks, per-task surfaces, structured
observations, and registry-rendered API docs."""

import inspect

import pytest

from repro.apps import HotelReservation
from repro.core.aci import (
    DEFAULT_REGISTRY,
    TaskActions,
    extract_api_docs,
    registry_for,
)
from repro.core.actions import ActionRegistry, Observation, action
from repro.core.env import CloudEnvironment


def legacy_extract_api_docs(actions_cls):
    """The seed's reflection-based doc renderer, kept verbatim as the
    parity oracle for the registry renderer."""
    blocks = []
    for name, member in inspect.getmembers(actions_cls, inspect.isfunction):
        if name.startswith("_"):
            continue
        sig = inspect.signature(member)
        params = [p for p in sig.parameters.values() if p.name != "self"]
        rendered = ", ".join(str(p) for p in params)
        doc = inspect.getdoc(member) or ""
        blocks.append(f"{name}({rendered})\n{doc}")
    return "\n\n".join(blocks)


class TestRegistry:
    def test_every_registered_action_in_docs(self):
        docs = DEFAULT_REGISTRY.render_docs()
        for spec in DEFAULT_REGISTRY:
            assert f"{spec.name}(" in docs
            assert spec.doc().splitlines()[0] in docs

    def test_docs_parity_with_legacy_extractor(self):
        """Registry rendering must match the seed's reflection output
        byte for byte (every public TaskActions method is registered)."""
        assert DEFAULT_REGISTRY.render_docs() == \
            legacy_extract_api_docs(TaskActions)

    def test_extract_api_docs_back_compat_wrapper(self):
        assert extract_api_docs() == DEFAULT_REGISTRY.render_docs()

    def test_registry_contains_and_get(self):
        assert "get_logs" in DEFAULT_REGISTRY
        assert "nope" not in DEFAULT_REGISTRY
        assert DEFAULT_REGISTRY.get("submit").name == "submit"

    def test_names_sorted(self):
        names = DEFAULT_REGISTRY.names()
        assert list(names) == sorted(names)

    def test_parser_default_surface_matches_registry(self):
        """The deprecated extract_api_docs()/parse_action() defaults must
        advertise and accept the same action set."""
        from repro.core.parser import VALID_ACTIONS
        assert set(VALID_ACTIONS) == set(DEFAULT_REGISTRY.names())

    def test_subclass_added_public_method_registered(self):
        """v1 extension pattern: add a plain public method to a TaskActions
        subclass — it must still become an action (reflection semantics)."""
        class Custom(TaskActions):
            def my_probe(self, target: str) -> str:
                """Probe something."""
                return f"probed {target}"

        reg = ActionRegistry.from_class(Custom)
        assert "my_probe" in reg
        assert "get_logs" in reg
        assert "my_probe(target: str)" in reg.render_docs()


class TestPerTaskSurfaces:
    def test_mitigation_only_action_gated(self):
        assert "restart_service" in registry_for("mitigation")
        for task in ("detection", "localization", "analysis"):
            assert "restart_service" not in registry_for(task)

    def test_unfiltered_surface_has_everything(self):
        assert "restart_service" in registry_for("")

    def test_docs_follow_the_surface(self):
        assert "restart_service(" in registry_for("mitigation").render_docs()
        assert "restart_service(" not in registry_for("detection").render_docs()

    def test_legacy_unmarked_class_registers_public_methods(self):
        """A v1-style actions class (no @action marks) keeps the seed's
        reflection semantics: every public method is an action."""
        class LegacyActions:
            def probe(self, target: str) -> str:
                """Probe a target."""
                return f"probed {target}"

            def _helper(self):
                return "hidden"

        reg = ActionRegistry.from_class(LegacyActions)
        assert set(reg.names()) == {"probe"}
        docs = extract_api_docs(LegacyActions)
        assert "probe(target: str)" in docs and "Probe a target." in docs
        assert "_helper" not in docs

    def test_undecorated_override_stays_registered(self):
        class Custom(TaskActions):
            def get_logs(self, namespace: str, service: str, tail: int = 20):
                return Observation("custom logs")

        reg = ActionRegistry.from_class(Custom)
        assert "get_logs" in reg
        assert reg.execute(object.__new__(Custom), "get_logs",
                           "ns", "svc").text == "custom logs"
        # task gating from the parent's mark is inherited too
        assert "restart_service" not in ActionRegistry.from_class(
            Custom, task_type="detection")

    def test_custom_class_with_task_scoped_action(self):
        class MyActions:
            @action
            def look(self):
                """Look around."""
                return Observation("looked")

            @action(task_types=("analysis",))
            def deep_dive(self):
                """Analysis only."""
                return Observation("dove")

        reg = ActionRegistry.from_class(MyActions)
        assert set(reg.names()) == {"look", "deep_dive"}
        assert set(reg.for_task("detection").names()) == {"look"}
        assert set(reg.for_task("analysis").names()) == {"look", "deep_dive"}


class TestObservation:
    @pytest.fixture
    def actions(self):
        env = CloudEnvironment(HotelReservation, seed=5, workload_rate=20)
        env.advance(10)
        return TaskActions(env)

    def test_telemetry_returns_structured_observation(self, actions):
        obs = actions.get_logs(actions.env.namespace, "all")
        assert isinstance(obs, Observation)
        assert obs.ok
        assert obs.artifacts and str(actions.env.exporter.root) in obs.artifacts[0]
        assert "error_counts" in obs.payload

    def test_metrics_payload_machine_readable(self, actions):
        obs = actions.get_metrics(actions.env.namespace, 5)
        snapshot = obs.payload["snapshot"]
        assert "frontend" in snapshot
        assert {"cpu_m", "request_rate", "error_rate"} <= set(
            snapshot["frontend"])

    def test_error_observation_flagged(self, actions):
        obs = actions.get_logs("ghost-ns", "geo")
        assert not obs.ok
        assert obs.startswith("Error:")
        assert obs.artifacts == ()

    def test_string_protocol_delegates(self):
        obs = Observation("Saved logs to /tmp/x.", artifacts=("/tmp/x",))
        assert str(obs) == "Saved logs to /tmp/x."
        assert "logs" in obs
        assert obs.startswith("Saved")

    def test_str_methods_fall_through_to_text(self):
        obs = Observation("line one\nline two")
        assert obs.splitlines() == ["line one", "line two"]
        assert obs.strip().endswith("two")
        with pytest.raises(AttributeError):
            obs.no_such_method()

    def test_native_str_protocol(self):
        """v1 call sites slice, compare, and measure observations."""
        obs = Observation("abcdef", payload={"k": 1})
        assert obs == "abcdef"
        assert obs[:3] == "abc"
        assert len(obs) == 6
        assert obs + "!" == "abcdef!"
        assert isinstance(obs, str)
        assert obs.payload == {"k": 1}

    def test_of_error_heuristic_precision(self):
        assert not Observation.of("Error from server (NotFound): x").ok
        assert not Observation.of("sh: command not found: python").ok
        # output that merely begins with the word "errors" is not a failure
        assert Observation.of("errors: 0 encountered").ok

    def test_of_coerces_and_passes_through(self):
        assert Observation.of("hi").text == "hi"
        assert not Observation.of("Error: no").ok
        assert not Observation.of("PolicyError: blocked").ok
        # kubectl/helm facades emit lowercase "error:"
        assert not Observation.of('error: rollout not supported for "x"').ok
        obs = Observation("x", payload={"a": 1})
        assert Observation.of(obs) is obs

    def test_blocked_shell_command_not_ok(self, actions):
        obs = actions.exec_shell("rm -rf /")
        assert "PolicyError" in obs
        assert not obs.ok

    def test_restart_service_runs_rollout(self, actions):
        obs = actions.restart_service("frontend")
        assert obs.ok, obs.text
        assert "restart" in obs.text or "frontend" in obs.text
