"""Snapshot/fork must be invisible to the simulation: a forked
environment's subsequent evolution is bit-identical to a fresh
environment advanced to the same point — WorkloadStats, RNG draw order
(hence telemetry values), scrape timestamps, armed fault timelines and
pending trigger chains all resume exactly where the snapshot was taken.
That property is what lets warm benchmark workers amortize one prepared
environment across a whole sweep grid (see ``run_grid``)."""

import numpy as np
import pytest

from repro.agents.registry import agent_factory
from repro.apps import HotelReservation, SocialNetwork
from repro.core import AppSpec, CloudEnvironment, GridCell, run_grid
from repro.core.batch import run_grid_cell
from repro.faults import FaultSchedule, MetricAbove
from repro.problems import get_problem

from tests.core.test_kernel_equivalence import (
    WINDOWS,
    scrape_series,
    stats_key,
)


def fork_and_fresh(make_env, advance_before=30.0):
    """(fork, fresh): a fork taken at ``advance_before`` and a fresh env
    advanced to the same point — the bit-identity test pair."""
    origin = make_env()
    origin.advance(advance_before)
    snapshot = origin.snapshot()
    origin.close()
    fresh = make_env()
    fresh.advance(advance_before)
    return snapshot.fork(), fresh


class TestForkDeterminism:
    def test_fork_matches_fresh_env_on_irregular_windows(self):
        fork, fresh = fork_and_fresh(
            lambda: CloudEnvironment(HotelReservation, seed=3,
                                     workload_rate=45))
        for w in WINDOWS:
            fork.advance(w)
            fresh.advance(w)
        assert fork.clock.now == fresh.clock.now
        assert stats_key(fork) == stats_key(fresh)
        tk, vk = scrape_series(fork)
        tl, vl = scrape_series(fresh)
        assert np.array_equal(tk, tl), "scrape timestamps diverged"
        assert np.array_equal(vk, vl), "telemetry RNG draw order diverged"
        fork.close()
        fresh.close()

    def test_fork_preserves_rng_stream_positions(self):
        """The fork resumes every stream mid-sequence, not from its seed."""
        fork, fresh = fork_and_fresh(
            lambda: CloudEnvironment(HotelReservation, seed=5,
                                     workload_rate=30))
        draws_fork = [fork.driver.rng.random() for _ in range(32)]
        draws_fresh = [fresh.driver.rng.random() for _ in range(32)]
        assert draws_fork == draws_fresh
        # and they differ from a seed-fresh stream: state was advanced
        unused = CloudEnvironment(HotelReservation, seed=5, workload_rate=30)
        assert draws_fork != [unused.driver.rng.random() for _ in range(32)]
        fork.close()
        fresh.close()
        unused.close()

    def test_fork_is_independent_of_origin_and_siblings(self):
        origin = CloudEnvironment(HotelReservation, seed=2, workload_rate=40)
        origin.advance(20.0)
        snapshot = origin.snapshot()
        origin.advance(50.0)  # evolving the origin must not taint forks
        fork_a = snapshot.fork()
        fork_a.advance(35.0)  # nor one fork another
        fork_b = snapshot.fork()
        fork_b.advance(35.0)
        assert stats_key(fork_a) == stats_key(fork_b)
        assert fork_a.clock.now == 55.0 and origin.clock.now == 70.0
        origin.close()
        fork_a.close()
        fork_b.close()

    def test_fork_mid_fault_with_watches_and_chains(self):
        """A fork taken mid-fault — one entry fired, a MetricWatch armed,
        an AfterEvent chain pending — resumes the timeline exactly."""
        def make():
            env = CloudEnvironment(HotelReservation, seed=5,
                                   workload_rate=60)
            armed = (FaultSchedule()
                     .inject(10.0, "RevokeAuth", ("mongodb-geo",),
                             tag="revoke")
                     .after("revoke", "PodFailure", ("recommendation",),
                            delay=20.0)
                     .when(MetricAbove("frontend", "error_rate", 2.0),
                           "NetworkLoss", ("search",))
                     ).arm(env)
            return env, armed

        origin, origin_armed = make()
        origin.advance(15.0)
        assert origin_armed.pending > 0  # chain + watch still pending
        snapshot = origin.snapshot(extras=origin_armed)
        origin.close()
        fork, fork_armed = snapshot.fork_with_extras()
        assert fork_armed.env is fork  # one pickle memo covers both

        fresh, fresh_armed = make()
        fresh.advance(15.0)
        for env in (fork, fresh):
            env.advance(105.0)
        assert fork_armed.log == fresh_armed.log
        assert len(fork_armed.log) == 3  # revoke, watched loss, chained kill
        assert stats_key(fork) == stats_key(fresh)
        tk, vk = scrape_series(fork)
        tl, vl = scrape_series(fresh)
        assert np.array_equal(tk, tl) and np.array_equal(vk, vl)
        fork.close()
        fresh.close()

    def test_fork_multi_app_aggregate(self):
        fork, fresh = fork_and_fresh(
            lambda: CloudEnvironment([
                AppSpec(HotelReservation, workload_rate=200.0),
                AppSpec(SocialNetwork, workload_rate=150.0),
            ], seed=9, fidelity="aggregate"))
        for env in (fork, fresh):
            env.advance(60.0)
        for ns in fork.namespaces:
            sf, sg = fork.driver_for(ns).stats, fresh.driver_for(ns).stats
            assert (sf.requests, sf.errors, sf.latency_sum_ms) == \
                (sg.requests, sg.errors, sg.latency_sum_ms)
        fork.close()
        fresh.close()

    def test_fork_owns_a_fresh_export_root(self):
        origin = CloudEnvironment(HotelReservation, seed=1, workload_rate=10)
        origin.advance(5.0)
        fork = origin.snapshot().fork()
        assert fork.export_root != origin.export_root
        assert fork.export_root.exists()
        assert fork._owns_export_root
        fork.close()
        assert not fork.export_root.exists()  # fork cleans up only its own
        assert origin.export_root.exists()
        origin.close()


class TestSnapshotGrid:
    PID = "misconfig_k8s_social_net-detection-1"

    def _snapshot(self, seed=7):
        problem = get_problem(self.PID)
        env = problem.create_environment(seed=seed)
        problem.start_workload(env)
        problem.inject_fault(env)
        snapshot = env.snapshot(extras=problem)
        env.close()
        return snapshot

    def test_grid_cell_matches_cold_session(self):
        """A snapshot-forked session grades identically to a cold
        setup-from-scratch session at the same (env seed, agent seed)."""
        from repro.core.orchestrator import SessionHandle
        snapshot = self._snapshot(seed=7)
        warm = run_grid_cell(snapshot, GridCell(
            agent=agent_factory("flash"), agent_name="flash",
            seed=7, max_steps=6))

        problem = get_problem(self.PID)
        handle = SessionHandle(problem, seed=7, agent_name="flash")
        agent = agent_factory("flash")(handle.context, problem.task_type, 7)
        handle.bind_agent(agent, name="flash")
        cold = handle.run_sync(max_steps=6)
        handle.close()
        warm.pop("agent_seed", None)
        warm.pop("max_steps", None)
        assert warm == cold

    def test_grid_pool_bit_identical_to_serial(self):
        snapshot = self._snapshot()
        cells = [GridCell(agent=agent_factory(name), agent_name=name,
                          seed=seed, max_steps=limit)
                 for name in ("gpt-4-w-shell", "flash")
                 for seed in (0, 1)
                 for limit in (4, 6)]
        serial = run_grid(snapshot, cells, processes=1)
        pooled = run_grid(snapshot, cells, processes=2)
        assert len(serial) == len(cells)
        assert serial == pooled

    def test_sweep_grid_shapes_and_executors(self):
        from repro.bench import BenchmarkRunner
        snapshot = BenchmarkRunner(max_steps=5, seed=7) \
            .prepare_snapshot(self.PID)
        serial = BenchmarkRunner(max_steps=5, seed=7).sweep_grid(
            snapshot, agents=("flash",), seeds=(0, 1, 2),
            step_limits=(3, 5))
        pooled = BenchmarkRunner(max_steps=5, seed=7, concurrency=2,
                                 executor="process").sweep_grid(
            snapshot, agents=("flash",), seeds=(0, 1, 2),
            step_limits=(3, 5))
        assert len(serial) == 6
        assert serial == pooled
        assert [(r["agent_seed"], r["max_steps"]) for r in serial] == \
            [(s, l) for s in (0, 1, 2) for l in (3, 5)]
        assert all(r["pid"] == self.PID for r in serial)

    def test_grid_cell_requires_co_captured_problem(self):
        env = CloudEnvironment(HotelReservation, seed=1, workload_rate=10)
        snapshot = env.snapshot()  # no extras
        env.close()
        with pytest.raises(ValueError, match="co-capture"):
            run_grid_cell(snapshot, GridCell(agent=agent_factory("flash"),
                                             agent_name="flash"))

    def test_run_grid_validates_processes(self):
        snapshot = self._snapshot()
        with pytest.raises(ValueError):
            run_grid(snapshot, [], processes=0)
        assert run_grid(snapshot, [], processes=2) == []

    def test_snapshot_is_picklable_and_compact_enough(self):
        import pickle
        snapshot = self._snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.taken_at == snapshot.taken_at
        assert clone.size_bytes == snapshot.size_bytes
        fork = clone.fork()
        assert fork.clock.now == snapshot.taken_at
        fork.close()


class TestGeneratedSnapshotGrid:
    """Snapshot/fork on *generated* problems: the warm-worker grid must
    treat a procedurally synthesized pool exactly like the hand-written
    one — fork sessions bit-identical to cold setup-from-scratch runs,
    across trigger shapes, fidelity tiers and multi-tenant app sets."""

    def _sample_pids(self):
        """Deterministic shape-diverse sample of the seed-0 pool: the
        first delayed, metric and chain recipes (multi-app + both
        fidelity tiers among them)."""
        from repro.problems import ScenarioGenerator
        gen = ScenarioGenerator(0)
        picked = {}
        for i in range(30):
            spec = gen.spec(i)
            if spec.shape in ("delayed", "metric", "chain") \
                    and spec.shape not in picked:
                picked[spec.shape] = spec.pid
        return list(picked.values())

    def test_generated_fork_matches_cold_session(self):
        from repro.core.orchestrator import SessionHandle
        for pid in self._sample_pids():
            problem = get_problem(pid)
            env = problem.create_environment(seed=7)
            problem.start_workload(env)
            problem.inject_fault(env)
            snapshot = env.snapshot(extras=problem)
            env.close()
            warm = run_grid_cell(snapshot, GridCell(
                agent=agent_factory("flash"), agent_name="flash",
                seed=7, max_steps=5))

            cold_problem = get_problem(pid)
            handle = SessionHandle(cold_problem, seed=7, agent_name="flash")
            agent = agent_factory("flash")(handle.context,
                                           cold_problem.task_type, 7)
            handle.bind_agent(agent, name="flash")
            cold = handle.run_sync(max_steps=5)
            handle.close()
            warm.pop("agent_seed", None)
            warm.pop("max_steps", None)
            assert warm == cold, pid

    def test_generated_sweep_grid_pooled_matches_serial(self):
        from repro.bench import BenchmarkRunner
        pid = self._sample_pids()[0]
        snapshot = BenchmarkRunner(max_steps=4, seed=7) \
            .prepare_snapshot(pid)
        serial = BenchmarkRunner(max_steps=4, seed=7).sweep_grid(
            snapshot, agents=("flash",), seeds=(0, 1), step_limits=(3, 4))
        pooled = BenchmarkRunner(max_steps=4, seed=7, concurrency=2,
                                 executor="process").sweep_grid(
            snapshot, agents=("flash",), seeds=(0, 1), step_limits=(3, 4))
        assert len(serial) == 4
        assert serial == pooled
        assert all(r["pid"] == pid for r in serial)

    def test_generated_snapshot_pickle_roundtrip(self):
        """Generated problems (spec-driven, clone tenants included) are
        picklable as snapshot extras."""
        import pickle
        from repro.bench import BenchmarkRunner
        pid = self._sample_pids()[0]
        snapshot = BenchmarkRunner(max_steps=4, seed=7) \
            .prepare_snapshot(pid)
        clone = pickle.loads(pickle.dumps(snapshot))
        fork, problem = clone.fork_with_extras()
        assert problem.pid == pid
        fork.close()
