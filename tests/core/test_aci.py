import pytest

from repro.apps import HotelReservation
from repro.core.aci import SubmissionReceived, TaskActions, extract_api_docs
from repro.core.env import CloudEnvironment


@pytest.fixture
def env():
    return CloudEnvironment(HotelReservation, seed=5, workload_rate=20)


@pytest.fixture
def actions(env):
    env.advance(10)
    return TaskActions(env)


class TestGetLogs:
    def test_all_summary_lists_error_services(self, env, actions):
        env.app.backends["mongodb-geo"].revoke_roles("admin")
        env.advance(10)
        out = actions.get_logs(env.namespace, "all")
        assert "ERROR lines per service" in out and "geo" in out

    def test_all_clean_system(self, env, actions):
        out = actions.get_logs(env.namespace, "all")
        assert "No ERROR-level log lines" in out

    def test_specific_service_tail(self, env, actions):
        env.app.backends["mongodb-geo"].revoke_roles("admin")
        env.advance(10)
        out = actions.get_logs(env.namespace, "geo")
        assert "not authorized on geo-db" in out

    def test_returns_save_path(self, env, actions):
        out = actions.get_logs(env.namespace, "all")
        assert str(env.exporter.root) in out

    def test_unknown_namespace_is_paper_error(self, actions):
        out = actions.get_logs("ghost-ns", "geo")
        assert out.startswith("Error: Your service/namespace does not exist")

    def test_unknown_service_is_paper_error(self, env, actions):
        """§3.6.3's example: a bad service name gets the namespace error."""
        out = actions.get_logs(env.namespace, "Social Network")
        assert out.startswith("Error: Your service/namespace does not exist")


class TestGetMetricsTraces:
    def test_metrics_snapshot(self, env, actions):
        out = actions.get_metrics(env.namespace, 5)
        assert "err_rate" in out and "frontend" in out

    def test_traces_clean(self, env, actions):
        out = actions.get_traces(env.namespace, 5)
        assert "No error spans" in out

    def test_traces_show_error_services(self, env, actions):
        env.app.backends["mongodb-geo"].revoke_roles("admin")
        env.advance(10)
        out = actions.get_traces(env.namespace, 5)
        assert "error span" in out or "% of spans errored" in out

    def test_metrics_bad_namespace(self, actions):
        assert actions.get_metrics("ghost", 5).startswith("Error:")


class TestExecAndSubmit:
    def test_exec_shell_routes_kubectl(self, env, actions):
        out = actions.exec_shell(f"kubectl get pods -n {env.namespace}")
        assert "Running" in out

    def test_exec_shell_policy(self, actions):
        assert "PolicyError" in actions.exec_shell("rm -rf /")

    def test_submit_raises_sentinel(self, actions):
        with pytest.raises(SubmissionReceived) as exc:
            actions.submit("yes")
        assert exc.value.solution == "yes"

    def test_submit_default_none(self, actions):
        with pytest.raises(SubmissionReceived) as exc:
            actions.submit()
        assert exc.value.solution is None


class TestApiDocs:
    def test_docs_cover_every_action(self):
        docs = extract_api_docs()
        for api in ("get_logs", "get_metrics", "get_traces", "exec_shell",
                    "submit"):
            assert api + "(" in docs

    def test_docs_include_signatures_and_args(self):
        docs = extract_api_docs()
        assert "namespace:" in docs
        assert "Args:" in docs

    def test_private_methods_excluded(self):
        assert "_investigate" not in extract_api_docs()
