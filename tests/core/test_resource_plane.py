"""Resource-plane integration: emergent contention, HPA sessions, and the
coupling-off bit-identity contract."""

import numpy as np

from repro.agents.registry import build_agent_for
from repro.apps import HotelReservation
from repro.core import CloudEnvironment, Orchestrator
from repro.kubesim import HpaPolicy
from repro.problems import get_problem
from repro.problems.scenarios import (
    HOTEL_NS,
    SOCIAL_NS,
    EmergentNoisyNeighborDetection,
)

from tests.core.test_kernel_equivalence import scrape_series, stats_key

WINDOWS = [30.0, 3.7, 5.0, 0.4, 12.3, 1.0, 17.77, 8.25]


class TestEmergentContention:
    def test_co_tenant_degradation_without_any_fault(self):
        """Two apps on one undersized node degrade each other purely from
        workload — the timeline is empty, nothing is ever injected."""
        prob = EmergentNoisyNeighborDetection(pid="emergent-test")
        env = prob.create_environment(seed=11)
        prob.start_workload(env)
        prob.inject_fault(env)
        assert prob.armed is not None
        assert prob.armed.log == []      # empty timeline: nothing to fire

        max_mult = 1.0
        max_shed = 0.0
        for _ in range(40):              # 200 s in rollup-sized steps
            env.advance(5.0)
            max_mult = max(max_mult,
                           env.resources.multiplier_for(HOTEL_NS, "frontend"))
            max_shed = max(max_shed,
                           env.resources.overload_p(HOTEL_NS, "frontend"))

        # the neighbor's bursts pushed the shared node past both knees,
        # and the hotel app — which has no fault and no burst — felt it
        assert max_mult > 1.0
        assert max_shed > 0.0
        assert env.driver_for(HOTEL_NS).stats.errors > 0
        assert env.driver_for(SOCIAL_NS).stats.errors > 0
        # still nothing injected
        assert prob.armed.log == []
        env.close()

    def test_contention_recovers_between_bursts(self):
        prob = EmergentNoisyNeighborDetection(pid="emergent-test")
        env = prob.create_environment(seed=11)
        prob.start_workload(env)
        prob.inject_fault(env)
        mults = []
        for _ in range(40):
            env.advance(5.0)
            mults.append(env.resources.multiplier_for(HOTEL_NS, "frontend"))
        # pressure comes and goes with the neighbor's burst cycle
        assert max(mults) > 1.0
        assert min(mults) == 1.0
        env.close()


class TestHpaSession:
    def test_spike_scales_up_then_back_down_in_graded_session(self):
        """The HPA scenario, end-to-end through the grading path: the
        autoscaler reacts during the agent's session, scaling the
        frontend up under the spike and back down after stabilization."""
        prob = get_problem("hpa_spike_recovery_hotel_res-detection-1")
        orch = Orchestrator(seed=0)
        handle = orch.create_session(prob, seed=11)
        agent = build_agent_for("gpt-4-w-shell", handle.context,
                                prob.task_type, seed=11)
        handle.bind_agent(agent, name="gpt-4-w-shell")
        result = handle.run_sync(max_steps=12)
        assert isinstance(result["success"], bool)

        env = handle.env
        log = env.autoscaler.log
        # the session may end before the scale-down stabilization window
        # elapses — give the clock room, then require the full cycle
        deadline = env.clock.now + 240.0
        while env.clock.now < deadline and not any(
                old > new for (_, _, _, old, new) in log):
            env.advance(10.0)

        frontend = [(old, new) for (_, ns, dep, old, new) in log
                    if ns == HOTEL_NS and dep == "frontend"]
        assert any(new > old for old, new in frontend), log
        assert any(new < old for old, new in frontend), log
        # rescales surfaced as cluster events an agent can discover
        reasons = [e.reason for e in env.cluster.events_in(HOTEL_NS)]
        assert "SuccessfulRescale" in reasons
        orch.release(handle)


class TestCouplingOffBitIdentity:
    """``resource_coupling=False`` (the default) and a coupled-but-idle
    plane must leave workload execution bit-identical — the contract that
    keeps all 48 benchmark problems' results unchanged."""

    def _drain(self, env):
        for w in WINDOWS:
            env.advance(w)

    def _assert_identical(self, a, b):
        assert a.clock.now == b.clock.now
        assert stats_key(a) == stats_key(b)
        ta, va = scrape_series(a)
        tb, vb = scrape_series(b)
        assert np.array_equal(ta, tb), "scrape timestamps diverged"
        assert np.array_equal(va, vb), "telemetry RNG draw order diverged"

    def test_coupled_but_below_knee_is_bit_identical(self):
        plain = CloudEnvironment(HotelReservation, seed=5, workload_rate=60)
        coupled = CloudEnvironment(HotelReservation, seed=5,
                                   workload_rate=60, resource_coupling=True)
        self._drain(plain)
        self._drain(coupled)
        # the plane really ran, saw demand, and published nothing
        assert coupled.resources.rollups > 0
        usage = coupled.resources.node_usage()
        assert max(u.used_mcores for u in usage) > 0.0
        assert max(u.cpu_utilization for u in usage) < 0.7
        self._assert_identical(plain, coupled)
        plain.close()
        coupled.close()

    def test_autoscale_only_plane_is_bit_identical_when_stable(self):
        """An HPA-only environment (coupling off) observes utilization but
        never perturbs execution while the deployment is correctly sized."""
        plain = CloudEnvironment(HotelReservation, seed=5, workload_rate=60)
        hpa = CloudEnvironment(
            HotelReservation, seed=5, workload_rate=60,
            autoscale=(HpaPolicy(namespace=HOTEL_NS, deployment="frontend",
                                 target_utilization=0.7),))
        self._drain(plain)
        self._drain(hpa)
        assert hpa.resources.rollups > 0
        assert hpa.autoscaler.log == []   # sized right: never rescaled
        # demand observed, degradation never published (uncoupled plane)
        assert hpa.resources.utilization_of(HOTEL_NS, "frontend", 1) > 0.0
        assert hpa.resources.multiplier_for(HOTEL_NS, "frontend") == 1.0
        self._assert_identical(plain, hpa)
        plain.close()
        hpa.close()
