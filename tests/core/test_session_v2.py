"""Orchestrator v2: session handles, concurrency, the compat shim, and the
execution-error fixes that came with the redesign."""

import asyncio

import pytest

from repro.core import Orchestrator
from repro.core.batch import SessionSpec, run_sessions, run_sessions_sync
from repro.core.problem import DetectionTask, LocalizationTask, MitigationTask


class ScriptedAgent:
    def __init__(self, actions):
        self.actions = list(actions)
        self.i = 0

    async def get_action(self, state: str) -> str:
        action = self.actions[min(self.i, len(self.actions) - 1)]
        self.i += 1
        return action


DETECT_SCRIPT = ['get_logs("test-hotel-reservation", "all")', 'submit("yes")']


class TestSessionHandle:
    def test_create_session_returns_independent_handle(self):
        orch = Orchestrator()
        h1 = orch.create_session(DetectionTask("RevokeAuth"), seed=1)
        h2 = orch.create_session(DetectionTask("RevokeAuth"), seed=1)
        assert h1.env is not h2.env
        assert h1.actions is not h2.actions
        assert orch.handles == [h1, h2]

    def test_context_unpacks_like_seed_tuple(self):
        orch = Orchestrator()
        handle = orch.create_session("revoke_auth_hotel_res-detection-1",
                                     seed=3)
        prob_desc, instructs, apis = handle.context
        assert "HotelReservation" in prob_desc
        assert "submit" in instructs
        assert "get_logs" in apis

    def test_run_sync_drives_loop(self):
        orch = Orchestrator()
        handle = orch.create_session(DetectionTask("RevokeAuth"),
                                     ScriptedAgent(DETECT_SCRIPT), seed=3)
        res = handle.run_sync(max_steps=10)
        assert res["success"] and handle.session.submitted

    def test_run_without_agent_rejected(self):
        handle = Orchestrator().create_session(DetectionTask("RevokeAuth"))
        with pytest.raises(RuntimeError):
            handle.run_sync()

    def test_bad_agent_rejected(self):
        handle = Orchestrator().create_session(DetectionTask("RevokeAuth"))
        with pytest.raises(TypeError):
            handle.bind_agent(object())

    def test_mitigation_session_sees_restart_service(self):
        orch = Orchestrator()
        mit = orch.create_session(MitigationTask(6,
                                                 target="compose-post-service"),
                                  seed=3)
        det = orch.create_session(DetectionTask("RevokeAuth"), seed=3)
        assert "restart_service" in mit.registry
        assert "restart_service" not in det.registry
        assert "restart_service(" in mit.context.api_docs
        assert "restart_service(" not in det.context.api_docs

    def test_step_records_structured_observation(self):
        orch = Orchestrator()
        handle = orch.create_session(DetectionTask("RevokeAuth"),
                                     ScriptedAgent(DETECT_SCRIPT), seed=3)
        handle.run_sync(max_steps=5)
        step = handle.session.steps[0]
        assert step.artifacts, "telemetry action must record artifact paths"
        assert "error_counts" in step.payload

    def test_release_untracks_handle(self):
        orch = Orchestrator()
        handle = orch.create_session(DetectionTask("RevokeAuth"))
        assert orch.handles == [handle]
        orch.release(handle)
        assert orch.handles == []

    def test_two_handles_run_concurrently_without_sharing_state(self):
        orch = Orchestrator()
        h1 = orch.create_session(DetectionTask("RevokeAuth"),
                                 ScriptedAgent(DETECT_SCRIPT), seed=7)
        h2 = orch.create_session(
            LocalizationTask(2, target="user-service"),
            ScriptedAgent(['get_logs("test-social-network", "all")',
                           'submit(["user-service"])']), seed=7)

        async def both():
            return await asyncio.gather(h1.run(10), h2.run(10))

        r1, r2 = asyncio.run(both())
        assert r1["success"] and r2["success@1"]
        assert h1.env is not h2.env
        assert h1.session is not h2.session
        assert h1.session.pid != h2.session.pid


class TestCompatShim:
    def test_seed_flow_unchanged(self):
        orch = Orchestrator(seed=3)
        prob_desc, instructs, apis = orch.init_problem(
            DetectionTask("RevokeAuth"))
        orch.register_agent(ScriptedAgent(DETECT_SCRIPT), name="scripted")
        res = orch.run_problem(max_steps=10)
        assert res["success"]
        assert orch.session.agent_name == "scripted"
        assert orch.sessions and orch.sessions[-1] is orch.session

    def test_context_supports_tuple_indexing(self):
        """v1 returned a plain tuple; indexing/len must keep working."""
        orch = Orchestrator(seed=3)
        ctx = orch.init_problem(DetectionTask("RevokeAuth"))
        assert len(ctx) == 3
        assert "HotelReservation" in ctx[0]
        assert "get_logs" in ctx[2]
        assert tuple(ctx) == (ctx.description, ctx.instructions, ctx.api_docs)

    def test_shim_does_not_accumulate_handles(self):
        """The seed flow held one problem at a time; re-initialising must
        not pin the replaced environment on the orchestrator."""
        orch = Orchestrator(seed=3)
        orch.init_problem(DetectionTask("RevokeAuth"))
        orch.init_problem(DetectionTask("RevokeAuth"))
        assert len(orch.handles) == 1

    def test_register_before_init_still_works(self):
        orch = Orchestrator(seed=3)
        orch.register_agent(ScriptedAgent(DETECT_SCRIPT))
        orch.init_problem(DetectionTask("RevokeAuth"))
        assert orch.run_problem(max_steps=10)["success"]

    def test_partial_session_reachable_after_agent_crash(self):
        """v1 exposed the session from loop start; a crash mid-run must not
        make the partial trajectory unreachable."""
        class CrashAfterOne:
            def __init__(self):
                self.calls = 0

            async def get_action(self, state):
                self.calls += 1
                if self.calls > 1:
                    raise RuntimeError("agent crashed")
                return 'get_logs("test-hotel-reservation", "all")'

        orch = Orchestrator(seed=3)
        orch.init_problem(DetectionTask("RevokeAuth"))
        orch.register_agent(CrashAfterOne())
        with pytest.raises(RuntimeError, match="agent crashed"):
            orch.run_problem(max_steps=5)
        assert len(orch.sessions) == 1
        assert orch.sessions[-1].steps[0].action_name == "get_logs"

    def test_run_problem_inside_running_event_loop(self):
        """The seed's bare asyncio.run crashed in notebooks/async drivers."""
        async def driver():
            orch = Orchestrator(seed=3)
            orch.init_problem(DetectionTask("RevokeAuth"))
            orch.register_agent(ScriptedAgent(DETECT_SCRIPT))
            return orch.run_problem(max_steps=10)

        res = asyncio.run(driver())
        assert res["success"]


class TestExecutionErrors:
    def _handle(self, script, seed=3):
        orch = Orchestrator()
        return orch.create_session(DetectionTask("RevokeAuth"),
                                   ScriptedAgent(script), seed=seed)

    def test_signature_mismatch_reports_invalid_arguments(self):
        handle = self._handle(['get_logs("ns", "all", 5, "extra")',
                               'submit("yes")'])
        handle.run_sync(max_steps=5)
        obs = handle.session.steps[0].observation
        assert obs.startswith("Error: invalid arguments for get_logs")

    def test_typeerror_inside_action_not_misreported(self, monkeypatch):
        """A TypeError raised by the action body is an execution error,
        not an invalid-call error (the seed conflated the two)."""
        handle = self._handle(['exec_shell("kubectl get pods")',
                               'submit("yes")'])
        def boom(command):
            raise TypeError("boom inside the action body")
        monkeypatch.setattr(handle.actions.shell, "run", boom)
        handle.run_sync(max_steps=5)
        obs = handle.session.steps[0].observation
        assert "boom inside the action body" in obs
        assert "invalid arguments" not in obs

    def test_shell_command_recorded_from_keyword_argument(self):
        handle = self._handle(
            ['exec_shell(command="kubectl get pods -n test-hotel-reservation")',
             'submit("yes")'])
        handle.run_sync(max_steps=5)
        step = handle.session.steps[0]
        assert step.action_name == "exec_shell"
        assert step.shell_command == "kubectl"


class TestBatchExecutor:
    def _specs(self, n=3, max_steps=6):
        return [
            SessionSpec(
                problem=DetectionTask("RevokeAuth"),
                agent=ScriptedAgent(DETECT_SCRIPT),
                agent_name=f"a{i}",
                seed=i,
                max_steps=max_steps,
            )
            for i in range(n)
        ]

    def test_outcomes_in_spec_order(self):
        outcomes = run_sessions_sync(self._specs(), concurrency=3)
        assert [o.spec.agent_name for o in outcomes] == ["a0", "a1", "a2"]
        assert all(o.ok and o.result["success"] for o in outcomes)

    def test_agent_factory_spec(self):
        built = []

        def factory(context, task_type, seed):
            built.append((task_type, seed))
            return ScriptedAgent(DETECT_SCRIPT)

        spec = SessionSpec(problem="revoke_auth_hotel_res-detection-1",
                           agent=factory, seed=11)
        [outcome] = run_sessions_sync([spec], concurrency=1)
        assert outcome.ok
        assert built == [("detection", 11)]

    def test_failing_session_isolated(self):
        class ExplodingAgent:
            def get_action(self, state):
                raise RuntimeError("agent crashed")

        specs = self._specs(2)
        specs.insert(1, SessionSpec(problem=DetectionTask("RevokeAuth"),
                                    agent=ExplodingAgent(), seed=9))
        outcomes = run_sessions_sync(specs, concurrency=3)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert "agent crashed" in str(outcomes[1].error)

    def test_fail_fast_propagates_first_error(self):
        class ExplodingAgent:
            def get_action(self, state):
                raise RuntimeError("agent crashed")

        specs = [SessionSpec(problem=DetectionTask("RevokeAuth"),
                             agent=ExplodingAgent(), seed=9)]
        with pytest.raises(RuntimeError, match="agent crashed"):
            run_sessions_sync(specs, concurrency=1, fail_fast=True)

    def test_fail_fast_cancels_sibling_sessions(self):
        """fail_fast must not leave orphaned sessions running in the
        caller's event loop."""
        class SlowAgent:
            async def get_action(self, state):
                await asyncio.sleep(30)
                return 'submit("yes")'

        class Boom:
            def get_action(self, state):
                raise RuntimeError("kaput")

        async def driver():
            specs = [
                SessionSpec(DetectionTask("RevokeAuth"), SlowAgent(), seed=1),
                SessionSpec(DetectionTask("RevokeAuth"), Boom(), seed=2),
            ]
            with pytest.raises(RuntimeError, match="kaput"):
                await run_sessions(specs, concurrency=2, fail_fast=True)
            return [t for t in asyncio.all_tasks()
                    if t is not asyncio.current_task()]

        assert asyncio.run(driver()) == []

    def test_release_handles_drops_env_keeps_trajectory(self):
        outcomes = run_sessions_sync(self._specs(2), concurrency=2,
                                     release_handles=True)
        for o in outcomes:
            assert o.ok
            assert o.handle is None
            assert o.session is not None and o.session.submitted

    def test_bad_concurrency_rejected(self):
        with pytest.raises(ValueError):
            run_sessions_sync(self._specs(1), concurrency=0)

    def test_run_sessions_awaitable_from_async_code(self):
        async def driver():
            return await run_sessions(self._specs(2), concurrency=2)

        outcomes = asyncio.run(driver())
        assert all(o.ok for o in outcomes)
