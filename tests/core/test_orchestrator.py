import pytest

from repro.core import Orchestrator
from repro.core.problem import DetectionTask, LocalizationTask, MitigationTask


class ScriptedAgent:
    """Plays back a fixed action script (the paper's minimal agent shape)."""

    def __init__(self, actions):
        self.actions = list(actions)
        self.i = 0

    async def get_action(self, state: str) -> str:
        action = self.actions[min(self.i, len(self.actions) - 1)]
        self.i += 1
        return action


class SyncAgent:
    """get_action may be a plain function — the orchestrator must accept it."""

    def get_action(self, state: str) -> str:
        return 'submit("yes")'


def run(problem, agent, max_steps=10, seed=3):
    orch = Orchestrator(seed=seed)
    orch.init_problem(problem)
    orch.register_agent(agent, name="scripted")
    return orch, orch.run_problem(max_steps=max_steps)


class TestSessionLoop:
    def test_detection_happy_path(self):
        orch, res = run(DetectionTask("RevokeAuth"),
                        ScriptedAgent(['get_logs("test-hotel-reservation", "all")',
                                       'submit("yes")']))
        assert res["success"] and res["steps"] == 2

    def test_sync_agent_supported(self):
        _, res = run(DetectionTask("RevokeAuth"), SyncAgent())
        assert res["success"]

    def test_localization_full_interaction(self):
        agent = ScriptedAgent([
            'get_logs("test-social-network", "all")',
            'exec_shell("kubectl get endpoints -n test-social-network")',
            'submit(["user-service"])',
        ])
        _, res = run(LocalizationTask(2, target="user-service"), agent)
        assert res["success@1"]

    def test_invalid_action_feeds_error_back(self):
        agent = ScriptedAgent(["not an action at all", 'submit("yes")'])
        orch, res = run(DetectionTask("RevokeAuth"), agent)
        first = orch.session.steps[0]
        assert not first.valid
        assert first.observation.startswith("Error:")
        assert res["success"]  # agent recovered on step 2

    def test_step_limit_without_submission_fails(self):
        agent = ScriptedAgent(['get_metrics("test-hotel-reservation", 5)'])
        _, res = run(DetectionTask("RevokeAuth"), agent, max_steps=4)
        assert not res["success"]
        assert res["steps"] == 4
        assert res["reason"] == "no submission within step limit"

    def test_mitigation_graded_on_environment(self):
        agent = ScriptedAgent([
            'exec_shell("kubectl scale deployment compose-post-service '
            '--replicas=1 -n test-social-network")',
            "submit()",
        ])
        _, res = run(MitigationTask(6, target="compose-post-service"), agent)
        assert res["success"], res.get("reason")

    def test_mitigation_wrong_fix_fails(self):
        agent = ScriptedAgent([
            'exec_shell("kubectl rollout restart deployment nginx-web-server '
            '-n test-social-network")',
            "submit()",
        ])
        _, res = run(MitigationTask(6, target="compose-post-service"), agent)
        assert not res["success"]

    def test_trajectory_recorded(self):
        agent = ScriptedAgent(['get_logs("test-hotel-reservation", "all")',
                               'submit("yes")'])
        orch, _ = run(DetectionTask("RevokeAuth"), agent)
        assert len(orch.session.steps) == 2
        assert orch.session.steps[0].action_name == "get_logs"
        assert orch.session.steps[1].action_name == "submit"
        assert orch.session.submitted

    def test_virtual_time_advances_during_session(self):
        agent = ScriptedAgent(['get_logs("test-hotel-reservation", "all")',
                               'submit("yes")'])
        orch, res = run(DetectionTask("RevokeAuth"), agent)
        assert res["duration_s"] > 0

    def test_problem_by_pid_string(self):
        orch = Orchestrator(seed=3)
        prob_desc, instructs, apis = orch.init_problem(
            "revoke_auth_hotel_res-detection-1")
        assert "HotelReservation" in prob_desc
        assert "get_logs" in apis

    def test_unknown_pid_rejected(self):
        with pytest.raises(KeyError):
            Orchestrator().init_problem("no-such-problem")

    def test_start_before_init_rejected(self):
        orch = Orchestrator()
        orch.register_agent(SyncAgent())
        with pytest.raises(RuntimeError):
            orch.run_problem()

    def test_start_before_register_rejected(self):
        orch = Orchestrator()
        orch.init_problem(DetectionTask("RevokeAuth"))
        with pytest.raises(RuntimeError):
            orch.run_problem()

    def test_agent_without_get_action_rejected(self):
        orch = Orchestrator()
        with pytest.raises(TypeError):
            orch.register_agent(object())

    def test_problem_context_shared(self):
        orch = Orchestrator(seed=3)
        prob_desc, instructs, apis = orch.init_problem(DetectionTask("RevokeAuth"))
        assert 'namespace "test-hotel-reservation"' in prob_desc
        assert "submit" in instructs
        assert "exec_shell" in apis


class TestTokenAccounting:
    def test_stats_from_consume_stats(self):
        class CountingAgent(ScriptedAgent):
            def consume_stats(self):
                return (100, 10, 2.0)

        agent = CountingAgent(['get_logs("test-hotel-reservation", "all")',
                               'submit("yes")'])
        _, res = run(DetectionTask("RevokeAuth"), agent)
        assert res["input_tokens"] == 200
        assert res["output_tokens"] == 20
