import pytest

from repro.core.problem import (
    AnalysisTask, DetectionTask, LocalizationTask, MitigationTask,
)


class TestProblemConstruction:
    def test_fault_resolves_default_target(self):
        p = DetectionTask("RevokeAuth")
        assert p.target == "mongodb-geo"
        assert p.app_name == "HotelReservation"

    def test_by_number(self):
        p = LocalizationTask(2, target="text-service")
        assert p.spec.name == "TargetPortMisconfig"
        assert p.ans == "text-service"

    def test_noop_problem(self):
        p = DetectionTask("Noop", app_name="HotelReservation")
        assert p.spec is None
        assert p.ans == "no"

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            DetectionTask("Noop", app_name="NotAnApp")

    def test_pid_shape(self):
        p = MitigationTask(3)
        assert "revoke_auth_hotel_res-mitigation" in p.pid


class TestDetectionEval:
    def test_exact_yes(self):
        p = DetectionTask("RevokeAuth")
        res = p.eval("yes", None, 12.0)
        assert res["success"] and res["TTD"] == 12.0

    def test_case_and_quotes_normalized(self):
        p = DetectionTask("RevokeAuth")
        assert p.eval('"Yes"', None, 1.0)["success"]

    def test_wrong_answer(self):
        p = DetectionTask("RevokeAuth")
        assert not p.eval("no", None, 1.0)["success"]

    def test_noop_expects_no(self):
        p = DetectionTask("Noop", app_name="SocialNetwork")
        assert p.eval("no", None, 1.0)["success"]
        assert not p.eval("yes", None, 1.0)["success"]


class TestLocalizationEval:
    def test_top1_hit(self):
        p = LocalizationTask(2, target="user-service")
        res = p.eval(["user-service", "x"], None, 5.0)
        assert res["success@1"] and res["success@3"] and res["success"]

    def test_top3_only(self):
        p = LocalizationTask(2, target="user-service")
        res = p.eval(["x", "y", "user-service"], None, 5.0)
        assert not res["success@1"] and res["success@3"]
        assert not res["success"]  # headline accuracy is @1

    def test_beyond_top3_misses(self):
        p = LocalizationTask(2, target="user-service")
        res = p.eval(["a", "b", "c", "user-service"], None, 5.0)
        assert not res["success@3"]

    def test_string_answer_accepted(self):
        p = LocalizationTask(2, target="user-service")
        assert p.eval("user-service", None, 5.0)["success@1"]

    def test_empty_answer(self):
        p = LocalizationTask(2, target="user-service")
        res = p.eval([], None, 5.0)
        assert not res["success@1"] and not res["success@3"]


class TestAnalysisEval:
    def test_both_subtasks_correct(self):
        p = AnalysisTask(3)  # revoke auth: application / operation_error
        res = p.eval({"system_level": "application",
                      "fault_type": "operation_error"}, None, 5.0)
        assert res["success"] and res["subtasks_correct"] == 2

    def test_one_subtask_correct(self):
        p = AnalysisTask(3)
        res = p.eval({"system_level": "application",
                      "fault_type": "misconfiguration"}, None, 5.0)
        assert not res["success"] and res["subtasks_correct"] == 1

    def test_non_dict_answer(self):
        p = AnalysisTask(3)
        res = p.eval("application", None, 5.0)
        assert res["subtasks_correct"] == 0

    def test_ground_truth_from_spec(self):
        p = AnalysisTask(2, target="user-service")  # target-port misconfig
        res = p.eval({"system_level": "virtualization",
                      "fault_type": "misconfiguration"}, None, 5.0)
        assert res["success"]


class TestMitigationEval:
    def test_requires_environment(self):
        p = MitigationTask(6)
        res = p.eval(None, None, 5.0, env=None)
        assert not res["success"]

    def test_healthy_after_oracle_recovery(self):
        p = MitigationTask(6, target="compose-post-service")
        env = p.create_environment(seed=2)
        p.start_workload(env)
        p.inject_fault(env)
        p.recover_fault(env)
        res = p.eval(None, None, 5.0, env=env)
        assert res["success"], res["reason"]

    def test_unhealthy_while_fault_active(self):
        p = MitigationTask(6, target="compose-post-service")
        env = p.create_environment(seed=2)
        p.start_workload(env)
        p.inject_fault(env)
        res = p.eval(None, None, 5.0, env=env)
        assert not res["success"]
        assert "scaled to zero" in res["reason"]
