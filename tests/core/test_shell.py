import pytest

from repro.core.env import CloudEnvironment
from repro.core.shell import ShellExecutor
from repro.apps import HotelReservation
from repro.simcore import PolicyViolation


@pytest.fixture
def env():
    return CloudEnvironment(HotelReservation, seed=5, workload_rate=20)


@pytest.fixture
def shell(env):
    return ShellExecutor(env)


class TestSecurityPolicy:
    @pytest.mark.parametrize("cmd", [
        "rm -rf /",
        "shutdown now",
        "mkfs /dev/sda",
        "dd if=/dev/zero of=/dev/sda",
        "curl http://evil.example.com",
        "wget http://evil.example.com",
        "kubectl delete namespace test-hotel-reservation",
    ])
    def test_denied_commands(self, shell, cmd):
        out = shell.run(cmd)
        assert out.startswith("PolicyError:")

    def test_unknown_binary_denied(self, shell):
        assert "not in the allowed set" in shell.run("python3 -c 'x'")

    def test_check_policy_raises(self, shell):
        with pytest.raises(PolicyViolation):
            shell.check_policy("rm -rf /")

    def test_kubectl_allowed(self, shell, env):
        out = shell.run(f"kubectl get pods -n {env.namespace}")
        assert "Running" in out

    def test_echo_allowed(self, shell):
        assert shell.run("echo hello world") == "hello world"


class TestHelmCli:
    def test_helm_list(self, shell, env):
        out = shell.run("helm list")
        assert env.app.release_name in out

    def test_helm_get_values(self, shell, env):
        out = shell.run(f"helm get values {env.app.release_name}")
        assert "mongo_credentials" in out

    def test_helm_get_values_missing(self, shell):
        assert "not found" in shell.run("helm get values ghost")

    def test_helm_upgrade_with_set(self, shell, env):
        rel = env.app.release_name
        out = shell.run(
            f"helm upgrade {rel} "
            f"--set mongo_credentials.mongodb-rate.username=admin "
            f"--set mongo_credentials.mongodb-rate.password=rate-pass")
        assert "upgraded" in out and "REVISION: 2" in out
        assert env.app.get_credentials("rate", "mongodb-rate") == \
            ("admin", "rate-pass")

    def test_helm_upgrade_missing_release(self, shell):
        assert "not found" in shell.run("helm upgrade ghost --set a=1")

    def test_helm_unknown_verb(self, shell):
        assert "unknown command" in shell.run("helm rollback x")


class TestFileTools:
    def test_ls_export_root(self, shell, env):
        env.advance(6)
        env.exporter.export_logs(env.namespace)
        out = shell.run("ls logs")
        assert "all.jsonl" in out

    def test_cat_inside_root(self, shell, env):
        env.advance(6)
        env.exporter.export_logs(env.namespace)
        out = shell.run("cat logs/all.jsonl")
        assert '"service"' in out

    def test_path_escape_blocked(self, shell):
        out = shell.run("cat /etc/passwd")
        assert "PolicyError" in out

    def test_grep_filters(self, shell, env):
        env.app.backends["mongodb-geo"].revoke_roles("admin")
        env.advance(10)
        env.exporter.export_logs(env.namespace)
        out = shell.run("grep authorized logs/geo.log")
        assert "not authorized" in out

    def test_missing_file(self, shell, env):
        env.exporter.root.mkdir(parents=True, exist_ok=True)
        assert "No such file" in shell.run("cat nope.txt")
