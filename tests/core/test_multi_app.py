"""Multi-app CloudEnvironment: N apps, one kernel, cross-app behavior.

The single-app constructor must stay a bit-identical thin wrapper over a
one-element spec list (the kernel-equivalence suite pins it against the
reference tick loop; here we pin the wrapper against the list form), and
the multi-app form must give each app its own namespace-scoped telemetry,
workload driver and fault surface on the shared clock/queue/collector.
"""

import numpy as np
import pytest

from repro.apps import HotelReservation, SocialNetwork
from repro.core import AppSpec, CloudEnvironment, system_healthy
from repro.faults import FaultSchedule, MetricAbove
from repro.workload import BurstRate, ConstantRate

HOTEL_NS = HotelReservation.namespace
SOCIAL_NS = SocialNetwork.namespace


def two_app_env(seed=7, hotel_rate=60.0, social_policy=None, **kwargs):
    return CloudEnvironment([
        AppSpec(HotelReservation, workload_rate=hotel_rate),
        AppSpec(SocialNetwork,
                policy=social_policy or ConstantRate(40.0)),
    ], seed=seed, **kwargs)


class TestSingleAppWrapper:
    """CloudEnvironment(AppCls, ...) ≡ CloudEnvironment([AppSpec(...)])."""

    def test_wrapper_is_bit_identical_to_spec_list(self):
        a = CloudEnvironment(HotelReservation, seed=3, workload_rate=45)
        b = CloudEnvironment([AppSpec(HotelReservation, workload_rate=45)],
                             seed=3)
        for w in [30.0, 3.7, 12.3, 0.4]:
            a.advance(w)
            b.advance(w)
        sa, sb = a.driver.stats, b.driver.stats
        assert (sa.requests, sa.errors, sa.latency_sum_ms) == \
            (sb.requests, sb.errors, sb.latency_sum_ms)
        ta = a.collector.metrics.series("geo", "cpu_usage").window()
        tb = b.collector.metrics.series("geo", "cpu_usage").window()
        assert np.array_equal(ta[0], tb[0])
        assert np.array_equal(ta[1], tb[1])
        a.close(), b.close()

    def test_single_app_aliases(self):
        env = CloudEnvironment(HotelReservation, seed=1)
        assert env.apps == [env.app]
        assert env.drivers == [env.driver]
        assert env.namespaces == [env.namespace] == [HOTEL_NS]
        assert env.app_for(HOTEL_NS) is env.app
        assert env.driver_for(HOTEL_NS) is env.driver
        env.close()

    def test_empty_and_duplicate_specs_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            CloudEnvironment([])
        with pytest.raises(ValueError, match="distinct namespaces"):
            CloudEnvironment([AppSpec(HotelReservation),
                              AppSpec(HotelReservation)])


class TestTwoAppKernel:
    def test_both_apps_deploy_and_serve(self):
        env = two_app_env()
        env.advance(30.0)
        hotel = env.driver_for(HOTEL_NS)
        social = env.driver_for(SOCIAL_NS)
        assert hotel.stats.requests == pytest.approx(60 * 30, abs=60)
        assert social.stats.requests == pytest.approx(40 * 30, abs=40)
        assert hotel.stats.errors == 0 and social.stats.errors == 0
        assert env.clock.now == 30.0
        env.close()

    def test_one_clock_one_queue(self):
        env = two_app_env()
        assert env.driver_for(HOTEL_NS).queue is env.queue
        assert env.driver_for(SOCIAL_NS).queue is env.queue
        assert env.driver_for(SOCIAL_NS).runtime.clock is env.clock
        env.close()

    def test_drivers_draw_independent_streams(self):
        """Same seed, different namespaces → different arrival choices
        (the second driver's RNG stream is namespace-qualified)."""
        env = two_app_env(hotel_rate=40.0,
                          social_policy=ConstantRate(40.0))
        env.advance(20.0)
        hotel_ops = env.driver_for(HOTEL_NS).stats.per_operation
        social_ops = env.driver_for(SOCIAL_NS).stats.per_operation
        assert set(hotel_ops) != set(social_ops)  # different apps' mixes
        env.close()

    def test_metric_keys_qualified_for_secondary_namespace(self):
        env = two_app_env()
        env.advance(10.0)
        m = env.collector.metrics
        # primary app keeps bare names (single-app-compatible)
        assert m.series("frontend", "request_rate") is not None
        # secondary app's series are namespace-qualified
        assert m.series(f"{SOCIAL_NS}/nginx-web-server",
                        "request_rate") is not None
        assert m.series("nginx-web-server", "request_rate") is None
        # the shared service name can never collide
        assert m.series("jaeger", "cpu_usage") is not None
        assert m.series(f"{SOCIAL_NS}/jaeger", "cpu_usage") is not None
        env.close()

    def test_request_rates_are_scoped_per_namespace(self):
        """Scrape windows must not bleed across namespaces even though
        both apps scrape at the same timestamps."""
        env = two_app_env(hotel_rate=60.0,
                          social_policy=ConstantRate(40.0))
        env.advance(20.0)
        m = env.collector.metrics
        hotel_rate = m.series("frontend", "request_rate").values[-1]
        social_rate = m.series(f"{SOCIAL_NS}/nginx-web-server",
                               "request_rate").values[-1]
        assert hotel_rate == pytest.approx(60.0, rel=0.1)
        assert social_rate == pytest.approx(40.0, rel=0.1)
        env.close()

    def test_probe_error_rate_scoping(self):
        env = two_app_env()
        env.app_for(HOTEL_NS).backends["mongodb-geo"].revoke_roles("admin")
        assert env.probe_error_rate(10.0, namespace=SOCIAL_NS) == 0.0
        assert env.probe_error_rate(10.0, namespace=HOTEL_NS) > 0.0
        aggregate = env.probe_error_rate(10.0)
        per_app = env.probe_error_rate(10.0, namespace=HOTEL_NS)
        assert 0.0 < aggregate < per_app  # diluted by the healthy app
        env.close()

    def test_exec_dispatch_routes_by_namespace(self):
        env = two_app_env()
        pod = next(p.name for p in env.cluster.pods_in(SOCIAL_NS)
                   if p.owner == "user-mongodb")
        out = env.kubectl.run(
            f"kubectl exec {pod} -n {SOCIAL_NS} -- mongosh --eval "
            f"'db.getUsers()'")
        assert "admin" in out
        env.close()

    def test_kubectl_get_pods_all_namespaces_spans_apps(self):
        env = two_app_env()
        out = env.kubectl.run("kubectl get pods -A")
        assert "frontend" in out and "nginx-web-server" in out
        env.close()


class TestCrossAppTriggers:
    def test_watch_on_app_a_fires_fault_into_app_b(self):
        """The headline multi-app capability: a MetricAbove on the social
        network's telemetry injects a fault into the hotel app."""
        env = two_app_env(social_policy=BurstRate(
            base=40.0, burst_factor=5.0, interval=60.0, burst_duration=20.0))
        armed = (FaultSchedule()
                 .when(MetricAbove("nginx-web-server", "request_rate", 150.0,
                                   namespace=SOCIAL_NS),
                       "NetworkLoss", ("search",), namespace=HOTEL_NS)
                 ).arm(env)
        env.advance(30.0)
        assert len(armed.log) == 1
        t, desc = armed.log[0]
        assert t == 5.0  # first scrape inside the [0, 20) burst
        assert "@" + HOTEL_NS in desc
        before = env.driver_for(HOTEL_NS).stats.errors
        env.advance(10.0)
        assert env.driver_for(HOTEL_NS).stats.errors > before
        assert env.driver_for(SOCIAL_NS).stats.errors == 0
        env.close()

    def test_ambiguous_service_requires_namespace(self):
        env = two_app_env()
        sched = FaultSchedule().when(
            MetricAbove("jaeger", "cpu_usage", 1.0),
            "NetworkLoss", ("search",), namespace=HOTEL_NS)
        with pytest.raises(ValueError, match="several hosted apps"):
            sched.arm(env)
        env.close()

    def test_unknown_trigger_namespace_rejected(self):
        env = two_app_env()
        sched = FaultSchedule().when(
            MetricAbove("frontend", "error_rate", 1.0, namespace="nope"),
            "NetworkLoss", ("search",))
        with pytest.raises(KeyError, match="no app in namespace"):
            sched.arm(env)
        env.close()

    def test_set_rate_targets_one_namespace(self):
        env = two_app_env()
        armed = (FaultSchedule()
                 .set_rate(5.0, ConstantRate(0.0), namespace=SOCIAL_NS)
                 ).arm(env)
        env.advance(20.0)
        social = env.driver_for(SOCIAL_NS).stats.requests
        env.advance(10.0)
        assert env.driver_for(SOCIAL_NS).stats.requests == social
        assert env.driver_for(HOTEL_NS).stats.requests == \
            pytest.approx(60 * 30, abs=60)
        assert armed.log
        env.close()

    def test_recover_all_undoes_per_namespace_injections(self):
        env = two_app_env()
        armed = (FaultSchedule()
                 .inject(1.0, "RevokeAuth", ("mongodb-geo",),
                         namespace=HOTEL_NS)
                 .inject(1.0, "TargetPortMisconfig", ("user-service",),
                         namespace=SOCIAL_NS)
                 ).arm(env)
        env.advance(10.0)
        assert len(armed.log) == 2
        armed.recover_all()
        assert env.probe_error_rate(10.0) == 0.0
        env.close()


class TestMultiAppHealth:
    def test_system_healthy_spans_namespaces(self):
        env = two_app_env()
        env.advance(10.0)
        healthy, _ = system_healthy(env, probe_seconds=5.0)
        assert healthy
        env.cluster.scale_deployment(SOCIAL_NS, "compose-post-service", 0)
        healthy, reason = system_healthy(env, probe_seconds=5.0)
        assert not healthy and "compose-post-service" in reason
        env.close()


class TestPerAppProfileCache:
    """execute_many profile fingerprints are keyed per app: CRUD-only
    mutations in a co-hosted namespace do not invalidate this app's
    compiled profiles (reconciling mutations conservatively do)."""

    def test_neighbor_secret_crud_does_not_invalidate(self):
        from repro.kubesim.objects import ObjectMeta, Secret
        env = two_app_env()
        rt = env.app_for(HOTEL_NS).runtime
        rt.execute_many("search_hotel", 100)
        compiles = rt.profile_stats["compiles"]
        env.cluster.create_secret(Secret(
            meta=ObjectMeta(name="x", namespace=SOCIAL_NS),
            data={"k": "v"}))
        rt.execute_many("search_hotel", 100)
        assert rt.profile_stats["compiles"] == compiles
        env.close()

    def test_own_namespace_mutation_still_invalidates(self):
        env = two_app_env()
        rt = env.app_for(HOTEL_NS).runtime
        rt.execute_many("search_hotel", 100)
        compiles = rt.profile_stats["compiles"]
        env.cluster.scale_deployment(HOTEL_NS, "search", 0)
        rt.execute_many("search_hotel", 100)
        assert rt.profile_stats["compiles"] == compiles + 1
        env.close()

    def test_aggregate_two_app_environment_delivers_load(self):
        env = CloudEnvironment([
            AppSpec(HotelReservation, workload_rate=1000.0),
            AppSpec(SocialNetwork, workload_rate=500.0),
        ], seed=4, fidelity="aggregate")
        env.advance(30.0)
        assert env.driver_for(HOTEL_NS).stats.requests == \
            pytest.approx(30_000, abs=100)
        assert env.driver_for(SOCIAL_NS).stats.requests == \
            pytest.approx(15_000, abs=100)
        env.close()
