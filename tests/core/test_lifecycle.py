import pytest

from repro.agents import build_agent
from repro.core import IncidentLifecycle


def oracle_factory(stage, prob_desc, instructs, apis):
    return build_agent("oracle", prob_desc, instructs, apis,
                       task_type=stage, seed=5)


def random_factory(stage, prob_desc, instructs, apis):
    return build_agent("random", prob_desc, instructs, apis,
                       task_type=stage, seed=5)


class TestLifecycle:
    def test_oracle_resolves_revoke_auth_end_to_end(self):
        lifecycle = IncidentLifecycle("RevokeAuth", seed=5)
        result = lifecycle.run(oracle_factory)
        assert [s.stage for s in result.stages] == [
            "detection", "localization", "analysis", "mitigation"]
        assert result.stages_passed == 4
        assert result.resolved, result.summary()

    def test_oracle_resolves_scale_pod_zero(self):
        result = IncidentLifecycle("ScalePod", seed=6).run(oracle_factory)
        assert result.resolved, result.summary()

    def test_stage_answers_are_consistent(self):
        result = IncidentLifecycle("RevokeAuth", seed=5).run(oracle_factory)
        localization = result.stages[1]
        analysis = result.stages[2]
        assert "mongodb-geo" in localization.solution
        assert analysis.solution["system_level"] == "application"

    def test_detection_failure_short_circuits(self):
        """Figure 1: an undetected incident never reaches triage."""
        result = IncidentLifecycle("RevokeAuth", seed=5).run(random_factory)
        # random agent flails and never submits within budget on detection,
        # or submits a coin-flip; either way later stages require detection
        if not result.stages[0].success:
            assert len(result.stages) == 1
        assert not result.resolved

    def test_symptomatic_fault_rejected(self):
        with pytest.raises(ValueError, match="four task levels"):
            IncidentLifecycle("NetworkLoss")

    def test_environment_shared_across_stages(self):
        lifecycle = IncidentLifecycle("RevokeAuth", seed=5)
        result = lifecycle.run(oracle_factory)
        # virtual time strictly increases across stage sessions
        starts = [s.session.started_at for s in result.stages]
        assert starts == sorted(starts)
        assert lifecycle.env is not None

    def test_summary_renders(self):
        result = IncidentLifecycle("RevokeAuth", seed=5).run(oracle_factory)
        text = result.summary()
        assert "incident: RevokeAuth @ mongodb-geo" in text
        assert "resolved: True" in text
