import pytest
from hypothesis import given, settings, strategies as st

from repro.core.parser import ActionParseError, parse_action


class TestValidActions:
    def test_simple_call(self):
        p = parse_action('get_logs("ns", "geo")')
        assert p.name == "get_logs" and p.args == ("ns", "geo")

    def test_kwargs(self):
        p = parse_action('get_metrics("ns", duration=10)')
        assert p.kwargs == {"duration": 10}

    def test_no_args(self):
        p = parse_action("submit()")
        assert p.name == "submit" and p.args == ()

    def test_list_argument(self):
        p = parse_action('submit(["a", "b"])')
        assert p.args == (["a", "b"],)

    def test_dict_argument(self):
        p = parse_action('submit({"system_level": "application"})')
        assert p.args[0]["system_level"] == "application"

    def test_escaped_quotes_in_shell(self):
        p = parse_action(
            'exec_shell("kubectl patch svc x -p \'{\\"spec\\":1}\'")')
        assert '{"spec":1}' in p.args[0]

    def test_react_thought_prefix(self):
        p = parse_action(
            'Thought: I should check the logs.\nAction: get_logs("ns", "all")')
        assert p.name == "get_logs"

    def test_markdown_fences_stripped(self):
        p = parse_action('```python\nsubmit("yes")\n```')
        assert p.name == "submit" and p.args == ("yes",)

    def test_apology_prose_with_embedded_call(self):
        p = parse_action(
            "I apologize for the error. Here is the API call again: "
            'get_logs("ns", "all")')
        assert p.name == "get_logs"

    def test_nested_parens_in_args(self):
        p = parse_action('exec_shell("mongo --eval \'db.getUsers()\'")')
        assert p.name == "exec_shell"


class TestInvalidActions:
    def test_empty(self):
        with pytest.raises(ActionParseError, match="empty action"):
            parse_action("")

    def test_unknown_api(self):
        with pytest.raises(ActionParseError, match="unknown API"):
            parse_action("fetch_logs('ns')")

    def test_unquoted_strings(self):
        with pytest.raises(ActionParseError):
            parse_action("get_logs(ns, all)")

    def test_prose_without_call(self):
        with pytest.raises(ActionParseError):
            parse_action("I think the fault is in the geo service.")

    def test_non_literal_args(self):
        with pytest.raises(ActionParseError, match="malformed arguments"):
            parse_action("get_logs(os.environ)")

    def test_error_message_is_actionable(self):
        try:
            parse_action("get_logs(ns)")
        except ActionParseError as e:
            assert "Error:" in str(e)


class TestParserProperties:
    @given(st.text(max_size=80))
    @settings(max_examples=100)
    def test_never_raises_other_exceptions(self, text):
        """The parser must fail only with ActionParseError (agent feedback),
        never with an unhandled exception."""
        try:
            parse_action(text)
        except ActionParseError:
            pass

    @given(st.lists(st.text(alphabet="abc-", min_size=1, max_size=10),
                    max_size=3))
    @settings(max_examples=50)
    def test_submit_list_roundtrip(self, items):
        p = parse_action(f"submit({items!r})")
        assert p.args == (items,)
