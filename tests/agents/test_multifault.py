"""The fix → verify → re-diagnose loop (multi-fault mitigation, §2.4.3)."""

from repro.agents.policy import DiagnosticPolicy
from repro.simcore import RngStream


def make_policy():
    p = DiagnosticPolicy("mitigation", RngStream(0, "t"))
    p.ingest_context(
        'namespace "ns". Services: frontend, geo, mongodb-geo, '
        "recommendation, mongodb-recommendation.")
    # the investigation always starts from a log sweep; simulate it so the
    # drill-down observations below are in context
    p.ingest_observation("Saved logs to /x. ERROR lines per service:\n"
                         "  frontend: 40 ERROR lines\n"
                         "  geo: 40 ERROR lines")
    return p


AUTH_ERR = ("ERROR [geo] failed to call mongodb-geo.find: (Unauthorized) "
            "not authorized on geo-db to execute command { find }")
CONN_ERR = ('ERROR [frontend] failed to call recommendation.rec: dial tcp: '
            'connect: connection refused (service "recommendation" port 8085 '
            "has no ready endpoints)")
PODS = ("NAME                                READY   STATUS    RESTARTS   AGE\n"
        "mongodb-geo-abcde12345-fghij        1/1     Running   0          2m\n"
        "geo-abcde12345-aaaaa                1/1     Running   0          2m")
CLEAN_METRICS = ("Saved metrics. Latest snapshot:\n"
                 "  frontend: cpu=80m req_rate=40.0/s err_rate=0.00/s\n"
                 "  geo: cpu=60m req_rate=20.0/s err_rate=0.00/s")
DIRTY_METRICS = ("Saved metrics. Latest snapshot:\n"
                 "  frontend: cpu=80m req_rate=40.0/s err_rate=9.00/s\n"
                 "  geo: cpu=60m req_rate=20.0/s err_rate=0.00/s")


class TestFixVerifyLoop:
    def test_single_fault_fix_then_verify_then_submit(self):
        p = make_policy()
        p.ingest_observation(AUTH_ERR)
        p.ingest_observation(PODS)
        fix = p.next_action()
        assert "grantRolesToUser" in fix
        assert p.next_action() == 'get_metrics("ns", 1)'
        p.ingest_observation(CLEAN_METRICS)
        assert p.next_action() == "submit()"

    def test_dirty_metrics_trigger_reinvestigation(self):
        p = make_policy()
        p.ingest_observation(AUTH_ERR)
        p.ingest_observation(PODS)
        p.next_action()                         # fix
        p.next_action()                         # get_metrics (stale flush)
        # errors persist past the scrape-lag re-polls → pull logs
        for _ in range(2):
            p.ingest_observation(DIRTY_METRICS)
            action = p.next_action()
            assert action == 'get_metrics("ns", 1)'
        p.ingest_observation(DIRTY_METRICS)
        action = p.next_action()
        assert action == 'get_logs("ns", "frontend")'

    def test_second_fault_discovered_and_fixed(self):
        p = make_policy()
        p.ingest_observation(AUTH_ERR)
        p.ingest_observation(PODS)
        p.next_action()                         # fix #1 (mongo grant)
        p.next_action()                         # verify metrics
        for _ in range(2):
            p.ingest_observation(DIRTY_METRICS)
            p.next_action()
        p.ingest_observation(DIRTY_METRICS)
        p.next_action()                         # get_logs frontend
        p.ingest_observation(CONN_ERR)          # reveals fault #2
        # connectivity hypothesis → k8s state disambiguation
        action = p.next_action()
        assert "kubectl get deployments" in action
        p.ingest_observation(
            "NAME             READY   UP-TO-DATE   AVAILABLE   AGE\n"
            "recommendation   0/0     0            0           3m")
        fix2 = p.next_action()
        assert "kubectl scale deployment recommendation --replicas=1" in fix2
        # verify again, then done
        assert p.next_action() == 'get_metrics("ns", 1)'
        p.ingest_observation(CLEAN_METRICS)
        assert p.next_action() == "submit()"

    def test_fixed_target_never_rediagnosed(self):
        p = make_policy()
        p.ingest_observation(AUTH_ERR)
        p.ingest_observation(PODS)
        p.next_action()                         # fix mongodb-geo
        assert "mongodb-geo" in p.belief.fixed_targets
        # stale log tail shows the same old signature again
        p.ingest_observation(AUTH_ERR)
        assert p.belief.diagnosis is None or \
            p.belief.diagnosis.target != "mongodb-geo"

    def test_verification_gives_up_bounded(self):
        p = make_policy()
        p.ingest_observation(AUTH_ERR)
        p.ingest_observation(PODS)
        p.next_action()                         # fix
        actions = []
        for _ in range(12):
            p.ingest_observation(DIRTY_METRICS)
            action = p.next_action()
            actions.append(action)
            if action == "submit()":
                break
        assert actions[-1] == "submit()", "verification must terminate"

    def test_missing_secret_dead_end_handled(self):
        p = make_policy()
        p.ingest_observation(
            "ERROR [x] failed to call mongodb-geo.find: (UserNotFound) "
            'Could not find user "admin" for db "geo-db"')
        action = p.next_action()
        assert "get secret mongodb-geo-credentials" in action
        p.ingest_observation(
            'Error: Error from server (NotFound): Secret '
            '"mongodb-geo-credentials" not found')
        # must not loop on the missing secret forever
        actions = {p.next_action() for _ in range(6)}
        assert not any("get secret mongodb-geo-credentials" in a
                       for a in actions)
