import asyncio

import pytest

from repro.agents import (
    AGENT_NAMES, FlashAgent, GptWithShellAgent, ReactAgent, build_agent,
    registration_loc,
)
from repro.agents.registry import task_type_of

DESC = 'namespace "test-ns". Services: frontend, geo, mongodb-geo.'
INSTR = "Interact step by step."
APIS = "get_logs(...)"


def get_action(agent, state):
    return asyncio.run(agent.get_action(state))


class TestRegistry:
    def test_four_paper_agents(self):
        assert AGENT_NAMES == ("gpt-4-w-shell", "gpt-3.5-w-shell", "react",
                               "flash")

    def test_build_each_agent(self):
        for name in AGENT_NAMES:
            agent = build_agent(name, DESC, INSTR, APIS, "detection", seed=1)
            assert agent.profile.name == name

    def test_build_ablation_agents(self):
        for name in ("oracle", "random"):
            assert build_agent(name, DESC, INSTR, APIS, "detection")

    def test_unknown_agent(self):
        with pytest.raises(KeyError):
            build_agent("gpt-5", DESC, INSTR, APIS, "detection")

    def test_registration_loc_positive_and_ordered(self):
        locs = {n: registration_loc(n) for n in AGENT_NAMES}
        assert all(v > 0 for v in locs.values())
        # richer scaffolds cost more wiring, as in Table 3
        assert locs["flash"] > locs["react"] > locs["gpt-4-w-shell"]

    def test_task_type_of(self):
        assert task_type_of("x_hotel_res-localization-2") == "localization"
        with pytest.raises(ValueError):
            task_type_of("x-nothing-1")


class TestAgentContract:
    def test_get_action_returns_string(self):
        agent = build_agent("gpt-4-w-shell", DESC, INSTR, APIS, "detection",
                            seed=1)
        assert isinstance(get_action(agent, "Session started."), str)

    def test_consume_stats_resets(self):
        agent = build_agent("gpt-4-w-shell", DESC, INSTR, APIS, "detection",
                            seed=1)
        get_action(agent, "Session started.")
        tokens_in, tokens_out, latency = agent.consume_stats()
        assert tokens_in > 0 and latency > 0
        assert agent.consume_stats() == (0, 0, 0.0)

    def test_prompt_includes_context(self):
        agent = build_agent("react", DESC, INSTR, APIS, "detection", seed=1)
        assert DESC in agent.prompt and "Available APIs" in agent.prompt

    def test_history_recorded(self):
        agent = build_agent("gpt-4-w-shell", DESC, INSTR, APIS, "detection",
                            seed=1)
        get_action(agent, "state-1")
        get_action(agent, "state-2")
        assert [h[0] for h in agent.history] == ["state-1", "state-2"]


class TestReactScaffold:
    def test_emits_thought_and_action(self):
        agent = ReactAgent(DESC, INSTR, APIS, "detection",
                           profile="oracle", seed=1)
        out = get_action(agent, "Session started.")
        assert out.startswith("Thought:") and "\nAction: " in out

    def test_thought_references_error_recovery(self):
        agent = ReactAgent(DESC, INSTR, APIS, "detection",
                           profile="oracle", seed=1)
        get_action(agent, "Error: bad call")
        out = get_action(agent, "Error: bad call")
        assert "previous call failed" in out

    def test_action_parses_through_orchestrator_parser(self):
        from repro.core.parser import parse_action
        agent = ReactAgent(DESC, INSTR, APIS, "detection",
                           profile="oracle", seed=1)
        parsed = parse_action(get_action(agent, "Session started."))
        assert parsed.name in ("get_logs", "get_metrics", "get_traces",
                               "exec_shell", "submit")


class TestFlashScaffold:
    def test_hindsight_accumulates(self):
        agent = FlashAgent(DESC, INSTR, APIS, "detection",
                           profile="flash", seed=1)
        get_action(agent, "Session started.")
        get_action(agent, "Saved logs. ERROR lines per service:\n"
                          "  geo: 4 ERROR lines")
        get_action(agent, "more state")
        assert agent.hindsight, "expected hindsight insights"

    def test_hindsight_flags_invalid_actions(self):
        agent = FlashAgent(DESC, INSTR, APIS, "detection",
                           profile="flash", seed=1)
        get_action(agent, "Session started.")
        get_action(agent, "Error: bad call")
        assert any("invalid" in h for h in agent.hindsight)

    def test_hindsight_costs_extra_tokens_and_latency(self):
        flash = FlashAgent(DESC, INSTR, APIS, "detection",
                           profile="flash", seed=1)
        plain = GptWithShellAgent(DESC, INSTR, APIS, "detection",
                                  profile="flash", seed=1)
        get_action(flash, "Session started.")
        get_action(plain, "Session started.")
        f_in, _, f_lat = flash.consume_stats()
        p_in, _, p_lat = plain.consume_stats()
        assert f_in > p_in and f_lat > p_lat
