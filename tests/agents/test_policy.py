import pytest

from repro.agents.policy import DiagnosticPolicy, RCA_MAP
from repro.simcore import RngStream


@pytest.fixture
def policy():
    p = DiagnosticPolicy("localization", RngStream(0, "t"))
    p.ingest_context(
        'operating the SocialNetwork microservice application deployed in '
        'Kubernetes namespace "test-sn".\n'
        "Services: nginx-web-server, user-service, text-service, user-mongodb.\n"
        "Task: x")
    return p


class TestContextIngestion:
    def test_namespace_parsed(self, policy):
        assert policy.belief.namespace == "test-sn"

    def test_services_parsed(self, policy):
        assert "user-service" in policy.belief.app_services


class TestObservationParsing:
    def test_error_counts(self, policy):
        policy.ingest_observation(
            "Saved logs to /x. ERROR lines per service:\n"
            "  nginx-web-server: 40 ERROR lines\n"
            "  user-service: 12 ERROR lines")
        assert policy.belief.error_counts == {
            "nginx-web-server": 40, "user-service": 12}

    def test_edge_signature_not_authorized(self, policy):
        policy.ingest_observation(
            "ERROR [geo] failed to call mongodb-geo.find: (Unauthorized) "
            "not authorized on geo-db to execute command { find }")
        assert policy.belief.edge_signatures["mongodb-geo"] == "revoke_auth"

    def test_edge_signature_connection_refused_inner_service(self, policy):
        """Connection-refused must attribute to the *named* unreachable
        service, not the direct callee (deep propagation)."""
        policy.ingest_observation(
            "ERROR [nginx] failed to call compose-post-service.compose: "
            'dial tcp: connect: connection refused (service "user-service" '
            "port 9100 has no ready endpoints)")
        assert policy.belief.edge_signatures["user-service"] == "connectivity"

    def test_pod_rows_parsed_with_status(self, policy):
        policy.ingest_observation(
            "NAME                                READY   STATUS    RESTARTS   AGE\n"
            "user-service-a1b2c3d4e-f5g6h       1/1     Running   0          2m\n"
            "text-service-a1b2c3d4e-zzzzz       0/1     Pending   0          2m")
        assert policy.belief.pods_status["user-service"] == "Running"
        assert policy.belief.pods_status["text-service"] == "Pending"

    def test_deployment_rows_not_mistaken_for_pods(self, policy):
        policy.ingest_observation(
            "NAME                READY   UP-TO-DATE   AVAILABLE   AGE\n"
            "user-service        1/1     1            1           2m")
        assert "user" not in policy.belief.pods_status
        assert policy.belief.deployments_desired["user-service"] == 1

    def test_endpoints_empty_detected(self, policy):
        policy.ingest_observation(
            "NAME           ENDPOINTS            AGE\n"
            "user-service   <none>               2m\n"
            "text-service   10.244.0.5:9095      2m")
        assert "user-service" in policy.belief.endpoints_empty
        assert "text-service" not in policy.belief.endpoints_empty

    def test_secret_credentials_parsed(self, policy):
        policy.ingest_observation(
            "Name:         user-mongodb-credentials\nNamespace:    ns\n"
            "Type:         Opaque\n\nData\n====\n"
            "password:  user-pass\nusername:  admin")
        assert policy.belief.secret_creds["user-mongodb"] == ("admin", "user-pass")

    def test_helm_list_sets_release(self, policy):
        policy.ingest_observation(
            "NAME\tNAMESPACE\tREVISION\tCHART\nsn-release\ttest-sn\t1\tsn-0.1.0")
        assert policy.belief.release_name == "sn-release"

    def test_error_observation_recorded(self, policy):
        policy.ingest_observation("Error: Your service/namespace does not exist")
        assert policy.belief.last_error_observation


class TestDiagnosis:
    def test_auth_signature_diagnoses_revoke(self, policy):
        policy.ingest_observation(
            "ERROR [geo] failed to call user-mongodb.find: (Unauthorized) "
            "not authorized on user-db to execute command")
        assert policy.belief.diagnosis.fault_key == "revoke_auth"
        assert policy.belief.diagnosis.target == "user-mongodb"

    def test_connectivity_plus_zero_replicas_is_scale_fault(self, policy):
        policy.ingest_observation(
            'ERROR [a] failed to call b.x: connection refused (service '
            '"user-service" port 9100 has no ready endpoints)')
        policy.ingest_observation(
            "NAME           READY   UP-TO-DATE   AVAILABLE   AGE\n"
            "user-service   0/0     0            0           2m")
        assert policy.belief.diagnosis.fault_key == "scale_pod_zero"

    def test_connectivity_plus_pending_is_node_fault(self, policy):
        policy.ingest_observation(
            'ERROR [a] failed to call b.x: connection refused (service '
            '"user-service" port 9100 has no ready endpoints)')
        policy.ingest_observation(
            "NAME                              READY   STATUS    RESTARTS   AGE\n"
            "user-service-abcde12345-fghij     0/1     Pending   0          2m")
        assert policy.belief.diagnosis.fault_key == "assign_to_non_existent_node"

    def test_connectivity_plus_empty_endpoints_is_port_misconfig(self, policy):
        policy.ingest_observation(
            'ERROR [a] failed to call b.x: connection refused (service '
            '"user-service" port 9100 has no ready endpoints)')
        policy.ingest_observation(
            "NAME                              READY   STATUS    RESTARTS  AGE\n"
            "user-service-abcde12345-fghij     1/1     Running   0         2m")
        policy.ingest_observation(
            "NAME           ENDPOINTS   AGE\nuser-service   <none>      2m")
        assert policy.belief.diagnosis.fault_key == "misconfig_k8s"

    def test_rca_map_complete(self):
        for key, (level, ftype) in RCA_MAP.items():
            assert level in ("application", "virtualization", "network")
            assert ftype


class TestPlanning:
    def test_first_action_is_get_logs(self, policy):
        assert policy.next_action() == 'get_logs("test-sn", "all")'

    def test_detection_submits_yes_on_evidence(self):
        p = DiagnosticPolicy("detection", RngStream(0, "t"))
        p.ingest_context('namespace "ns". Services: a, b.')
        p.ingest_observation("Saved logs. ERROR lines per service:\n"
                             "  a: 10 ERROR lines")
        # next action drills into the top error service or submits
        assert p.next_action() == 'submit("yes")'

    def test_detection_submits_no_after_clean_sweep(self):
        p = DiagnosticPolicy("detection", RngStream(0, "t"))
        p.ingest_context('namespace "ns". Services: a, b.')
        p.ingest_observation("Saved logs. No ERROR-level log lines found.")
        p.ingest_observation("NAME  READY   STATUS    RESTARTS\n")
        p.ingest_observation("Saved metrics. Latest snapshot:\n"
                             "  a: cpu=50m req_rate=10.0/s err_rate=0.00/s")
        assert p.next_action() == 'submit("no")'

    def test_localization_submits_after_diagnosis(self, policy):
        policy.ingest_observation(
            "ERROR [geo] failed to call user-mongodb.find: (Unauthorized) "
            "not authorized on user-db to execute command")
        action = policy.next_action()
        assert action.startswith("submit(") and "user-mongodb" in action

    def test_mitigation_scale_fix(self):
        p = DiagnosticPolicy("mitigation", RngStream(0, "t"))
        p.ingest_context('namespace "ns". Services: a, user-service.')
        p.ingest_observation(
            'ERROR [a] failed to call b.x: connection refused (service '
            '"user-service" port 9100 has no ready endpoints)')
        p.ingest_observation(
            "NAME           READY   UP-TO-DATE   AVAILABLE   AGE\n"
            "user-service   0/0     0            0           2m")
        action = p.next_action()
        assert "kubectl scale deployment user-service --replicas=1" in action
        # after the fix, the plan verifies with fresh metrics...
        assert p.next_action() == 'get_metrics("ns", 1)'
        # ...and submits once the error rates look clean
        p.ingest_observation("Saved metrics. Latest snapshot:\n"
                             "  a: cpu=50m req_rate=10.0/s err_rate=0.00/s")
        assert p.next_action() == "submit()"

    def test_flail_action_valid(self, policy):
        from repro.core.parser import parse_action
        for _ in range(10):
            parse_action(policy.flail_action())  # must always parse

    def test_no_traces_profile_never_plans_traces(self):
        p = DiagnosticPolicy("localization", RngStream(0, "t"),
                             use_traces=False)
        p.ingest_context('namespace "ns". Services: a.')
        for _ in range(12):
            action = p.next_action()
            assert not action.startswith("get_traces")
            p.ingest_observation("Saved logs. No ERROR-level log lines found.")
