import pytest

from repro.agents.llm import PROFILES, ModelProfile, SimulatedLLM

DESC = ('namespace "test-ns". Services: frontend, geo, mongodb-geo, search.')


def make_llm(profile="gpt-4-w-shell", task="detection", seed=0, **overrides):
    base = PROFILES[profile]
    if overrides:
        import dataclasses
        base = dataclasses.replace(base, **overrides)
    return SimulatedLLM(base, task, DESC, seed=seed)


class TestProfiles:
    def test_four_paper_agents_plus_ablations(self):
        assert {"gpt-4-w-shell", "gpt-3.5-w-shell", "react", "flash",
                "oracle", "random"} <= set(PROFILES)

    def test_flash_never_uses_traces(self):
        assert not PROFILES["flash"].uses_traces

    def test_probability_fields_in_range(self):
        for profile in PROFILES.values():
            for field in ("detection_skill", "answer_skill", "rca_skill",
                          "loc_drop_rate", "plan_skill", "format_error_rate",
                          "self_correct", "mitigation_skill",
                          "false_positive_rate"):
                value = getattr(profile, field)
                assert 0.0 <= value <= 1.0, f"{profile.name}.{field}"

    def test_gpt35_has_zero_mitigation_skill(self):
        assert PROFILES["gpt-3.5-w-shell"].mitigation_skill == 0.0

    def test_gpt4_lowest_false_positive_rate(self):
        rates = {n: p.false_positive_rate for n, p in PROFILES.items()
                 if n in ("gpt-4-w-shell", "gpt-3.5-w-shell", "react", "flash")}
        assert min(rates, key=rates.get) == "gpt-4-w-shell"


class TestDecide:
    def test_response_accounting_positive(self):
        llm = make_llm()
        r = llm.decide("Session started.")
        assert r.input_tokens > 0 and r.output_tokens > 0 and r.latency_s > 0

    def test_input_tokens_grow_with_steps(self):
        llm = make_llm()
        r1 = llm.decide("state")
        r2 = llm.decide("state")
        assert r2.input_tokens > r1.input_tokens

    def test_oracle_solves_detection_cleanly(self):
        llm = make_llm("oracle", "detection")
        a1 = llm.decide("Session started.").text
        assert a1 == 'get_logs("test-ns", "all")'
        a2 = llm.decide("Saved logs. ERROR lines per service:\n"
                        "  geo: 10 ERROR lines").text
        assert a2 == 'submit("yes")'

    def test_oracle_never_false_positives(self):
        for seed in range(5):
            llm = make_llm("oracle", "detection", seed=seed)
            llm.decide("Session started.")
            action = "?"
            for obs in ("Saved logs. No ERROR-level log lines found.",
                        "NAME  READY   STATUS\n",
                        "Saved metrics. Latest snapshot:\n  a: cpu=1m "
                        "req_rate=1.0/s err_rate=0.00/s",
                        "Saved traces. No error spans in the window."):
                action = llm.decide(obs).text
                if action.startswith("submit"):
                    break
            assert action == 'submit("no")'

    def test_error_repeat_loop_for_weak_self_correct(self):
        llm = make_llm("gpt-3.5-w-shell", seed=4,
                       self_correct=0.0, format_error_rate=0.0)
        first = llm.decide("Session started.").text
        repeated = llm.decide("Error: could not parse action").text
        assert repeated == first

    def test_strong_self_correct_moves_on(self):
        llm = make_llm("oracle", seed=4)
        llm.decide("Session started.")
        nxt = llm.decide("Error: could not parse action").text
        assert not nxt.startswith("Error")

    def test_format_errors_produce_invalid_calls(self):
        from repro.core.parser import ActionParseError, parse_action
        llm = make_llm("gpt-4-w-shell", seed=1, format_error_rate=1.0)
        bad = 0
        for _ in range(10):
            text = llm.decide("Session started.").text
            try:
                parse_action(text)
            except ActionParseError:
                bad += 1
        assert bad >= 3  # some corruption modes still parse (prose wrapper)

    def test_false_positive_gate_on_clean_system(self):
        llm = make_llm("gpt-3.5-w-shell", "detection", seed=2,
                       false_positive_rate=1.0, format_error_rate=0.0,
                       plan_skill=1.0)
        action = ""
        state = "Session started."
        for _ in range(8):
            action = llm.decide(state).text
            if action.startswith("submit"):
                break
            state = ("Saved logs. No ERROR-level log lines found."
                     if "get_logs" in action else
                     "Saved metrics. Latest snapshot:\n  a: cpu=1m "
                     "req_rate=1.0/s err_rate=0.00/s"
                     if "get_metrics" in action else "NAME  READY   STATUS\n")
        assert action == 'submit("yes")'  # the §3.6.4 false positive

    def test_random_profile_never_submits_correct_localization(self):
        llm = make_llm("random", "localization", seed=3)
        llm.policy.ingest_observation(
            "ERROR [geo] failed to call mongodb-geo.find: (Unauthorized) "
            "not authorized on geo-db to execute command")
        for _ in range(20):
            action = llm.decide("x").text
            if action.startswith("submit(") and "mongodb-geo" in action:
                pytest.fail("random profile committed the correct answer")


class TestComplete:
    def test_complete_implements_llm_backend(self):
        llm = make_llm("oracle")
        response = llm.complete("system prompt\nSession started.")
        assert response.text
