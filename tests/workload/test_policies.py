import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload import (
    BurstRate, ConstantRate, DiurnalRate, ReplayTrace, SpikeRate,
)


def assert_sound_zero_hint(policy, t, samples=200):
    """A zero_until horizon claims rate == 0.0 on the whole of [t, u)."""
    u = policy.zero_until(t)
    assert u is not None and u > t
    end = min(u, t + 1e6)
    for i in range(samples):
        ti = t + (end - t) * i / samples
        assert policy.rate(ti) == 0.0, f"hint claimed zero at t={ti}"
    return u


class TestConstantRate:
    def test_constant(self):
        policy = ConstantRate(50.0)
        assert policy.rate(0) == policy.rate(1e6) == 50.0

    def test_negative_rejected_on_use(self):
        with pytest.raises(ValueError):
            ConstantRate(-1.0).rate(0)


class TestDiurnalRate:
    def test_base_at_period_boundaries(self):
        policy = DiurnalRate(base=100, amplitude=0.5, period=100.0)
        assert policy.rate(0) == pytest.approx(100.0)
        assert policy.rate(100.0) == pytest.approx(100.0)

    def test_peak_at_quarter_period(self):
        policy = DiurnalRate(base=100, amplitude=0.5, period=100.0)
        assert policy.rate(25.0) == pytest.approx(150.0)

    def test_never_negative(self):
        policy = DiurnalRate(base=10, amplitude=2.0, period=100.0)
        assert all(policy.rate(t) >= 0 for t in range(0, 100, 5))

    @given(st.floats(min_value=0, max_value=1e5))
    @settings(max_examples=50)
    def test_bounded_by_amplitude(self, t):
        policy = DiurnalRate(base=100, amplitude=0.3, period=3600)
        assert 70.0 - 1e-6 <= policy.rate(t) <= 130.0 + 1e-6

    def test_zero_hint_none_when_never_clamped(self):
        assert DiurnalRate(base=100, amplitude=0.5).zero_until(0) is None
        assert DiurnalRate(base=100, amplitude=1.0).zero_until(0) is None

    def test_zero_hint_forever_when_base_zero(self):
        assert DiurnalRate(base=0, amplitude=2.0).zero_until(5) == math.inf

    def test_zero_hint_none_for_negative_base(self):
        """base < 0 inverts the clamp (rate is positive exactly where the
        sin term is low) — the hint must not claim those spans idle."""
        policy = DiurnalRate(base=-40, amplitude=1.6, period=120.0)
        for t in range(0, 120, 5):
            u = policy.zero_until(float(t))
            assert u is None or policy.rate(t) == 0.0

    def test_zero_hint_covers_the_night_clip(self):
        policy = DiurnalRate(base=100, amplitude=2.0, period=1200.0)
        # sin <= -1/2 on phase [7π/6, 11π/6] → t in [700, 1100)
        t = 800.0
        assert policy.rate(t) == 0.0
        u = assert_sound_zero_hint(policy, t)
        assert u == pytest.approx(1100.0, abs=1.0)
        # just past the horizon the rate comes back within a few seconds
        assert policy.rate(u + 5.0) > 0.0

    @given(st.floats(min_value=0, max_value=5000.0))
    @settings(max_examples=100)
    def test_zero_hint_is_sound_everywhere(self, t):
        """Property: wherever the hint claims a span, rate is exactly 0."""
        policy = DiurnalRate(base=60, amplitude=1.5, period=777.7)
        u = policy.zero_until(t)
        if u is not None:
            for i in range(20):
                ti = t + (min(u, t + 1e5) - t) * i / 20
                assert policy.rate(ti) == 0.0


class TestNextChangeHints:
    def test_constant_never_changes(self):
        assert ConstantRate(50.0).next_change(123.4) == math.inf

    def test_burst_boundaries(self):
        policy = BurstRate(base=10, burst_factor=4, interval=100,
                           burst_duration=10)
        assert policy.next_change(0.0) == pytest.approx(10.0)
        assert policy.next_change(5.0) == pytest.approx(10.0)
        assert policy.next_change(10.0) == pytest.approx(100.0)
        assert policy.next_change(99.0) == pytest.approx(100.0)
        assert policy.next_change(105.0) == pytest.approx(110.0)

    def test_burst_rate_constant_within_announced_span(self):
        policy = BurstRate(base=10, burst_factor=4, interval=100,
                           burst_duration=10)
        for t in (0.0, 3.3, 42.0, 99.5, 107.1):
            u = policy.next_change(t)
            r = policy.rate(t)
            for i in range(50):
                ti = t + (u - t) * i / 50
                assert policy.rate(ti) == r, f"rate changed inside span at {ti}"

    def test_spike_boundaries(self):
        policy = SpikeRate(base=10, spike_factor=10, at=60, duration=5)
        assert policy.next_change(0.0) == 60.0
        assert policy.next_change(60.0) == 65.0
        assert policy.next_change(62.0) == 65.0
        assert policy.next_change(70.0) == math.inf

    def test_replay_points(self):
        policy = ReplayTrace(points=[(0, 10), (50, 100), (80, 20)])
        assert policy.next_change(0.0) == 50.0
        assert policy.next_change(50.0) == 80.0
        assert policy.next_change(80.0) == math.inf

    def test_diurnal_next_change_is_segment_grid(self):
        """DiurnalRate approximates the sinusoid piecewise-linearly on a
        grid of ``segments`` knots per period; next_change announces the
        next knot strictly after t (so spans never straddle one)."""
        policy = DiurnalRate(base=100, amplitude=0.5, period=960.0,
                             segments=96)
        h = 960.0 / 96
        assert policy.next_change(0.0) == h
        assert policy.next_change(h) == 2 * h  # strictly after a knot
        assert policy.next_change(h + 0.1) == 2 * h

    def test_diurnal_span_rate_chord_error_bound(self):
        """The chord average over a segment is within the documented
        bound, base·|A|·(2π/segments)²/8, of the true mean rate."""
        policy = DiurnalRate(base=100, amplitude=0.8, period=960.0,
                             segments=96)
        bound = 100 * 0.8 * (2 * math.pi / 96) ** 2 / 8
        h = 960.0 / 96
        for k in range(96):
            t0, t1 = k * h, (k + 1) * h
            true_mean = sum(policy.rate(t0 + (i + 0.5) * h / 50)
                            for i in range(50)) / 50
            assert abs(policy.span_rate(t0, t1) - true_mean) <= bound + 1e-9

    def test_diurnal_segments_validated(self):
        with pytest.raises(ValueError, match="segments"):
            DiurnalRate(segments=0)

    def test_diurnal_span_rate_interpolates_within_segment(self):
        policy = DiurnalRate(base=100, amplitude=0.5, period=960.0,
                             segments=96)
        h = 960.0 / 96
        # at a knot the chord equals the true rate
        assert policy.span_rate(h, h) == pytest.approx(policy.rate(h))
        # a sub-span's average lies between the segment endpoint rates
        lo, hi = sorted((policy.rate(3 * h), policy.rate(4 * h)))
        assert lo - 1e-9 <= policy.span_rate(3 * h, 4 * h) <= hi + 1e-9


class TestBurstRate:
    def test_burst_window(self):
        policy = BurstRate(base=10, burst_factor=4, interval=100,
                           burst_duration=10)
        assert policy.rate(5) == 40.0
        assert policy.rate(50) == 10.0

    def test_burst_recurs(self):
        policy = BurstRate(base=10, burst_factor=4, interval=100,
                           burst_duration=10)
        assert policy.rate(105) == 40.0

    def test_zero_hint_forever_when_base_zero(self):
        assert BurstRate(base=0).zero_until(7.0) == math.inf

    def test_zero_hint_inside_dead_burst(self):
        """burst_factor 0 models a recurring total outage window."""
        policy = BurstRate(base=50, burst_factor=0.0, interval=100,
                           burst_duration=10)
        assert policy.rate(5.0) == 0.0
        u = assert_sound_zero_hint(policy, 5.0)
        assert u == pytest.approx(10.0, abs=0.01)
        assert policy.zero_until(50.0) is None  # outside the burst


class TestSpikeRate:
    def test_spike_only_in_window(self):
        policy = SpikeRate(base=10, spike_factor=10, at=60, duration=5)
        assert policy.rate(59) == 10.0
        assert policy.rate(60) == 100.0
        assert policy.rate(64.9) == 100.0
        assert policy.rate(65) == 10.0


class TestReplayTrace:
    def test_step_function(self):
        policy = ReplayTrace(points=[(0, 10), (50, 100), (80, 20)])
        assert policy.rate(0) == 10
        assert policy.rate(49) == 10
        assert policy.rate(50) == 100
        assert policy.rate(200) == 20

    def test_before_first_point(self):
        policy = ReplayTrace(points=[(10, 5)])
        assert policy.rate(0) == 0.0

    def test_empty_trace(self):
        assert ReplayTrace().rate(100) == 0.0
