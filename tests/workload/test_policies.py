import pytest
from hypothesis import given, settings, strategies as st

from repro.workload import (
    BurstRate, ConstantRate, DiurnalRate, ReplayTrace, SpikeRate,
)


class TestConstantRate:
    def test_constant(self):
        policy = ConstantRate(50.0)
        assert policy.rate(0) == policy.rate(1e6) == 50.0

    def test_negative_rejected_on_use(self):
        with pytest.raises(ValueError):
            ConstantRate(-1.0).rate(0)


class TestDiurnalRate:
    def test_base_at_period_boundaries(self):
        policy = DiurnalRate(base=100, amplitude=0.5, period=100.0)
        assert policy.rate(0) == pytest.approx(100.0)
        assert policy.rate(100.0) == pytest.approx(100.0)

    def test_peak_at_quarter_period(self):
        policy = DiurnalRate(base=100, amplitude=0.5, period=100.0)
        assert policy.rate(25.0) == pytest.approx(150.0)

    def test_never_negative(self):
        policy = DiurnalRate(base=10, amplitude=2.0, period=100.0)
        assert all(policy.rate(t) >= 0 for t in range(0, 100, 5))

    @given(st.floats(min_value=0, max_value=1e5))
    @settings(max_examples=50)
    def test_bounded_by_amplitude(self, t):
        policy = DiurnalRate(base=100, amplitude=0.3, period=3600)
        assert 70.0 - 1e-6 <= policy.rate(t) <= 130.0 + 1e-6


class TestBurstRate:
    def test_burst_window(self):
        policy = BurstRate(base=10, burst_factor=4, interval=100,
                           burst_duration=10)
        assert policy.rate(5) == 40.0
        assert policy.rate(50) == 10.0

    def test_burst_recurs(self):
        policy = BurstRate(base=10, burst_factor=4, interval=100,
                           burst_duration=10)
        assert policy.rate(105) == 40.0


class TestSpikeRate:
    def test_spike_only_in_window(self):
        policy = SpikeRate(base=10, spike_factor=10, at=60, duration=5)
        assert policy.rate(59) == 10.0
        assert policy.rate(60) == 100.0
        assert policy.rate(64.9) == 100.0
        assert policy.rate(65) == 10.0


class TestReplayTrace:
    def test_step_function(self):
        policy = ReplayTrace(points=[(0, 10), (50, 100), (80, 20)])
        assert policy.rate(0) == 10
        assert policy.rate(49) == 10
        assert policy.rate(50) == 100
        assert policy.rate(200) == 20

    def test_before_first_point(self):
        policy = ReplayTrace(points=[(10, 5)])
        assert policy.rate(0) == 0.0

    def test_empty_trace(self):
        assert ReplayTrace().rate(100) == 0.0
