from repro.workload import ConstantRate, WorkloadDriver
from repro.workload.industry import (
    batch_processing_window, ecommerce_day, incident_ramp,
)


class TestEcommerceDay:
    def test_covers_full_day(self):
        trace = ecommerce_day(seed=1)
        assert trace.points[0][0] == 0.0
        assert trace.points[-1][0] < 86_400.0

    def test_rates_nonnegative(self):
        trace = ecommerce_day(seed=1)
        assert all(r >= 0 for _, r in trace.points)

    def test_evening_peak_exceeds_night_trough(self):
        trace = ecommerce_day(seed=1, burst_rate=0.0)
        night = trace.rate(4 * 3600.0)
        evening = trace.rate(20 * 3600.0)
        assert evening > night * 1.5

    def test_deterministic_per_seed(self):
        assert ecommerce_day(seed=5).points == ecommerce_day(seed=5).points
        assert ecommerce_day(seed=5).points != ecommerce_day(seed=6).points


class TestBatchWindow:
    def test_batch_window_dominates(self):
        trace = batch_processing_window(seed=1)
        assert trace.rate(4_000.0) > trace.rate(100.0) * 5

    def test_quiet_after_window(self):
        trace = batch_processing_window(seed=1)
        assert trace.rate(6_500.0) < 40.0


class TestIncidentRamp:
    def test_base_before_ramp(self):
        trace = incident_ramp()
        assert trace.rate(60.0) == 60.0

    def test_full_factor_after_ramp(self):
        trace = incident_ramp()
        assert trace.rate(500.0) == 60.0 * 5.0

    def test_monotone_during_ramp(self):
        trace = incident_ramp()
        rates = [trace.rate(t) for t in range(120, 300, 15)]
        assert rates == sorted(rates)

    def test_drivable(self, hotel):
        """An industry trace must plug straight into the driver."""
        driver = WorkloadDriver(hotel.runtime, hotel.app.workload_mix(),
                                incident_ramp(base=10.0), seed=1)
        stats = driver.run_events(30)
        assert stats.requests > 0
