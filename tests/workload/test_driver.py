import pytest

from repro.core import CloudEnvironment
from repro.apps import HotelReservation
from repro.workload import BurstRate, ConstantRate, DiurnalRate, \
    WorkloadDriver, Wrk


class TestWorkloadDriver:
    def test_issues_rate_times_duration(self, hotel):
        stats = hotel.driver.run_events(10)  # 40 rps fixture
        assert stats.requests == 400

    def test_fractional_rates_accumulate(self, hotel):
        driver = WorkloadDriver(hotel.runtime, hotel.app.workload_mix(),
                                ConstantRate(0.5), seed=1)
        stats = driver.run_events(10)
        assert stats.requests == 5

    def test_clock_advances_exactly(self, hotel):
        t0 = hotel.clock.now
        hotel.driver.run_events(12.5)
        assert hotel.clock.now == pytest.approx(t0 + 12.5)

    def test_mix_respected_roughly(self, hotel):
        hotel.driver.run_events(30)
        per_op = hotel.driver.stats.per_operation
        # search_hotel weighted 0.6 should dominate
        assert per_op["search_hotel"] > per_op.get("login", 0)

    def test_zero_seconds_noop(self, hotel):
        stats = hotel.driver.run_events(0)
        assert stats.requests == 0

    def test_negative_rejected(self, hotel):
        with pytest.raises(ValueError):
            hotel.driver.run_events(-1)

    def test_empty_mix_rejected(self, hotel):
        with pytest.raises(ValueError):
            WorkloadDriver(hotel.runtime, {}, ConstantRate(1))

    def test_scrape_happens_during_run(self, hotel):
        hotel.driver.run_events(12)  # default scrape interval 5s
        assert hotel.collector.metrics.series("frontend", "cpu_usage")

    def test_per_tick_cap_bounds_volume_and_warns(self, hotel):
        driver = WorkloadDriver(hotel.runtime, hotel.app.workload_mix(),
                                ConstantRate(10_000), seed=1,
                                max_requests_per_tick=50)
        with pytest.warns(RuntimeWarning, match="aggregate"):
            stats = driver.run_events(2)
        assert stats.requests <= 100

    def test_clipping_warns_once_per_driver(self, hotel):
        driver = WorkloadDriver(hotel.runtime, hotel.app.workload_mix(),
                                ConstantRate(10_000), seed=1,
                                max_requests_per_tick=50)
        with pytest.warns(RuntimeWarning) as record:
            driver.run_events(3)
        assert len([w for w in record
                    if issubclass(w.category, RuntimeWarning)]) == 1

    def test_uncapped_rate_does_not_warn(self, hotel):
        import warnings as _warnings
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            hotel.driver.run_events(5)  # default 60 rps, far below the cap

    def test_error_rate_property(self, hotel):
        hotel.app.backends["mongodb-geo"].revoke_roles("admin")
        hotel.driver.run_events(10)
        assert 0 < hotel.driver.stats.error_rate < 1

    def test_mean_latency(self, hotel):
        hotel.driver.run_events(5)
        assert hotel.driver.stats.mean_latency_ms > 0

    def test_recent_results_bounded(self, hotel):
        hotel.driver.run_events(30)
        assert len(hotel.driver.recent_results) <= 500


class TestAggregateMode:
    """mode="aggregate": coalesced spans over execute_many batches."""

    def _env(self, fidelity, policy=None, rate=60.0, seed=5):
        return CloudEnvironment(HotelReservation, seed=seed,
                                workload_rate=rate, policy=policy,
                                fidelity=fidelity)

    def test_invalid_mode_rejected(self, hotel):
        with pytest.raises(ValueError):
            WorkloadDriver(hotel.runtime, hotel.app.workload_mix(),
                           ConstantRate(1), mode="nope")

    def test_request_counts_match_per_request(self):
        """The span accumulator uses the same rate·span + carry arithmetic;
        only float rounding of the span product can shift a request across
        a boundary, so counts agree to within ±1 per window."""
        agg = self._env("aggregate")
        per = self._env("per_request")
        windows = (30.0, 3.7, 12.25, 0.4, 54.0)
        for w in windows:
            agg.advance(w)
            per.advance(w)
        assert per.driver.stats.requests == 6021  # 60 rps × 100.35 s (+float)
        assert abs(agg.driver.stats.requests
                   - per.driver.stats.requests) <= len(windows)

    def test_burst_rate_counts_match(self):
        policy = BurstRate(base=20, burst_factor=4, interval=60,
                           burst_duration=15)
        agg = self._env("aggregate", policy=policy)
        per = self._env("per_request", policy=policy)
        agg.advance(300.0)
        per.advance(300.0)
        assert agg.driver.stats.requests == per.driver.stats.requests

    def test_diurnal_falls_back_to_one_second_spans(self):
        policy = DiurnalRate(base=30, amplitude=0.5, period=120)
        agg = self._env("aggregate", policy=policy)
        per = self._env("per_request", policy=policy)
        agg.advance(240.0)
        per.advance(240.0)
        assert agg.driver.stats.requests == per.driver.stats.requests

    def test_constant_spans_coalesce_to_scrape_boundaries(self):
        env = self._env("aggregate")
        calls = []
        inner = env.runtime.execute_many_all
        env.runtime.execute_many_all = \
            lambda reqs: calls.append(list(reqs)) or inner(reqs)
        env.advance(100.0)  # 20 scrape-bounded spans, one fused call each
        assert len(calls) <= 20
        assert sum(n for span in calls for _, n in span) == 6000

    def test_statistics_match_under_fault(self):
        agg = self._env("aggregate")
        per = self._env("per_request")
        for env in (agg, per):
            env.app.backends["mongodb-geo"].revoke_roles("admin")
        ra = agg.probe_error_rate(60.0)
        rp = per.probe_error_rate(60.0)
        assert ra == pytest.approx(rp, abs=0.05)
        assert agg.driver.stats.mean_latency_ms == \
            pytest.approx(per.driver.stats.mean_latency_ms, rel=0.1)

    def test_scrape_series_same_shape(self):
        agg = self._env("aggregate")
        per = self._env("per_request")
        agg.advance(50.0)
        per.advance(50.0)
        ta, va = agg.collector.metrics.series("geo", "request_rate").window()
        tp, vp = per.collector.metrics.series("geo", "request_rate").window()
        assert len(ta) == len(tp)
        assert sum(va) == pytest.approx(sum(vp), rel=0.2)

    def test_rate_change_event_respected(self):
        """A queued set_rate-style event must bound the aggregate span."""
        env = self._env("aggregate", policy=ConstantRate(0.0))
        env.queue.schedule_at(
            20.0, lambda: setattr(env.driver, "policy", ConstantRate(50.0)))
        env.advance(40.0)
        assert env.driver.stats.requests == 50 * 20

    def test_deterministic_across_runs(self):
        a = self._env("aggregate")
        b = self._env("aggregate")
        a.advance(60.0)
        b.advance(60.0)
        assert a.driver.stats.requests == b.driver.stats.requests
        assert a.driver.stats.latency_sum_ms == b.driver.stats.latency_sum_ms
        assert a.driver.stats.per_operation == b.driver.stats.per_operation

    def test_recent_results_bounded_and_populated(self):
        env = self._env("aggregate")
        env.advance(120.0)
        assert 0 < len(env.driver.recent_results) <= 500

    def test_high_rates_not_capped(self):
        """The per-request tick cap must not apply: batched execution is
        O(branches) in n, and high offered rates are the tier's purpose."""
        env = self._env("aggregate", rate=10_000.0)
        env.advance(10.0)
        assert env.driver.stats.requests == 100_000


class TestWrk:
    def test_paper_api_shape(self, hotel):
        wrk = Wrk(rate=20, duration=5)
        wrk.bind(hotel.driver)
        stats = wrk.start_workload(url=hotel.app.frontend_url)
        assert stats.requests == 100

    def test_unbound_start_rejected(self):
        with pytest.raises(RuntimeError):
            Wrk(rate=10, duration=1).start_workload("http://x")

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Wrk(rate=10, duration=-1)
