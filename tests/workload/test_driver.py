import pytest

from repro.workload import ConstantRate, WorkloadDriver, Wrk


class TestWorkloadDriver:
    def test_issues_rate_times_duration(self, hotel):
        stats = hotel.driver.run_for(10)  # 40 rps fixture
        assert stats.requests == 400

    def test_fractional_rates_accumulate(self, hotel):
        driver = WorkloadDriver(hotel.runtime, hotel.app.workload_mix(),
                                ConstantRate(0.5), seed=1)
        stats = driver.run_for(10)
        assert stats.requests == 5

    def test_clock_advances_exactly(self, hotel):
        t0 = hotel.clock.now
        hotel.driver.run_for(12.5)
        assert hotel.clock.now == pytest.approx(t0 + 12.5)

    def test_mix_respected_roughly(self, hotel):
        hotel.driver.run_for(30)
        per_op = hotel.driver.stats.per_operation
        # search_hotel weighted 0.6 should dominate
        assert per_op["search_hotel"] > per_op.get("login", 0)

    def test_zero_seconds_noop(self, hotel):
        stats = hotel.driver.run_for(0)
        assert stats.requests == 0

    def test_negative_rejected(self, hotel):
        with pytest.raises(ValueError):
            hotel.driver.run_for(-1)

    def test_empty_mix_rejected(self, hotel):
        with pytest.raises(ValueError):
            WorkloadDriver(hotel.runtime, {}, ConstantRate(1))

    def test_scrape_happens_during_run(self, hotel):
        hotel.driver.run_for(12)  # default scrape interval 5s
        assert hotel.collector.metrics.series("frontend", "cpu_usage")

    def test_per_tick_cap_bounds_volume(self, hotel):
        driver = WorkloadDriver(hotel.runtime, hotel.app.workload_mix(),
                                ConstantRate(10_000), seed=1,
                                max_requests_per_tick=50)
        stats = driver.run_for(2)
        assert stats.requests <= 100

    def test_error_rate_property(self, hotel):
        hotel.app.backends["mongodb-geo"].revoke_roles("admin")
        hotel.driver.run_for(10)
        assert 0 < hotel.driver.stats.error_rate < 1

    def test_mean_latency(self, hotel):
        hotel.driver.run_for(5)
        assert hotel.driver.stats.mean_latency_ms > 0

    def test_recent_results_bounded(self, hotel):
        hotel.driver.run_for(30)
        assert len(hotel.driver.recent_results) <= 500


class TestWrk:
    def test_paper_api_shape(self, hotel):
        wrk = Wrk(rate=20, duration=5)
        wrk.bind(hotel.driver)
        stats = wrk.start_workload(url=hotel.app.frontend_url)
        assert stats.requests == 100

    def test_unbound_start_rejected(self):
        with pytest.raises(RuntimeError):
            Wrk(rate=10, duration=1).start_workload("http://x")

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Wrk(rate=10, duration=-1)
