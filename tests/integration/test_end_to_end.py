"""End-to-end integration: simulated agents solving real problems through
the full stack (env → fault → ACI → agent → evaluator)."""

import pytest

from repro.bench import BenchmarkRunner
from repro.core import LlmJudge, Orchestrator
from repro.problems import get_problem, noop_pids


class TestOracleSolvesEverything:
    """The oracle profile proves every problem family is solvable through
    the ACI — the environment-side guarantee all 48 problems rest on."""

    @pytest.mark.parametrize("pid", [
        "auth_missing_hotel_res-mitigation-1",
        "misconfig_k8s_social_net-mitigation-1",
        "revoke_auth_hotel_res-mitigation-1",
        "user_unregistered_hotel_res-mitigation-1",
        "buggy_app_image_hotel_res-mitigation-1",
        "scale_pod_zero_social_net-mitigation-1",
        "assign_to_non_existent_node_social_net-mitigation-1",
    ])
    def test_oracle_mitigates_every_functional_fault(self, pid):
        case = BenchmarkRunner(max_steps=20, seed=5).run_case("oracle", pid)
        assert case.success, case.session.transcript()

    @pytest.mark.parametrize("task,pid", [
        ("detection", "revoke_auth_hotel_res-detection-1"),
        ("detection", "network_loss_hotel_res-detection-1"),
        ("detection", "pod_failure_hotel_res-detection-1"),
        ("localization", "misconfig_k8s_social_net-localization-2"),
        ("localization", "assign_to_non_existent_node_social_net-localization-1"),
        ("analysis", "auth_missing_hotel_res-analysis-1"),
        ("analysis", "buggy_app_image_hotel_res-analysis-1"),
    ])
    def test_oracle_solves_answer_tasks(self, task, pid):
        case = BenchmarkRunner(max_steps=20, seed=5).run_case("oracle", pid)
        assert case.success, case.session.transcript()

    def test_oracle_rejects_noop(self):
        for pid in noop_pids():
            case = BenchmarkRunner(max_steps=20, seed=5).run_case("oracle", pid)
            assert case.success, f"oracle false-positived on {pid}"


class TestPaperAgentBehaviours:
    def test_gpt35_loops_on_errors(self):
        """§3.6.3: GPT-3.5 repeats malformed calls instead of recovering."""
        case = BenchmarkRunner(max_steps=20, seed=3).run_case(
            "gpt-3.5-w-shell", "revoke_auth_hotel_res-mitigation-1")
        raws = [s.action_raw for s in case.session.steps]
        assert len(raws) > len(set(raws)), "expected repeated actions"
        assert not case.success

    def test_flash_answers_all_detection(self):
        runner = BenchmarkRunner(max_steps=20, seed=3)
        from repro.problems import list_problems
        wins = sum(runner.run_case("flash", pid).success
                   for pid in list_problems("detection")[:6])
        assert wins == 6

    def test_flash_never_calls_get_traces(self):
        """Figure 6: FLASH's action mix contains no get_traces calls."""
        runner = BenchmarkRunner(max_steps=20, seed=3)
        case = runner.run_case("flash",
                               "misconfig_k8s_social_net-localization-1")
        assert all(s.action_name != "get_traces" for s in case.session.steps)

    def test_judge_grades_real_session(self):
        orch = Orchestrator(seed=4)
        orch.init_problem(get_problem("revoke_auth_hotel_res-detection-1"))
        from repro.agents import build_agent
        agent = build_agent("oracle", *orch.init_problem(
            get_problem("revoke_auth_hotel_res-detection-1")),
            task_type="detection", seed=4)
        orch.register_agent(agent, "oracle")
        res = orch.run_problem(max_steps=10)
        verdict = LlmJudge().judge(orch.session, "detection")
        assert res["success"] and verdict.grounded


class TestDynamicEnvironmentProperty:
    def test_workload_continues_during_agent_session(self):
        """The cloud must keep living while the agent thinks (§2.2.3)."""
        orch = Orchestrator(seed=6)
        orch.init_problem(get_problem("revoke_auth_hotel_res-detection-1"))
        requests_before = orch.env.driver.stats.requests

        class SlowAgent:
            async def get_action(self, state):
                return 'submit("yes")'

        orch.register_agent(SlowAgent(), "slow")
        orch.run_problem(max_steps=5)
        assert orch.env.driver.stats.requests > requests_before

    def test_fresh_environment_per_problem(self):
        r = BenchmarkRunner(max_steps=5, seed=7)
        c1 = r.run_case("oracle", "scale_pod_zero_social_net-detection-1")
        c2 = r.run_case("oracle", "scale_pod_zero_social_net-detection-1")
        assert c1.session is not c2.session
