"""Every shipped example must run end to end (they are the public API's
acceptance tests)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv=None):
    old_argv = sys.argv
    sys.argv = [name] + list(argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "evaluation" in out and "success" in out

    def test_custom_problem(self, capsys):
        run_example("custom_problem.py")
        out = capsys.readouterr().out
        assert "oracle on the double-fault problem" in out
        # the oracle must prove the custom problem solvable
        oracle_block = out.split("flash on")[0]
        assert "success: True" in oracle_block

    def test_offline_baselines(self, capsys):
        run_example("offline_baselines.py")
        out = capsys.readouterr().out
        assert "MKSMC" in out and "RMLAD" in out and "PDiagnose" in out
        assert "top-3" in out

    def test_incident_walkthrough(self, capsys):
        run_example("incident_walkthrough.py")
        out = capsys.readouterr().out
        assert "mitigation check: success=True" in out

    def test_agentops_lifecycle(self, capsys):
        run_example("agentops_lifecycle.py")
        out = capsys.readouterr().out
        assert "=== oracle ===" in out
        assert "resolved: True" in out.split("=== flash ===")[0]

    @pytest.mark.slow
    def test_run_benchmark_quick(self, capsys):
        run_example("run_benchmark.py", argv=["--quick", "--seed", "1"])
        out = capsys.readouterr().out
        assert "Table 3" in out and "Figure 5" in out
