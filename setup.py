"""Setuptools entry point.

A plain setup.py (no pyproject.toml) so `pip install -e . --no-use-pep517`
works in offline environments that lack the `wheel` package (PEP 517
editable installs require building a wheel).

numpy is a hard install dependency: the deterministic RNG streams are
built on ``numpy.random.Generator`` and the vectorized batch sampling
engine draws fused arrays through it.  (The scalar sampling fallback in
``repro.services.vectorized`` only covers environments where numpy is
present for RNG but ``REPRO_SCALAR_SAMPLING=1`` forces value-by-value
draws — see docs/design/fidelity.md.)
"""

from setuptools import find_packages, setup

setup(
    name="repro-mlsysim",
    version="2.7.0",
    description=("Simulated cloud incident benchmark: apps, faults, "
                 "telemetry, and agent evaluation on a virtual clock"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
