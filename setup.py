"""Setuptools entry point.

Kept alongside pyproject.toml so `pip install -e . --no-use-pep517` works in
offline environments that lack the `wheel` package (PEP 517 editable
installs require building a wheel).
"""

from setuptools import setup

setup()
