"""AIOpsLab reproduction — evaluate AI agents for autonomous clouds.

Reproduction of *AIOpsLab: A Holistic Framework to Evaluate AI Agents for
Enabling Autonomous Clouds* (MLSys 2025).  Top-level re-exports cover the
public workflow: define or pick a problem, orchestrate an agent against the
deployed environment, evaluate.

>>> from repro import Orchestrator, LocalizationTask
>>> orch = Orchestrator(seed=0)
>>> ctx = orch.init_problem(LocalizationTask("TargetPortMisconfig"))
"""

__version__ = "1.0.0"

from repro.core import (
    AnalysisTask,
    CloudEnvironment,
    DetectionTask,
    IncidentLifecycle,
    LlmJudge,
    LocalizationTask,
    MitigationTask,
    Orchestrator,
    Problem,
    TaskActions,
)
from repro.apps import HotelReservation, SocialNetwork
from repro.agents import AGENT_NAMES, build_agent
from repro.problems import benchmark_pids, get_problem, list_problems
from repro.workload import Wrk

#: paper-style aliases (Example 2.1 imports ``VirtFaultInjector`` and
#: ``Wrk`` directly from the framework package)
from repro.faults import (  # noqa: F401  (re-export)
    ApplicationFaultInjector,
    SymptomaticFaultInjector,
    VirtFaultInjector,
)

__all__ = [
    "__version__",
    "AnalysisTask",
    "CloudEnvironment",
    "DetectionTask",
    "IncidentLifecycle",
    "LlmJudge",
    "LocalizationTask",
    "MitigationTask",
    "Orchestrator",
    "Problem",
    "TaskActions",
    "HotelReservation",
    "SocialNetwork",
    "AGENT_NAMES",
    "build_agent",
    "benchmark_pids",
    "get_problem",
    "list_problems",
    "Wrk",
    "ApplicationFaultInjector",
    "SymptomaticFaultInjector",
    "VirtFaultInjector",
]
