"""AIOpsLab reproduction — evaluate AI agents for autonomous clouds.

Reproduction of *AIOpsLab: A Holistic Framework to Evaluate AI Agents for
Enabling Autonomous Clouds* (MLSys 2025).  Top-level re-exports cover the
public workflow: define or pick a problem, orchestrate an agent against the
deployed environment, evaluate.

Session-centric v2 API — each session owns its environment, so any number
can run concurrently::

    >>> from repro import Orchestrator, LocalizationTask
    >>> orch = Orchestrator()
    >>> handle = orch.create_session(
    ...     LocalizationTask("TargetPortMisconfig"), seed=0)
    >>> agent = MyAgent(*handle.context)      # (description, instructions,
    ...                                       #  api_docs) from the registry
    >>> result = handle.bind_agent(agent).run_sync(max_steps=10)

Batches fan out under an asyncio semaphore with results independent of the
concurrency level::

    >>> from repro import SessionSpec, run_sessions_sync
    >>> outcomes = run_sessions_sync(
    ...     [SessionSpec(pid, agent_factory("react"), seed=i)
    ...      for i, pid in enumerate(benchmark_pids())],
    ...     concurrency=8)

The seed's ``init_problem`` → ``register_agent`` → ``start_problem`` flow
still works as a thin shim over one implicit session and is deprecated.
"""

__version__ = "2.7.0"

from repro.core import (
    ActionRegistry,
    AnalysisTask,
    AppSpec,
    CloudEnvironment,
    DetectionTask,
    IncidentLifecycle,
    LlmJudge,
    LocalizationTask,
    MitigationTask,
    Observation,
    Orchestrator,
    Problem,
    SessionHandle,
    SessionOutcome,
    SessionSpec,
    TaskActions,
    action,
    run_sessions,
    run_sessions_sync,
)
from repro.apps import HotelReservation, SocialNetwork
from repro.agents import AGENT_NAMES, agent_factory, build_agent
from repro.problems import benchmark_pids, get_problem, list_problems
from repro.workload import Wrk

#: paper-style aliases (Example 2.1 imports ``VirtFaultInjector`` and
#: ``Wrk`` directly from the framework package)
from repro.faults import (  # noqa: F401  (re-export)
    ApplicationFaultInjector,
    SymptomaticFaultInjector,
    VirtFaultInjector,
)

__all__ = [
    "__version__",
    "ActionRegistry",
    "AnalysisTask",
    "AppSpec",
    "CloudEnvironment",
    "DetectionTask",
    "IncidentLifecycle",
    "LlmJudge",
    "LocalizationTask",
    "MitigationTask",
    "Observation",
    "Orchestrator",
    "Problem",
    "SessionHandle",
    "SessionOutcome",
    "SessionSpec",
    "TaskActions",
    "action",
    "run_sessions",
    "run_sessions_sync",
    "HotelReservation",
    "SocialNetwork",
    "AGENT_NAMES",
    "agent_factory",
    "build_agent",
    "benchmark_pids",
    "get_problem",
    "list_problems",
    "Wrk",
    "ApplicationFaultInjector",
    "SymptomaticFaultInjector",
    "VirtFaultInjector",
]
