"""Scheduled-fault scenario problems: timelines the agent lives through.

The 48-problem benchmark injects its fault before the agent is engaged and
keeps it active for the whole session.  The scenarios here exercise the
event kernel's new capability — the fault *timeline* unfolds while the
agent works:

* **delayed onset** — the system is healthy when the session starts and
  breaks mid-investigation;
* **flapping** — the fault comes and goes, so a single probe can miss it;
* **cascade** — a second fault lands while the first is being diagnosed;
* **surge** — a traffic-burst rate policy takes over as the fault lands.

These problems are registered behind :func:`repro.problems.scenario_pids`
and are *not* part of :func:`~repro.problems.benchmark_pids`, so the
paper-faithful 48-problem set is untouched.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.env import CloudEnvironment
from repro.core.problem import (
    DetectionTask,
    LocalizationTask,
    MitigationTask,
    Problem,
)
from repro.faults.schedule import ArmedSchedule, FaultSchedule
from repro.workload.policies import BurstRate


class ScheduledFaultProblem(Problem):
    """Base for problems whose fault is a :class:`FaultSchedule`.

    Subclasses implement :meth:`build_schedule`; arming replaces the
    immediate injection of the base class.  The armed schedule is kept so
    teardown can cancel what hasn't fired and recover what has.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.armed: Optional[ArmedSchedule] = None

    def build_schedule(self) -> FaultSchedule:
        raise NotImplementedError

    def inject_fault(self, env: CloudEnvironment) -> None:
        """Arm the timeline and soak; later entries fire mid-session."""
        self.armed = self.build_schedule().arm(env)
        self.injected_at = env.clock.now
        env.advance(self.fault_soak_seconds)

    def recover_fault(self, env: CloudEnvironment) -> None:
        """Oracle teardown: stop the timeline, undo live injections."""
        if self.armed is not None:
            self.armed.cancel_pending()
            self.armed.recover_all()


class DelayedRevokeAuthDetection(ScheduledFaultProblem, DetectionTask):
    """Healthy at session start; MongoDB auth is revoked mid-session.

    The soak covers 30s of the 40s onset delay, so the fault lands ~10
    virtual seconds into the agent's investigation — an agent that probes
    once and answers early reports a false "no".
    """

    onset_delay = 40.0

    def __init__(self, pid: Optional[str] = None) -> None:
        super().__init__(None, target="mongodb-geo",
                         app_name="HotelReservation", pid=pid, expected="yes")

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule.delayed("RevokeAuth", (self.target,),
                                     self.onset_delay)


class FlappingNetworkLossDetection(ScheduledFaultProblem, DetectionTask):
    """Intermittent packet loss on the search path: 15s on, 15s off."""

    def __init__(self, pid: Optional[str] = None) -> None:
        super().__init__(None, target="search",
                         app_name="HotelReservation", pid=pid, expected="yes")

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule.flapping("NetworkLoss", (self.target,),
                                      start=5.0, period=30.0, on_for=15.0,
                                      cycles=6)


class FlappingPodFailureLocalization(ScheduledFaultProblem, LocalizationTask):
    """The recommendation pods crash-loop in bursts; localize the service."""

    def __init__(self, pid: Optional[str] = None) -> None:
        super().__init__(None, target="recommendation",
                         app_name="HotelReservation", pid=pid)

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule.flapping("PodFailure", (self.target,),
                                      start=10.0, period=40.0, on_for=20.0,
                                      cycles=5)


class CascadeGeoOutageLocalization(ScheduledFaultProblem, LocalizationTask):
    """A two-stage outage: geo's database auth is revoked first, then the
    recommendation pods fail while the agent is diagnosing.  Ground truth
    is the *root* of the cascade (mongodb-geo)."""

    def __init__(self, pid: Optional[str] = None) -> None:
        super().__init__(None, target="mongodb-geo",
                         app_name="HotelReservation", pid=pid)

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule.cascade([
            (10.0, "RevokeAuth", (self.target,)),
            (50.0, "PodFailure", ("recommendation",)),
        ])


class SurgeRevokeAuthMitigation(ScheduledFaultProblem, MitigationTask):
    """A marketing-burst traffic surge begins just before profile's
    database auth is revoked; the agent must repair the system while the
    burst policy drives 3× load waves.

    The burst factor is chosen so the peak (180 rps) stays under the
    driver's ``max_requests_per_tick`` cap — the offered load is actually
    delivered, not clipped."""

    def __init__(self, pid: Optional[str] = None) -> None:
        super().__init__(None, target="mongodb-profile",
                         app_name="HotelReservation", pid=pid)

    def build_schedule(self) -> FaultSchedule:
        return (FaultSchedule()
                .set_rate(5.0, BurstRate(base=self.workload_rate,
                                         burst_factor=3.0, interval=120.0,
                                         burst_duration=30.0))
                .inject(20.0, "RevokeAuth", (self.target,)))


#: pid -> factory, in presentation order
SCENARIO_FACTORIES: dict[str, Callable[[], Problem]] = {
    "delayed_revoke_auth_hotel_res-detection-1":
        lambda: DelayedRevokeAuthDetection(
            pid="delayed_revoke_auth_hotel_res-detection-1"),
    "flapping_network_loss_hotel_res-detection-1":
        lambda: FlappingNetworkLossDetection(
            pid="flapping_network_loss_hotel_res-detection-1"),
    "flapping_pod_failure_hotel_res-localization-1":
        lambda: FlappingPodFailureLocalization(
            pid="flapping_pod_failure_hotel_res-localization-1"),
    "cascade_geo_outage_hotel_res-localization-1":
        lambda: CascadeGeoOutageLocalization(
            pid="cascade_geo_outage_hotel_res-localization-1"),
    "surge_revoke_auth_hotel_res-mitigation-1":
        lambda: SurgeRevokeAuthMitigation(
            pid="surge_revoke_auth_hotel_res-mitigation-1"),
}
