"""Scheduled-fault scenario problems: timelines the agent lives through.

The 48-problem benchmark injects its fault before the agent is engaged and
keeps it active for the whole session.  The scenarios here exercise the
event kernel's capabilities — the fault *timeline* unfolds while the agent
works:

* **delayed onset** — the system is healthy when the session starts and
  breaks mid-investigation;
* **flapping** — the fault comes and goes, so a single probe can miss it;
* **cascade** — a second fault lands while the first is being diagnosed;
* **surge** — a traffic-burst rate policy takes over as the fault lands;
* **load-triggered** — the fault fires only once the system crosses a
  telemetry threshold (a :class:`~repro.faults.triggers.MetricAbove`
  trigger evaluated at scrape time), so symptom and fault interact;
* **chained** — entries fire relative to *other entries'* firing
  (:class:`~repro.faults.triggers.AfterEvent`), whatever triggered them;
* **high-rate** — 1k–2k rps variants at ``fidelity="aggregate"``, the
  batched execution tier, on both applications;
* **multi-app** — several applications co-hosted on one environment
  (shared clock/queue/collector, separate namespaces), where a metric
  watch on one app's telemetry fires faults into the other: noisy
  neighbor, shared-backend contention cascades, and a telemetry-driven
  cross-app **auto-remediation loop** built on repeating triggers
  (:meth:`~repro.faults.schedule.FaultSchedule.every_crossing` /
  :meth:`~repro.telemetry.watch.MetricWatch.rearm`);
* **resource-plane** — incidents with *no injected fault at all*: the
  :class:`~repro.kubesim.resources.ResourcePlane` makes co-tenancy
  physical, so an overcommitted node degrades its tenants emergently,
  and the :class:`~repro.kubesim.controllers.HorizontalAutoscaler`
  reacts to (or thrashes on, or exhausts node capacity chasing) real
  demand — the timeline is empty and the machines are the incident.

Scenarios span both applications (HotelReservation and SocialNetwork),
singly and co-hosted.  They are registered behind
:func:`repro.problems.scenario_pids` and are *not* part of
:func:`~repro.problems.benchmark_pids`, so the paper-faithful 48-problem
set is untouched.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.apps import HotelReservation, SocialNetwork
from repro.core.env import AppSpec, FIDELITY_TIERS, CloudEnvironment, EnvSpec
from repro.core.problem import (
    DetectionTask,
    LocalizationTask,
    MitigationTask,
    Problem,
)
from repro.faults.schedule import ArmedSchedule, FaultSchedule
from repro.faults.triggers import MetricAbove
from repro.kubesim import HpaPolicy, NodeSpec
from repro.workload.policies import BurstRate, RatePolicy, SpikeRate

#: the two hosted namespaces, named once (multi-app scenario wiring)
HOTEL_NS = HotelReservation.namespace
SOCIAL_NS = SocialNetwork.namespace


class ScheduledFaultProblem(Problem):
    """Base for problems whose fault is a :class:`FaultSchedule`.

    Subclasses implement :meth:`build_schedule`; arming replaces the
    immediate injection of the base class.  The armed schedule is kept so
    teardown can cancel what hasn't fired and recover what has.

    ``fidelity`` can be overridden per instance (the grading-agreement
    tests run every scenario family at both execution tiers), and
    :meth:`rate_policy` lets a scenario drive a non-constant workload from
    t=0 — load-triggered scenarios need traffic shape, not just rate.
    """

    def __init__(self, *args, fidelity: Optional[str] = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if fidelity is not None:
            if fidelity not in FIDELITY_TIERS:
                raise ValueError(
                    f"fidelity must be one of {FIDELITY_TIERS}, "
                    f"got {fidelity!r}")
            self.fidelity = fidelity
        self.armed: Optional[ArmedSchedule] = None

    def rate_policy(self) -> Optional[RatePolicy]:
        """The workload's rate policy (None → constant ``workload_rate``)."""
        return None

    def env_spec(self, seed: int = 0) -> EnvSpec:
        return EnvSpec(seed=seed, workload_rate=self.workload_rate,
                       fidelity=self.fidelity, policy=self.rate_policy())

    def build_schedule(self) -> FaultSchedule:
        raise NotImplementedError

    def inject_fault(self, env: CloudEnvironment) -> None:
        """Arm the timeline and soak; later entries fire mid-session."""
        self.armed = self.build_schedule().arm(env)
        self.injected_at = env.clock.now
        env.advance(self.fault_soak_seconds)

    def recover_fault(self, env: CloudEnvironment) -> None:
        """Oracle teardown: stop the timeline, undo live injections."""
        if self.armed is not None:
            self.armed.cancel_pending()
            self.armed.recover_all()


# ---------------------------------------------------------------------------
# HotelReservation: time-triggered shapes (the original five that shipped
# with the FaultSchedule timeline layer)
# ---------------------------------------------------------------------------

class DelayedRevokeAuthDetection(ScheduledFaultProblem, DetectionTask):
    """Healthy at session start; MongoDB auth is revoked mid-session.

    The soak covers 30s of the 40s onset delay, so the fault lands ~10
    virtual seconds into the agent's investigation — an agent that probes
    once and answers early reports a false "no".
    """

    onset_delay = 40.0

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="mongodb-geo",
                         app_name="HotelReservation", pid=pid, expected="yes",
                         fidelity=fidelity)

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule.delayed("RevokeAuth", (self.target,),
                                     self.onset_delay)


class FlappingNetworkLossDetection(ScheduledFaultProblem, DetectionTask):
    """Intermittent packet loss on the search path: 15s on, 15s off."""

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="search",
                         app_name="HotelReservation", pid=pid, expected="yes",
                         fidelity=fidelity)

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule.flapping("NetworkLoss", (self.target,),
                                      start=5.0, period=30.0, on_for=15.0,
                                      cycles=6)


class FlappingPodFailureLocalization(ScheduledFaultProblem, LocalizationTask):
    """The recommendation pods crash-loop in bursts; localize the service."""

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="recommendation",
                         app_name="HotelReservation", pid=pid,
                         fidelity=fidelity)

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule.flapping("PodFailure", (self.target,),
                                      start=10.0, period=40.0, on_for=20.0,
                                      cycles=5)


class CascadeGeoOutageLocalization(ScheduledFaultProblem, LocalizationTask):
    """A two-stage outage: geo's database auth is revoked first, then the
    recommendation pods fail while the agent is diagnosing.  Ground truth
    is the *root* of the cascade (mongodb-geo)."""

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="mongodb-geo",
                         app_name="HotelReservation", pid=pid,
                         fidelity=fidelity)

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule.cascade([
            (10.0, "RevokeAuth", (self.target,)),
            (50.0, "PodFailure", ("recommendation",)),
        ])


class SurgeRevokeAuthMitigation(ScheduledFaultProblem, MitigationTask):
    """A marketing-burst traffic surge begins just before profile's
    database auth is revoked; the agent must repair the system while the
    burst policy drives 3× load waves.

    The burst factor is chosen so the peak (180 rps) stays under the
    driver's ``max_requests_per_tick`` cap — the offered load is actually
    delivered, not clipped."""

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="mongodb-profile",
                         app_name="HotelReservation", pid=pid,
                         fidelity=fidelity)

    def build_schedule(self) -> FaultSchedule:
        return (FaultSchedule()
                .set_rate(5.0, BurstRate(base=self.workload_rate,
                                         burst_factor=3.0, interval=120.0,
                                         burst_duration=30.0))
                .inject(20.0, "RevokeAuth", (self.target,)))


# ---------------------------------------------------------------------------
# HotelReservation: condition-triggered and chained shapes
# ---------------------------------------------------------------------------

class LoadTriggeredNetworkLossDetection(ScheduledFaultProblem, DetectionTask):
    """The fault fires *because* the system is loaded: recurring traffic
    bursts (3× every 45s) push the frontend's request rate past 90 req/s,
    and only then does packet loss land on the search path — closed-loop
    symptom/fault interaction, not a wall-clock appointment.

    Timing: bursts run [0,15), [45,60), ... and the watch is armed at
    t=30 (after warmup), so the first satisfying scrape is t=50 — the
    fault is live before the agent is engaged at t=60."""

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="search",
                         app_name="HotelReservation", pid=pid, expected="yes",
                         fidelity=fidelity)

    def rate_policy(self) -> RatePolicy:
        return BurstRate(base=self.workload_rate, burst_factor=3.0,
                         interval=45.0, burst_duration=15.0)

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule.load_triggered(
            MetricAbove("frontend", "request_rate", 90.0),
            "NetworkLoss", (self.target,))


class ErrorCascadeLocalization(ScheduledFaultProblem, LocalizationTask):
    """A degradation-conditioned cascade: geo's auth is revoked on a
    timer, and once the frontend's error rate has stayed above 2 err/s
    for 10 sustained seconds, the recommendation pods fail too — the
    second fault fires because the system is already degraded.  Ground
    truth is the cascade root (mongodb-geo)."""

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="mongodb-geo",
                         app_name="HotelReservation", pid=pid,
                         fidelity=fidelity)

    def build_schedule(self) -> FaultSchedule:
        return (FaultSchedule()
                .inject(10.0, "RevokeAuth", (self.target,), tag="root")
                .when(MetricAbove("frontend", "error_rate", 2.0,
                                  sustain_s=10.0),
                      "PodFailure", ("recommendation",)))


class ChainedLossRelapseDetection(ScheduledFaultProblem, DetectionTask):
    """An incident with a relapse, expressed as an event chain: packet
    loss lands at t=15, heals 25s after it landed, then relapses 20s
    after the healing — each stage anchored to the previous stage's
    *firing*, not to wall-clock guesses."""

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="search",
                         app_name="HotelReservation", pid=pid, expected="yes",
                         fidelity=fidelity)

    def build_schedule(self) -> FaultSchedule:
        return (FaultSchedule()
                .inject(15.0, "NetworkLoss", (self.target,), tag="loss")
                .after("loss", "NetworkLoss", (self.target,), delay=25.0,
                       kind="recover", new_tag="healed")
                .after("healed", "NetworkLoss", (self.target,), delay=20.0))


class HighRateDelayedRevokeAuthDetection(DelayedRevokeAuthDetection):
    """The delayed-onset scenario at 1000 rps on the aggregate tier —
    "millions of users" scale, same timeline, same grading."""

    workload_rate = 1000.0
    fidelity = "aggregate"


class HighRateCascadeLocalization(CascadeGeoOutageLocalization):
    """The geo cascade at 2000 rps on the aggregate tier."""

    workload_rate = 2000.0
    fidelity = "aggregate"


# ---------------------------------------------------------------------------
# SocialNetwork scenarios
# ---------------------------------------------------------------------------

class DelayedScaleZeroDetection(ScheduledFaultProblem, DetectionTask):
    """SocialNetwork is healthy at session start; compose-post is scaled
    to zero pods 40s in (10s into the agent's investigation)."""

    onset_delay = 40.0

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="compose-post-service",
                         app_name="SocialNetwork", pid=pid, expected="yes",
                         fidelity=fidelity)

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule.delayed("ScalePod", (self.target,),
                                     self.onset_delay)


class FlappingMisconfigDetection(ScheduledFaultProblem, DetectionTask):
    """user-service's target port flips between broken and fixed — the
    paper's TargetPortMisconfig as an intermittent incident."""

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="user-service",
                         app_name="SocialNetwork", pid=pid, expected="yes",
                         fidelity=fidelity)

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule.flapping("TargetPortMisconfig", (self.target,),
                                      start=5.0, period=30.0, on_for=15.0,
                                      cycles=6)


class SocialCascadeLocalization(ScheduledFaultProblem, LocalizationTask):
    """A SocialNetwork cascade: user-service's port is misconfigured
    first, then compose-post is scaled to zero mid-diagnosis.  Ground
    truth is the root (user-service)."""

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="user-service",
                         app_name="SocialNetwork", pid=pid,
                         fidelity=fidelity)

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule.cascade([
            (10.0, "TargetPortMisconfig", (self.target,)),
            (50.0, "ScalePod", ("compose-post-service",)),
        ])


class LoadTriggeredScaleZeroLocalization(ScheduledFaultProblem,
                                         LocalizationTask):
    """A one-off traffic spike (4× at t=45) trips a request-rate watch on
    the SocialNetwork frontend, and the overload "takes down" compose-post
    (scaled to zero) — localize the service that failed under load."""

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="compose-post-service",
                         app_name="SocialNetwork", pid=pid,
                         fidelity=fidelity)

    def rate_policy(self) -> RatePolicy:
        return SpikeRate(base=self.workload_rate, spike_factor=4.0,
                         at=45.0, duration=30.0)

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule.load_triggered(
            MetricAbove("nginx-web-server", "request_rate", 90.0),
            "ScalePod", (self.target,))


class HighRateDelayedMisconfigDetection(ScheduledFaultProblem, DetectionTask):
    """SocialNetwork at 1500 rps on the aggregate tier; post-storage's
    target port breaks 20s after arming."""

    workload_rate = 1500.0
    fidelity = "aggregate"
    onset_delay = 20.0

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="post-storage-service",
                         app_name="SocialNetwork", pid=pid, expected="yes",
                         fidelity=fidelity)

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule.delayed("TargetPortMisconfig", (self.target,),
                                     self.onset_delay)


# ---------------------------------------------------------------------------
# Multi-app scenarios: two applications, one environment, cross-app triggers
# ---------------------------------------------------------------------------

class MultiAppScheduledProblem(ScheduledFaultProblem):
    """Base for scenarios hosted on a multi-app :class:`CloudEnvironment`.

    Subclasses declare the hosted applications via :meth:`app_specs`
    (first spec = the primary app the task is graded on) and a timeline
    whose entries may target any hosted namespace.  The agent's problem
    description leads with the primary app (existing scaffolds parse the
    first ``namespace "..."`` they see) and then introduces the co-hosted
    neighbors, whose namespaces the ACI and kubectl can inspect too.
    """

    def app_specs(self) -> list[AppSpec]:
        raise NotImplementedError

    def create_environment(self, seed: int = 0) -> CloudEnvironment:
        return CloudEnvironment(self.app_specs(), seed=seed,
                                fidelity=self.fidelity)

    def problem_description(self, env: CloudEnvironment) -> str:
        desc = super().problem_description(env)
        neighbors = env.apps[1:]
        if not neighbors:
            return desc
        extra = "\n".join(
            f"A second application ({a.name}) is co-hosted on the same "
            f'cluster in namespace "{a.namespace}" '
            f"(services: {', '.join(sorted(a.services))})."
            for a in neighbors)
        head, sep, tail = desc.partition("Task: ")
        return f"{head}{extra}\n{sep}{tail}" if sep else f"{desc}\n{extra}"


class NoisyNeighborDetection(MultiAppScheduledProblem, DetectionTask):
    """HotelReservation (under test) shares the environment with a bursty
    SocialNetwork neighbor.  When the neighbor's storm pushes its frontend
    past ``storm_threshold`` req/s, packet loss lands on the *hotel* search
    path — interference from a co-tenant, not a fault of the app itself.

    Timing: the neighbor bursts on a 45 s cycle ([0, 15), [45, 60), ...);
    the watch arms at t=30 (after warmup), so the first satisfying scrape
    is t=50 — the interference is live before the agent engages at t=60."""

    neighbor_base = 40.0
    neighbor_factor = 5.0
    neighbor_interval = 45.0
    neighbor_duration = 15.0
    storm_threshold = 150.0

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="search",
                         app_name="HotelReservation", pid=pid, expected="yes",
                         fidelity=fidelity)

    def app_specs(self) -> list[AppSpec]:
        return [
            AppSpec(HotelReservation, workload_rate=self.workload_rate),
            AppSpec(SocialNetwork, policy=BurstRate(
                base=self.neighbor_base, burst_factor=self.neighbor_factor,
                interval=self.neighbor_interval,
                burst_duration=self.neighbor_duration)),
        ]

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule.load_triggered(
            MetricAbove("nginx-web-server", "request_rate",
                        self.storm_threshold, namespace=SOCIAL_NS),
            "NetworkLoss", (self.target,), namespace=HOTEL_NS)


class SharedBackendCascadeLocalization(MultiAppScheduledProblem,
                                       LocalizationTask):
    """A cross-app cascade through shared backend infrastructure: the
    co-hosted SocialNetwork's read storm saturates its post-storage path,
    and — both tenants' databases living on the same simulated backend
    tier — HotelReservation's rate database locks clients out
    (RevokeAuth as the contention stand-in), then the recommendation pods
    fail 30 s after the lockout.  Ground truth is the *hotel-side* root
    of the cascade (mongodb-rate); the trigger lives entirely in the
    neighbor's namespace.  The neighbor's storm cycle puts the first
    satisfying scrape at t=50 (lockout live before the agent engages) and
    the pod failure at t=80, mid-session."""

    storm_threshold = 100.0

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="mongodb-rate",
                         app_name="HotelReservation", pid=pid,
                         fidelity=fidelity)

    def app_specs(self) -> list[AppSpec]:
        return [
            AppSpec(HotelReservation, workload_rate=self.workload_rate),
            AppSpec(SocialNetwork, policy=BurstRate(
                base=50.0, burst_factor=4.0, interval=45.0,
                burst_duration=15.0)),
        ]

    def build_schedule(self) -> FaultSchedule:
        return (FaultSchedule()
                .when(MetricAbove("post-storage-service", "request_rate",
                                  self.storm_threshold, namespace=SOCIAL_NS),
                      "RevokeAuth", (self.target,), namespace=HOTEL_NS,
                      tag="contention")
                .after("contention", "PodFailure", ("recommendation",),
                       delay=30.0, namespace=HOTEL_NS))


class CrossAppRemediationDetection(MultiAppScheduledProblem, DetectionTask):
    """The auto-remediation loop — the first schedule built on repeating
    triggers (:meth:`FaultSchedule.every_crossing`, which re-arms its
    :class:`~repro.telemetry.watch.MetricWatch` after every firing):

    * every time the co-hosted HotelReservation neighbor's burst pushes
      its frontend past 120 req/s, packet loss lands on SocialNetwork's
      compose path (cross-app interference, once per storm *crossing*);
    * every time SocialNetwork's frontend error rate then exceeds
      0.5 err/s *sustained for 5 s*, the loss is recovered
      (telemetry-driven remediation) — so the incident flaps in lockstep
      with the neighbor's load, and both watches keep re-arming for the
      whole session (first episode ≈ [50, 60], then once per 45 s storm).

    The agent sees a system that degrades and self-heals repeatedly;
    detection ground truth is "yes"."""

    storm_threshold = 120.0
    remediation_threshold = 0.5
    remediation_sustain = 5.0

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="compose-post-service",
                         app_name="SocialNetwork", pid=pid, expected="yes",
                         fidelity=fidelity)

    def app_specs(self) -> list[AppSpec]:
        return [
            AppSpec(SocialNetwork, workload_rate=self.workload_rate),
            AppSpec(HotelReservation, policy=BurstRate(
                base=40.0, burst_factor=4.0, interval=45.0,
                burst_duration=15.0)),
        ]

    def build_schedule(self) -> FaultSchedule:
        return (FaultSchedule
                .every_crossing(
                    MetricAbove("frontend", "request_rate",
                                self.storm_threshold, namespace=HOTEL_NS),
                    "NetworkLoss", (self.target,), namespace=SOCIAL_NS,
                    tag="interference")
                .when(MetricAbove("nginx-web-server", "error_rate",
                                  self.remediation_threshold,
                                  sustain_s=self.remediation_sustain,
                                  namespace=SOCIAL_NS),
                      "NetworkLoss", (self.target,), kind="recover",
                      namespace=SOCIAL_NS, repeat=0))


class HighRateNoisyNeighborDetection(NoisyNeighborDetection):
    """The noisy-neighbor scenario at 1000 rps (plus a 400→2000 rps
    bursting neighbor) on the aggregate execution tier — both apps'
    drivers batch through ``execute_many`` on the shared queue, and the
    cross-app trigger still lands within one scrape interval of the
    per-request tier."""

    workload_rate = 1000.0
    fidelity = "aggregate"
    neighbor_base = 400.0
    neighbor_factor = 5.0
    storm_threshold = 1500.0


# ---------------------------------------------------------------------------
# Resource-plane scenarios: node capacity, emergent contention, autoscaling.
# None of these injects a fault — build_schedule() is empty and the incident
# (or its absence) emerges from demand meeting finite machines.
# ---------------------------------------------------------------------------

class EmergentNoisyNeighborDetection(MultiAppScheduledProblem, DetectionTask):
    """Noisy neighbor from first principles: both applications share one
    deliberately small node with ``resource_coupling=True`` and **no fault
    is ever injected**.  When the co-hosted SocialNetwork's storm (an
    aggregate-tier burst policy) pushes the node past the resource plane's
    70 % pressure knee, *every* co-located pod — the hotel frontend
    included — sees its latency inflate, and past 90 % the node sheds
    hotel RPCs with ``ResourceExhausted``.  Between storms the node cools
    below the knee and the hotel is healthy again.  Detection ground truth
    is "yes": the interference is real, even though ``kubectl describe``
    of every hotel object looks clean — only ``kubectl top nodes`` and the
    co-tenant's traffic give it away."""

    node_cpu_mcores = 8000.0
    neighbor_base = 150.0
    neighbor_factor = 4.0
    neighbor_interval = 45.0
    neighbor_duration = 15.0

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="frontend",
                         app_name="HotelReservation", pid=pid, expected="yes",
                         fidelity=fidelity)

    def app_specs(self) -> list[AppSpec]:
        return [
            AppSpec(HotelReservation, workload_rate=self.workload_rate),
            AppSpec(SocialNetwork, policy=BurstRate(
                base=self.neighbor_base, burst_factor=self.neighbor_factor,
                interval=self.neighbor_interval,
                burst_duration=self.neighbor_duration),
                fidelity="aggregate"),
        ]

    def create_environment(self, seed: int = 0) -> CloudEnvironment:
        return CloudEnvironment(
            self.app_specs(), seed=seed, fidelity=self.fidelity,
            resource_coupling=True,
            node_specs=(NodeSpec("node-0",
                                 cpu_capacity=self.node_cpu_mcores),),
        )

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule()  # nothing injected — contention is emergent


class HpaSpikeRecoveryDetection(ScheduledFaultProblem, DetectionTask):
    """A traffic spike the autoscaler absorbs: the hotel frontend's HPA
    (target 50 % of its 200 m request) sees the 3× spike land at t=40,
    scales 1 → 3 replicas within a rollup or two, then — after the spike
    ends and utilization stays low through the stabilization window —
    scales back down to 1 mid-session.  No fault, no degradation the
    system didn't handle: detection ground truth is "no", and the
    ``SuccessfulRescale`` events are the breadcrumbs a careful agent reads
    to conclude the excitement is over."""

    spike_at = 40.0
    spike_duration = 40.0
    spike_factor = 3.0
    hpa_target = 0.5
    hpa_max = 5
    hpa_stabilization_s = 30.0

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="frontend",
                         app_name="HotelReservation", pid=pid, expected="no",
                         fidelity=fidelity)

    def rate_policy(self) -> RatePolicy:
        return SpikeRate(base=self.workload_rate,
                         spike_factor=self.spike_factor,
                         at=self.spike_at, duration=self.spike_duration)

    def autoscale_policies(self) -> tuple[HpaPolicy, ...]:
        return (HpaPolicy(
            namespace=HOTEL_NS, deployment=self.target,
            target_utilization=self.hpa_target, max_replicas=self.hpa_max,
            scale_down_stabilization_s=self.hpa_stabilization_s),)

    def env_spec(self, seed: int = 0) -> EnvSpec:
        return EnvSpec(seed=seed, workload_rate=self.workload_rate,
                       fidelity=self.fidelity, policy=self.rate_policy(),
                       autoscale=self.autoscale_policies())

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule()


class AutoscalerThrashDetection(HpaSpikeRecoveryDetection):
    """A misconfigured autoscaler as the incident: the stabilization
    window is shorter than the workload's burst cycle, so every burst
    scales the frontend up and every trough scales it straight back down
    — the deployment's replica count flaps for the whole session (a
    stream of ``SuccessfulRescale`` events alternating direction).
    Detection ground truth is "yes": replica thrash *is* the operational
    anomaly, even though each individual scaling decision looks locally
    reasonable."""

    burst_factor = 3.0
    burst_interval = 40.0
    burst_duration = 15.0
    hpa_stabilization_s = 10.0

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(pid=pid, fidelity=fidelity)
        self.ans = "yes"

    def rate_policy(self) -> RatePolicy:
        return BurstRate(base=self.workload_rate,
                         burst_factor=self.burst_factor,
                         interval=self.burst_interval,
                         burst_duration=self.burst_duration)


class CapacityExhaustionLocalization(ScheduledFaultProblem,
                                     LocalizationTask):
    """The autoscaler runs out of machine: a long 3× spike drives the
    frontend's HPA to want 3 replicas, but the single node was sized with
    barely any headroom over the chart's aggregate CPU requests — the
    second new pod finds ``Insufficient cpu`` and stays ``Pending``
    (a ``FailedScheduling`` event) for as long as the spike lasts.
    Localize the service whose pods are stuck: the frontend."""

    node_cpu_mcores = 3000.0
    spike_at = 40.0
    spike_duration = 150.0
    spike_factor = 3.0
    hpa_target = 0.5
    hpa_max = 5

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="frontend",
                         app_name="HotelReservation", pid=pid,
                         fidelity=fidelity)

    def rate_policy(self) -> RatePolicy:
        return SpikeRate(base=self.workload_rate,
                         spike_factor=self.spike_factor,
                         at=self.spike_at, duration=self.spike_duration)

    def env_spec(self, seed: int = 0) -> EnvSpec:
        return EnvSpec(
            seed=seed, workload_rate=self.workload_rate,
            fidelity=self.fidelity, policy=self.rate_policy(),
            node_specs=(NodeSpec("node-0",
                                 cpu_capacity=self.node_cpu_mcores),),
            autoscale=(HpaPolicy(
                namespace=HOTEL_NS, deployment=self.target,
                target_utilization=self.hpa_target,
                max_replicas=self.hpa_max),))

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule()


class ScaleUpRaceDetection(MultiAppScheduledProblem, DetectionTask):
    """Two autoscalers race for one node's remaining capacity: both
    tenants' frontends have HPAs, both see load rise at once (the hotel's
    spike and the neighbor's burst overlap), and the node's headroom only
    fits part of the combined scale-up — whichever rollup asks second
    leaves pods ``Pending`` with ``Insufficient cpu``.  With coupling on,
    the combined demand also pushes the node through the pressure knee
    while the race is unresolved.  Detection ground truth is "yes"."""

    node_cpu_mcores = 7000.0
    spike_at = 40.0
    spike_duration = 90.0
    spike_factor = 3.0
    neighbor_base = 60.0
    neighbor_factor = 3.0
    neighbor_interval = 45.0
    neighbor_duration = 20.0
    hpa_target = 0.5
    hpa_max = 4

    def __init__(self, pid: Optional[str] = None,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(None, target="frontend",
                         app_name="HotelReservation", pid=pid, expected="yes",
                         fidelity=fidelity)

    def app_specs(self) -> list[AppSpec]:
        return [
            AppSpec(HotelReservation, policy=SpikeRate(
                base=self.workload_rate, spike_factor=self.spike_factor,
                at=self.spike_at, duration=self.spike_duration)),
            AppSpec(SocialNetwork, policy=BurstRate(
                base=self.neighbor_base, burst_factor=self.neighbor_factor,
                interval=self.neighbor_interval,
                burst_duration=self.neighbor_duration)),
        ]

    def create_environment(self, seed: int = 0) -> CloudEnvironment:
        return CloudEnvironment(
            self.app_specs(), seed=seed, fidelity=self.fidelity,
            resource_coupling=True,
            node_specs=(NodeSpec("node-0",
                                 cpu_capacity=self.node_cpu_mcores),),
            autoscale=(
                HpaPolicy(namespace=HOTEL_NS, deployment="frontend",
                          target_utilization=self.hpa_target,
                          max_replicas=self.hpa_max),
                HpaPolicy(namespace=SOCIAL_NS,
                          deployment="nginx-web-server",
                          target_utilization=self.hpa_target,
                          max_replicas=self.hpa_max),
            ),
        )

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule()


#: pid -> factory, in presentation order
SCENARIO_FACTORIES: dict[str, Callable[[], Problem]] = {
    pid: (lambda cls=cls, pid=pid: cls(pid=pid))
    for pid, cls in {
        # HotelReservation, time-triggered
        "delayed_revoke_auth_hotel_res-detection-1":
            DelayedRevokeAuthDetection,
        "flapping_network_loss_hotel_res-detection-1":
            FlappingNetworkLossDetection,
        "flapping_pod_failure_hotel_res-localization-1":
            FlappingPodFailureLocalization,
        "cascade_geo_outage_hotel_res-localization-1":
            CascadeGeoOutageLocalization,
        "surge_revoke_auth_hotel_res-mitigation-1":
            SurgeRevokeAuthMitigation,
        # HotelReservation, condition-triggered / chained / high-rate
        "load_triggered_network_loss_hotel_res-detection-1":
            LoadTriggeredNetworkLossDetection,
        "error_cascade_hotel_res-localization-1":
            ErrorCascadeLocalization,
        "chained_loss_relapse_hotel_res-detection-1":
            ChainedLossRelapseDetection,
        "highrate_revoke_auth_hotel_res-detection-1":
            HighRateDelayedRevokeAuthDetection,
        "highrate_cascade_hotel_res-localization-1":
            HighRateCascadeLocalization,
        # SocialNetwork
        "delayed_scale_zero_social_net-detection-1":
            DelayedScaleZeroDetection,
        "flapping_misconfig_social_net-detection-1":
            FlappingMisconfigDetection,
        "cascade_social_outage_social_net-localization-1":
            SocialCascadeLocalization,
        "load_triggered_scale_zero_social_net-localization-1":
            LoadTriggeredScaleZeroLocalization,
        "highrate_misconfig_social_net-detection-1":
            HighRateDelayedMisconfigDetection,
        # multi-app (two namespaces, one environment, cross-app triggers)
        "noisy_neighbor_multi_hotel_res-detection-1":
            NoisyNeighborDetection,
        "shared_backend_cascade_multi_hotel_res-localization-1":
            SharedBackendCascadeLocalization,
        "cross_app_remediation_multi_social_net-detection-1":
            CrossAppRemediationDetection,
        "highrate_noisy_neighbor_multi_hotel_res-detection-1":
            HighRateNoisyNeighborDetection,
        # resource plane (node capacity, emergent contention, autoscaling)
        "emergent_contention_multi_hotel_res-detection-1":
            EmergentNoisyNeighborDetection,
        "hpa_spike_recovery_hotel_res-detection-1":
            HpaSpikeRecoveryDetection,
        "autoscaler_thrash_hotel_res-detection-1":
            AutoscalerThrashDetection,
        "capacity_exhaustion_hotel_res-localization-1":
            CapacityExhaustionLocalization,
        "scale_up_race_multi_hotel_res-detection-1":
            ScaleUpRaceDetection,
    }.items()
}
