"""Procedural scenario synthesis: a seeded generator over the template space.

The scenario pool used to be two dozen hand-written problems; this module
turns scenario diversity into a *dimension of scale* by composing valid,
gradable :class:`~repro.core.problem.Problem` instances from the same
axes the hand-written pool samples by hand:

* **hosted app set** — 1–3 applications (the primary app under test plus
  co-tenant neighbors, including second-tenant clones of the stock apps
  so three namespaces can share one environment);
* **fault family** — any injectable row of
  :data:`~repro.faults.library.FAULT_LIBRARY` eligible for the primary
  app and the task level;
* **trigger shape** — fixed-time onsets (:class:`~repro.faults.triggers.AtTime`
  via the delayed/flapping/cascade shapes), telemetry thresholds
  (:class:`~repro.faults.triggers.MetricAbove` with sustain windows),
  event chains (:class:`~repro.faults.triggers.AfterEvent` relapse
  loops) and repeating crossings
  (:meth:`~repro.faults.schedule.FaultSchedule.every_crossing`);
* **rate policy** — :class:`~repro.workload.policies.ConstantRate` /
  :class:`~repro.workload.policies.BurstRate` /
  :class:`~repro.workload.policies.SpikeRate` /
  :class:`~repro.workload.policies.DiurnalRate`;
* **fidelity tier** — ``per_request`` (rates sized under the driver's
  per-tick cap) or ``aggregate`` (high-rate variants);
* **task type** — detection / localization / mitigation.

Grading specs are *derived from the composed timeline*, not hand-written:
a detection problem expects ``"yes"`` exactly when its timeline injects a
fault (the ``quiet`` shape composes an empty timeline and expects
``"no"``), a localization problem's ground truth is the root inject's
target service, and mitigation problems are graded by the existing
whole-system health check.  Metric thresholds are derived from the
watched driver's known rate policy (midway between base and peak), so a
condition-triggered timeline is guaranteed to actually cross its
threshold — validity by construction, certified by the property suite in
``tests/problems/test_generator.py``.

Everything is deterministic in ``(seed, index)``: the recipe for problem
``i`` of generator seed ``s`` is drawn from a dedicated
``random.Random(f"scenario-gen:{s}:{i}")`` stream (string seeding is
hash-randomization-free), and the pid embeds ``(s, i)`` so
:func:`~repro.problems.get_problem` can rebuild any generated problem
from its pid alone — no registry ever needs to be shipped anywhere.

Pid grammar (shared with the hand-written pools, see
:func:`repro.problems.split_pid`)::

    pid            := stem "-" task "-" index
    stem           := [a-z0-9_]+          (never contains "-")
    task           := detection | localization | analysis | mitigation
    index          := [0-9]+
    generated stem := "gen" SEED "x" ORDINAL "_" shape "_" fault "_" app

e.g. ``gen0x0017_metric_network_loss_hotel_res-detection-1`` is problem
17 of generator seed 0.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.apps import HotelReservation, SocialNetwork
from repro.core.env import AppSpec
from repro.core.problem import (
    DetectionTask,
    LocalizationTask,
    MitigationTask,
    Problem,
)
from repro.faults.library import FAULT_LIBRARY, FaultSpec
from repro.faults.schedule import FaultSchedule
from repro.faults.triggers import MetricAbove
from repro.problems.scenarios import MultiAppScheduledProblem
from repro.workload.policies import (
    BurstRate,
    ConstantRate,
    DiurnalRate,
    RatePolicy,
    SpikeRate,
)


# ---------------------------------------------------------------------------
# Second-tenant app clones.  CloudEnvironment requires hosted apps to live
# in distinct namespaces, and only two stock applications exist — these
# module-level subclasses (module-level so generated problems stay
# picklable for snapshot/fork grids) let a generated environment host a
# third tenant: a second copy of a stock app under its own namespace and
# helm release.
# ---------------------------------------------------------------------------

class HotelReservationTenantB(HotelReservation):
    """A second HotelReservation tenant (own namespace/release)."""

    name = "hotel-reservation-b"
    namespace = "test-hotel-reservation-b"


class SocialNetworkTenantB(SocialNetwork):
    """A second SocialNetwork tenant (own namespace/release)."""

    name = "social-network-b"
    namespace = "test-social-network-b"


#: app key -> class, for every app a generated environment may host
APP_CLASSES = {
    "HotelReservation": HotelReservation,
    "SocialNetwork": SocialNetwork,
    "HotelReservationTenantB": HotelReservationTenantB,
    "SocialNetworkTenantB": SocialNetworkTenantB,
}

#: primary app -> clone key (a primary is always a stock app)
_CLONE_OF = {
    "HotelReservation": "HotelReservationTenantB",
    "SocialNetwork": "SocialNetworkTenantB",
}

_OTHER = {
    "HotelReservation": "SocialNetwork",
    "SocialNetwork": "HotelReservation",
}

_APP_SHORT = {"HotelReservation": "hotel_res", "SocialNetwork": "social_net"}

#: trigger-shape axis, cycled by index so every pool of >= 7 problems
#: covers all of them (parameters within a shape stay rng-sampled)
SHAPES = ("delayed", "flapping", "cascade", "metric", "chain",
          "crossing", "quiet")

#: rate-policy axis
POLICIES = ("constant", "burst", "spike", "diurnal")

#: tasks each shape can instantiate.  Mitigation pairs with the delayed
#: shape only: a flapping/repeating timeline would re-break the system
#: after the agent repairs it, making the health-check grade a race.
_TASKS_BY_SHAPE = {
    "delayed": ("detection", "localization", "mitigation"),
    "flapping": ("detection", "localization"),
    "cascade": ("detection", "localization"),
    "metric": ("detection", "localization"),
    "chain": ("detection", "localization"),
    "crossing": ("detection",),
    "quiet": ("detection",),
}

_TASK_LEVEL = {"detection": 1, "localization": 2, "mitigation": 4}

#: scrape cadence the sustain windows are sized against
_SCRAPE_S = 5.0

_GEN_PID_RE = re.compile(r"^gen(\d+)x(\d+)_")


def _eligible_faults(app_name: str, task: str) -> list[FaultSpec]:
    """Injectable fault families for ``app_name`` at ``task``'s level."""
    level = _TASK_LEVEL[task]
    return [s for s in FAULT_LIBRARY
            if s.injector != "none" and s.application == app_name
            and level in s.task_levels and s.targets.get(app_name)]


@dataclass(frozen=True)
class GeneratedSpec:
    """The full recipe for one generated problem — primitives only, so a
    spec is picklable, hashable and byte-comparable.  ``policy_params`` /
    ``trigger_params`` are shape-specific (see :func:`build_policy` and
    :func:`build_schedule_for`); ``neighbors`` holds
    ``(app_key, policy_kind, *policy_params)`` tuples for co-tenants."""

    pid: str
    gen_seed: int
    index: int
    task: str
    shape: str
    app_name: str
    neighbors: tuple[tuple, ...]
    fault: str                     # fault_key; "" for the quiet shape
    target: str                    # "" for the quiet shape
    extra_fault: str = ""          # cascade second stage
    extra_target: str = ""
    policy: str = "constant"
    policy_params: tuple[float, ...] = ()
    fidelity: str = "per_request"
    rate: float = 60.0
    trigger_params: tuple[float, ...] = ()
    watch_service: str = ""        # metric/crossing shapes
    watch_namespace: str = ""
    expected: str = ""             # detection ground truth ("yes"/"no")


def build_policy(kind: str, params: Sequence[float]) -> RatePolicy:
    """Rebuild a rate policy from its spec encoding."""
    p = tuple(params)
    if kind == "constant":
        return ConstantRate(p[0])
    if kind == "burst":
        return BurstRate(base=p[0], burst_factor=p[1], interval=p[2],
                         burst_duration=p[3])
    if kind == "spike":
        return SpikeRate(base=p[0], spike_factor=p[1], at=p[2],
                         duration=p[3])
    if kind == "diurnal":
        return DiurnalRate(base=p[0], amplitude=p[1], period=p[2])
    raise ValueError(f"unknown rate-policy kind {kind!r}")


def build_schedule_for(spec: GeneratedSpec) -> FaultSchedule:
    """Compose ``spec``'s fault timeline (pure function of the spec).

    Entries act on the primary app (``namespace=""``); metric triggers
    always carry an explicit watched namespace, so a clone tenant hosting
    the same service names can never make resolution ambiguous."""
    sched = FaultSchedule()
    tp = spec.trigger_params
    if spec.shape == "quiet":
        return sched
    if spec.shape == "delayed":
        sched.inject(tp[0], spec.fault, (spec.target,))
    elif spec.shape == "flapping":
        start, period, on_for, cycles = tp
        for k in range(int(cycles)):
            t0 = round(start + k * period, 1)
            sched.inject(t0, spec.fault, (spec.target,))
            sched.recover(round(t0 + on_for, 1), spec.fault, (spec.target,))
    elif spec.shape == "cascade":
        sched.inject(tp[0], spec.fault, (spec.target,), tag="root")
        sched.inject(tp[1], spec.extra_fault, (spec.extra_target,))
    elif spec.shape == "metric":
        threshold, sustain = tp
        sched.when(
            MetricAbove(spec.watch_service, "request_rate", threshold,
                        sustain_s=sustain, namespace=spec.watch_namespace),
            spec.fault, (spec.target,))
    elif spec.shape == "chain":
        t0, d1, d2 = tp
        (sched.inject(t0, spec.fault, (spec.target,), tag="root")
              .after("root", spec.fault, (spec.target,), delay=d1,
                     kind="recover", new_tag="healed")
              .after("healed", spec.fault, (spec.target,), delay=d2))
    elif spec.shape == "crossing":
        threshold, max_fires = tp
        sched.when(
            MetricAbove(spec.watch_service, "request_rate", threshold,
                        namespace=spec.watch_namespace),
            spec.fault, (spec.target,), repeat=int(max_fires))
    else:  # pragma: no cover - _compose only emits known shapes
        raise ValueError(f"unknown shape {spec.shape!r}")
    return sched


def describe_timeline(spec: GeneratedSpec) -> list[str]:
    """The timeline as stable strings — the byte-identity surface the
    determinism property pins (and the docs catalog renders)."""
    return [f"{e.trigger.describe()}: {e.describe()}"
            for e in build_schedule_for(spec).entries]


# ---------------------------------------------------------------------------
# Problem classes.  One per task type; all module-level (picklable for
# snapshot extras) and all driven purely by the GeneratedSpec.
# ---------------------------------------------------------------------------

class _GeneratedProblem(MultiAppScheduledProblem):
    """Base for generated problems: spec-driven apps, policy, timeline."""

    def __init__(self, spec: GeneratedSpec,
                 fidelity: Optional[str] = None, **task_kwargs) -> None:
        self.gen = spec
        super().__init__(None, target=spec.target or None,
                         app_name=spec.app_name, pid=spec.pid,
                         fidelity=fidelity or spec.fidelity, **task_kwargs)
        self.workload_rate = spec.rate

    def rate_policy(self) -> RatePolicy:
        return build_policy(self.gen.policy, self.gen.policy_params)

    def app_specs(self) -> list[AppSpec]:
        specs = [AppSpec(APP_CLASSES[self.gen.app_name],
                         policy=self.rate_policy())]
        for key, kind, *params in self.gen.neighbors:
            specs.append(AppSpec(APP_CLASSES[key],
                                 policy=build_policy(kind, params)))
        return specs

    def build_schedule(self) -> FaultSchedule:
        return build_schedule_for(self.gen)


class GeneratedDetection(_GeneratedProblem, DetectionTask):
    """Generated level-1 problem; expected answer derived from the
    timeline (``"yes"`` iff it injects anything)."""

    def __init__(self, spec: GeneratedSpec,
                 fidelity: Optional[str] = None) -> None:
        super().__init__(spec, fidelity=fidelity, expected=spec.expected)


class GeneratedLocalization(_GeneratedProblem, LocalizationTask):
    """Generated level-2 problem; ground truth is the root inject's
    target service."""


class GeneratedMitigation(_GeneratedProblem, MitigationTask):
    """Generated level-4 problem; graded by the whole-system health
    check, exactly like the hand-written mitigation problems."""


_TASK_CLASSES = {
    "detection": GeneratedDetection,
    "localization": GeneratedLocalization,
    "mitigation": GeneratedMitigation,
}


# ---------------------------------------------------------------------------
# The generator
# ---------------------------------------------------------------------------

class ScenarioGenerator:
    """Deterministic, seeded composer of scenario problems.

    ``spec(i)`` is a pure function of ``(seed, i)`` — recomputing it (in
    any order, in any process) yields byte-identical recipes, which is
    what lets the pid embed the recipe's coordinates instead of shipping
    a registry.  ``problems are single-use`` semantics match the
    hand-written pools: :meth:`problem` returns a fresh instance each
    call.
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError(f"generator seed must be >= 0, got {seed}")
        self.seed = seed
        self._specs: dict[int, GeneratedSpec] = {}

    # -- composition ---------------------------------------------------
    def spec(self, index: int) -> GeneratedSpec:
        """The recipe for problem ``index`` (cached; pure in (seed, index))."""
        if index < 0:
            raise ValueError(f"problem index must be >= 0, got {index}")
        if index not in self._specs:
            self._specs[index] = self._compose(index)
        return self._specs[index]

    def specs(self, n: int) -> list[GeneratedSpec]:
        return [self.spec(i) for i in range(n)]

    def pids(self, n: int) -> list[str]:
        return [s.pid for s in self.specs(n)]

    def problem(self, index: int,
                fidelity: Optional[str] = None) -> Problem:
        return self.problem_for_spec(self.spec(index), fidelity=fidelity)

    @staticmethod
    def problem_for_spec(spec: GeneratedSpec,
                         fidelity: Optional[str] = None) -> Problem:
        return _TASK_CLASSES[spec.task](spec, fidelity=fidelity)

    # -- the sampler ----------------------------------------------------
    def _compose(self, index: int) -> GeneratedSpec:
        rng = random.Random(f"scenario-gen:{self.seed}:{index}")
        shape = SHAPES[index % len(SHAPES)]
        task = rng.choice(_TASKS_BY_SHAPE[shape])
        primary = rng.choice(("HotelReservation", "SocialNetwork"))
        fidelity = "aggregate" if rng.random() < 1.0 / 3.0 else "per_request"
        # the condition-triggered shapes need a bursty driver to cross
        # their derived threshold; everything else roams the policy axis
        if shape in ("metric", "crossing"):
            n_apps = rng.choices((1, 2, 3), weights=(4, 4, 2))[0]
        else:
            n_apps = rng.choices((1, 2, 3), weights=(5, 3, 2))[0]
        neighbors = self._neighbors(rng, primary, n_apps - 1, fidelity)

        if shape in ("metric", "crossing") and not neighbors:
            policy = "burst" if shape == "crossing" \
                else rng.choice(("burst", "spike"))
        elif shape in ("metric", "crossing"):
            policy = rng.choice(POLICIES)
        else:
            policy = rng.choice(POLICIES)
        rate, policy_params = self._policy_params(rng, policy, fidelity)

        fault = target = extra_fault = extra_target = ""
        expected = ""
        if shape != "quiet":
            fault_spec = rng.choice(_eligible_faults(primary, task))
            fault = fault_spec.fault_key
            target = rng.choice(fault_spec.targets[primary])
        if task == "detection":
            expected = "no" if shape == "quiet" else "yes"
        if shape == "cascade":
            others = [s for s in _eligible_faults(primary, "detection")
                      if s.fault_key != fault]
            extra = rng.choice(others)
            extra_fault = extra.fault_key
            extra_target = rng.choice(extra.targets[primary])

        trigger_params, watch_service, watch_ns = self._trigger_params(
            rng, shape, task, primary, neighbors, policy, policy_params)

        stem_fault = fault or "noop"
        pid = (f"gen{self.seed}x{index:04d}_{shape}_{stem_fault}"
               f"_{_APP_SHORT[primary]}-{task}-1")
        return GeneratedSpec(
            pid=pid, gen_seed=self.seed, index=index, task=task,
            shape=shape, app_name=primary, neighbors=neighbors,
            fault=fault, target=target, extra_fault=extra_fault,
            extra_target=extra_target, policy=policy,
            policy_params=policy_params, fidelity=fidelity, rate=rate,
            trigger_params=trigger_params, watch_service=watch_service,
            watch_namespace=watch_ns, expected=expected,
        )

    @staticmethod
    def _neighbors(rng: random.Random, primary: str, count: int,
                   fidelity: str) -> tuple[tuple, ...]:
        """Co-tenant specs: always bursty (they exist to make noise),
        sized for the fidelity tier.  Candidates keep namespaces
        distinct: the other stock app, its clone, the primary's clone."""
        other = _OTHER[primary]
        candidates = [other, _CLONE_OF[other], _CLONE_OF[primary]]
        chosen = rng.sample(candidates, min(count, len(candidates)))
        out = []
        for key in chosen:
            base = (round(rng.uniform(20.0, 40.0), 1)
                    if fidelity == "per_request"
                    else round(rng.uniform(200.0, 400.0), 1))
            factor = rng.choice((3.0, 4.0))
            out.append((key, "burst", base, factor, 45.0, 15.0))
        return tuple(out)

    @staticmethod
    def _policy_params(rng: random.Random, policy: str,
                       fidelity: str) -> tuple[float, tuple[float, ...]]:
        """Primary-driver rate policy parameters.  Per-request peaks stay
        under the driver's 200 req/tick cap (base <= 60, factor <= 3);
        aggregate variants run the batched tier at 300–1200 rps base."""
        if fidelity == "per_request":
            base = round(rng.uniform(20.0, 60.0), 1)
            factor = rng.choice((2.0, 3.0))
        else:
            base = round(rng.uniform(300.0, 1200.0), 1)
            factor = rng.choice((2.0, 3.0, 4.0))
        if policy == "constant":
            return base, (base,)
        if policy == "burst":
            interval = rng.choice((45.0, 60.0))
            return base, (base, factor, interval, 15.0)
        if policy == "spike":
            at = rng.choice((40.0, 50.0))
            duration = rng.choice((30.0, 40.0))
            return base, (base, factor, at, duration)
        # diurnal: amplitude < 1 (never clamps), short period so several
        # day/night cycles fit in one session
        amplitude = round(rng.uniform(0.3, 0.8), 2)
        period = rng.choice((120.0, 240.0))
        return base, (base, amplitude, period)

    def _trigger_params(self, rng: random.Random, shape: str, task: str,
                        primary: str, neighbors: tuple[tuple, ...],
                        policy: str, policy_params: tuple[float, ...],
                        ) -> tuple[tuple[float, ...], str, str]:
        """Shape-specific timing/threshold parameters.

        Metric thresholds are derived midway between the watched driver's
        base and peak rate, so the composed burst/spike is *guaranteed*
        to cross them — condition-triggered timelines are valid by
        construction, never silently-never-firing."""
        if shape == "delayed":
            hi = 25.0 if task == "mitigation" else 45.0
            return (round(rng.uniform(5.0, hi), 1),), "", ""
        if shape == "flapping":
            period = rng.choice((30.0, 40.0))
            on_for = round(period * rng.uniform(0.4, 0.6), 1)
            return (round(rng.uniform(5.0, 15.0), 1), period, on_for,
                    float(rng.randint(3, 5))), "", ""
        if shape == "cascade":
            t1 = round(rng.uniform(5.0, 20.0), 1)
            return (t1, round(t1 + rng.uniform(25.0, 45.0), 1)), "", ""
        if shape == "chain":
            return (round(rng.uniform(10.0, 25.0), 1),
                    round(rng.uniform(15.0, 30.0), 1),
                    round(rng.uniform(10.0, 25.0), 1)), "", ""
        if shape in ("metric", "crossing"):
            if neighbors:
                key, _, base, factor = neighbors[0][:4]
                watch_cls = APP_CLASSES[key]
            else:
                base, factor = policy_params[0], policy_params[1]
                watch_cls = APP_CLASSES[primary]
            threshold = round(base * (1.0 + factor) / 2.0, 1)
            if shape == "metric":
                sustain = rng.choice((0.0, _SCRAPE_S))
                params = (threshold, sustain)
            else:
                params = (threshold, float(rng.choice((0, 3, 4))))
            return params, watch_cls.frontend, watch_cls.namespace
        return (), "", ""  # quiet


# ---------------------------------------------------------------------------
# Pool-level API
# ---------------------------------------------------------------------------

def generated_pool(n: int, seed: int = 0) -> list[str]:
    """``n`` generated problem pids for generator ``seed`` — fresh,
    never-hand-reviewed incident sets for sweeps.  The pids are also
    registered with :func:`repro.problems.get_problem` (any generated
    pid resolves there even without prior registration — the pid embeds
    its recipe — registration just skips re-deriving the recipe)."""
    from repro.problems import pool
    gen = ScenarioGenerator(seed)
    pids = gen.pids(n)
    for i, pid in enumerate(pids):
        if pid not in pool.GENERATED_FACTORIES:
            pool.GENERATED_FACTORIES[pid] = _PidFactory(seed, i)
    return pids


class _PidFactory:
    """Picklable factory for one generated pid (registered by
    :func:`generated_pool`)."""

    __slots__ = ("seed", "index")

    def __init__(self, seed: int, index: int) -> None:
        self.seed = seed
        self.index = index

    def __call__(self) -> Problem:
        return ScenarioGenerator(self.seed).problem(self.index)


def is_generated_pid(pid: str) -> bool:
    return _GEN_PID_RE.match(pid) is not None


def problem_for_pid(pid: str) -> Problem:
    """Rebuild a generated problem from its pid alone.

    The pid's ``gen<seed>x<index>`` prefix names the recipe; the rest of
    the pid is re-derived and must match byte-for-byte, so a doctored pid
    can never silently resolve to a different problem."""
    m = _GEN_PID_RE.match(pid)
    if m is None:
        raise KeyError(f"not a generated problem id: {pid!r}")
    gen = ScenarioGenerator(int(m.group(1)))
    spec = gen.spec(int(m.group(2)))
    if spec.pid != pid:
        raise KeyError(
            f"generated pid {pid!r} does not match its recipe "
            f"(expected {spec.pid!r})")
    return gen.problem_for_spec(spec)


def template_space() -> dict[str, tuple[str, ...]]:
    """The generator's axes and their values (rendered into
    ``docs/scenarios.md`` by ``scripts/gen_docs.py``)."""
    hotel = sorted(s.name for s in _eligible_faults("HotelReservation",
                                                    "detection"))
    social = sorted(s.name for s in _eligible_faults("SocialNetwork",
                                                     "detection"))
    return {
        "task": ("detection", "localization", "mitigation"),
        "trigger shape": SHAPES,
        "primary app": ("HotelReservation", "SocialNetwork"),
        "hosted apps": ("1", "2", "3 (second-tenant clones)"),
        "fault family (HotelReservation)": tuple(hotel),
        "fault family (SocialNetwork)": tuple(social),
        "rate policy": POLICIES,
        "fidelity": ("per_request", "aggregate"),
    }
