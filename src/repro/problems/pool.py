"""Constructs the benchmark problem pool from the fault library.

Composition (reconciling Table 2 with the 48-problem count, see DESIGN.md):

* 7 functional faults × their injection targets = 11 problem families,
  each instantiated at all 4 task levels → 44 problems;
* NetworkLoss and PodFailure at levels 1–2 → 4 problems;
* total benchmark = **48**; plus 2 Noop detection probes (§3.6.4),
  evaluated separately for false positives.

Problem ids follow the paper's shape, and every pool (hand-written,
scenario, generated) shares one grammar::

    pid   := stem "-" task "-" index
    stem  := [a-z0-9_]+        (never contains "-")
    task  := detection | localization | analysis | mitigation
    index := [0-9]+

e.g. ``misconfig_k8s_social_net-localization-1``.  :func:`split_pid`
parses it; :func:`list_problems` filters on the parsed ``task`` field
instead of a substring (a stem like ``reload_detection_probe`` can never
shadow a task name again).  Generated pids (see
:mod:`repro.problems.generator`) additionally encode their recipe in the
stem prefix ``gen<seed>x<index>_`` and resolve through
:func:`get_problem` with no prior registration.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.problem import (
    AnalysisTask,
    DetectionTask,
    LocalizationTask,
    MitigationTask,
    Problem,
)
from repro.faults.library import FAULT_LIBRARY, FaultSpec
from repro.problems.scenarios import SCENARIO_FACTORIES

_TASK_CLASSES: dict[str, type[Problem]] = {
    "detection": DetectionTask,
    "localization": LocalizationTask,
    "analysis": AnalysisTask,
    "mitigation": MitigationTask,
}

_LEVEL_TO_TASK = {1: "detection", 2: "localization", 3: "analysis", 4: "mitigation"}

_APP_SHORT = {"HotelReservation": "hotel_res", "SocialNetwork": "social_net"}


def _make_factory(task: str, spec: FaultSpec, target: Optional[str],
                  app_name: str, pid: str) -> Callable[[], Problem]:
    cls = _TASK_CLASSES[task]

    def factory() -> Problem:
        return cls(spec.number if spec.injector != "none" else "Noop",
                   target=target, app_name=app_name, pid=pid)

    factory.__name__ = f"make_{pid.replace('-', '_')}"
    return factory


def _build() -> tuple[dict[str, Callable[[], Problem]], list[str], list[str]]:
    factories: dict[str, Callable[[], Problem]] = {}
    benchmark: list[str] = []
    noop: list[str] = []
    for spec in FAULT_LIBRARY:
        apps = (["HotelReservation", "SocialNetwork"]
                if spec.application == "both" else [spec.application])
        for app_name in apps:
            targets = spec.targets.get(app_name, ()) or (None,)
            for level in spec.task_levels:
                task = _LEVEL_TO_TASK[level]
                for i, target in enumerate(targets, start=1):
                    pid = (f"{spec.fault_key or 'noop'}_{_APP_SHORT[app_name]}"
                           f"-{task}-{i}")
                    factories[pid] = _make_factory(task, spec, target,
                                                   app_name, pid)
                    if spec.injector == "none":
                        noop.append(pid)
                    else:
                        benchmark.append(pid)
    return factories, benchmark, noop


PROBLEM_FACTORIES, _BENCHMARK_PIDS, _NOOP_PIDS = _build()
_SCENARIO_PIDS = list(SCENARIO_FACTORIES)

#: generated pid -> factory, populated by ``generated_pool`` (a cache:
#: any generated pid also resolves through the parse fallback below)
GENERATED_FACTORIES: dict[str, Callable[[], Problem]] = {}

_TASK_TYPES = tuple(_TASK_CLASSES)


def split_pid(pid: str) -> Optional[tuple[str, str, int]]:
    """Parse ``pid`` into ``(stem, task, index)`` per the pool grammar,
    or ``None`` if it doesn't conform.  The stem is hyphen-free, so
    splitting on the last two hyphens is unambiguous."""
    parts = pid.rsplit("-", 2)
    if len(parts) != 3:
        return None
    stem, task, index = parts
    if not stem or "-" in stem or task not in _TASK_TYPES \
            or not index.isdigit():
        return None
    return stem, task, int(index)


def benchmark_pids() -> list[str]:
    """The 48 benchmark problem ids (stable order: Table-2 order)."""
    return list(_BENCHMARK_PIDS)


def noop_pids() -> list[str]:
    """The two Noop false-positive probes (§3.6.4)."""
    return list(_NOOP_PIDS)


def scenario_pids(n: Optional[int] = None, seed: int = 0) -> list[str]:
    """Scheduled-fault scenario problems built on the event kernel's
    :class:`~repro.faults.schedule.FaultSchedule` timelines.

    With no arguments, the hand-written scenario catalog (delayed onset,
    flapping, cascades, traffic surges).  With ``n`` (and optionally
    ``seed``), a procedurally generated pool of ``n`` fresh scenarios —
    shorthand for :func:`repro.problems.generator.generated_pool`.

    Kept separate from :func:`benchmark_pids` so the paper-faithful
    48-problem set is untouched."""
    if n is None:
        return list(_SCENARIO_PIDS)
    from repro.problems.generator import generated_pool
    return generated_pool(n, seed=seed)


def get_problem(pid: str) -> Problem:
    """Instantiate a fresh problem for ``pid`` (problems are single-use).

    Resolution order: benchmark/noop factories, hand-written scenarios,
    the generated-pool cache, and finally — for ``gen<seed>x<index>_…``
    pids never registered in this process — the generator itself, which
    rebuilds the problem from the recipe encoded in the pid."""
    factory = PROBLEM_FACTORIES.get(pid) or SCENARIO_FACTORIES.get(pid) \
        or GENERATED_FACTORIES.get(pid)
    if factory is not None:
        return factory()
    from repro.problems.generator import is_generated_pid, problem_for_pid
    if is_generated_pid(pid):
        return problem_for_pid(pid)
    raise KeyError(
        f"unknown problem id {pid!r}; see list_problems()")


def list_problems(task_type: Optional[str] = None,
                  include_noop: bool = False,
                  include_scenarios: bool = False) -> list[str]:
    """Problem ids, optionally filtered by task type.

    The filter parses each pid with :func:`split_pid` and matches the
    ``task`` field exactly; an unknown ``task_type`` raises ``ValueError``
    instead of silently returning an empty list."""
    pids = benchmark_pids() + (noop_pids() if include_noop else []) \
        + (scenario_pids() if include_scenarios else [])
    if task_type is None:
        return pids
    if task_type not in _TASK_TYPES:
        raise ValueError(
            f"unknown task type {task_type!r}; expected one of "
            f"{', '.join(_TASK_TYPES)}")
    out = []
    for p in pids:
        parsed = split_pid(p)
        if parsed is not None and parsed[1] == task_type:
            out.append(p)
    return out


def pool_summary() -> dict[str, int]:
    """Problem counts per task type (the Table-2/§3.3 accounting)."""
    out: dict[str, int] = {}
    for task in _TASK_CLASSES:
        out[task] = len(list_problems(task))
    out["total"] = len(benchmark_pids())
    out["noop"] = len(noop_pids())
    out["scenario"] = len(scenario_pids())
    return out
