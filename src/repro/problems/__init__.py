"""The AIOpsLab benchmark problem pool (§3.3): 48 problems + 2 Noop probes,
plus scheduled-fault scenario problems behind :func:`scenario_pids`."""

from repro.problems.pool import (
    PROBLEM_FACTORIES,
    SCENARIO_FACTORIES,
    benchmark_pids,
    noop_pids,
    scenario_pids,
    get_problem,
    list_problems,
    pool_summary,
)

__all__ = [
    "PROBLEM_FACTORIES",
    "SCENARIO_FACTORIES",
    "benchmark_pids",
    "noop_pids",
    "scenario_pids",
    "get_problem",
    "list_problems",
    "pool_summary",
]
