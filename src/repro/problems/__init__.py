"""The AIOpsLab benchmark problem pool (§3.3): 48 problems + 2 Noop probes."""

from repro.problems.pool import (
    PROBLEM_FACTORIES,
    benchmark_pids,
    noop_pids,
    get_problem,
    list_problems,
    pool_summary,
)

__all__ = [
    "PROBLEM_FACTORIES",
    "benchmark_pids",
    "noop_pids",
    "get_problem",
    "list_problems",
    "pool_summary",
]
