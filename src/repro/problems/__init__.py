"""The AIOpsLab benchmark problem pool (§3.3): 48 problems + 2 Noop probes,
hand-written scheduled-fault scenarios behind :func:`scenario_pids`, and
a seeded procedural generator (:mod:`repro.problems.generator`) behind
:func:`generated_pool`."""

from repro.problems.pool import (
    GENERATED_FACTORIES,
    PROBLEM_FACTORIES,
    SCENARIO_FACTORIES,
    benchmark_pids,
    noop_pids,
    scenario_pids,
    get_problem,
    list_problems,
    pool_summary,
    split_pid,
)
from repro.problems.generator import (
    GeneratedSpec,
    ScenarioGenerator,
    generated_pool,
    template_space,
)

__all__ = [
    "GENERATED_FACTORIES",
    "PROBLEM_FACTORIES",
    "SCENARIO_FACTORIES",
    "GeneratedSpec",
    "ScenarioGenerator",
    "benchmark_pids",
    "generated_pool",
    "noop_pids",
    "scenario_pids",
    "get_problem",
    "list_problems",
    "pool_summary",
    "split_pid",
    "template_space",
]
