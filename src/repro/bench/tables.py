"""Table formatters: regenerate Tables 2, 3, 4 and 5 from suite results."""

from __future__ import annotations

import re
from typing import Optional, Sequence

from repro.agents.registry import AGENT_NAMES, registration_loc
from repro.bench.runner import SuiteResults
from repro.faults.library import FAULT_LIBRARY
from repro.problems import benchmark_pids


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def fmt(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = [fmt(headers), sep] + [fmt(r) for r in str_rows]
    if title:
        out.insert(0, title)
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------
def table2_problem_pool() -> tuple[list[str], list[list[object]]]:
    """Fault inventory with per-fault problem counts (Table 2)."""
    pool = benchmark_pids()
    headers = ["No.", "Name", "Application", "Task Level", "Category",
               "Ext.", "# Problems"]
    rows: list[list[object]] = []
    for spec in FAULT_LIBRARY:
        if spec.injector == "none":
            count = 2  # the two Noop probes
        else:
            count = sum(1 for p in pool if p.startswith(spec.fault_key + "_"))
        levels = ", ".join(str(l) for l in spec.task_levels)
        rows.append([spec.number, spec.name, spec.application, levels,
                     spec.category, spec.extensibility, count])
    return headers, rows


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------
def table3_overall(results: SuiteResults,
                   agents: Sequence[str] = AGENT_NAMES
                   ) -> tuple[list[str], list[list[object]]]:
    """Overall performance: LoC, time, steps, tokens, accuracy (Table 3)."""
    headers = ["Agent", "LoC", "Time (s)", "# Steps", "Tokens", "Acc."]
    rows: list[list[object]] = []
    for agent in agents:
        cases = results.for_agent(agent)
        if not cases:
            continue
        n = len(cases)
        time_avg = sum(c.duration_s for c in cases) / n
        steps_avg = sum(c.steps for c in cases) / n
        tokens_avg = sum(c.input_tokens + c.output_tokens for c in cases) / n
        acc = results.accuracy(agent)
        rows.append([
            agent.upper(), registration_loc(agent), f"{time_avg:.2f}",
            f"{steps_avg:.2f}", f"{tokens_avg:,.1f}", f"{acc:.2%}",
        ])
    return headers, rows


# ---------------------------------------------------------------------------
# Table 4
# ---------------------------------------------------------------------------
def table4_by_task(results: SuiteResults,
                   agents: Sequence[str] = AGENT_NAMES,
                   baselines: Optional[dict[str, dict[str, float]]] = None
                   ) -> dict[str, tuple[list[str], list[list[object]]]]:
    """Per-task performance tables (Table 4a–d).

    ``baselines`` maps baseline name → {"task": ..., "accuracy": ...,
    "accuracy@1": ..., "time_s": ...} rows for MKSMC/PDiagnose/RMLAD.
    """
    out: dict[str, tuple[list[str], list[list[object]]]] = {}
    for task in ("detection", "localization", "analysis", "mitigation"):
        if task == "localization":
            headers = ["Agent", "Acc.@3", "Acc.@1", "Time (s)", "# Steps",
                       "Input", "Output"]
        else:
            headers = ["Agent", "Accuracy", "Time (s)", "# Steps",
                       "Input", "Output"]
        rows: list[list[object]] = []
        for agent in agents:
            cases = results.for_task(task, agent)
            if not cases:
                continue
            n = len(cases)
            time_avg = sum(c.duration_s for c in cases) / n
            steps_avg = sum(c.steps for c in cases) / n
            in_avg = sum(c.input_tokens for c in cases) / n
            out_avg = sum(c.output_tokens for c in cases) / n
            if task == "localization":
                acc3 = sum(c.details.get("success@3", c.success)
                           for c in cases) / n
                acc1 = sum(c.details.get("success@1", c.success)
                           for c in cases) / n
                rows.append([agent.upper(), f"{acc3:.2%}", f"{acc1:.2%}",
                             f"{time_avg:.2f}", f"{steps_avg:.2f}",
                             f"{in_avg:,.1f}", f"{out_avg:,.1f}"])
            elif task == "analysis":
                # graded over 2 sub-answers per problem (22 total)
                sub = sum(c.details.get("subtasks_correct",
                                        2 * int(c.success)) for c in cases)
                acc = sub / (2 * n)
                rows.append([agent.upper(), f"{acc:.2%}", f"{time_avg:.2f}",
                             f"{steps_avg:.2f}", f"{in_avg:,.1f}",
                             f"{out_avg:,.1f}"])
            else:
                acc = results.accuracy(agent, task)
                rows.append([agent.upper(), f"{acc:.2%}", f"{time_avg:.2f}",
                             f"{steps_avg:.2f}", f"{in_avg:,.1f}",
                             f"{out_avg:,.1f}"])
        for name, info in (baselines or {}).items():
            if info.get("task") != task:
                continue
            if task == "localization":
                rows.append([name.upper(), f"{info['accuracy']:.2%}",
                             f"{info.get('accuracy@1', info['accuracy']):.2%}",
                             f"{info.get('time_s', 0):.2f}", "N/A", "N/A", "N/A"])
            else:
                rows.append([name.upper(), f"{info['accuracy']:.2%}",
                             f"{info.get('time_s', 0):.2f}", "N/A", "N/A", "N/A"])
        out[task] = (headers, rows)
    return out


# ---------------------------------------------------------------------------
# Table 5
# ---------------------------------------------------------------------------
#: the commands the paper tabulates
TABLE5_COMMANDS = ("find", "echo", "py", "awk", "mongo", "grep", "ls", "cat", "ip")


def table5_commands(results: SuiteResults,
                    agents: Sequence[str] = ("react", "flash")
                    ) -> tuple[list[str], list[list[object]]]:
    """Occurrences of (non-kubectl) system commands per agent (Table 5)."""
    headers = ["Agent"] + list(TABLE5_COMMANDS)
    rows: list[list[object]] = []
    for agent in agents:
        counts = {c: 0 for c in TABLE5_COMMANDS}
        for case in results.for_agent(agent):
            for step in case.session.steps:
                if step.action_name != "exec_shell" or not step.action_args:
                    continue
                command = str(step.action_args[0])
                for word in re.findall(r"[a-z]+", command):
                    if word in counts:
                        counts[word] += 1
        rows.append([agent.upper()] + [counts[c] for c in TABLE5_COMMANDS])
    return headers, rows
