"""EXPERIMENTS.md generator: runs the evaluation and renders paper-vs-measured.

Used by ``python -m repro make-report`` — the checked-in EXPERIMENTS.md is
produced by exactly this code, so the numbers are regenerable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.agents.registry import AGENT_NAMES
from repro.baselines import run_baseline_suite
from repro.bench.figures import (
    figure5_step_limit, figure6_api_usage, figure7_action_distribution,
    render_series,
)
from repro.bench.runner import BenchmarkRunner, SuiteResults
from repro.bench.tables import (
    render_table, table2_problem_pool, table3_overall, table4_by_task,
    table5_commands,
)
from repro.problems import list_problems, noop_pids

#: the paper's headline numbers, for the side-by-side (Table 3 / Table 4)
PAPER = {
    "overall_acc": {"gpt-4-w-shell": 49.15, "gpt-3.5-w-shell": 15.25,
                    "react": 55.93, "flash": 59.32},
    "detection_acc": {"gpt-4-w-shell": 69.23, "gpt-3.5-w-shell": 23.07,
                      "react": 76.92, "flash": 100.0, "mksmc": 15.38},
    "localization_acc1": {"gpt-4-w-shell": 61.54, "gpt-3.5-w-shell": 30.77,
                          "react": 53.85, "flash": 46.15,
                          "pdiagnose": 15.38, "rmlad": 7.69},
    "localization_acc3": {"gpt-4-w-shell": 61.54, "gpt-3.5-w-shell": 30.77,
                          "react": 69.23, "flash": 61.54},
    "rca_acc": {"gpt-4-w-shell": 40.90, "gpt-3.5-w-shell": 9.09,
                "react": 45.45, "flash": 36.36},
    "mitigation_acc": {"gpt-4-w-shell": 27.27, "gpt-3.5-w-shell": 0.0,
                       "react": 36.36, "flash": 54.55},
}


@dataclass
class ExperimentReport:
    """All artifacts of one full evaluation run."""

    seed: int
    results: SuiteResults
    baselines: dict[str, dict[str, float]]
    figure5: dict[str, dict[int, float]]
    noop_outcome: dict[str, bool]


def run_experiments(seed: int = 0,
                    figure5_pids: Optional[Sequence[str]] = None,
                    verbose: bool = False) -> ExperimentReport:
    """Run every experiment (suite, baselines, sweeps, noop probes)."""
    runner = BenchmarkRunner(max_steps=20, seed=seed)
    results = runner.run_suite(verbose=verbose)
    baselines = {
        name: run_baseline_suite(name, seed=seed)
        for name in ("mksmc", "pdiagnose", "rmlad")
    }
    figure5 = figure5_step_limit(
        runner, limits=(3, 5, 10, 15, 20),
        pids=figure5_pids or list_problems()[:12],
    )
    noop_outcome = {
        agent: all(runner.run_case(agent, pid).success
                   for pid in noop_pids())
        for agent in AGENT_NAMES
    }
    return ExperimentReport(seed=seed, results=results, baselines=baselines,
                            figure5=figure5, noop_outcome=noop_outcome)


def _measured_acc(results: SuiteResults, agent: str,
                  task: Optional[str] = None, at: int = 1) -> float:
    cases = results.for_task(task, agent) if task else results.for_agent(agent)
    if not cases:
        return 0.0
    if task == "localization":
        key = f"success@{at}"
        return 100.0 * sum(c.details.get(key, c.success)
                           for c in cases) / len(cases)
    if task == "analysis":
        sub = sum(c.details.get("subtasks_correct", 2 * int(c.success))
                  for c in cases)
        return 100.0 * sub / (2 * len(cases))
    return 100.0 * sum(c.success for c in cases) / len(cases)


def _comparison_table(report: ExperimentReport) -> str:
    rows = []
    specs = [
        ("Overall accuracy", "overall_acc", None, 1),
        ("Detection accuracy", "detection_acc", "detection", 1),
        ("Localization acc@1", "localization_acc1", "localization", 1),
        ("Localization acc@3", "localization_acc3", "localization", 3),
        ("RCA accuracy", "rca_acc", "analysis", 1),
        ("Mitigation accuracy", "mitigation_acc", "mitigation", 1),
    ]
    for label, paper_key, task, at in specs:
        for agent in AGENT_NAMES:
            paper_value = PAPER[paper_key].get(agent)
            if paper_value is None:
                continue
            measured = _measured_acc(report.results, agent, task, at)
            rows.append([label, agent.upper(), f"{paper_value:.1f}%",
                         f"{measured:.1f}%"])
    for name in ("mksmc", "pdiagnose", "rmlad"):
        info = report.baselines[name]
        key = "detection_acc" if info["task"] == "detection" \
            else "localization_acc1"
        paper_value = PAPER[key].get(name)
        if paper_value is not None:
            rows.append([
                "Detection accuracy" if info["task"] == "detection"
                else "Localization acc@1",
                name.upper(), f"{paper_value:.1f}%",
                f"{100 * info['accuracy']:.1f}%",
            ])
    return render_table(["Metric", "Agent", "Paper", "Measured (this repo)"],
                        rows)


def render_markdown(report: ExperimentReport) -> str:
    """The full EXPERIMENTS.md content."""
    parts: list[str] = []
    parts.append(
        "# EXPERIMENTS — paper vs. measured\n\n"
        "Every number below regenerates with\n"
        f"``python -m repro make-report --seed {report.seed}`` (tables) and\n"
        "``pytest benchmarks/ --benchmark-only`` (assertion-checked shape "
        "targets).\n\n"
        "The substrate is a simulator and each task has only 11–13 problems, "
        "so per-cell\naccuracies carry ~±8% seed noise; the claims to check "
        "are the *orderings*\n(who wins, what is hard), which are asserted "
        "by the benchmark harness.\n")
    parts.append("## Headline comparison (Tables 3 & 4)\n")
    parts.append(_comparison_table(report))
    parts.append("\n\n## Table 2 — problem pool\n")
    parts.append(render_table(*table2_problem_pool()))
    parts.append("\n\n## Table 3 — overall (measured)\n")
    parts.append(render_table(*table3_overall(report.results)))
    for task, (headers, rows) in table4_by_task(
            report.results, baselines=report.baselines).items():
        parts.append(f"\n\n## Table 4 — {task} (measured)\n")
        parts.append(render_table(headers, rows))
    parts.append("\n\n## Table 5 — system command occurrences (measured)\n")
    parts.append(render_table(*table5_commands(report.results)))
    parts.append("\n\n## Figure 5 — accuracy vs step limit (measured)\n")
    parts.append("```\n" + render_series("accuracy @ K", report.figure5)
                 + "\n```")
    parts.append("\n\n## Figure 6 — % of actions by API (measured)\n")
    parts.append("```\n" + render_series(
        "action mix", figure6_api_usage(report.results)) + "\n```")
    parts.append("\n\n## Figure 7 — action distribution by outcome (measured)\n")
    parts.append("```\n" + render_series(
        "by outcome", figure7_action_distribution(report.results)) + "\n```")
    parts.append("\n\n## §3.6.4 — Noop false-positive probe\n")
    for agent, ok in report.noop_outcome.items():
        verdict = "correct (reports healthy)" if ok else "FALSE POSITIVE"
        parts.append(f"- {agent}: {verdict}")
    parts.append(
        "\n\nPaper: only GPT-4-W-SHELL identifies the healthy system; the "
        "others\nmisinterpret normal workload activity as a fault.\n")
    parts.append(
        "\n## Shape targets asserted by benchmarks/\n\n"
        "- FLASH answers every detection problem; all LLM agents beat MKSMC.\n"
        "- LLM agents beat PDiagnose and RMLAD on localization; "
        "acc@3 ≥ acc@1 for list submitters.\n"
        "- RCA accuracy ≤ 60% for every agent; GPT-3.5 worst.\n"
        "- Mitigation: GPT-3.5 repairs nothing; FLASH leads.\n"
        "- GPT-3.5 takes the most steps; FLASH is slowest per problem; "
        "ReAct emits the most output tokens.\n"
        "- get_logs is the dominant telemetry API; FLASH never calls "
        "get_traces (Figure 6).\n"
        "- Successful cases submit more and graze metrics/traces less "
        "(Figure 7).\n"
        "- Structured agents improve with larger step limits; GPT-3.5 "
        "plateaus (Figure 5).\n")
    return "\n".join(parts) + "\n"
