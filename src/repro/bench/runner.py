"""Suite runner: agents × problems → per-case results plus trajectories."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.agents.registry import AGENT_NAMES, build_agent, task_type_of
from repro.core.orchestrator import Orchestrator
from repro.core.session import Session
from repro.problems import benchmark_pids, get_problem


@dataclass
class CaseResult:
    """One (agent, problem) evaluation."""

    agent: str
    pid: str
    task_type: str
    success: bool
    duration_s: float
    steps: int
    input_tokens: int
    output_tokens: int
    details: dict[str, Any]
    session: Session


@dataclass
class SuiteResults:
    """All cases of one benchmark run."""

    cases: list[CaseResult] = field(default_factory=list)

    def for_agent(self, agent: str) -> list[CaseResult]:
        return [c for c in self.cases if c.agent == agent]

    def for_task(self, task: str, agent: Optional[str] = None) -> list[CaseResult]:
        out = [c for c in self.cases if c.task_type == task]
        if agent is not None:
            out = [c for c in out if c.agent == agent]
        return out

    def accuracy(self, agent: str, task: Optional[str] = None) -> float:
        cases = self.for_task(task, agent) if task else self.for_agent(agent)
        if not cases:
            return 0.0
        return sum(c.success for c in cases) / len(cases)


class BenchmarkRunner:
    """Runs agents over the problem pool (the paper's 4 agents × 48 problems).

    Parameters
    ----------
    max_steps:
        Step limit per session (paper default 20; Figure 5 sweeps it).
    seed:
        Root seed; case seeds derive from (seed, agent, pid) so every case
        is independently reproducible.
    """

    def __init__(self, max_steps: int = 20, seed: int = 0) -> None:
        self.max_steps = max_steps
        self.seed = seed

    def _case_seed(self, agent: str, pid: str) -> int:
        import hashlib
        digest = hashlib.sha256(f"{self.seed}:{agent}:{pid}".encode()).digest()
        return int.from_bytes(digest[:4], "little")

    def run_case(self, agent_name: str, pid: str,
                 max_steps: Optional[int] = None) -> CaseResult:
        """Run one agent on one problem in a fresh environment."""
        case_seed = self._case_seed(agent_name, pid)
        orch = Orchestrator(seed=case_seed)
        prob_desc, instructs, apis = orch.init_problem(get_problem(pid))
        task = task_type_of(pid)
        agent = build_agent(agent_name, prob_desc, instructs, apis, task,
                            seed=case_seed)
        orch.register_agent(agent, name=agent_name)
        res = orch.run_problem(max_steps=max_steps or self.max_steps)
        details = {k: v for k, v in res.items()
                   if k not in ("pid", "task_type", "agent", "success",
                                "duration_s", "steps", "input_tokens",
                                "output_tokens")}
        return CaseResult(
            agent=agent_name, pid=pid, task_type=task,
            success=bool(res["success"]), duration_s=res["duration_s"],
            steps=res["steps"], input_tokens=res["input_tokens"],
            output_tokens=res["output_tokens"], details=details,
            session=orch.session,
        )

    def run_suite(
        self,
        agents: Sequence[str] = AGENT_NAMES,
        pids: Optional[Iterable[str]] = None,
        verbose: bool = False,
    ) -> SuiteResults:
        """Run every agent on every problem (288 cases at paper scale
        counting the two non-LLM localization/detection baselines)."""
        results = SuiteResults()
        for agent in agents:
            for pid in (list(pids) if pids is not None else benchmark_pids()):
                case = self.run_case(agent, pid)
                results.cases.append(case)
                if verbose:  # pragma: no cover - console nicety
                    mark = "+" if case.success else "-"
                    print(f"[{mark}] {agent:16s} {pid}")
        return results

    def sweep_step_limit(
        self,
        limits: Sequence[int] = (3, 5, 10, 15, 20),
        agents: Sequence[str] = AGENT_NAMES,
        pids: Optional[Iterable[str]] = None,
    ) -> dict[str, dict[int, float]]:
        """Figure 5: accuracy as a function of the step limit K."""
        out: dict[str, dict[int, float]] = {a: {} for a in agents}
        pid_list = list(pids) if pids is not None else benchmark_pids()
        for limit in limits:
            for agent in agents:
                wins = 0
                for pid in pid_list:
                    case = self.run_case(agent, pid, max_steps=limit)
                    wins += case.success
                out[agent][limit] = wins / len(pid_list)
        return out
