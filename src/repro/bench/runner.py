"""Suite runner: agents × problems → per-case results plus trajectories.

Built on the v2 batch executor: every case is one independent
:class:`~repro.core.batch.SessionSpec` whose seed derives from
``(seed, agent, pid)``, so ``run_suite(concurrency=4)`` produces results
bit-identical to the serial run — concurrency only changes scheduling.
``BenchmarkRunner(executor="process")`` swaps the asyncio batch for a
process pool (true multi-core sweeps) under the same guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.agents.registry import AGENT_NAMES, agent_factory
from repro.core.batch import (
    GridCell,
    SessionOutcome,
    SessionSpec,
    run_grid,
    run_sessions_sync,
)
from repro.core.env import EnvSnapshot
from repro.core.session import Session
from repro.problems import benchmark_pids

_SUMMARY_KEYS = ("pid", "task_type", "agent", "success", "duration_s",
                 "steps", "input_tokens", "output_tokens")


@dataclass
class CaseResult:
    """One (agent, problem) evaluation."""

    agent: str
    pid: str
    task_type: str
    success: bool
    duration_s: float
    steps: int
    input_tokens: int
    output_tokens: int
    details: dict[str, Any]
    session: Session


@dataclass
class SuiteResults:
    """All cases of one benchmark run."""

    cases: list[CaseResult] = field(default_factory=list)

    def for_agent(self, agent: str) -> list[CaseResult]:
        return [c for c in self.cases if c.agent == agent]

    def for_task(self, task: str, agent: Optional[str] = None) -> list[CaseResult]:
        out = [c for c in self.cases if c.task_type == task]
        if agent is not None:
            out = [c for c in out if c.agent == agent]
        return out

    def accuracy(self, agent: str, task: Optional[str] = None) -> float:
        cases = self.for_task(task, agent) if task else self.for_agent(agent)
        if not cases:
            return 0.0
        return sum(c.success for c in cases) / len(cases)


class BenchmarkRunner:
    """Runs agents over the problem pool (the paper's 4 agents × 48 problems).

    Parameters
    ----------
    max_steps:
        Step limit per session (paper default 20; Figure 5 sweeps it).
    seed:
        Root seed; case seeds derive from (seed, agent, pid) so every case
        is independently reproducible — at any concurrency level.
    concurrency:
        How many sessions run in flight at once (default 1 = serial).
        Results are independent of this value.
    executor:
        ``"async"`` (default) runs cases under the in-process asyncio
        batch; ``"process"`` fans them out over a process pool with
        ``concurrency`` workers.  Results are bit-identical either way —
        every case seed derives from (seed, agent, pid), never from the
        scheduler.
    """

    def __init__(self, max_steps: int = 20, seed: int = 0,
                 concurrency: int = 1, executor: str = "async") -> None:
        if executor not in ("async", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; expected 'async' or "
                f"'process'")
        self.max_steps = max_steps
        self.seed = seed
        self.concurrency = concurrency
        self.executor = executor

    def _case_seed(self, agent: str, pid: str) -> int:
        import hashlib
        digest = hashlib.sha256(f"{self.seed}:{agent}:{pid}".encode()).digest()
        return int.from_bytes(digest[:4], "little")

    # ------------------------------------------------------------------
    def _case_spec(self, agent_name: str, pid: str,
                   max_steps: Optional[int] = None) -> SessionSpec:
        case_seed = self._case_seed(agent_name, pid)
        return SessionSpec(
            problem=pid,
            agent=agent_factory(agent_name),
            agent_name=agent_name,
            seed=case_seed,
            max_steps=max_steps or self.max_steps,
        )

    @staticmethod
    def _case_result(outcome: SessionOutcome) -> CaseResult:
        if outcome.error is not None:
            raise outcome.error
        res = outcome.result
        details = {k: v for k, v in res.items() if k not in _SUMMARY_KEYS}
        return CaseResult(
            agent=outcome.spec.agent_name, pid=res["pid"],
            task_type=res["task_type"],
            success=bool(res["success"]), duration_s=res["duration_s"],
            steps=res["steps"], input_tokens=res["input_tokens"],
            output_tokens=res["output_tokens"], details=details,
            session=outcome.session,
        )

    def _run_specs(self, specs: Sequence[SessionSpec],
                   concurrency: Optional[int] = None,
                   verbose: bool = False) -> list[CaseResult]:
        progress = None
        if verbose:
            def progress(outcome):
                mark = "+" if outcome.result.get("success") else "-"
                print(f"[{mark}] {outcome.spec.agent_name:16s} "
                      f"{outcome.result['pid']}")
        # fail_fast: a crashing case aborts the suite immediately (the
        # seed's serial semantics) instead of after the whole batch;
        # release_handles: keep trajectories, drop environments as cases
        # finish so a 288-case suite never holds 288 live envs.
        outcomes = run_sessions_sync(
            specs,
            concurrency=self.concurrency if concurrency is None else concurrency,
            fail_fast=True, release_handles=True, progress=progress,
            executor=self.executor)
        return [self._case_result(o) for o in outcomes]

    # ------------------------------------------------------------------
    def run_case(self, agent_name: str, pid: str,
                 max_steps: Optional[int] = None) -> CaseResult:
        """Run one agent on one problem in a fresh environment."""
        return self._run_specs(
            [self._case_spec(agent_name, pid, max_steps)], concurrency=1)[0]

    def run_suite(
        self,
        agents: Sequence[str] = AGENT_NAMES,
        pids: Optional[Iterable[str]] = None,
        verbose: bool = False,
        concurrency: Optional[int] = None,
    ) -> SuiteResults:
        """Run every agent on every problem (288 cases at paper scale
        counting the two non-LLM localization/detection baselines).

        ``concurrency`` overrides the runner default for this call.
        """
        pid_list = list(pids) if pids is not None else benchmark_pids()
        specs = [self._case_spec(agent, pid)
                 for agent in agents for pid in pid_list]
        return SuiteResults(
            cases=self._run_specs(specs, concurrency, verbose))

    def prepare_snapshot(self, pid: str,
                         env_seed: Optional[int] = None) -> EnvSnapshot:
        """Deploy, warm up and fault-inject ``pid`` once, then capture it.

        The returned :class:`~repro.core.env.EnvSnapshot` co-captures the
        problem (so forked sessions can be graded) and is what
        :meth:`sweep_grid` amortizes across every cell — the one-time
        setup cost replaces per-cell deploy + warmup + soak.
        """
        from repro.problems import get_problem
        problem = get_problem(pid)
        env = problem.create_environment(
            seed=self.seed if env_seed is None else env_seed)
        problem.start_workload(env)
        problem.inject_fault(env)
        snapshot = env.snapshot(extras=problem)
        env.close()
        return snapshot

    def sweep_grid(
        self,
        snapshot: EnvSnapshot,
        agents: Sequence[str] = AGENT_NAMES,
        seeds: Sequence[int] = (0,),
        step_limits: Optional[Sequence[int]] = None,
        concurrency: Optional[int] = None,
    ) -> list[dict]:
        """Run an (agent × seed × step-limit) grid from one snapshot.

        Every cell forks the snapshot — the environment seed is frozen in
        it; ``seeds`` vary the *agent* seed — so a 1000-cell grid pays
        environment setup exactly once.  With the runner's
        ``executor="process"`` the cells fan out over warm workers that
        inherit the snapshot at startup; results are bit-identical to the
        serial path either way, in cell order (agents outermost, then
        seeds, then step limits).
        """
        limits = list(step_limits) if step_limits is not None \
            else [self.max_steps]
        cells = [GridCell(agent=agent_factory(agent), agent_name=agent,
                          seed=seed, max_steps=limit)
                 for agent in agents for seed in seeds for limit in limits]
        n = self.concurrency if concurrency is None else concurrency
        processes = n if self.executor == "process" else 1
        results = run_grid(snapshot, cells, processes=processes)
        for cell, result in zip(cells, results):
            result["agent_seed"] = cell.seed
            result["max_steps"] = cell.max_steps
        return results

    def sweep_step_limit(
        self,
        limits: Sequence[int] = (3, 5, 10, 15, 20),
        agents: Sequence[str] = AGENT_NAMES,
        pids: Optional[Iterable[str]] = None,
        concurrency: Optional[int] = None,
    ) -> dict[str, dict[int, float]]:
        """Figure 5: accuracy as a function of the step limit K."""
        pid_list = list(pids) if pids is not None else benchmark_pids()
        grid = [(limit, agent) for limit in limits for agent in agents]
        specs = [self._case_spec(agent, pid, max_steps=limit)
                 for limit, agent in grid for pid in pid_list]
        cases = self._run_specs(specs, concurrency)
        out: dict[str, dict[int, float]] = {a: {} for a in agents}
        it = iter(cases)
        for limit, agent in grid:
            wins = sum(next(it).success for _ in pid_list)
            out[agent][limit] = wins / len(pid_list)
        return out
