"""Benchmark harness: runs the 48-problem suite and regenerates every
table and figure of the paper's evaluation section."""

from repro.bench.runner import BenchmarkRunner, CaseResult
from repro.bench.tables import (
    table2_problem_pool,
    table3_overall,
    table4_by_task,
    table5_commands,
    render_table,
)
from repro.bench.figures import (
    figure5_step_limit,
    figure6_api_usage,
    figure7_action_distribution,
    render_series,
)

__all__ = [
    "BenchmarkRunner",
    "CaseResult",
    "table2_problem_pool",
    "table3_overall",
    "table4_by_task",
    "table5_commands",
    "render_table",
    "figure5_step_limit",
    "figure6_api_usage",
    "figure7_action_distribution",
    "render_series",
]
