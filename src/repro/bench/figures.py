"""Figure data generators: Figures 5, 6 and 7 of the evaluation."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.agents.registry import AGENT_NAMES
from repro.bench.runner import BenchmarkRunner, SuiteResults


def render_series(title: str, series: dict[str, dict], unit: str = "") -> str:
    """Text rendering for figure data (keys as the x-axis)."""
    lines = [title]
    for name, points in series.items():
        pts = "  ".join(f"{k}:{v:.3f}" if isinstance(v, float) else f"{k}:{v}"
                        for k, v in points.items())
        lines.append(f"  {name:<18} {pts}{unit}")
    return "\n".join(lines)


def figure5_step_limit(
    runner: BenchmarkRunner,
    limits: Sequence[int] = (3, 5, 10, 15, 20),
    agents: Sequence[str] = AGENT_NAMES,
    pids: Optional[Sequence[str]] = None,
) -> dict[str, dict[int, float]]:
    """Figure 5: accuracy vs. maximum allowed steps K."""
    return runner.sweep_step_limit(limits=limits, agents=agents, pids=pids)


#: Figure 6 buckets
_F6_BUCKETS = ("get_logs", "get_metrics", "get_traces", "Others", "K8S")


def figure6_api_usage(results: SuiteResults,
                      agents: Sequence[str] = ("react", "flash")
                      ) -> dict[str, dict[str, float]]:
    """Figure 6: percentage of actions by API category per agent.

    ``K8S`` is exec_shell with a kubectl/helm command; ``Others`` is
    everything else (submit, invalid actions, other shell commands).
    """
    out: dict[str, dict[str, float]] = {}
    for agent in agents:
        counts = {b: 0 for b in _F6_BUCKETS}
        total = 0
        for case in results.for_agent(agent):
            for step in case.session.steps:
                total += 1
                if step.action_name in ("get_logs", "get_metrics", "get_traces"):
                    counts[step.action_name] += 1
                elif step.action_name == "exec_shell" and \
                        step.shell_command in ("kubectl", "helm"):
                    counts["K8S"] += 1
                else:
                    counts["Others"] += 1
        out[agent] = {
            b: (100.0 * counts[b] / total if total else 0.0)
            for b in _F6_BUCKETS
        }
    return out


#: Figure 7 buckets
_F7_BUCKETS = ("Submit", "kubectl get", "kubectl other", "get_logs",
               "get_traces", "get_metrics", "Others")


def _f7_bucket(step) -> str:
    if step.action_name == "submit":
        return "Submit"
    if step.action_name in ("get_logs", "get_traces", "get_metrics"):
        return step.action_name
    if step.action_name == "exec_shell" and step.shell_command == "kubectl":
        args = str(step.action_args[0]) if step.action_args else ""
        return "kubectl get" if " get " in f" {args} " else "kubectl other"
    return "Others"


def figure7_action_distribution(results: SuiteResults
                                ) -> dict[str, dict[str, float]]:
    """Figure 7: action distribution split by case outcome."""
    out: dict[str, dict[str, float]] = {}
    for label, want_success in (("successful", True), ("failure", False)):
        counts = {b: 0 for b in _F7_BUCKETS}
        total = 0
        for case in results.cases:
            if case.success != want_success:
                continue
            for step in case.session.steps:
                counts[_f7_bucket(step)] += 1
                total += 1
        out[label] = {
            b: (100.0 * counts[b] / total if total else 0.0)
            for b in _F7_BUCKETS
        }
    return out
