"""Reconciling controllers: deployments → pods, services → endpoints."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kubesim.objects import (
    Endpoints,
    EndpointAddress,
    ObjectMeta,
    Pod,
    PodPhase,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kubesim.cluster import Cluster


class DeploymentController:
    """Keeps each deployment's pod count equal to ``spec.replicas``.

    Pod names follow the familiar ``<deployment>-<hash>-<rand>`` shape so
    kubectl output reads naturally to an agent.
    """

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster

    def _pod_name(self, dep_name: str) -> str:
        rng = self.cluster.rng
        alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
        mid = "".join(rng.choice(alphabet) for _ in range(9))
        tail = "".join(rng.choice(alphabet) for _ in range(5))
        return f"{dep_name}-{mid}-{tail}"

    def reconcile(self) -> bool:
        changed = False
        for dep in list(self.cluster.deployments.values()):
            pods = self.cluster.pods_for_deployment(dep)
            live = [p for p in pods if not p.deletion_requested]
            # scale up
            while len(live) < dep.replicas:
                pod = Pod(
                    meta=ObjectMeta(
                        name=self._pod_name(dep.name),
                        namespace=dep.namespace,
                        labels=dict(dep.template.labels),
                    ),
                    containers=dep.template.clone_containers(),
                    node_selector=dict(dep.template.node_selector),
                    node_name=dep.template.node_name,
                    owner=dep.name,
                )
                pod.meta.uid = self.cluster._next_uid()
                pod.meta.creation_time = self.cluster.clock.now
                pod.start_time = self.cluster.clock.now
                self.cluster.pods[(pod.namespace, pod.name)] = pod
                self.cluster.record_event(
                    dep.namespace, "Pod", pod.name, "SuccessfulCreate",
                    f"Created pod: {pod.name}",
                )
                live.append(pod)
                changed = True
            # scale down (delete newest first, like the real controller's default)
            while len(live) > dep.replicas:
                victim = sorted(live, key=lambda p: (-p.meta.creation_time, p.name))[0]
                self.cluster.record_event(
                    dep.namespace, "Pod", victim.name, "Killing",
                    f"Stopping container {victim.name}",
                )
                del self.cluster.pods[(victim.namespace, victim.name)]
                live.remove(victim)
                changed = True
        # garbage-collect orphans whose deployment is gone
        for key, pod in list(self.cluster.pods.items()):
            if pod.owner and (pod.namespace, pod.owner) not in self.cluster.deployments:
                del self.cluster.pods[key]
                changed = True
        return changed


class EndpointsController:
    """Recomputes each service's ready backends.

    A pod backs a service only if **all** of:

    1. its labels match the service selector,
    2. it is Running and Ready (not crash-looping, not terminating),
    3. one of its containers actually listens on the service's
       ``targetPort``.

    Rule 3 is what makes the *TargetPortMisconfig* fault observable: the
    service object looks healthy, the pods look healthy, yet the endpoints
    list is empty and every upstream call gets connection refused.
    """

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster

    def _backends(self, svc) -> list[EndpointAddress]:
        out: list[EndpointAddress] = []
        pods = self.cluster.pods_matching(svc.namespace, svc.selector)
        for pod in pods:
            if pod.phase is not PodPhase.RUNNING or not pod.ready:
                continue
            if pod.crash_looping or pod.deletion_requested:
                continue
            for sp in svc.ports:
                if sp.target_port in pod.container_ports():
                    out.append(
                        EndpointAddress(
                            ip=f"10.244.0.{(hash(pod.name) % 250) + 2}",
                            pod_name=pod.name,
                            port=sp.target_port,
                        )
                    )
                    break
        return sorted(out, key=lambda a: a.pod_name)

    def reconcile(self) -> bool:
        changed = False
        for key, svc in list(self.cluster.services.items()):
            desired = self._backends(svc)
            existing = self.cluster.endpoints.get(key)
            if existing is None:
                self.cluster.endpoints[key] = Endpoints(
                    meta=ObjectMeta(name=svc.name, namespace=svc.namespace),
                    addresses=desired,
                )
                changed = True
            else:
                current = [(a.pod_name, a.port) for a in existing.addresses]
                new = [(a.pod_name, a.port) for a in desired]
                if current != new:
                    existing.addresses = desired
                    changed = True
        # drop endpoints for deleted services
        for key in [k for k in self.cluster.endpoints if k not in self.cluster.services]:
            del self.cluster.endpoints[key]
            changed = True
        return changed
