"""Reconciling controllers: deployments → pods, services → endpoints —
plus the :class:`HorizontalAutoscaler` driven by the resource plane."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.kubesim.objects import (
    Endpoints,
    EndpointAddress,
    ObjectMeta,
    Pod,
    PodPhase,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kubesim.cluster import Cluster
    from repro.kubesim.resources import ResourcePlane


class DeploymentController:
    """Keeps each deployment's pod count equal to ``spec.replicas``.

    Pod names follow the familiar ``<deployment>-<hash>-<rand>`` shape so
    kubectl output reads naturally to an agent.
    """

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster

    def _pod_name(self, dep_name: str) -> str:
        rng = self.cluster.rng
        alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
        mid = "".join(rng.choice(alphabet) for _ in range(9))
        tail = "".join(rng.choice(alphabet) for _ in range(5))
        return f"{dep_name}-{mid}-{tail}"

    def reconcile(self) -> bool:
        changed = False
        for dep in list(self.cluster.deployments.values()):
            pods = self.cluster.pods_for_deployment(dep)
            live = [p for p in pods if not p.deletion_requested]
            # scale up
            while len(live) < dep.replicas:
                pod = Pod(
                    meta=ObjectMeta(
                        name=self._pod_name(dep.name),
                        namespace=dep.namespace,
                        labels=dict(dep.template.labels),
                    ),
                    containers=dep.template.clone_containers(),
                    node_selector=dict(dep.template.node_selector),
                    node_name=dep.template.node_name,
                    owner=dep.name,
                )
                pod.meta.uid = self.cluster._next_uid()
                pod.meta.creation_time = self.cluster.clock.now
                pod.start_time = self.cluster.clock.now
                self.cluster.pods[(pod.namespace, pod.name)] = pod
                self.cluster.record_event(
                    dep.namespace, "Pod", pod.name, "SuccessfulCreate",
                    f"Created pod: {pod.name}",
                )
                live.append(pod)
                changed = True
            # scale down (delete newest first, like the real controller's default)
            while len(live) > dep.replicas:
                victim = sorted(live, key=lambda p: (-p.meta.creation_time, p.name))[0]
                self.cluster.record_event(
                    dep.namespace, "Pod", victim.name, "Killing",
                    f"Stopping container {victim.name}",
                )
                del self.cluster.pods[(victim.namespace, victim.name)]
                live.remove(victim)
                changed = True
        # garbage-collect orphans whose deployment is gone
        for key, pod in list(self.cluster.pods.items()):
            if pod.owner and (pod.namespace, pod.owner) not in self.cluster.deployments:
                del self.cluster.pods[key]
                changed = True
        return changed


class EndpointsController:
    """Recomputes each service's ready backends.

    A pod backs a service only if **all** of:

    1. its labels match the service selector,
    2. it is Running and Ready (not crash-looping, not terminating),
    3. one of its containers actually listens on the service's
       ``targetPort``.

    Rule 3 is what makes the *TargetPortMisconfig* fault observable: the
    service object looks healthy, the pods look healthy, yet the endpoints
    list is empty and every upstream call gets connection refused.
    """

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster

    def _backends(self, svc) -> list[EndpointAddress]:
        out: list[EndpointAddress] = []
        pods = self.cluster.pods_matching(svc.namespace, svc.selector)
        for pod in pods:
            if pod.phase is not PodPhase.RUNNING or not pod.ready:
                continue
            if pod.crash_looping or pod.deletion_requested:
                continue
            for sp in svc.ports:
                if sp.target_port in pod.container_ports():
                    out.append(
                        EndpointAddress(
                            ip=f"10.244.0.{(hash(pod.name) % 250) + 2}",
                            pod_name=pod.name,
                            port=sp.target_port,
                        )
                    )
                    break
        return sorted(out, key=lambda a: a.pod_name)

    def reconcile(self) -> bool:
        changed = False
        for key, svc in list(self.cluster.services.items()):
            desired = self._backends(svc)
            existing = self.cluster.endpoints.get(key)
            if existing is None:
                self.cluster.endpoints[key] = Endpoints(
                    meta=ObjectMeta(name=svc.name, namespace=svc.namespace),
                    addresses=desired,
                )
                changed = True
            else:
                current = [(a.pod_name, a.port) for a in existing.addresses]
                new = [(a.pod_name, a.port) for a in desired]
                if current != new:
                    existing.addresses = desired
                    changed = True
        # drop endpoints for deleted services
        for key in [k for k in self.cluster.endpoints if k not in self.cluster.services]:
            del self.cluster.endpoints[key]
            changed = True
        return changed


@dataclass
class HpaPolicy:
    """One autoscaler target: a deployment plus its scaling parameters.

    ``target_utilization`` is per-replica CPU demand as a fraction of the
    pod's CPU request (the k8s ``averageUtilization`` metric, as a
    fraction rather than a percent).  ``tolerance`` is the k8s
    ``--horizontal-pod-autoscaler-tolerance`` dead band: no action while
    ``|utilization/target − 1| <= tolerance``.  Scale-ups apply
    immediately; scale-downs wait out ``scale_down_stabilization_s`` of
    continuously-low utilization first (the k8s stabilization window,
    which is what damps flapping workloads — scenarios shrink it to
    *induce* thrash).
    """

    namespace: str
    deployment: str
    target_utilization: float = 0.7
    min_replicas: int = 1
    max_replicas: int = 8
    tolerance: float = 0.1
    scale_down_stabilization_s: float = 60.0


class HorizontalAutoscaler:
    """HPA-style controller scaling deployments on rolled-up utilization.

    Evaluated from the cluster's resync loop and after every resource-
    plane rollup.  Draws no randomness and mutates only through
    ``Cluster.scale_deployment``, so an environment with no targets is
    bit-identical to one without the controller at all.

    The desired-replica formula is the real HPA's:
    ``desired = ceil(current × utilization / target)`` — scale-invariant
    because per-replica utilization already divides by ``current``.
    """

    def __init__(self, cluster: "Cluster", plane: "ResourcePlane") -> None:
        self.cluster = cluster
        self.plane = plane
        self.policies: list[HpaPolicy] = []
        #: policy index -> clock time its utilization first went low
        self._below_since: dict[int, float] = {}
        #: (time, namespace, deployment, old, new) scaling decisions
        self.log: list[tuple[float, str, str, int, int]] = []

    def add(self, policy: HpaPolicy) -> HpaPolicy:
        self.policies.append(policy)
        return policy

    def _desired(self, policy: HpaPolicy, current: int,
                 utilization: float) -> int:
        desired = math.ceil(current * utilization / policy.target_utilization)
        return max(policy.min_replicas, min(policy.max_replicas, desired))

    def evaluate(self) -> None:
        now = self.cluster.clock.now
        for i, policy in enumerate(self.policies):
            dep = self.cluster.deployments.get(
                (policy.namespace, policy.deployment))
            if dep is None or dep.replicas <= 0:
                # manually scaled to zero (or deleted): stand down rather
                # than fight an operator/fault that zeroed the deployment
                self._below_since.pop(i, None)
                continue
            current = dep.replicas
            utilization = self.plane.utilization_of(
                policy.namespace, policy.deployment, current)
            desired = self._desired(policy, current, utilization)
            if desired == current or (
                policy.target_utilization > 0.0
                and abs(utilization / policy.target_utilization - 1.0)
                <= policy.tolerance
            ):
                if desired >= current:
                    self._below_since.pop(i, None)
                continue
            if desired > current:
                self._below_since.pop(i, None)
                self._rescale(policy, dep, desired, utilization, up=True)
                continue
            # scale down: wait out the stabilization window first
            since = self._below_since.get(i)
            if since is None:
                self._below_since[i] = now
                continue
            if now - since >= policy.scale_down_stabilization_s:
                self._below_since.pop(i, None)
                self._rescale(policy, dep, desired, utilization, up=False)

    def _rescale(self, policy: HpaPolicy, dep, desired: int,
                 utilization: float, up: bool) -> None:
        old = dep.replicas
        direction = "above" if up else "below"
        self.cluster.record_event(
            policy.namespace, "HorizontalPodAutoscaler", policy.deployment,
            "SuccessfulRescale",
            f"New size: {desired}; reason: cpu resource utilization "
            f"(percentage of request) {direction} target "
            f"({int(round(100 * utilization))}% vs "
            f"{int(round(100 * policy.target_utilization))}%)",
        )
        self.cluster.scale_deployment(policy.namespace, policy.deployment,
                                      desired)
        self.log.append((self.cluster.clock.now, policy.namespace,
                         policy.deployment, old, desired))
