"""First-principles resource plane: node capacity, demand, and contention.

This module makes co-tenancy *physical*.  Instead of noisy-neighbor
effects being scripted through injected faults, the plane models the
machines themselves:

1. **Demand** — every request a :class:`~repro.services.runtime.
   ServiceRuntime` executes is accounted here.  A service's CPU demand is
   ``offered rps × busy_mcores_per_rps`` (one request occupies a core for
   its ``base_latency_ms``, so 1 ms of busy time per request at 1 rps is
   1 millicore — see :attr:`~repro.services.model.Microservice.
   busy_mcores_per_rps`).
2. **Rollup** — :meth:`ResourcePlane.rollup` (a recurring passive event
   on the environment's queue, same 5 s cadence as telemetry scrapes)
   converts windowed request counts into per-service demand, spreads each
   service's demand evenly over its running pods, and sums per node:
   ``U(node) = Σ pod demand share / cpu_capacity``.
3. **Pressure curve** — an overcommitted node degrades *every* co-located
   pod.  The documented curve (:func:`pressure_multiplier`) leaves
   latency untouched up to 70 % utilization, then grows quadratically to
   a 13× multiplier at 130 % (where it saturates); past 90 % the node
   also sheds load (:func:`overload_probability`): hops into its pods
   fail with ``ResourceExhausted`` at up to 50 % probability.
4. **Quantization** — effective multipliers/shed probabilities are
   quantized to steps of :data:`QUANT_STEP` so the path-profile compiler
   can fingerprint them compactly: small demand jitter between rollups
   does not recompile profiles, a real regime change does (the
   per-namespace :meth:`ResourcePlane.fingerprint` version feeds
   ``ServiceRuntime._profile_key``).

The plane is **opt-in**: environments run with
``resource_coupling=False`` by default, in which case no runtime is
attached to it, no rollup event is scheduled, and every request executes
exactly as it did before the plane existed (bit-identical RNG draws —
pinned by the kernel-equivalence suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.kubesim.cluster import Cluster
    from repro.services.runtime import ServiceRuntime
    from repro.simcore import SimClock

#: quantization step for effective multipliers / shed probabilities —
#: coarse enough that demand jitter between rollups doesn't churn the
#: profile cache, fine enough that a regime change is visible
QUANT_STEP = 0.05

#: node utilization below which co-located pods are unaffected
PRESSURE_KNEE = 0.7
#: utilization at which the latency multiplier saturates
PRESSURE_CAP = 1.3
#: multiplier slope factor: m(U) = 1 + SLOPE * ((U - knee) / 0.3)^2
PRESSURE_SLOPE = 3.0
#: node utilization above which the node starts shedding load
OVERLOAD_KNEE = 0.9
#: maximum per-hop shed probability (reached at U >= 1.2)
OVERLOAD_MAX_P = 0.5


def quantize(value: float, step: float = QUANT_STEP) -> float:
    """Round ``value`` to the nearest multiple of ``step``."""
    return round(round(value / step) * step, 10)


def pressure_multiplier(utilization: float) -> float:
    """Latency multiplier applied to every pod on a node at ``utilization``.

    ``m(U) = 1`` for ``U <= 0.7``; above the knee it grows quadratically,
    ``m(U) = 1 + 3·((U − 0.7)/0.3)²``, reaching 4× at full utilization
    and saturating at 13× for ``U >= 1.3`` (run-queue pile-up: service
    time inflates roughly with the square of the overcommit, a standard
    M/M/1-flavored approximation).
    """
    if utilization <= PRESSURE_KNEE:
        return 1.0
    u = min(utilization, PRESSURE_CAP)
    x = (u - PRESSURE_KNEE) / 0.3
    return 1.0 + PRESSURE_SLOPE * x * x


def overload_probability(utilization: float) -> float:
    """Per-hop shed probability for pods on a node at ``utilization``.

    Zero through 90 % utilization, then linear —
    ``p(U) = 0.5·(U − 0.9)/0.3`` — capped at 0.5: a node 20 % past its
    capacity drops half the RPCs into its pods with ``ResourceExhausted``.
    """
    if utilization <= OVERLOAD_KNEE:
        return 0.0
    return min(OVERLOAD_MAX_P,
               OVERLOAD_MAX_P * (utilization - OVERLOAD_KNEE) / 0.3)


@dataclass(frozen=True)
class NodeSpec:
    """Declarative node shape for environment construction."""

    name: str
    cpu_capacity: float = 32000.0   # millicores
    mem_capacity: float = 65536.0   # MiB
    capacity_pods: int = 110
    labels: tuple[tuple[str, str], ...] = ()


@dataclass
class NodeUsage:
    """One node's rolled-up resource picture (last rollup)."""

    name: str
    cpu_capacity: float
    mem_capacity: float
    used_mcores: float = 0.0
    requested_mib: float = 0.0
    pods: int = 0

    @property
    def cpu_utilization(self) -> float:
        return self.used_mcores / self.cpu_capacity if self.cpu_capacity else 0.0

    @property
    def mem_utilization(self) -> float:
        return self.requested_mib / self.mem_capacity if self.mem_capacity else 0.0


class ResourcePlane:
    """Accounts request demand and rolls it up into node pressure.

    One plane per environment, shared by every hosted app's runtime.
    Runtimes push offered request counts via :meth:`account`;
    :meth:`rollup` (scheduled by the environment when coupling is on)
    turns the window into per-node utilization and publishes quantized
    per-service degradation parameters that the runtimes read back on
    every request (:meth:`multiplier_for` / :meth:`overload_p`).
    """

    def __init__(self, cluster: "Cluster", clock: "SimClock",
                 interval: float = 5.0, coupled: bool = True) -> None:
        self.cluster = cluster
        self.clock = clock
        self.interval = interval
        #: when False the plane still accounts demand and rolls up node
        #: utilization (feeding the autoscaler and ``kubectl top nodes``)
        #: but never publishes degradation parameters — an HPA-only
        #: environment observes load without contention side effects
        self.coupled = coupled
        #: namespace -> runtime (registered at deploy time)
        self._runtimes: dict[str, "ServiceRuntime"] = {}
        #: (namespace, service) -> requests offered since the last rollup
        self._window: dict[tuple[str, str], int] = {}
        self._window_started: float = clock.now
        #: (namespace, service) -> offered rps at the last rollup
        self._rate: dict[tuple[str, str], float] = {}
        #: (namespace, service) -> CPU demand (mcores) at the last rollup
        self._demand: dict[tuple[str, str], float] = {}
        #: node name -> NodeUsage at the last rollup
        self._nodes: dict[str, NodeUsage] = {}
        #: (namespace, service) -> quantized latency multiplier (>= 1.0)
        self._multiplier: dict[tuple[str, str], float] = {}
        #: (namespace, service) -> quantized per-hop shed probability
        self._overload: dict[tuple[str, str], float] = {}
        #: per-namespace fingerprint versions: bumped only when that
        #: namespace's effective (multiplier, overload) map changes — the
        #: profile-cache key component (quantization keeps this quiet
        #: across steady-state rollups)
        self._ns_versions: dict[str, int] = {}
        #: total rollups run (observability / benchmarks)
        self.rollups = 0

    # -- wiring ------------------------------------------------------------
    def register_runtime(self, runtime: "ServiceRuntime") -> None:
        self._runtimes[runtime.namespace] = runtime

    # -- accounting (hot path: one dict bump per service record) ----------
    def account(self, namespace: str, service: str, count: int = 1) -> None:
        key = (namespace, service)
        self._window[key] = self._window.get(key, 0) + count

    # -- reads used by runtimes / profiles --------------------------------
    def multiplier_for(self, namespace: str, service: str) -> float:
        return self._multiplier.get((namespace, service), 1.0)

    def overload_p(self, namespace: str, service: str) -> float:
        return self._overload.get((namespace, service), 0.0)

    def fingerprint(self, namespace: str) -> int:
        """Profile-cache key component: bumps exactly when ``namespace``'s
        effective degradation parameters change at a rollup."""
        return self._ns_versions.get(namespace, 0)

    def utilization_of(self, namespace: str, service: str,
                       replicas: int) -> float:
        """Per-replica CPU utilization as a fraction of the pod's request
        (the HPA's input metric): ``demand / (replicas × cpu_request)``."""
        if replicas <= 0:
            return 0.0
        demand = self._demand.get((namespace, service), 0.0)
        if demand <= 0.0:
            return 0.0
        dep = self.cluster.deployments.get((namespace, service))
        if dep is None:
            return 0.0
        request = sum(c.cpu_request for c in dep.template.containers)
        if request <= 0.0:
            return 0.0
        return demand / (replicas * request)

    def node_usage(self) -> list[NodeUsage]:
        """Per-node usage rows from the last rollup, name-sorted; nodes
        added since then show requests-only zeros."""
        out = []
        for name in sorted(self.cluster.nodes):
            node = self.cluster.nodes[name]
            usage = self._nodes.get(name) or NodeUsage(
                name, node.cpu_capacity, node.mem_capacity)
            out.append(usage)
        return out

    # -- the rollup --------------------------------------------------------
    def _service_pods(self) -> dict[tuple[str, str], list]:
        """(namespace, owner service) -> running pods, across all pods."""
        placed: dict[tuple[str, str], list] = {}
        for pod in self.cluster.pods.values():
            if pod.bound_node is None or not pod.ready or pod.crash_looping:
                continue
            owner = pod.owner or pod.name
            placed.setdefault((pod.namespace, owner), []).append(pod)
        return placed

    def rollup(self) -> None:
        """One utilization rollup: window counts → demand → node pressure
        → quantized per-service degradation parameters.

        Deterministic and RNG-free; iteration orders are sorted so results
        are independent of dict insertion order.
        """
        now = self.clock.now
        window = max(now - self._window_started, 1e-9)
        self.rollups += 1

        # 1. per-service offered rps and CPU demand
        rate: dict[tuple[str, str], float] = {}
        demand: dict[tuple[str, str], float] = {}
        for key in sorted(self._window):
            ns, svc_name = key
            rt = self._runtimes.get(ns)
            svc = rt.services.get(svc_name) if rt is not None else None
            if svc is None:
                continue
            rps = self._window[key] / window
            rate[key] = rps
            demand[key] = rps * svc.busy_mcores_per_rps
        self._rate = rate
        self._demand = demand
        self._window = {}
        self._window_started = now

        # 2. spread demand over running pods, sum per node
        placed = self._service_pods()
        nodes: dict[str, NodeUsage] = {
            name: NodeUsage(name, node.cpu_capacity, node.mem_capacity)
            for name, node in self.cluster.nodes.items()
        }
        service_nodes: dict[tuple[str, str], set[str]] = {}
        for key, pods in placed.items():
            hosts = service_nodes.setdefault(key, set())
            share = demand.get(key, 0.0) / len(pods)
            for pod in pods:
                usage = nodes.get(pod.bound_node)
                if usage is None:
                    continue
                usage.used_mcores += share
                usage.requested_mib += pod.mem_request()
                usage.pods += 1
                hosts.add(pod.bound_node)
        self._nodes = nodes

        # 3. per-service effective degradation: worst hosting node governs
        # (skipped entirely when uncoupled — utilization is observed, not
        # felt)
        multiplier: dict[tuple[str, str], float] = {}
        overload: dict[tuple[str, str], float] = {}
        if self.coupled:
            node_mult = {
                name: quantize(pressure_multiplier(u.cpu_utilization))
                for name, u in nodes.items()
            }
            node_shed = {
                name: quantize(overload_probability(u.cpu_utilization))
                for name, u in nodes.items()
            }
            for key in sorted(service_nodes):
                hosts = service_nodes[key]
                if not hosts:
                    continue
                m = max(node_mult[h] for h in hosts)
                p = max(node_shed[h] for h in hosts)
                if m > 1.0:
                    multiplier[key] = m
                if p > 0.0:
                    overload[key] = p

        # 4. bump per-namespace fingerprints only on effective change
        changed: set[str] = set()
        for d_new, d_old in ((multiplier, self._multiplier),
                             (overload, self._overload)):
            for key in set(d_new) | set(d_old):
                if d_new.get(key) != d_old.get(key):
                    changed.add(key[0])
        self._multiplier = multiplier
        self._overload = overload
        for ns in changed:
            self._ns_versions[ns] = self._ns_versions.get(ns, 0) + 1

    # -- kubectl adapters --------------------------------------------------
    def kubectl_node_metrics_source(self):
        """Rows for ``kubectl top nodes`` / ``get nodes`` utilization
        columns: (name, used mcores, cpu %, requested MiB, mem %, pods).
        A bound method (not a closure) so the callback pickles for
        environment snapshots."""
        return self._node_metrics_rows

    def _node_metrics_rows(self) -> list[tuple[float, ...]]:
        return [
            (u.name, u.used_mcores, 100.0 * u.cpu_utilization,
             u.requested_mib, 100.0 * u.mem_utilization, u.pods)
            for u in self.node_usage()
        ]
