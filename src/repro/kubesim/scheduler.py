"""Pod scheduler: binds pending pods to nodes (or leaves them Pending)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kubesim.objects import Pod, PodPhase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kubesim.cluster import Cluster


class Scheduler:
    """Binds pods to nodes, reproducing the failure modes agents must read.

    * ``spec.nodeName`` pointing at a node that does not exist leaves the
      pod **Pending** with a ``FailedScheduling`` warning event — the
      signature of the *AssignNonExistentNode* fault.
    * A ``nodeSelector`` no node satisfies also leaves the pod Pending.
    * Otherwise the pod binds to the least-loaded ready node and runs.
    """

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster

    def _node_load(self) -> dict[str, int]:
        load: dict[str, int] = {name: 0 for name in self.cluster.nodes}
        for pod in self.cluster.pods.values():
            if pod.bound_node in load:
                load[pod.bound_node] += 1
        return load

    def _pick_node(self, pod: Pod) -> str | None:
        candidates = [
            n for n in self.cluster.nodes.values()
            if n.ready and all(n.labels.get(k) == v for k, v in pod.node_selector.items())
        ]
        if not candidates:
            return None
        load = self._node_load()
        candidates.sort(key=lambda n: (load[n.name], n.name))
        return candidates[0].name

    def reconcile(self) -> bool:
        changed = False
        for pod in list(self.cluster.pods.values()):
            if pod.phase is not PodPhase.PENDING or pod.bound_node:
                continue
            if pod.node_name is not None:
                if pod.node_name in self.cluster.nodes:
                    target = pod.node_name
                else:
                    if pod.status_reason != "FailedScheduling":
                        pod.status_reason = "FailedScheduling"
                        self.cluster.record_event(
                            pod.namespace, "Pod", pod.name, "FailedScheduling",
                            f'0/{len(self.cluster.nodes)} nodes are available: '
                            f'node "{pod.node_name}" not found.',
                            event_type="Warning",
                        )
                        changed = True
                    continue
            else:
                target = self._pick_node(pod)
                if target is None:
                    if pod.status_reason != "FailedScheduling":
                        pod.status_reason = "FailedScheduling"
                        self.cluster.record_event(
                            pod.namespace, "Pod", pod.name, "FailedScheduling",
                            f"0/{len(self.cluster.nodes)} nodes are available: "
                            f"node selector mismatch.",
                            event_type="Warning",
                        )
                        changed = True
                    continue

            pod.bound_node = target
            pod.phase = PodPhase.RUNNING
            pod.ready = True
            pod.status_reason = ""
            self.cluster.record_event(
                pod.namespace, "Pod", pod.name, "Scheduled",
                f"Successfully assigned {pod.namespace}/{pod.name} to {target}",
            )
            self.cluster.record_event(
                pod.namespace, "Pod", pod.name, "Started",
                f"Started container {pod.containers[0].name if pod.containers else pod.name}",
            )
            changed = True
        return changed
