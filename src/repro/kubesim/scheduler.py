"""Pod scheduler: binds pending pods to nodes (or leaves them Pending).

Scheduling is **resource-aware**: each node advertises ``cpu_capacity``
(millicores) / ``mem_capacity`` (MiB) and every bound pod's container
requests count against them, so placement bin-packs on *requested*
resources rather than pod count.  Best-effort pods (zero requests)
always fit.

Placement uses a capacity-keyed min-heap with lazy deletion: nodes are
ordered by ``(requested cpu, requested mem, bound pods, name)`` — the
exact key the old per-pod sort used — so picking the least-requested
feasible node is one pop in the common case instead of an O(nodes)
scan + sort per pod.  Bindings push a fresh entry; superseded entries
are dropped when popped.  Identical placements, identical tiebreaks.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.kubesim.objects import Node, Pod, PodPhase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kubesim.cluster import Cluster


class Scheduler:
    """Binds pods to nodes, reproducing the failure modes agents must read.

    * ``spec.nodeName`` pointing at a node that does not exist leaves the
      pod **Pending** with a ``FailedScheduling`` warning event — the
      signature of the *AssignNonExistentNode* fault.  A nodeName that
      *does* exist binds unconditionally (real kubelets admit static
      placements without the scheduler's capacity filter).
    * A ``nodeSelector`` no node satisfies also leaves the pod Pending.
    * A pod whose resource requests fit no remaining node capacity stays
      Pending with an ``Insufficient cpu`` / ``Insufficient memory``
      warning — the capacity-exhaustion signature.
    * Otherwise the pod binds to the least-requested feasible node
      (by requested cpu, then requested memory, then name) and runs.
    """

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster

    def _node_load(self) -> dict[str, list[float]]:
        """Per-node ``[requested_mcores, requested_mib, bound_pods]``."""
        load: dict[str, list[float]] = {
            name: [0.0, 0.0, 0] for name in self.cluster.nodes}
        for pod in self.cluster.pods.values():
            entry = load.get(pod.bound_node or "")
            if entry is not None:
                entry[0] += pod.cpu_request()
                entry[1] += pod.mem_request()
                entry[2] += 1
        return load

    @staticmethod
    def _fits(node: Node, used: list[float], pod: Pod) -> bool:
        return (used[0] + pod.cpu_request() <= node.cpu_capacity
                and used[1] + pod.mem_request() <= node.mem_capacity
                and used[2] + 1 <= node.capacity_pods)

    def _build_heap(self, load: dict[str, list[float]]
                    ) -> list[tuple[float, float, int, str]]:
        """Min-heap of ``(cpu, mem, pods, name)`` over ready nodes — the
        same ascending order the old per-pod feasible sort produced."""
        heap = [(used[0], used[1], used[2], name)
                for name, used in load.items()
                if self.cluster.nodes[name].ready]
        heapq.heapify(heap)
        return heap

    def _pick_node(self, pod: Pod, load: dict[str, list[float]],
                   heap: list[tuple[float, float, int, str]],
                   ) -> tuple[str | None, str]:
        """``(node name, "")`` or ``(None, failure message)``.

        Pops the heap in ascending load order until a node matches the
        pod's selector and fits its requests — the first such node *is*
        the old scan's minimum, since both use the same key.  Entries
        superseded by a later binding (their snapshot no longer equals
        the node's current load) are dropped; still-valid entries popped
        past are restored for the next pod.
        """
        restore: list[tuple[float, float, int, str]] = []
        chosen: str | None = None
        while heap:
            entry = heapq.heappop(heap)
            cpu, mem, count, name = entry
            node = self.cluster.nodes.get(name)
            used = load.get(name)
            if (node is None or not node.ready or used is None
                    or used[0] != cpu or used[1] != mem or used[2] != count):
                continue  # stale (node gone, or load superseded the entry)
            restore.append(entry)
            if all(node.labels.get(k) == v
                   for k, v in pod.node_selector.items()) \
                    and self._fits(node, used, pod):
                chosen = name
                break
        for entry in restore:
            heapq.heappush(heap, entry)
        if chosen is not None:
            return chosen, ""
        # failure: full scan for the exact kube-scheduler phrasing (cold
        # path — counts nodes per failed predicate)
        matching = [
            n for n in self.cluster.nodes.values()
            if n.ready and all(n.labels.get(k) == v
                               for k, v in pod.node_selector.items())
        ]
        total = len(self.cluster.nodes)
        if not matching:
            return None, (f"0/{total} nodes are available: "
                          f"node selector mismatch.")
        short_cpu = sum(
            1 for n in matching
            if load[n.name][0] + pod.cpu_request() > n.cpu_capacity)
        reason = ("Insufficient cpu." if short_cpu
                  else "Insufficient memory.")
        return None, (f"0/{total} nodes are available: "
                      f"{len(matching)} {reason}")

    def reconcile(self) -> bool:
        changed = False
        # deterministic scheduling order regardless of dict insertion /
        # iteration order: creation time, then the monotonically-assigned
        # zero-padded uid breaks same-instant ties
        pending = sorted(
            (p for p in self.cluster.pods.values()
             if p.phase is PodPhase.PENDING and not p.bound_node),
            key=lambda p: (p.meta.creation_time, p.meta.uid, p.name))
        load = self._node_load() if pending else {}
        heap = self._build_heap(load) if pending else []
        for pod in pending:
            if pod.node_name is not None:
                if pod.node_name in self.cluster.nodes:
                    target = pod.node_name
                else:
                    if pod.status_reason != "FailedScheduling":
                        pod.status_reason = "FailedScheduling"
                        self.cluster.record_event(
                            pod.namespace, "Pod", pod.name, "FailedScheduling",
                            f'0/{len(self.cluster.nodes)} nodes are available: '
                            f'node "{pod.node_name}" not found.',
                            event_type="Warning",
                        )
                        changed = True
                    continue
            else:
                target, message = self._pick_node(pod, load, heap)
                if target is None:
                    if pod.status_reason != "FailedScheduling":
                        pod.status_reason = "FailedScheduling"
                        self.cluster.record_event(
                            pod.namespace, "Pod", pod.name, "FailedScheduling",
                            message, event_type="Warning",
                        )
                        changed = True
                    continue

            pod.bound_node = target
            pod.phase = PodPhase.RUNNING
            pod.ready = True
            pod.status_reason = ""
            used = load.get(target)
            if used is not None:
                used[0] += pod.cpu_request()
                used[1] += pod.mem_request()
                used[2] += 1
                # fresh heap entry for the new load; the popped one is now
                # stale and gets dropped lazily
                heapq.heappush(heap, (used[0], used[1], used[2], target))
            self.cluster.record_event(
                pod.namespace, "Pod", pod.name, "Scheduled",
                f"Successfully assigned {pod.namespace}/{pod.name} to {target}",
            )
            self.cluster.record_event(
                pod.namespace, "Pod", pod.name, "Started",
                f"Started container {pod.containers[0].name if pod.containers else pod.name}",
            )
            changed = True
        return changed
