"""A minimal Helm facade: charts render application objects into the cluster.

Applications (``repro.apps``) ship as :class:`HelmChart` descriptors — a list
of service specs plus default values.  ``helm install`` renders deployments,
services and configmaps; ``helm upgrade`` re-renders with new values (which
is how the *AuthenticationMissing* fault is mitigated, per the paper: "Fault 1
needs to enforce its TLS requirements through a Helm configuration update").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.simcore import InvalidAction, ResourceNotFound
from repro.kubesim.cluster import Cluster
from repro.kubesim.objects import (
    ConfigMap,
    Container,
    ContainerPort,
    Deployment,
    ObjectMeta,
    PodTemplate,
    Service,
    ServicePort,
)


@dataclass
class ChartService:
    """One microservice entry in a chart: a deployment plus its service.

    ``cpu_request`` (millicores) / ``mem_request`` (MiB) become the
    rendered container's resource requests — what the scheduler bin-packs
    on and what the HPA divides demand by.  The defaults mirror the
    DeathStarBench charts' modest requests (100m / 128Mi).
    """

    name: str
    image: str
    port: int
    replicas: int = 1
    env: dict[str, str] = field(default_factory=dict)
    labels: dict[str, str] = field(default_factory=dict)
    cpu_request: float = 100.0
    mem_request: float = 128.0


@dataclass
class HelmChart:
    """A chart: named set of microservices plus default values."""

    name: str
    version: str = "0.1.0"
    services: list[ChartService] = field(default_factory=list)
    default_values: dict[str, Any] = field(default_factory=dict)
    configmap_data: dict[str, str] = field(default_factory=dict)


@dataclass
class HelmRelease:
    """A deployed chart instance."""

    name: str
    chart: HelmChart
    namespace: str
    values: dict[str, Any]
    revision: int = 1


def merge_values(base: dict[str, Any], override: Optional[dict[str, Any]]) -> dict[str, Any]:
    """Deep-merge ``override`` onto ``base`` (helm's value semantics).

    Copy-on-write: only the dict spine along merged paths is copied;
    untouched subtrees and override leaves are shared by reference.
    Neither input is ever mutated — every dict on a merge path is a fresh
    one — which is all the deep copy bought, at a per-render cost that
    scaled with the whole values tree (hot on large ``node_specs``
    environments, where every release render re-merged the full tree).
    """
    out = dict(base)
    for k, v in (override or {}).items():
        if isinstance(v, dict) and isinstance(out.get(k), dict):
            out[k] = merge_values(out[k], v)
        else:
            out[k] = v
    return out


class Helm:
    """Installs, upgrades, and uninstalls chart releases on a cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.releases: dict[str, HelmRelease] = {}

    def install(
        self,
        release_name: str,
        chart: HelmChart,
        namespace: str,
        values: Optional[dict[str, Any]] = None,
    ) -> HelmRelease:
        """Render the chart into ``namespace`` and track the release."""
        if release_name in self.releases:
            raise InvalidAction(f'release "{release_name}" already exists')
        self.cluster.create_namespace(namespace)
        merged = merge_values(chart.default_values, values)
        release = HelmRelease(release_name, chart, namespace, merged)
        self.releases[release_name] = release
        self._render(release)
        return release

    def upgrade(
        self, release_name: str, values: Optional[dict[str, Any]] = None
    ) -> HelmRelease:
        """Re-render a release with updated values (revision += 1)."""
        release = self.releases.get(release_name)
        if release is None:
            raise ResourceNotFound("Release", release_name)
        release.values = merge_values(release.values, values)
        release.revision += 1
        self._teardown_objects(release)
        self._render(release)
        return release

    def uninstall(self, release_name: str) -> None:
        release = self.releases.pop(release_name, None)
        if release is None:
            raise ResourceNotFound("Release", release_name)
        self._teardown_objects(release)

    def _teardown_objects(self, release: HelmRelease) -> None:
        ns = release.namespace
        for svc in release.chart.services:
            self.cluster.deployments.pop((ns, svc.name), None)
            self.cluster.services.pop((ns, svc.name), None)
            self.cluster.endpoints.pop((ns, svc.name), None)
        for key in [k for k in self.cluster.pods if k[0] == ns]:
            del self.cluster.pods[key]
        self.cluster.configmaps.pop((ns, f"{release.chart.name}-config"), None)
        self.cluster.reconcile()

    def _render(self, release: HelmRelease) -> None:
        ns = release.namespace
        chart = release.chart
        for svc in chart.services:
            labels = {"app": svc.name, **svc.labels}
            dep = Deployment(
                meta=ObjectMeta(name=svc.name, namespace=ns, labels=dict(labels)),
                replicas=svc.replicas,
                selector={"app": svc.name},
                template=PodTemplate(
                    labels=dict(labels),
                    containers=[
                        Container(
                            name=svc.name,
                            image=svc.image,
                            ports=[ContainerPort(container_port=svc.port)],
                            env=dict(svc.env),
                            cpu_request=svc.cpu_request,
                            mem_request=svc.mem_request,
                        )
                    ],
                ),
            )
            self.cluster.create_deployment(dep)
            self.cluster.create_service(
                Service(
                    meta=ObjectMeta(name=svc.name, namespace=ns, labels=dict(labels)),
                    selector={"app": svc.name},
                    ports=[ServicePort(port=svc.port, target_port=svc.port)],
                )
            )
        if chart.configmap_data or release.values:
            data = dict(chart.configmap_data)
            for k, v in release.values.items():
                if isinstance(v, (str, int, float, bool)):
                    data[k] = str(v)
            self.cluster.create_configmap(
                ConfigMap(
                    meta=ObjectMeta(name=f"{chart.name}-config", namespace=ns),
                    data=data,
                )
            )
        self.cluster.reconcile()
