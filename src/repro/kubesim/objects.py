"""Kubernetes object model (the subset AIOps incidents exercise)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class ObjectMeta:
    """Name, namespace and labels — the identity of every object."""

    name: str
    namespace: str = "default"
    labels: dict[str, str] = field(default_factory=dict)
    annotations: dict[str, str] = field(default_factory=dict)
    uid: str = ""
    creation_time: float = 0.0

    def matches(self, selector: dict[str, str]) -> bool:
        """True if this object's labels satisfy ``selector`` (AND semantics)."""
        return all(self.labels.get(k) == v for k, v in selector.items())


@dataclass
class ContainerPort:
    """A port a container listens on."""

    container_port: int
    name: str = ""
    protocol: str = "TCP"


@dataclass
class Container:
    """A container spec inside a pod template or pod.

    ``cpu_request`` is in millicores, ``mem_request`` in MiB (the only
    resource units this simulator uses); ``0.0`` means best-effort — the
    scheduler then bin-packs the container as weightless.
    """

    name: str
    image: str
    ports: list[ContainerPort] = field(default_factory=list)
    env: dict[str, str] = field(default_factory=dict)
    command: list[str] = field(default_factory=list)
    cpu_request: float = 0.0
    mem_request: float = 0.0

    def has_port(self, port: int) -> bool:
        return any(p.container_port == port for p in self.ports)


class PodPhase(str, enum.Enum):
    """Pod lifecycle phase, as reported by ``kubectl get pods``."""

    PENDING = "Pending"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"
    UNKNOWN = "Unknown"


@dataclass
class Pod:
    """A pod: spec (containers, placement) plus live status."""

    meta: ObjectMeta
    containers: list[Container] = field(default_factory=list)
    node_name: Optional[str] = None          # spec.nodeName (may be unschedulable)
    node_selector: dict[str, str] = field(default_factory=dict)
    owner: Optional[str] = None              # owning Deployment name

    # -- status ---------------------------------------------------------
    phase: PodPhase = PodPhase.PENDING
    bound_node: Optional[str] = None         # where the scheduler put it
    ready: bool = False
    restart_count: int = 0
    crash_looping: bool = False
    status_reason: str = ""                  # e.g. "FailedScheduling"
    start_time: float = 0.0
    deletion_requested: bool = False

    @property
    def name(self) -> str:
        return self.meta.name

    @property
    def namespace(self) -> str:
        return self.meta.namespace

    def container_ports(self) -> set[int]:
        return {p.container_port for c in self.containers for p in c.ports}

    def status_display(self) -> str:
        """The STATUS column value ``kubectl get pods`` would show."""
        if self.deletion_requested:
            return "Terminating"
        if self.crash_looping:
            return "CrashLoopBackOff"
        return self.phase.value

    def ready_display(self) -> str:
        """The READY column, e.g. ``1/1``."""
        total = max(len(self.containers), 1)
        ready = total if self.ready else 0
        return f"{ready}/{total}"

    def cpu_request(self) -> float:
        """Requested millicores across containers (0 = best-effort)."""
        return sum(c.cpu_request for c in self.containers)

    def mem_request(self) -> float:
        """Requested MiB across containers (0 = best-effort)."""
        return sum(c.mem_request for c in self.containers)


@dataclass
class PodTemplate:
    """Template deployments stamp pods from."""

    labels: dict[str, str] = field(default_factory=dict)
    containers: list[Container] = field(default_factory=list)
    node_selector: dict[str, str] = field(default_factory=dict)
    node_name: Optional[str] = None

    def clone_containers(self) -> list[Container]:
        return [
            Container(
                name=c.name,
                image=c.image,
                ports=[ContainerPort(p.container_port, p.name, p.protocol) for p in c.ports],
                env=dict(c.env),
                command=list(c.command),
                cpu_request=c.cpu_request,
                mem_request=c.mem_request,
            )
            for c in self.containers
        ]


@dataclass
class Deployment:
    """A deployment: desired replica count plus a pod template."""

    meta: ObjectMeta
    replicas: int = 1
    selector: dict[str, str] = field(default_factory=dict)
    template: PodTemplate = field(default_factory=PodTemplate)
    generation: int = 1

    @property
    def name(self) -> str:
        return self.meta.name

    @property
    def namespace(self) -> str:
        return self.meta.namespace


@dataclass
class ServicePort:
    """A service port mapping: ``port`` (virtual) → ``target_port`` (container)."""

    port: int
    target_port: int
    name: str = ""
    protocol: str = "TCP"


@dataclass
class Service:
    """A ClusterIP service selecting pods by label."""

    meta: ObjectMeta
    selector: dict[str, str] = field(default_factory=dict)
    ports: list[ServicePort] = field(default_factory=list)
    cluster_ip: str = ""
    service_type: str = "ClusterIP"

    @property
    def name(self) -> str:
        return self.meta.name

    @property
    def namespace(self) -> str:
        return self.meta.namespace


@dataclass
class EndpointAddress:
    """One ready backend of a service."""

    ip: str
    pod_name: str
    port: int


@dataclass
class Endpoints:
    """The computed ready backends for a service (one object per service)."""

    meta: ObjectMeta
    addresses: list[EndpointAddress] = field(default_factory=list)

    @property
    def reachable(self) -> bool:
        """True if at least one ready backend exists."""
        return len(self.addresses) > 0


@dataclass
class Node:
    """A worker node with allocatable CPU/memory capacity.

    ``cpu_capacity`` is in millicores, ``mem_capacity`` in MiB — the
    defaults model a 32-core / 64 GiB worker, large enough that every
    historical single-node deployment fits without the scheduler ever
    rejecting a pod (which keeps seed behavior intact).
    """

    meta: ObjectMeta
    capacity_pods: int = 110
    ready: bool = True
    labels: dict[str, str] = field(default_factory=dict)
    cpu_capacity: float = 32000.0
    mem_capacity: float = 65536.0

    @property
    def name(self) -> str:
        return self.meta.name


@dataclass
class ConfigMap:
    """Plain key/value configuration."""

    meta: ObjectMeta
    data: dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.meta.name

    @property
    def namespace(self) -> str:
        return self.meta.namespace


@dataclass
class Secret:
    """Opaque key/value secrets (values stored in clear; this is a simulator)."""

    meta: ObjectMeta
    data: dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.meta.name

    @property
    def namespace(self) -> str:
        return self.meta.namespace


@dataclass
class ClusterEvent:
    """A namespaced event, as shown by ``kubectl get events``."""

    time: float
    namespace: str
    kind: str          # involved object kind, e.g. "Pod"
    name: str          # involved object name
    reason: str        # e.g. "FailedScheduling", "Killing", "ScalingReplicaSet"
    message: str
    event_type: str = "Normal"   # or "Warning"
