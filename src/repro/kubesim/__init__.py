"""An in-process Kubernetes simulator.

``kubesim`` models the slice of Kubernetes that AIOps incidents live in:

* the object model — :class:`Pod`, :class:`Deployment`, :class:`Service`,
  :class:`Endpoints`, :class:`Node`, :class:`ConfigMap`, :class:`Secret`;
* an API-server-like state store (:class:`Cluster`) with namespaced CRUD;
* reconciling controllers — deployments create/delete pods, the endpoints
  controller matches services to ready pods *including targetPort
  validation*, and a scheduler binds pods to nodes;
* a ``kubectl`` text facade (:class:`Kubectl`) that renders output the way
  the real CLI does, so language agents can operate it;
* a ``helm`` facade for chart-driven application deployment.

Faults manifest mechanically: scaling a deployment to zero removes its
pods, which empties the service's endpoints, which makes upstream RPC
calls fail with "connection refused" — exactly the causal chain an agent
must trace in the real system.
"""

from repro.kubesim.objects import (
    ObjectMeta,
    Container,
    ContainerPort,
    Pod,
    PodPhase,
    Deployment,
    Service,
    ServicePort,
    Endpoints,
    Node,
    ConfigMap,
    Secret,
    ClusterEvent,
)
from repro.kubesim.cluster import Cluster
from repro.kubesim.controllers import HorizontalAutoscaler, HpaPolicy
from repro.kubesim.kubectl import Kubectl
from repro.kubesim.helm import Helm, HelmChart, HelmRelease
from repro.kubesim.resources import (
    NodeSpec,
    NodeUsage,
    ResourcePlane,
    overload_probability,
    pressure_multiplier,
)

__all__ = [
    "ObjectMeta",
    "Container",
    "ContainerPort",
    "Pod",
    "PodPhase",
    "Deployment",
    "Service",
    "ServicePort",
    "Endpoints",
    "Node",
    "ConfigMap",
    "Secret",
    "ClusterEvent",
    "Cluster",
    "Kubectl",
    "Helm",
    "HelmChart",
    "HelmRelease",
    "HorizontalAutoscaler",
    "HpaPolicy",
    "NodeSpec",
    "NodeUsage",
    "ResourcePlane",
    "overload_probability",
    "pressure_multiplier",
]
