"""The cluster state store — an in-process stand-in for the API server."""

from __future__ import annotations

from typing import Optional

from repro.simcore import RngStream, SimClock, ResourceNotFound, InvalidAction
from repro.kubesim.objects import (
    ClusterEvent,
    ConfigMap,
    Deployment,
    Endpoints,
    Node,
    ObjectMeta,
    Pod,
    PodPhase,
    Secret,
    Service,
)
from repro.kubesim.scheduler import Scheduler
from repro.kubesim.controllers import DeploymentController, EndpointsController


class _VersionedDict(dict):
    """A dict that counts membership mutations, globally and per namespace.

    The cluster's sorted per-namespace object views are derived caches
    keyed on the global ``version``, so every mutation site (controllers,
    faults, helm, kubectl) invalidates them without having to know they
    exist.  Keys are ``(namespace, name)`` tuples; :meth:`ns_version`
    additionally gives a per-namespace fingerprint component, so one
    app's profile cache is not invalidated by membership churn in a
    co-hosted app's namespace (multi-app environments share the cluster).
    Bulk mutators that can't attribute a namespace bump a shared epoch
    that is folded into every per-namespace readout.
    """

    __slots__ = ("version", "_ns_counts", "_bulk_epoch")

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.version = 0
        self._ns_counts: dict[str, int] = {}
        self._bulk_epoch = 0

    def _bump(self, key) -> None:
        self.version += 1
        if isinstance(key, tuple) and key:
            ns = key[0]
            self._ns_counts[ns] = self._ns_counts.get(ns, 0) + 1
        else:
            self._bulk_epoch += 1

    def ns_version(self, namespace: str) -> tuple[int, int]:
        """Per-namespace mutation fingerprint (count, bulk epoch)."""
        return (self._ns_counts.get(namespace, 0), self._bulk_epoch)

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self._bump(key)

    def __delitem__(self, key) -> None:
        super().__delitem__(key)
        self._bump(key)

    def pop(self, *args):
        self._bump(args[0] if args else None)
        return super().pop(*args)

    def popitem(self):
        self.version += 1
        self._bulk_epoch += 1
        return super().popitem()

    def clear(self) -> None:
        self.version += 1
        self._bulk_epoch += 1
        super().clear()

    def update(self, *args, **kwargs) -> None:
        self.version += 1
        self._bulk_epoch += 1
        super().update(*args, **kwargs)

    def setdefault(self, key, default=None):
        self._bump(key)
        return super().setdefault(key, default)

    def __ior__(self, other):
        self.version += 1
        self._bulk_epoch += 1
        return super().__ior__(other)

    def __reduce__(self):
        """Rebuild through ``__setstate__`` rather than per-item
        ``__setitem__`` (which would read the version slots before
        pickle restores them) — and restore the exact counters, so a
        snapshotted cluster's derived-cache fingerprints stay valid."""
        state = (dict(self), self.version, self._ns_counts, self._bulk_epoch)
        return (self.__class__, (), state)

    def __setstate__(self, state) -> None:
        items, self.version, self._ns_counts, self._bulk_epoch = state
        dict.update(self, items)


class Cluster:
    """Holds every Kubernetes object and runs the reconciling controllers.

    All mutations go through CRUD methods; :meth:`reconcile` then drives the
    system to the desired state (deployments stamp pods, the scheduler binds
    them, the endpoints controller recomputes service backends).  Mutating
    methods call ``reconcile()`` themselves, so callers always observe a
    settled cluster.

    Parameters
    ----------
    clock:
        Shared simulation clock; object creation times and events use it.
    seed:
        Root seed for pod-name suffixes and IP assignment.
    node_specs:
        Optional iterable of :class:`~repro.kubesim.resources.NodeSpec`
        shaping the initial node pool.  ``None`` keeps the historical
        default: one ``node-0`` with default capacities.
    """

    def __init__(self, clock: Optional[SimClock] = None, seed: int = 0,
                 node_specs=None) -> None:
        self.clock = clock or SimClock()
        self.rng = RngStream(seed, "kubesim")
        #: plain ints (next value to hand out) rather than itertools.count
        #: so cluster state pickles for environment snapshots
        self._uid_counter = 1
        self._ip_counter = 2

        self.namespaces: set[str] = {"default", "kube-system"}
        self.nodes: dict[str, Node] = {}
        self.pods: dict[tuple[str, str], Pod] = _VersionedDict()
        self.deployments: dict[tuple[str, str], Deployment] = {}
        self.services: dict[tuple[str, str], Service] = _VersionedDict()
        self.endpoints: dict[tuple[str, str], Endpoints] = {}
        self.configmaps: dict[tuple[str, str], ConfigMap] = {}
        self.secrets: dict[tuple[str, str], Secret] = {}
        self.events: list[ClusterEvent] = []

        self._scheduler = Scheduler(self)
        self._deploy_ctrl = DeploymentController(self)
        self._endpoints_ctrl = EndpointsController(self)
        #: autoscalers evaluated on every resync (see attach_autoscaler)
        self.autoscalers: list = []
        #: monotonic mutation counter: bumped by every mutating CRUD
        #: method *and* by every ``reconcile()`` run, so derived caches
        #: (path profiles, log pod attribution) can fingerprint cluster
        #: state cheaply — including in-place object edits, which always
        #: go through a reconcile.  A converged-cluster ``resync`` skips
        #: reconcile and therefore does not bump it.
        self.state_version = 0
        #: per-namespace CRUD-mutation counters (see ``state_version_for``)
        self._ns_marks: dict[str, int] = {}
        #: cluster-global epoch: bumped by every ``reconcile()`` run and by
        #: namespace-less mutations (node add/remove) — in-place object
        #: edits bypass CRUD but always reconcile, so folding this epoch
        #: into every namespace's fingerprint keeps per-app profile caches
        #: conservatively correct (they may recompile on another app's
        #: reconcile, but can never serve a stale profile)
        self._reconcile_version = 0
        #: set by mutating CRUD methods, cleared by reconcile(); lets the
        #: periodic resync event skip converged clusters in O(1)
        self._dirty = True
        #: version-keyed sorted views per namespace (derived caches)
        self._pods_views: tuple[int, dict[str, list[Pod]]] = (-1, {})
        self._services_views: tuple[int, dict[str, list[Service]]] = (-1, {})

        # Default control-plane node so a fresh cluster is schedulable.
        if node_specs is None:
            self.add_node("node-0")
        else:
            for spec in node_specs:
                self.add_node(spec.name, dict(spec.labels) or None,
                              cpu_capacity=spec.cpu_capacity,
                              mem_capacity=spec.mem_capacity,
                              capacity_pods=spec.capacity_pods)

    # ------------------------------------------------------------------
    # bookkeeping helpers
    # ------------------------------------------------------------------
    def _mark_dirty(self, namespace: Optional[str] = None) -> None:
        """Flag unreconciled state and bump the mutation counters.

        ``namespace`` attributes the mutation for per-app fingerprints;
        namespace-less mutations (nodes) bump the cluster-global epoch
        instead, since they can affect scheduling everywhere.
        """
        self._dirty = True
        self.state_version += 1
        if namespace is not None:
            self._ns_marks[namespace] = self._ns_marks.get(namespace, 0) + 1
        else:
            self._reconcile_version += 1

    def state_version_for(self, namespace: str) -> tuple[int, int]:
        """Per-namespace state fingerprint: (namespace CRUD marks,
        cluster-global reconcile epoch).

        Changes whenever anything that could affect ``namespace``'s
        request execution changed: CRUD in the namespace itself, any
        reconcile (in-place edits always reconcile), or a namespace-less
        mutation.  CRUD-only mutations in *other* namespaces (secrets,
        configmaps — anything that doesn't trigger a reconcile) leave it
        untouched, which is what keys profile caches per app.
        """
        return (self._ns_marks.get(namespace, 0), self._reconcile_version)

    def _next_uid(self) -> str:
        n = self._uid_counter
        self._uid_counter += 1
        return f"uid-{n:06d}"

    def _next_ip(self) -> str:
        n = self._ip_counter
        self._ip_counter += 1
        return f"10.244.{(n >> 8) & 0xFF}.{n & 0xFF}"

    def record_event(
        self,
        namespace: str,
        kind: str,
        name: str,
        reason: str,
        message: str,
        event_type: str = "Normal",
    ) -> None:
        self.events.append(
            ClusterEvent(
                time=self.clock.now,
                namespace=namespace,
                kind=kind,
                name=name,
                reason=reason,
                message=message,
                event_type=event_type,
            )
        )

    def events_in(self, namespace: str) -> list[ClusterEvent]:
        return [e for e in self.events if e.namespace == namespace]

    # ------------------------------------------------------------------
    # namespaces & nodes
    # ------------------------------------------------------------------
    def create_namespace(self, name: str) -> None:
        self._mark_dirty(name)
        self.namespaces.add(name)

    def delete_namespace(self, name: str) -> None:
        """Delete a namespace and everything inside it."""
        if name not in self.namespaces:
            raise ResourceNotFound("Namespace", name)
        self._mark_dirty(name)
        self.namespaces.discard(name)
        for store in (
            self.pods,
            self.deployments,
            self.services,
            self.endpoints,
            self.configmaps,
            self.secrets,
        ):
            for key in [k for k in store if k[0] == name]:
                del store[key]

    def require_namespace(self, name: str) -> None:
        if name not in self.namespaces:
            raise ResourceNotFound("Namespace", name)

    def add_node(self, name: str, labels: Optional[dict[str, str]] = None,
                 *, cpu_capacity: float = 32000.0,
                 mem_capacity: float = 65536.0,
                 capacity_pods: int = 110) -> Node:
        self._mark_dirty()
        node = Node(meta=ObjectMeta(name=name, namespace=""),
                    labels=labels or {}, cpu_capacity=cpu_capacity,
                    mem_capacity=mem_capacity, capacity_pods=capacity_pods)
        self.nodes[name] = node
        return node

    def remove_node(self, name: str) -> None:
        if name not in self.nodes:
            raise ResourceNotFound("Node", name)
        self._mark_dirty()
        del self.nodes[name]
        self.reconcile()

    # ------------------------------------------------------------------
    # generic CRUD
    # ------------------------------------------------------------------
    def create_deployment(self, dep: Deployment) -> Deployment:
        self.require_namespace(dep.namespace)
        key = (dep.namespace, dep.name)
        if key in self.deployments:
            raise InvalidAction(f'deployment "{dep.name}" already exists')
        self._mark_dirty(dep.namespace)
        dep.meta.uid = self._next_uid()
        dep.meta.creation_time = self.clock.now
        self.deployments[key] = dep
        self.record_event(
            dep.namespace, "Deployment", dep.name, "ScalingReplicaSet",
            f"Scaled up replica set {dep.name} to {dep.replicas}",
        )
        self.reconcile()
        return dep

    def get_deployment(self, namespace: str, name: str) -> Deployment:
        try:
            return self.deployments[(namespace, name)]
        except KeyError:
            raise ResourceNotFound("Deployment", name, namespace) from None

    def delete_deployment(self, namespace: str, name: str) -> None:
        self.get_deployment(namespace, name)
        self._mark_dirty(namespace)
        del self.deployments[(namespace, name)]
        self.reconcile()

    def scale_deployment(self, namespace: str, name: str, replicas: int) -> Deployment:
        if replicas < 0:
            raise InvalidAction(f"replicas must be >= 0, got {replicas}")
        dep = self.get_deployment(namespace, name)
        self._mark_dirty(namespace)
        old = dep.replicas
        dep.replicas = replicas
        dep.generation += 1
        verb = "up" if replicas > old else "down"
        self.record_event(
            namespace, "Deployment", name, "ScalingReplicaSet",
            f"Scaled {verb} replica set {name} to {replicas}",
        )
        self.reconcile()
        return dep

    def create_service(self, svc: Service) -> Service:
        self.require_namespace(svc.namespace)
        key = (svc.namespace, svc.name)
        if key in self.services:
            raise InvalidAction(f'service "{svc.name}" already exists')
        self._mark_dirty(svc.namespace)
        svc.meta.uid = self._next_uid()
        svc.meta.creation_time = self.clock.now
        if not svc.cluster_ip:
            svc.cluster_ip = f"10.96.{self.rng.integers(0, 255)}.{self.rng.integers(2, 255)}"
        self.services[key] = svc
        self.reconcile()
        return svc

    def get_service(self, namespace: str, name: str) -> Service:
        try:
            return self.services[(namespace, name)]
        except KeyError:
            raise ResourceNotFound("Service", name, namespace) from None

    def delete_service(self, namespace: str, name: str) -> None:
        self.get_service(namespace, name)
        self._mark_dirty(namespace)
        del self.services[(namespace, name)]
        self.endpoints.pop((namespace, name), None)

    def get_endpoints(self, namespace: str, name: str) -> Endpoints:
        try:
            return self.endpoints[(namespace, name)]
        except KeyError:
            raise ResourceNotFound("Endpoints", name, namespace) from None

    def create_pod(self, pod: Pod) -> Pod:
        self.require_namespace(pod.namespace)
        key = (pod.namespace, pod.name)
        if key in self.pods:
            raise InvalidAction(f'pod "{pod.name}" already exists')
        self._mark_dirty(pod.namespace)
        pod.meta.uid = self._next_uid()
        pod.meta.creation_time = self.clock.now
        pod.start_time = self.clock.now
        self.pods[key] = pod
        self.reconcile()
        return pod

    def get_pod(self, namespace: str, name: str) -> Pod:
        try:
            return self.pods[(namespace, name)]
        except KeyError:
            raise ResourceNotFound("Pod", name, namespace) from None

    def delete_pod(self, namespace: str, name: str) -> None:
        pod = self.get_pod(namespace, name)
        self.record_event(namespace, "Pod", name, "Killing", f"Stopping container {name}")
        self._mark_dirty(namespace)
        del self.pods[(namespace, pod.name)]
        self.reconcile()

    def create_configmap(self, cm: ConfigMap) -> ConfigMap:
        self.require_namespace(cm.namespace)
        self._mark_dirty(cm.namespace)
        cm.meta.uid = self._next_uid()
        cm.meta.creation_time = self.clock.now
        self.configmaps[(cm.namespace, cm.name)] = cm
        return cm

    def get_configmap(self, namespace: str, name: str) -> ConfigMap:
        try:
            return self.configmaps[(namespace, name)]
        except KeyError:
            raise ResourceNotFound("ConfigMap", name, namespace) from None

    def create_secret(self, s: Secret) -> Secret:
        self.require_namespace(s.namespace)
        self._mark_dirty(s.namespace)
        s.meta.uid = self._next_uid()
        s.meta.creation_time = self.clock.now
        self.secrets[(s.namespace, s.name)] = s
        return s

    def get_secret(self, namespace: str, name: str) -> Secret:
        try:
            return self.secrets[(namespace, name)]
        except KeyError:
            raise ResourceNotFound("Secret", name, namespace) from None

    # ------------------------------------------------------------------
    # queries used by controllers and telemetry
    # ------------------------------------------------------------------
    def pods_in(self, namespace: str) -> list[Pod]:
        version, views = self._pods_views
        if version != self.pods.version:
            views = {}
            self._pods_views = (self.pods.version, views)
        view = views.get(namespace)
        if view is None:
            view = [p for (ns, _), p in sorted(self.pods.items())
                    if ns == namespace]
            views[namespace] = view
        return list(view)

    def deployments_in(self, namespace: str) -> list[Deployment]:
        return [d for (ns, _), d in sorted(self.deployments.items()) if ns == namespace]

    def services_in(self, namespace: str) -> list[Service]:
        version, views = self._services_views
        if version != self.services.version:
            views = {}
            self._services_views = (self.services.version, views)
        view = views.get(namespace)
        if view is None:
            view = [s for (ns, _), s in sorted(self.services.items())
                    if ns == namespace]
            views[namespace] = view
        return list(view)

    def pods_matching(self, namespace: str, selector: dict[str, str]) -> list[Pod]:
        if not selector:
            return []
        items = selector.items()
        out = []
        for p in self.pods_in(namespace):
            labels = p.meta.labels
            for k, v in items:
                if labels.get(k) != v:
                    break
            else:
                out.append(p)
        return out

    def pods_for_deployment(self, dep: Deployment) -> list[Pod]:
        return [
            p for p in self.pods_in(dep.namespace)
            if p.owner == dep.name and p.meta.matches(dep.selector)
        ]

    def service_reachable(self, namespace: str, name: str) -> bool:
        """True if a service exists and has at least one ready endpoint."""
        ep = self.endpoints.get((namespace, name))
        return ep is not None and ep.reachable

    # ------------------------------------------------------------------
    # reconciliation
    # ------------------------------------------------------------------
    def reconcile(self, rounds: int = 3) -> None:
        """Run the controllers to a fixed point.

        Three rounds suffice for every chain in this model (deployment →
        pod → schedule → endpoints); extra rounds are no-ops.

        Bumps ``state_version`` unconditionally: in-place object edits
        (service ports, pod crash-loop flags, deployment templates) don't
        go through CRUD, but every such mutation site reconciles — so the
        counter still observes them.
        """
        self.state_version += 1
        self._reconcile_version += 1
        for _ in range(rounds):
            changed = False
            changed |= self._deploy_ctrl.reconcile()
            changed |= self._scheduler.reconcile()
            changed |= self._endpoints_ctrl.reconcile()
            if not changed:
                break
        self._dirty = False

    def attach_autoscaler(self, autoscaler) -> None:
        """Register a :class:`~repro.kubesim.controllers.
        HorizontalAutoscaler` for evaluation on every :meth:`resync`."""
        if autoscaler not in self.autoscalers:
            self.autoscalers.append(autoscaler)

    def resync(self) -> None:
        """Periodic controller sync (the controller-manager's resync loop).

        Autoscalers evaluate first (they may scale deployments, which
        reconciles eagerly); then, every mutating CRUD method reconciles
        eagerly, so a converged cluster has nothing left to do — an O(1)
        no-op unless a mutation was made without a follow-up
        :meth:`reconcile` (the ``_dirty`` flag tracks that).  Scheduled
        as a recurring event by :class:`~repro.core.env.CloudEnvironment`.
        """
        for autoscaler in self.autoscalers:
            autoscaler.evaluate()
        if self._dirty:
            self.reconcile()
