"""A ``kubectl`` text facade over the simulated cluster.

Language agents issue raw command strings (``kubectl get pods -n ns``); this
module parses them and renders output formatted like the real CLI, including
its error messages — the paper's ACI exposes exactly this surface through
``exec_shell``.
"""

from __future__ import annotations

import json
import shlex
from typing import Callable, Optional

from repro.simcore import ResourceNotFound, InvalidAction
from repro.kubesim.cluster import Cluster
from repro.kubesim.objects import Deployment

LogSource = Callable[[str, str, int], str]
ExecHandler = Callable[[str, str, list[str]], str]
MetricsSource = Callable[[str], list[tuple[str, float, float]]]
#: () -> [(node, used mcores, cpu %, requested MiB, mem %, pods)]
NodeMetricsSource = Callable[[], list[tuple[str, float, float, float, float, int]]]


def format_age(seconds: float) -> str:
    """Render an age the way kubectl does (``42s``, ``5m``, ``2h``, ``3d``)."""
    s = max(int(seconds), 0)
    if s < 120:
        return f"{s}s"
    m = s // 60
    if m < 120:
        return f"{m}m"
    h = m // 60
    if h < 48:
        return f"{h}h"
    return f"{h // 24}d"


def _tabulate(headers: list[str], rows: list[list[str]]) -> str:
    """Left-aligned whitespace table in kubectl's style."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return "   ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(headers)] + [fmt(r) for r in rows]
    return "\n".join(lines)


class Kubectl:
    """Parses and executes kubectl command strings against a :class:`Cluster`.

    Parameters
    ----------
    cluster:
        The simulated cluster to operate on.
    log_source:
        Optional callback ``(namespace, pod, tail) -> str`` supplying pod
        logs (wired to the telemetry log store).
    exec_handler:
        Optional callback ``(namespace, pod, argv) -> str`` for
        ``kubectl exec`` (wired to the service runtime, e.g. mongo shell).
    metrics_source:
        Optional callback ``(namespace) -> [(pod, cpu_mcores, mem_mib)]``
        backing ``kubectl top pods``.
    node_metrics_source:
        Optional callback returning per-node utilization rows (wired to
        the resource plane's rollup).  When present, ``kubectl top
        nodes`` works and ``get nodes`` grows CPU%/MEM%/PODS columns.
    """

    def __init__(
        self,
        cluster: Cluster,
        log_source: Optional[LogSource] = None,
        exec_handler: Optional[ExecHandler] = None,
        metrics_source: Optional[MetricsSource] = None,
        node_metrics_source: Optional[NodeMetricsSource] = None,
    ) -> None:
        self.cluster = cluster
        self.log_source = log_source
        self.exec_handler = exec_handler
        self.metrics_source = metrics_source
        self.node_metrics_source = node_metrics_source

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(self, command: str) -> str:
        """Execute one kubectl command string; returns CLI-style output.

        Errors come back as ``Error from server`` / usage strings rather
        than exceptions, because that is the feedback a shell gives.
        """
        try:
            argv = shlex.split(command)
        except ValueError as e:
            return f"error: failed to parse command: {e}"
        if not argv:
            return "error: empty command"
        if argv[0] == "kubectl":
            argv = argv[1:]
        if not argv:
            return self._usage()
        verb = argv[0]
        handler = {
            "get": self._cmd_get,
            "describe": self._cmd_describe,
            "logs": self._cmd_logs,
            "delete": self._cmd_delete,
            "scale": self._cmd_scale,
            "patch": self._cmd_patch,
            "set": self._cmd_set,
            "rollout": self._cmd_rollout,
            "exec": self._cmd_exec,
            "top": self._cmd_top,
            "apply": self._cmd_apply,
            "edit": lambda a: "error: edit is interactive and not supported; use patch",
        }.get(verb)
        if handler is None:
            return f'error: unknown command "{verb}"\n{self._usage()}'
        try:
            return handler(argv[1:])
        except ResourceNotFound as e:
            return f"Error from server (NotFound): {e}"
        except InvalidAction as e:
            return f"error: {e}"

    def _usage(self) -> str:
        return (
            "kubectl controls the simulated Kubernetes cluster.\n"
            "Supported: get, describe, logs, delete, scale, patch, set image, "
            "rollout, exec, top"
        )

    # ------------------------------------------------------------------
    # flag helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _extract_flag(args: list[str], *names: str, default: Optional[str] = None):
        """Pop ``--flag value`` / ``--flag=value`` / ``-n value`` from args."""
        value = default
        out: list[str] = []
        i = 0
        while i < len(args):
            a = args[i]
            matched = False
            for name in names:
                if a == name:
                    if i + 1 < len(args):
                        value = args[i + 1]
                        i += 2
                        matched = True
                    else:
                        i += 1
                        matched = True
                    break
                if a.startswith(name + "="):
                    value = a.split("=", 1)[1]
                    i += 1
                    matched = True
                    break
            if not matched:
                out.append(a)
                i += 1
        args[:] = out
        return value

    def _namespace(self, args: list[str]) -> str:
        ns = self._extract_flag(args, "-n", "--namespace", default="default")
        return ns or "default"

    # ------------------------------------------------------------------
    # get
    # ------------------------------------------------------------------
    def _cmd_get(self, args: list[str]) -> str:
        args = list(args)
        ns = self._namespace(args)
        self._extract_flag(args, "-o", "--output")  # accepted, table only
        all_ns = "--all-namespaces" in args or "-A" in args
        args = [a for a in args if a not in ("--all-namespaces", "-A")]
        if not args:
            return "error: you must specify the type of resource to get"
        kind = args[0].lower()
        rest = args[1:]
        if "/" in kind:
            kind, name = kind.split("/", 1)
            rest = [name] + rest
        if kind in ("pod", "pods", "po"):
            return self._get_pods(ns, rest, all_ns)
        if kind in ("service", "services", "svc"):
            return self._get_services(ns, rest)
        if kind in ("deployment", "deployments", "deploy"):
            return self._get_deployments(ns, rest)
        if kind in ("endpoints", "ep"):
            return self._get_endpoints(ns, rest)
        if kind in ("event", "events"):
            return self._get_events(ns)
        if kind in ("node", "nodes"):
            return self._get_nodes()
        if kind in ("configmap", "configmaps", "cm"):
            return self._get_configmaps(ns, rest)
        if kind in ("namespace", "namespaces", "ns"):
            return self._get_namespaces()
        if kind in ("secret", "secrets"):
            return self._get_secrets(ns, rest)
        return f'error: the server doesn\'t have a resource type "{kind}"'

    def _get_pods(self, ns: str, rest: list[str], all_ns: bool) -> str:
        self.cluster.require_namespace(ns)
        if rest:
            pods = [self.cluster.get_pod(ns, rest[0])]
        elif all_ns:
            pods = [p for _, p in sorted(self.cluster.pods.items())]
        else:
            pods = self.cluster.pods_in(ns)
        if not pods:
            return f"No resources found in {ns} namespace."
        now = self.cluster.clock.now
        headers = ["NAME", "READY", "STATUS", "RESTARTS", "AGE"]
        if all_ns:
            headers = ["NAMESPACE"] + headers
        rows = []
        for p in pods:
            row = [
                p.name, p.ready_display(), p.status_display(),
                str(p.restart_count), format_age(now - p.meta.creation_time),
            ]
            if all_ns:
                row = [p.namespace] + row
            rows.append(row)
        return _tabulate(headers, rows)

    def _get_services(self, ns: str, rest: list[str]) -> str:
        self.cluster.require_namespace(ns)
        svcs = [self.cluster.get_service(ns, rest[0])] if rest else self.cluster.services_in(ns)
        if not svcs:
            return f"No resources found in {ns} namespace."
        now = self.cluster.clock.now
        rows = []
        for s in svcs:
            ports = ",".join(f"{p.port}/TCP" for p in s.ports) or "<none>"
            rows.append([
                s.name, s.service_type, s.cluster_ip, "<none>", ports,
                format_age(now - s.meta.creation_time),
            ])
        return _tabulate(
            ["NAME", "TYPE", "CLUSTER-IP", "EXTERNAL-IP", "PORT(S)", "AGE"], rows
        )

    def _get_deployments(self, ns: str, rest: list[str]) -> str:
        self.cluster.require_namespace(ns)
        deps = [self.cluster.get_deployment(ns, rest[0])] if rest else self.cluster.deployments_in(ns)
        if not deps:
            return f"No resources found in {ns} namespace."
        now = self.cluster.clock.now
        rows = []
        for d in deps:
            pods = self.cluster.pods_for_deployment(d)
            ready = sum(1 for p in pods if p.ready and not p.crash_looping)
            rows.append([
                d.name, f"{ready}/{d.replicas}", str(len(pods)), str(ready),
                format_age(now - d.meta.creation_time),
            ])
        return _tabulate(["NAME", "READY", "UP-TO-DATE", "AVAILABLE", "AGE"], rows)

    def _get_endpoints(self, ns: str, rest: list[str]) -> str:
        self.cluster.require_namespace(ns)
        if rest:
            eps = [self.cluster.get_endpoints(ns, rest[0])]
        else:
            eps = [e for (n, _), e in sorted(self.cluster.endpoints.items()) if n == ns]
        if not eps:
            return f"No resources found in {ns} namespace."
        now = self.cluster.clock.now
        rows = []
        for e in eps:
            addrs = ",".join(f"{a.ip}:{a.port}" for a in e.addresses[:3])
            if len(e.addresses) > 3:
                addrs += f" + {len(e.addresses) - 3} more..."
            rows.append([e.meta.name, addrs or "<none>",
                         format_age(now - e.meta.creation_time)])
        return _tabulate(["NAME", "ENDPOINTS", "AGE"], rows)

    def _get_events(self, ns: str) -> str:
        self.cluster.require_namespace(ns)
        events = self.cluster.events_in(ns)
        if not events:
            return f"No resources found in {ns} namespace."
        now = self.cluster.clock.now
        rows = [
            [
                format_age(now - e.time), e.event_type, e.reason,
                f"{e.kind.lower()}/{e.name}", e.message,
            ]
            for e in events[-40:]
        ]
        return _tabulate(["LAST SEEN", "TYPE", "REASON", "OBJECT", "MESSAGE"], rows)

    def _get_nodes(self) -> str:
        now = self.cluster.clock.now
        headers = ["NAME", "STATUS", "ROLES", "AGE", "VERSION"]
        rows = [
            [n.name, "Ready" if n.ready else "NotReady", "<none>",
             format_age(now - n.meta.creation_time), "v1.29.0-sim"]
            for n in sorted(self.cluster.nodes.values(), key=lambda n: n.name)
        ]
        if self.node_metrics_source is not None:
            # utilization-aware columns, only when the resource plane is
            # wired in (seed environments keep byte-identical output)
            headers += ["CPU%", "MEM%", "PODS"]
            usage = {u[0]: u for u in self.node_metrics_source()}
            for row in rows:
                u = usage.get(row[0])
                row += ([f"{u[2]:.0f}%", f"{u[4]:.0f}%", str(u[5])]
                        if u else ["<unknown>", "<unknown>", "0"])
        return _tabulate(headers, rows)

    def _get_configmaps(self, ns: str, rest: list[str]) -> str:
        self.cluster.require_namespace(ns)
        if rest:
            cms = [self.cluster.get_configmap(ns, rest[0])]
        else:
            cms = [c for (n, _), c in sorted(self.cluster.configmaps.items()) if n == ns]
        if not cms:
            return f"No resources found in {ns} namespace."
        now = self.cluster.clock.now
        rows = [
            [c.name, str(len(c.data)), format_age(now - c.meta.creation_time)]
            for c in cms
        ]
        return _tabulate(["NAME", "DATA", "AGE"], rows)

    def _get_secrets(self, ns: str, rest: list[str] | None = None) -> str:
        self.cluster.require_namespace(ns)
        if rest:
            # Named secret: render its data (clear text — this is a simulator).
            s = self.cluster.get_secret(ns, rest[0])
            lines = [f"Name:         {s.name}", f"Namespace:    {ns}",
                     "Type:         Opaque", "", "Data", "===="]
            lines += [f"{k}:  {v}" for k, v in sorted(s.data.items())]
            return "\n".join(lines)
        secrets = [s for (n, _), s in sorted(self.cluster.secrets.items()) if n == ns]
        if not secrets:
            return f"No resources found in {ns} namespace."
        now = self.cluster.clock.now
        rows = [
            [s.name, "Opaque", str(len(s.data)), format_age(now - s.meta.creation_time)]
            for s in secrets
        ]
        return _tabulate(["NAME", "TYPE", "DATA", "AGE"], rows)

    def _get_namespaces(self) -> str:
        rows = [[ns, "Active", "1h"] for ns in sorted(self.cluster.namespaces)]
        return _tabulate(["NAME", "STATUS", "AGE"], rows)

    # ------------------------------------------------------------------
    # describe
    # ------------------------------------------------------------------
    def _cmd_describe(self, args: list[str]) -> str:
        args = list(args)
        ns = self._namespace(args)
        if not args:
            return "error: you must specify the type of resource to describe"
        kind = args[0].lower()
        rest = args[1:]
        if "/" in kind:
            kind, name = kind.split("/", 1)
            rest = [name] + rest
        if not rest:
            return "error: you must specify a resource name"
        name = rest[0]
        if kind in ("pod", "pods", "po"):
            return self._describe_pod(ns, name)
        if kind in ("service", "services", "svc"):
            return self._describe_service(ns, name)
        if kind in ("deployment", "deployments", "deploy"):
            return self._describe_deployment(ns, name)
        return f'error: describe not supported for resource type "{kind}"'

    def _describe_pod(self, ns: str, name: str) -> str:
        pod = self.cluster.get_pod(ns, name)
        lines = [
            f"Name:             {pod.name}",
            f"Namespace:        {pod.namespace}",
            f"Node:             {pod.bound_node or '<none>'}",
            f"Labels:           " + ",".join(f"{k}={v}" for k, v in sorted(pod.meta.labels.items())),
            f"Status:           {pod.status_display()}",
            f"Restart Count:    {pod.restart_count}",
        ]
        if pod.node_name:
            lines.append(f"Requested Node:   {pod.node_name}")
        lines.append("Containers:")
        for c in pod.containers:
            lines.append(f"  {c.name}:")
            lines.append(f"    Image:  {c.image}")
            ports = ", ".join(str(p.container_port) for p in c.ports) or "<none>"
            lines.append(f"    Ports:  {ports}")
        events = [
            e for e in self.cluster.events_in(ns) if e.kind == "Pod" and e.name == name
        ]
        lines.append("Events:")
        if events:
            now = self.cluster.clock.now
            for e in events[-8:]:
                lines.append(
                    f"  {e.event_type}  {e.reason}  {format_age(now - e.time)}  {e.message}"
                )
        else:
            lines.append("  <none>")
        return "\n".join(lines)

    def _describe_service(self, ns: str, name: str) -> str:
        svc = self.cluster.get_service(ns, name)
        ep = self.cluster.endpoints.get((ns, name))
        addrs = ",".join(f"{a.ip}:{a.port}" for a in ep.addresses) if ep and ep.addresses else "<none>"
        lines = [
            f"Name:              {svc.name}",
            f"Namespace:         {svc.namespace}",
            f"Selector:          " + ",".join(f"{k}={v}" for k, v in sorted(svc.selector.items())),
            f"Type:              {svc.service_type}",
            f"IP:                {svc.cluster_ip}",
        ]
        for p in svc.ports:
            lines.append(f"Port:              {p.name or '<unset>'}  {p.port}/TCP")
            lines.append(f"TargetPort:        {p.target_port}/TCP")
        lines.append(f"Endpoints:         {addrs}")
        return "\n".join(lines)

    def _describe_deployment(self, ns: str, name: str) -> str:
        dep = self.cluster.get_deployment(ns, name)
        pods = self.cluster.pods_for_deployment(dep)
        ready = sum(1 for p in pods if p.ready and not p.crash_looping)
        lines = [
            f"Name:                   {dep.name}",
            f"Namespace:              {dep.namespace}",
            f"Selector:               " + ",".join(f"{k}={v}" for k, v in sorted(dep.selector.items())),
            f"Replicas:               {dep.replicas} desired | {len(pods)} total | {ready} available",
            "Pod Template:",
        ]
        for c in dep.template.containers:
            lines.append(f"  Container {c.name}: image={c.image}, "
                         f"ports={[p.container_port for p in c.ports]}")
        if dep.template.node_name:
            lines.append(f"  NodeName: {dep.template.node_name}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # logs / exec / top
    # ------------------------------------------------------------------
    def _cmd_logs(self, args: list[str]) -> str:
        args = list(args)
        ns = self._namespace(args)
        tail = self._extract_flag(args, "--tail", default="50")
        args = [a for a in args if not a.startswith("-")]
        if not args:
            return "error: expected 'logs POD_NAME'"
        name = args[0]
        pod = self.cluster.get_pod(ns, name)  # raises NotFound appropriately
        if self.log_source is None:
            return ""
        try:
            n = int(tail)
        except (TypeError, ValueError):
            n = 50
        return self.log_source(ns, pod.name, n)

    def _cmd_exec(self, args: list[str]) -> str:
        args = list(args)
        ns = self._namespace(args)
        self._extract_flag(args, "-c", "--container")
        args = [a for a in args if a not in ("-it", "-i", "-t", "--stdin", "--tty")]
        if "--" in args:
            sep = args.index("--")
            target, argv = args[:sep], args[sep + 1:]
        else:
            target, argv = args[:1], args[1:]
        if not target:
            return "error: expected 'exec POD_NAME -- COMMAND'"
        pod = self.cluster.get_pod(ns, target[0])
        if not argv:
            return "error: you must specify at least one command for the container"
        if self.exec_handler is None:
            return f"error: exec not available in pod {pod.name}"
        return self.exec_handler(ns, pod.name, argv)

    def _cmd_top(self, args: list[str]) -> str:
        args = list(args)
        ns = self._namespace(args)
        if args and args[0] in ("node", "nodes", "no"):
            return self._top_nodes()
        if not args or args[0] not in ("pod", "pods", "po"):
            return "error: top supports 'top pods' and 'top nodes'"
        if self.metrics_source is None:
            return "error: Metrics API not available"
        rows = [
            [pod, f"{int(cpu)}m", f"{int(mem)}Mi"]
            for pod, cpu, mem in self.metrics_source(ns)
        ]
        if not rows:
            return f"No resources found in {ns} namespace."
        return _tabulate(["NAME", "CPU(cores)", "MEMORY(bytes)"], rows)

    def _top_nodes(self) -> str:
        if self.node_metrics_source is None:
            return "error: Metrics API not available"
        rows = [
            [name, f"{int(cpu)}m", f"{pct:.0f}%", f"{int(mem)}Mi",
             f"{mem_pct:.0f}%", str(pods)]
            for name, cpu, pct, mem, mem_pct, pods
            in self.node_metrics_source()
        ]
        return _tabulate(
            ["NAME", "CPU(cores)", "CPU%", "MEMORY(bytes)", "MEMORY%",
             "PODS"], rows)

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def _cmd_delete(self, args: list[str]) -> str:
        args = list(args)
        ns = self._namespace(args)
        self._extract_flag(args, "--grace-period")
        args = [a for a in args if a != "--force"]
        if not args:
            return "error: you must specify the type of resource to delete"
        kind = args[0].lower()
        rest = args[1:]
        if "/" in kind:
            kind, name = kind.split("/", 1)
            rest = [name] + rest
        if not rest:
            return "error: you must specify a resource name"
        name = rest[0]
        if kind in ("pod", "pods", "po"):
            self.cluster.delete_pod(ns, name)
            return f'pod "{name}" deleted'
        if kind in ("deployment", "deployments", "deploy"):
            self.cluster.delete_deployment(ns, name)
            return f'deployment.apps "{name}" deleted'
        if kind in ("service", "services", "svc"):
            self.cluster.delete_service(ns, name)
            return f'service "{name}" deleted'
        return f'error: delete not supported for resource type "{kind}"'

    def _cmd_scale(self, args: list[str]) -> str:
        args = list(args)
        ns = self._namespace(args)
        replicas = self._extract_flag(args, "--replicas")
        if replicas is None:
            return "error: --replicas is required"
        if not args:
            return "error: expected 'scale deployment NAME --replicas=N'"
        kind = args[0].lower()
        rest = args[1:]
        if "/" in kind:
            kind, name = kind.split("/", 1)
        elif rest:
            name = rest[0]
        else:
            return "error: you must specify a resource name"
        if kind not in ("deployment", "deployments", "deploy"):
            return f'error: scale not supported for resource type "{kind}"'
        try:
            n = int(replicas)
        except ValueError:
            return f'error: invalid replicas value "{replicas}"'
        self.cluster.scale_deployment(ns, name, n)
        return f"deployment.apps/{name} scaled"

    def _cmd_patch(self, args: list[str]) -> str:
        args = list(args)
        ns = self._namespace(args)
        patch_str = self._extract_flag(args, "-p", "--patch")
        self._extract_flag(args, "--type")
        if patch_str is None:
            return "error: must specify -p to patch"
        if not args:
            return "error: you must specify the type of resource to patch"
        kind = args[0].lower()
        rest = args[1:]
        if "/" in kind:
            kind, name = kind.split("/", 1)
        elif rest:
            name = rest[0]
        else:
            return "error: you must specify a resource name"
        try:
            patch = json.loads(patch_str)
        except json.JSONDecodeError as e:
            return f"error: unable to parse patch: {e}"
        if kind in ("service", "services", "svc"):
            return self._patch_service(ns, name, patch)
        if kind in ("deployment", "deployments", "deploy"):
            return self._patch_deployment(ns, name, patch)
        return f'error: patch not supported for resource type "{kind}"'

    def _patch_service(self, ns: str, name: str, patch: dict) -> str:
        svc = self.cluster.get_service(ns, name)
        spec = patch.get("spec", {})
        ports = spec.get("ports")
        if ports:
            for entry in ports:
                port = entry.get("port")
                tp = entry.get("targetPort")
                for sp in svc.ports:
                    if port is None or sp.port == port:
                        if tp is not None:
                            sp.target_port = int(tp)
        selector = spec.get("selector")
        if selector is not None:
            svc.selector = dict(selector)
        self.cluster.reconcile()
        return f"service/{name} patched"

    def _patch_deployment(self, ns: str, name: str, patch: dict) -> str:
        dep = self.cluster.get_deployment(ns, name)
        spec = patch.get("spec", {})
        if "replicas" in spec:
            self.cluster.scale_deployment(ns, name, int(spec["replicas"]))
        tmpl = spec.get("template", {}).get("spec", {})
        if "nodeName" in tmpl:
            dep.template.node_name = tmpl["nodeName"] or None
            self._restamp_pods(dep)
        for c_patch in tmpl.get("containers", []):
            for c in dep.template.containers:
                if c.name == c_patch.get("name") and "image" in c_patch:
                    c.image = c_patch["image"]
            self._restamp_pods(dep)
        self.cluster.reconcile()
        return f"deployment.apps/{name} patched"

    def _restamp_pods(self, dep: Deployment) -> None:
        """Delete a deployment's pods so the controller recreates them from
        the (just-updated) template — a simplified rolling update."""
        for pod in self.cluster.pods_for_deployment(dep):
            del self.cluster.pods[(pod.namespace, pod.name)]
        dep.generation += 1
        self.cluster.reconcile()

    def _cmd_set(self, args: list[str]) -> str:
        args = list(args)
        ns = self._namespace(args)
        if not args or args[0] != "image":
            return "error: set supports 'set image'"
        rest = args[1:]
        if not rest:
            return "error: expected 'set image deployment/NAME CONTAINER=IMAGE'"
        target = rest[0]
        if "/" not in target:
            return "error: expected resource in KIND/NAME form"
        kind, name = target.split("/", 1)
        if kind.lower() not in ("deployment", "deployments", "deploy"):
            return f'error: set image not supported for "{kind}"'
        dep = self.cluster.get_deployment(ns, name)
        changed = False
        for assignment in rest[1:]:
            if "=" not in assignment:
                return f'error: invalid image assignment "{assignment}"'
            cname, image = assignment.split("=", 1)
            for c in dep.template.containers:
                if c.name == cname or cname == "*":
                    c.image = image
                    changed = True
        if not changed:
            return "error: no matching container found"
        self._restamp_pods(dep)
        return f"deployment.apps/{name} image updated"

    def _cmd_rollout(self, args: list[str]) -> str:
        args = list(args)
        ns = self._namespace(args)
        if not args:
            return "error: expected 'rollout restart|status deployment/NAME'"
        sub = args[0]
        rest = args[1:]
        if not rest:
            return "error: you must specify a resource"
        target = rest[0]
        if "/" in target:
            kind, name = target.split("/", 1)
        elif len(rest) >= 2:
            kind, name = rest[0], rest[1]
        else:
            return "error: you must specify a resource name"
        if kind.lower() not in ("deployment", "deployments", "deploy"):
            return f'error: rollout not supported for "{kind}"'
        dep = self.cluster.get_deployment(ns, name)
        if sub == "restart":
            self._restamp_pods(dep)
            return f"deployment.apps/{name} restarted"
        if sub == "status":
            pods = self.cluster.pods_for_deployment(dep)
            ready = sum(1 for p in pods if p.ready and not p.crash_looping)
            if ready >= dep.replicas:
                return f'deployment "{name}" successfully rolled out'
            return (f"Waiting for deployment \"{name}\" rollout to finish: "
                    f"{ready} of {dep.replicas} updated replicas are available...")
        return f'error: unknown rollout subcommand "{sub}"'

    def _cmd_apply(self, args: list[str]) -> str:
        return (
            "error: apply -f requires a manifest file; this environment "
            "supports imperative commands (scale, patch, set image, delete)"
        )
