"""Virtual clock for the simulated cloud environment."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimClock:
    """A monotonically advancing virtual clock.

    Time is measured in seconds since the start of the simulation.  The
    clock only moves when :meth:`advance` (relative) or :meth:`advance_to`
    (absolute) is called, so components never race each other.

    Parameters
    ----------
    start:
        Initial timestamp in seconds.  Defaults to 0.
    """

    start: float = 0.0
    _now: float = field(init=False)

    def __post_init__(self) -> None:
        self._now = float(self.start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move the clock forward by ``dt`` seconds and return the new time.

        Raises
        ------
        ValueError
            If ``dt`` is negative — virtual time never flows backwards.
        """
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt!r}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock to absolute time ``t`` (must be >= now)."""
        if t < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, requested {t}"
            )
        self._now = float(t)
        return self._now
