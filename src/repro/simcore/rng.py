"""Deterministic, named random streams.

Each subsystem derives its own stream from a root seed and a label, so adding
randomness to one component never perturbs another (a classic simulation
reproducibility pitfall).
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a stable 63-bit child seed from ``(root_seed, label)``."""
    digest = hashlib.sha256(f"{root_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


class RngStream:
    """A labelled wrapper over :class:`numpy.random.Generator`.

    Provides the handful of distributions the simulators need, plus
    convenience helpers with validation.
    """

    def __init__(self, root_seed: int, label: str) -> None:
        self.label = label
        self.seed = derive_seed(root_seed, label)
        self._gen = np.random.default_rng(self.seed)

    def child(self, label: str) -> "RngStream":
        """Derive a sub-stream; children of the same parent are independent."""
        return RngStream(self.seed, f"{self.label}/{label}")

    @property
    def generator(self) -> np.random.Generator:
        """The underlying :class:`numpy.random.Generator` — the bridge the
        vectorized sampling kernels draw through.

        Scalar helpers on this stream and vector draws on the generator
        consume the *same* bit stream, so a caller that mixes them is
        deterministic as long as its own call sequence is; engines that
        draw in different shapes (scalar loop vs fused array) produce
        different — but individually reproducible — sample sequences.
        """
        return self._gen

    # -- distributions -------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._gen.uniform(low, high))

    def random(self) -> float:
        return float(self._gen.random())

    def lognormal(self, mean: float, sigma: float) -> float:
        """Sample a lognormal; used for per-hop RPC latency."""
        return float(self._gen.lognormal(mean, sigma))

    def exponential(self, scale: float) -> float:
        if scale <= 0:
            raise ValueError(f"exponential scale must be > 0, got {scale}")
        return float(self._gen.exponential(scale))

    def normal(self, loc: float, scale: float) -> float:
        return float(self._gen.normal(loc, scale))

    def integers(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def choice(self, seq, p=None):
        """Pick one element of ``seq`` (optionally weighted by ``p``)."""
        if len(seq) == 0:
            raise ValueError("cannot choose from an empty sequence")
        idx = self._gen.choice(len(seq), p=p)
        return seq[int(idx)]

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"bernoulli p must be in [0,1], got {p}")
        return bool(self._gen.random() < p)

    def binomial(self, n: int, p: float) -> int:
        """Number of successes in ``n`` Bernoulli(p) trials."""
        if n < 0:
            raise ValueError(f"binomial n must be >= 0, got {n}")
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"binomial p must be in [0,1], got {p}")
        return int(self._gen.binomial(n, p))

    def multinomial(self, n: int, pvals) -> list[int]:
        """Split ``n`` trials across categories with probabilities ``pvals``."""
        if n < 0:
            raise ValueError(f"multinomial n must be >= 0, got {n}")
        return [int(c) for c in self._gen.multinomial(n, pvals)]

    def shuffle(self, seq: list) -> list:
        """Return a new shuffled copy of ``seq``."""
        out = list(seq)
        self._gen.shuffle(out)
        return out
