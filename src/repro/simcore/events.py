"""A small discrete-event queue used by workload generation and controllers."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.simcore.clock import SimClock


@dataclass(order=True)
class ScheduledEvent:
    """An event scheduled at a virtual timestamp.

    Ordered by ``(time, seq)`` so that events at identical timestamps fire
    in insertion order (deterministic replay).
    """

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Min-heap of :class:`ScheduledEvent` driven by a shared :class:`SimClock`.

    Example
    -------
    >>> clock = SimClock()
    >>> q = EventQueue(clock)
    >>> fired = []
    >>> _ = q.schedule_at(5.0, lambda: fired.append("a"))
    >>> q.run_until(10.0)
    1
    >>> fired
    ['a']
    """

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule_at(
        self, time: float, action: Callable[[], Any], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: now={self.clock.now}, t={time}"
            )
        ev = ScheduledEvent(time=time, seq=next(self._seq), action=action, label=label)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_in(
        self, delay: float, action: Callable[[], Any], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``action`` ``delay`` seconds from now."""
        return self.schedule_at(self.clock.now + delay, action, label=label)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> Optional[ScheduledEvent]:
        """Pop and fire the next live event, advancing the clock to it."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self.clock.advance_to(ev.time)
            ev.action()
            return ev
        return None

    def run_until(self, t: float) -> int:
        """Fire every event scheduled at or before ``t``; returns count fired.

        The clock ends at exactly ``t`` even if the last event fired earlier.
        """
        fired = 0
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > t:
                break
            self.step()
            fired += 1
        if self.clock.now < t:
            self.clock.advance_to(t)
        return fired
