"""The discrete-event queue — the spine of the environment kernel.

Workload arrival ticks, telemetry scrapes, periodic controller resync and
scheduled fault timelines are all :class:`ScheduledEvent`\\ s on one queue
over the shared :class:`SimClock`, so virtual time jumps from event to
event instead of being ticked through.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.simcore.clock import SimClock


@dataclass(order=True)
class ScheduledEvent:
    """An event scheduled at a virtual timestamp.

    Ordered by ``(time, seq)`` so that events at identical timestamps fire
    in insertion order (deterministic replay).
    """

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)
    #: a passive action provably does not mutate workload/driver state
    #: (e.g. a converged-cluster resync), so idle fast-forwarding may
    #: plan across its fire time; it still fires at that time
    passive: bool = field(default=False, compare=False)
    #: back-reference so cancellation can trigger lazy heap compaction
    queue: Optional["EventQueue"] = field(default=None, compare=False,
                                          repr=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped.

        Cancelling an event that already fired (or was already cancelled)
        is a no-op, so teardown code can blanket-cancel a timeline."""
        if not self.cancelled and not self.fired:
            self.cancelled = True
            if self.queue is not None:
                self.queue._note_cancelled(self)


class Watch:
    """A pending, externally-evaluated condition attached to a queue.

    Unlike a :class:`ScheduledEvent`, a watch has no fire *time*: something
    else (the telemetry collector, at scrape time) evaluates its condition
    and calls :meth:`resolve` when it trips.  Registering the watch on the
    :class:`EventQueue` makes it count as live activity, so planners that
    coalesce or fast-forward spans (the aggregate workload driver, the idle
    fast-forward) know the environment still has a pending trigger and must
    not plan past the next evaluation point (the next telemetry scrape).

    Lifecycle: pending → fired (via :meth:`resolve`) or cancelled (via
    :meth:`cancel`); :meth:`rearm` returns a fired/cancelled watch to
    pending and re-registers it — the re-arm hook repeating triggers use.
    """

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.cancelled = False
        self.fired = False
        self.queue: Optional["EventQueue"] = None

    @property
    def pending(self) -> bool:
        return not self.fired and not self.cancelled

    def cancel(self) -> None:
        """Withdraw the watch; cancelling a fired/cancelled watch is a no-op."""
        if self.pending:
            self.cancelled = True
            if self.queue is not None:
                self.queue._watch_done(self)

    def resolve(self) -> None:
        """Mark the condition as tripped (called by the evaluator)."""
        if self.pending:
            self.fired = True
            if self.queue is not None:
                self.queue._watch_done(self)

    def rearm(self) -> None:
        """Reset to pending and re-register on the queue it was attached to."""
        if not self.pending:
            self.fired = False
            self.cancelled = False
            if self.queue is not None:
                self.queue.attach_watch(self)


class RecurringEvent:
    """Handle for a self-rescheduling event created by
    :meth:`EventQueue.schedule_every`; :meth:`cancel` stops the series.

    The handle itself carries the rescheduling state (queue, action,
    interval) and the scheduled action is its bound :meth:`_fire` — not a
    closure — so a queue full of recurring series pickles cleanly for
    environment snapshots.
    """

    def __init__(self, queue: "EventQueue", action: Callable[[], Any],
                 interval: float, label: str = "",
                 passive: bool = False) -> None:
        self.queue = queue
        self.action = action
        self.interval = interval
        self.label = label
        self.passive = passive
        self.cancelled = False
        self.fired = 0
        #: the currently scheduled occurrence
        self.event: Optional[ScheduledEvent] = None

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fired += 1
        self.action()
        if not self.cancelled:
            self.event = self.queue.schedule_in(
                self.interval, self._fire, label=self.label,
                passive=self.passive)

    def cancel(self) -> None:
        self.cancelled = True
        if self.event is not None:
            self.event.cancel()


class EventQueue:
    """Min-heap of :class:`ScheduledEvent` driven by a shared :class:`SimClock`.

    Cancelled events stay in the heap until popped, but the queue compacts
    itself whenever they outnumber the live entries, so long-lived queues
    with churny timelines (flapping faults, rescheduled scrapes) don't
    accumulate dead weight.

    Example
    -------
    >>> clock = SimClock()
    >>> q = EventQueue(clock)
    >>> fired = []
    >>> _ = q.schedule_at(5.0, lambda: fired.append("a"))
    >>> q.run_until(10.0)
    1
    >>> fired
    ['a']
    """

    #: below this heap size compaction isn't worth the heapify
    _COMPACT_MIN = 16

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._heap: list[ScheduledEvent] = []
        #: plain int (not itertools.count) so queue state pickles for
        #: environment snapshots
        self._seq = 0
        self._cancelled = 0
        #: live (not cancelled, not fired) non-passive events — lets
        #: ``next_active_time`` answer None in O(1), the common case for
        #: idle fast-forwarding and aggregate-span planning where only a
        #: passive resync remains scheduled
        self._live_nonpassive = 0
        #: pending externally-evaluated conditions (see :class:`Watch`) —
        #: timeless, so they never appear in ``next_active_time``; planners
        #: consult ``pending_watch_count`` instead and bound their spans by
        #: the next evaluation point (the next telemetry scrape)
        self._watches: list[Watch] = []

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    # -- watch registry ------------------------------------------------
    def attach_watch(self, watch: Watch) -> Watch:
        """Register a pending :class:`Watch` as live queue activity."""
        if not watch.pending:
            raise ValueError(f"cannot attach a resolved watch {watch.label!r}")
        watch.queue = self
        if watch not in self._watches:
            self._watches.append(watch)
        return watch

    def _watch_done(self, watch: Watch) -> None:
        try:
            self._watches.remove(watch)
        except ValueError:
            pass

    @property
    def pending_watch_count(self) -> int:
        """Number of live watches — nonzero means a trigger may still fire
        at any future scrape, so span planners must stay scrape-bounded."""
        return len(self._watches)

    # -- cancellation bookkeeping --------------------------------------
    def _note_cancelled(self, ev: ScheduledEvent) -> None:
        if not ev.passive:
            self._live_nonpassive -= 1
        self._cancelled += 1
        if self._cancelled * 2 > len(self._heap) \
                and len(self._heap) >= self._COMPACT_MIN:
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def _pop_cancelled_head(self) -> None:
        heapq.heappop(self._heap)
        if self._cancelled:
            self._cancelled -= 1

    # -- scheduling ----------------------------------------------------
    def schedule_at(
        self, time: float, action: Callable[[], Any], label: str = "",
        passive: bool = False,
    ) -> ScheduledEvent:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: now={self.clock.now}, t={time}"
            )
        seq = self._seq
        self._seq += 1
        ev = ScheduledEvent(time=time, seq=seq, action=action,
                            label=label, passive=passive, queue=self)
        heapq.heappush(self._heap, ev)
        if not passive:
            self._live_nonpassive += 1
        return ev

    def schedule_in(
        self, delay: float, action: Callable[[], Any], label: str = "",
        passive: bool = False,
    ) -> ScheduledEvent:
        """Schedule ``action`` ``delay`` seconds from now."""
        return self.schedule_at(self.clock.now + delay, action, label=label,
                                passive=passive)

    def schedule_every(
        self, interval: float, action: Callable[[], Any], label: str = "",
        first_at: Optional[float] = None, passive: bool = False,
    ) -> RecurringEvent:
        """Schedule ``action`` every ``interval`` virtual seconds.

        The first occurrence fires at ``first_at`` (default: one interval
        from now); each firing schedules the next.  Returns a
        :class:`RecurringEvent` whose ``cancel()`` stops the series.
        """
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        handle = RecurringEvent(self, action, interval, label=label,
                                passive=passive)
        start = self.clock.now + interval if first_at is None else first_at
        handle.event = self.schedule_at(start, handle._fire, label=label,
                                        passive=passive)
        return handle

    # -- execution -----------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            self._pop_cancelled_head()
        return self._heap[0].time if self._heap else None

    def next_active_time(self) -> Optional[float]:
        """Timestamp of the next live **non-passive** event, if any.

        The idle fast-forward uses this as its planning horizon: passive
        events (converged-cluster resyncs) cannot change what the workload
        would do, so skipping *past* their fire time is safe — they still
        fire at it.  O(1) when no live non-passive event exists (the
        common planning case); otherwise a linear scan — the queue holds
        a handful of live entries (tick chain + timelines), not thousands.
        """
        if self._live_nonpassive <= 0:
            return None
        times = [e.time for e in self._heap
                 if not e.cancelled and not e.passive]
        return min(times) if times else None

    def step(self) -> Optional[ScheduledEvent]:
        """Pop and fire the next live event, advancing the clock to it.

        An overdue event (scheduled before ``clock.now`` — possible when
        something advanced the shared clock without running the queue,
        e.g. the legacy ``run_for`` tick loop) fires immediately at the
        current time rather than moving the clock backwards."""
        while self._heap:
            if self._heap[0].cancelled:
                self._pop_cancelled_head()
                continue
            ev = heapq.heappop(self._heap)
            ev.fired = True
            if not ev.passive:
                self._live_nonpassive -= 1
            if ev.time > self.clock.now:
                self.clock.advance_to(ev.time)
            ev.action()
            return ev
        return None

    def run_until(self, t: float) -> int:
        """Fire every event scheduled at or before ``t``; returns count fired.

        The clock ends at exactly ``t`` even if the last event fired earlier.
        """
        fired = 0
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > t:
                break
            self.step()
            fired += 1
        if self.clock.now < t:
            self.clock.advance_to(t)
        return fired

    def run_for(self, seconds: float) -> int:
        """Fire every event in the next ``seconds`` of virtual time."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        return self.run_until(self.clock.now + seconds)
