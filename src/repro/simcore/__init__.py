"""Simulation core: virtual time, seeded randomness, discrete events.

Every other subsystem (the Kubernetes simulator, the service runtime, the
workload generator, telemetry) shares a single :class:`SimClock` so that the
whole environment advances on one coherent virtual timeline.  This makes
benchmark runs deterministic and fast: a 10-minute incident simulates in
milliseconds of wall time.
"""

from repro.simcore.clock import SimClock
from repro.simcore.events import EventQueue, RecurringEvent, ScheduledEvent, Watch
from repro.simcore.rng import RngStream, derive_seed
from repro.simcore.errors import (
    SimError,
    ResourceNotFound,
    InvalidAction,
    PolicyViolation,
)

__all__ = [
    "SimClock",
    "EventQueue",
    "RecurringEvent",
    "ScheduledEvent",
    "Watch",
    "RngStream",
    "derive_seed",
    "SimError",
    "ResourceNotFound",
    "InvalidAction",
    "PolicyViolation",
]
