"""Shared exception taxonomy for the simulated environment."""

from __future__ import annotations


class SimError(Exception):
    """Base class for every error raised by the simulated cloud."""


class ResourceNotFound(SimError):
    """A named resource (pod, service, namespace, ...) does not exist."""

    def __init__(self, kind: str, name: str, namespace: str | None = None):
        self.kind = kind
        self.name = name
        self.namespace = namespace
        where = f' in namespace "{namespace}"' if namespace else ""
        super().__init__(f'{kind} "{name}" not found{where}')


class InvalidAction(SimError):
    """A syntactically or semantically invalid operation was attempted."""


class PolicyViolation(SimError):
    """An action was blocked by the ACI security policy."""
