"""Command-line interface: ``python -m repro <command>``.

Commands
--------
* ``list-problems [--task T] [--include-noop]`` — enumerate the pool;
* ``run-problem PID --agent NAME [--max-steps N] [--seed N] [--save PATH]``
  — run one session and print the trajectory + evaluation;
* ``run-benchmark [--agents a,b] [--task T] [--seed N] [--concurrency N]``
  — run a suite (optionally N sessions in flight) and print Table 3 /
  Table 4;
* ``show-pool`` — print Table 2.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _cmd_list_problems(args) -> int:
    from repro.problems import list_problems
    for pid in list_problems(args.task, include_noop=args.include_noop):
        print(pid)
    return 0


def _cmd_show_pool(args) -> int:
    from repro.bench import render_table, table2_problem_pool
    headers, rows = table2_problem_pool()
    print(render_table(headers, rows, "Problem pool (Table 2)"))
    return 0


def _cmd_run_problem(args) -> int:
    from repro.bench import BenchmarkRunner
    from repro.core.trajectory import save_session

    runner = BenchmarkRunner(max_steps=args.max_steps, seed=args.seed)
    case = runner.run_case(args.agent, args.pid)
    print(case.session.transcript())
    print()
    print(f"success: {case.success}")
    print(f"steps: {case.steps}  duration: {case.duration_s:.1f}s  "
          f"tokens: {case.input_tokens}+{case.output_tokens}")
    for key, value in case.details.items():
        print(f"{key}: {value}")
    if args.save:
        path = save_session(case.session, args.save)
        print(f"trajectory saved to {path}")
    return 0 if case.success else 1


def _cmd_run_benchmark(args) -> int:
    from repro.agents.registry import AGENT_NAMES
    from repro.bench import (
        BenchmarkRunner, render_table, table3_overall, table4_by_task,
    )
    from repro.problems import list_problems

    if args.concurrency < 1:
        print(f"error: --concurrency must be >= 1, got {args.concurrency}",
              file=sys.stderr)
        return 2
    agents = args.agents.split(",") if args.agents else list(AGENT_NAMES)
    pids = list_problems(args.task) if args.task else None
    runner = BenchmarkRunner(max_steps=args.max_steps, seed=args.seed,
                             concurrency=args.concurrency)
    results = runner.run_suite(agents=agents, pids=pids, verbose=True)
    headers, rows = table3_overall(results, agents=agents)
    print()
    print(render_table(headers, rows, "Overall (Table 3)"))
    for task, (headers, rows) in table4_by_task(results, agents=agents).items():
        if rows:
            print()
            print(render_table(headers, rows, f"Table 4 — {task}"))
    return 0


def _cmd_make_report(args) -> int:
    from repro.bench.report import render_markdown, run_experiments

    report = run_experiments(seed=args.seed, verbose=True)
    markdown = render_markdown(report)
    if args.output:
        with open(args.output, "w") as f:
            f.write(markdown)
        print(f"report written to {args.output}")
    else:
        print(markdown)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AIOpsLab reproduction — problems, agents, benchmark.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list-problems", help="enumerate the problem pool")
    p.add_argument("--task", choices=("detection", "localization",
                                      "analysis", "mitigation"))
    p.add_argument("--include-noop", action="store_true")
    p.set_defaults(func=_cmd_list_problems)

    p = sub.add_parser("show-pool", help="print the Table-2 inventory")
    p.set_defaults(func=_cmd_show_pool)

    p = sub.add_parser("run-problem", help="run one agent on one problem")
    p.add_argument("pid")
    p.add_argument("--agent", default="gpt-4-w-shell")
    p.add_argument("--max-steps", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--save", help="save the trajectory JSONL here")
    p.set_defaults(func=_cmd_run_problem)

    p = sub.add_parser("run-benchmark", help="run a suite and print tables")
    p.add_argument("--agents", help="comma-separated agent names")
    p.add_argument("--task", choices=("detection", "localization",
                                      "analysis", "mitigation"))
    p.add_argument("--max-steps", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--concurrency", type=int, default=1,
                   help="sessions in flight at once (results are "
                        "identical at any level)")
    p.set_defaults(func=_cmd_run_benchmark)

    p = sub.add_parser("make-report",
                       help="run everything and render EXPERIMENTS.md")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", "-o", help="write markdown here")
    p.set_defaults(func=_cmd_make_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
