"""Base application: helm-deployable set of microservices plus call graphs."""

from __future__ import annotations

import re
from typing import Any, Optional

from repro.kubesim.cluster import Cluster
from repro.kubesim.helm import ChartService, Helm, HelmChart
from repro.services.backends import MemcachedBackend, MongoBackend, RedisBackend
from repro.services.model import Microservice, Operation
from repro.services.runtime import ServiceRuntime
from repro.telemetry.collector import TelemetryCollector


class App:
    """An application under test.

    Subclasses define the topology (:meth:`service_specs`), the call graphs
    (:meth:`build_operations`), the workload mix and the default helm values
    (which carry backend credentials).  :meth:`deploy` renders the chart
    into a cluster and builds the :class:`ServiceRuntime`.

    Attributes
    ----------
    name / namespace / frontend:
        Application identity; ``frontend`` is the entry service name.
    """

    name: str = "app"
    namespace: str = "default"
    frontend: str = "frontend"

    def __init__(self) -> None:
        self.backends: dict[str, MongoBackend | RedisBackend | MemcachedBackend] = {}
        self.services: dict[str, Microservice] = {}
        self.operations: dict[str, Operation] = {}
        self.runtime: Optional[ServiceRuntime] = None
        self.helm: Optional[Helm] = None
        self.cluster: Optional[Cluster] = None
        self.release_name = f"{self.name}-release"

    # -- subclass hooks ---------------------------------------------------
    def service_specs(self) -> list[Microservice]:
        """The full service inventory (backends not yet attached)."""
        raise NotImplementedError

    def build_operations(self) -> dict[str, Operation]:
        raise NotImplementedError

    def workload_mix(self) -> dict[str, float]:
        """Operation name → sampling weight for the workload generator."""
        raise NotImplementedError

    def default_values(self) -> dict[str, Any]:
        """Helm values; ``mongo_credentials`` maps backend service →
        ``{"username", "password"}`` (or None when absent)."""
        return {"mongo_credentials": {}}

    # -- derived ------------------------------------------------------------
    @property
    def ns(self) -> str:
        return self.namespace

    @property
    def frontend_url(self) -> str:
        port = self.services[self.frontend].port if self.services else 8080
        return f"http://{self.frontend}.{self.namespace}.svc.cluster.local:{port}"

    def mongo_services(self) -> list[str]:
        return [s.name for s in self.services.values() if s.kind == "mongodb"]

    #: per-kind (cpu millicores, memory MiB) container requests the chart
    #: renders — DeathStarBench-chart-flavored sizing: entry points and
    #: databases ask for more than mid-tier logic or caches
    RESOURCE_REQUESTS: dict[str, tuple[float, float]] = {
        "frontend": (200.0, 256.0),
        "stateless": (100.0, 128.0),
        "mongodb": (250.0, 512.0),
        "redis": (100.0, 256.0),
        "memcached": (100.0, 256.0),
    }

    def chart(self) -> HelmChart:
        return HelmChart(
            name=self.name,
            services=[
                ChartService(
                    name=s.name, image=s.image, port=s.port,
                    cpu_request=self.RESOURCE_REQUESTS.get(
                        s.kind, (100.0, 128.0))[0],
                    mem_request=self.RESOURCE_REQUESTS.get(
                        s.kind, (100.0, 128.0))[1],
                )
                for s in self.service_specs()
            ],
            default_values=self.default_values(),
        )

    # -- deployment -----------------------------------------------------------
    def deploy(
        self,
        cluster: Cluster,
        collector: TelemetryCollector,
        helm: Optional[Helm] = None,
        values: Optional[dict[str, Any]] = None,
        seed: int = 0,
    ) -> ServiceRuntime:
        """Install the chart and build the service runtime."""
        self.cluster = cluster
        self.helm = helm or Helm(cluster)
        self.helm.install(self.release_name, self.chart(), self.namespace, values)
        self.services = {s.name: s for s in self.service_specs()}
        self.backends = {}
        for svc in self.services.values():
            if svc.kind == "mongodb":
                backend = MongoBackend(db_name=self._db_name(svc.name))
                self.backends[svc.name] = backend
                svc.backend = backend
            elif svc.kind == "redis":
                backend = RedisBackend(svc.name)
                self.backends[svc.name] = backend
                svc.backend = backend
            elif svc.kind == "memcached":
                backend = MemcachedBackend(svc.name)
                self.backends[svc.name] = backend
                svc.backend = backend
        self._provision_mongo_users()
        self._provision_secrets()
        self.operations = self.build_operations()
        self.runtime = ServiceRuntime(
            cluster=cluster,
            namespace=self.namespace,
            services=self.services,
            operations=self.operations,
            collector=collector,
            credentials_provider=self.get_credentials,
            seed=seed,
        )
        return self.runtime

    def _db_name(self, mongo_service: str) -> str:
        """``mongodb-geo`` → ``geo-db``; ``user-mongodb`` → ``user-db``."""
        short = mongo_service.replace("mongodb-", "").replace("-mongodb", "")
        return f"{short}-db"

    def _provision_mongo_users(self) -> None:
        """Create the admin users declared in helm values on each backend."""
        creds = self._current_values().get("mongo_credentials", {})
        for svc_name, backend in self.backends.items():
            if not isinstance(backend, MongoBackend):
                continue
            entry = creds.get(svc_name)
            if entry and entry.get("username"):
                backend.create_user(
                    entry["username"], entry.get("password", ""),
                    roles={"readWrite", "dbAdmin"},
                )

    def _provision_secrets(self) -> None:
        """Mirror each backend credential into a Kubernetes secret.

        Operators (and agents) recover lost helm values from these — the
        discovery path the AuthenticationMissing mitigation uses.
        """
        from repro.kubesim.objects import ObjectMeta, Secret

        creds = self.default_values().get("mongo_credentials", {})
        for svc_name, entry in creds.items():
            if not entry:
                continue
            self.cluster.create_secret(Secret(
                meta=ObjectMeta(name=f"{svc_name}-credentials",
                                namespace=self.namespace),
                data={"username": entry["username"],
                      "password": entry.get("password", "")},
            ))

    def _current_values(self) -> dict[str, Any]:
        if self.helm and self.release_name in self.helm.releases:
            return self.helm.releases[self.release_name].values
        return self.default_values()

    # -- runtime hooks ----------------------------------------------------------
    def get_credentials(self, caller: str, callee: str) -> Optional[tuple[str, str]]:
        """Credentials the ``caller`` service uses against backend ``callee``.

        Read from the *live* helm release values each call, so a
        ``helm upgrade`` (e.g. restoring a missing credential) takes
        effect without redeploying the runtime.
        """
        entry = self._current_values().get("mongo_credentials", {}).get(callee)
        if not entry or not entry.get("username"):
            return None
        return (entry["username"], entry.get("password", ""))

    # -- kubectl exec surface -----------------------------------------------------
    def exec_handler(self, namespace: str, pod: str, argv: list[str]) -> str:
        """Handle ``kubectl exec`` inside this app's pods.

        Supports the mongo shell on ``mongodb-*`` pods — the mitigation
        path for auth faults (``grantRolesToUser`` / ``createUser``), plus
        a few generic unix probes.
        """
        if namespace != self.namespace:
            return f"error: pod {pod} not managed by {self.name}"
        owner = None
        if self.cluster is not None:
            try:
                owner = self.cluster.get_pod(namespace, pod).owner
            except Exception:
                owner = None
        cmd = " ".join(argv)
        if argv[0] in ("mongo", "mongosh"):
            backend = self.backends.get(owner or "")
            if not isinstance(backend, MongoBackend):
                return f'sh: command not found: {argv[0]}'
            return self._mongo_shell(backend, cmd)
        if argv[0] in ("ls", "env", "ps", "cat"):
            return f"(simulated container shell) {cmd}: operation permitted but uninteresting"
        return f"sh: command not found: {argv[0]}"

    @staticmethod
    def _mongo_shell(backend: MongoBackend, cmd: str) -> str:
        """Interpret mongo shell one-liners against the simulated backend."""
        m = re.search(r'grantRolesToUser\(\s*["\']([^"\']+)["\']', cmd)
        if m:
            user = m.group(1)
            if backend.grant_roles(user, {"readWrite", "dbAdmin"}):
                return '{ "ok" : 1 }'
            return (f'uncaught exception: Error: Could not find user "{user}" '
                    f'for db "{backend.db_name}"')
        m = re.search(
            r'createUser\(\s*\{\s*user:\s*["\']([^"\']+)["\']\s*,\s*'
            r'pwd:\s*["\']([^"\']+)["\']', cmd)
        if m:
            backend.create_user(m.group(1), m.group(2), roles={"readWrite", "dbAdmin"})
            return '{ "ok" : 1 }'
        m = re.search(r'dropUser\(\s*["\']([^"\']+)["\']', cmd)
        if m:
            ok = backend.drop_user(m.group(1))
            return '{ "ok" : 1 }' if ok else '{ "ok" : 0 }'
        if "getUsers" in cmd:
            users = [
                {"user": u.username, "roles": sorted(u.roles)}
                for u in backend.users.values()
            ]
            return str({"users": users, "ok": 1})
        return ('MongoDB shell version v4.4.6\n'
                'usage: mongo --eval "db.grantRolesToUser(...)" | '
                '"db.createUser({user:..., pwd:..., roles:[...]})" | "db.getUsers()"')
