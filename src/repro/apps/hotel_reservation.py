"""HotelReservation — DeathStarBench's Go/gRPC hotel application.

Topology (19 services): a frontend fans out to search / recommendation /
reservation / user / profile services, each backed by MongoDB and fronted
by Memcached caches, mirroring the upstream helm chart.
"""

from __future__ import annotations

from typing import Any

from repro.apps.base import App
from repro.services.model import CallEdge, Microservice, Operation


class HotelReservation(App):
    """The hotel reservation application under test."""

    name = "hotel-reservation"
    namespace = "test-hotel-reservation"
    frontend = "frontend"

    #: (service, port, kind, base latency ms)
    _SPECS: list[tuple[str, int, str, float]] = [
        ("frontend", 5000, "frontend", 1.5),
        ("search", 8082, "stateless", 2.0),
        ("geo", 8083, "stateless", 2.5),
        ("rate", 8084, "stateless", 2.0),
        ("recommendation", 8085, "stateless", 2.0),
        ("user", 8086, "stateless", 1.5),
        ("reservation", 8087, "stateless", 2.5),
        ("profile", 8081, "stateless", 2.0),
        ("mongodb-geo", 27017, "mongodb", 3.0),
        ("mongodb-rate", 27017, "mongodb", 3.0),
        ("mongodb-recommendation", 27017, "mongodb", 3.0),
        ("mongodb-user", 27017, "mongodb", 3.0),
        ("mongodb-reservation", 27017, "mongodb", 3.0),
        ("mongodb-profile", 27017, "mongodb", 3.0),
        ("memcached-rate", 11211, "memcached", 0.5),
        ("memcached-profile", 11211, "memcached", 0.5),
        ("memcached-reserve", 11211, "memcached", 0.5),
        ("consul", 8500, "stateless", 0.5),
        ("jaeger", 16686, "stateless", 0.5),
    ]

    def service_specs(self) -> list[Microservice]:
        return [
            Microservice(name=n, port=p, kind=k, base_latency_ms=lat,
                         image=f"deathstarbench/hotel-{n}:latest")
            for n, p, k, lat in self._SPECS
        ]

    def default_values(self) -> dict[str, Any]:
        creds = {
            f"mongodb-{short}": {"username": "admin", "password": f"{short}-pass"}
            for short in ("geo", "rate", "recommendation", "user",
                          "reservation", "profile")
        }
        return {"mongo_credentials": creds, "tls": {"enabled": False}}

    def build_operations(self) -> dict[str, Operation]:
        search = Operation(
            name="search_hotel", entry="frontend", weight=0.6,
            tree=[
                CallEdge("search", "nearby", children=[
                    CallEdge("geo", "nearby", children=[
                        CallEdge("mongodb-geo", "find"),
                    ]),
                    CallEdge("rate", "get_rates", children=[
                        CallEdge("memcached-rate", "get"),
                        CallEdge("mongodb-rate", "find"),
                    ]),
                ]),
                CallEdge("profile", "get_profiles", children=[
                    CallEdge("memcached-profile", "get"),
                    CallEdge("mongodb-profile", "find"),
                ]),
            ],
        )
        recommend = Operation(
            name="recommend", entry="frontend", weight=0.3,
            tree=[
                CallEdge("recommendation", "get_recommendations", children=[
                    CallEdge("mongodb-recommendation", "find"),
                ]),
                CallEdge("profile", "get_profiles", children=[
                    CallEdge("memcached-profile", "get"),
                    CallEdge("mongodb-profile", "find"),
                ]),
            ],
        )
        reserve = Operation(
            name="reserve", entry="frontend", weight=0.05,
            tree=[
                CallEdge("user", "check_user", children=[
                    CallEdge("mongodb-user", "find"),
                ]),
                CallEdge("reservation", "make_reservation", children=[
                    CallEdge("memcached-reserve", "get"),
                    CallEdge("mongodb-reservation", "insert"),
                ]),
            ],
        )
        login = Operation(
            name="login", entry="frontend", weight=0.05,
            tree=[
                CallEdge("user", "check_user", children=[
                    CallEdge("mongodb-user", "find"),
                ]),
            ],
        )
        return {op.name: op for op in (search, recommend, reserve, login)}

    def workload_mix(self) -> dict[str, float]:
        return {"search_hotel": 0.6, "recommend": 0.3, "reserve": 0.05, "login": 0.05}
