"""Applications under test: the two DeathStarBench suites the paper deploys.

* :class:`HotelReservation` — the Go/gRPC hotel application (search,
  recommendation, reservation, user/profile services over MongoDB and
  Memcached backends).
* :class:`SocialNetwork` — the 28-microservice social network (compose
  post, home/user timelines over MongoDB, Redis and Memcached).
"""

from repro.apps.base import App
from repro.apps.hotel_reservation import HotelReservation
from repro.apps.social_network import SocialNetwork

__all__ = ["App", "HotelReservation", "SocialNetwork"]
