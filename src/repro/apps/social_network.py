"""SocialNetwork — DeathStarBench's 28-microservice social network."""

from __future__ import annotations

from typing import Any

from repro.apps.base import App
from repro.services.model import CallEdge, Microservice, Operation


class SocialNetwork(App):
    """The social network application under test (28 microservices)."""

    name = "social-network"
    namespace = "test-social-network"
    frontend = "nginx-web-server"

    #: (service, port, kind, base latency ms) — matches the upstream
    #: kubernetes manifests' service inventory (28 entries).
    _SPECS: list[tuple[str, int, str, float]] = [
        ("nginx-web-server", 8080, "frontend", 1.0),
        ("compose-post-service", 9090, "stateless", 2.0),
        ("home-timeline-service", 9091, "stateless", 2.0),
        ("user-timeline-service", 9092, "stateless", 2.0),
        ("post-storage-service", 9093, "stateless", 2.5),
        ("social-graph-service", 9094, "stateless", 2.0),
        ("text-service", 9095, "stateless", 1.5),
        ("media-service", 9096, "stateless", 1.5),
        ("unique-id-service", 9097, "stateless", 0.5),
        ("url-shorten-service", 9098, "stateless", 1.5),
        ("user-mention-service", 9099, "stateless", 1.5),
        ("user-service", 9100, "stateless", 1.5),
        ("write-home-timeline-service", 9101, "stateless", 2.0),
        ("media-frontend", 8081, "stateless", 1.0),
        ("jaeger", 16686, "stateless", 0.5),
        ("home-timeline-redis", 6379, "redis", 0.5),
        ("user-timeline-redis", 6379, "redis", 0.5),
        ("social-graph-redis", 6379, "redis", 0.5),
        ("user-memcached", 11211, "memcached", 0.4),
        ("post-storage-memcached", 11211, "memcached", 0.4),
        ("media-memcached", 11211, "memcached", 0.4),
        ("url-shorten-memcached", 11211, "memcached", 0.4),
        ("user-mongodb", 27017, "mongodb", 3.0),
        ("post-storage-mongodb", 27017, "mongodb", 3.0),
        ("media-mongodb", 27017, "mongodb", 3.0),
        ("url-shorten-mongodb", 27017, "mongodb", 3.0),
        ("social-graph-mongodb", 27017, "mongodb", 3.0),
        ("user-timeline-mongodb", 27017, "mongodb", 3.0),
    ]

    def service_specs(self) -> list[Microservice]:
        return [
            Microservice(name=n, port=p, kind=k, base_latency_ms=lat,
                         image=f"deathstarbench/social-{n}:latest")
            for n, p, k, lat in self._SPECS
        ]

    def default_values(self) -> dict[str, Any]:
        creds = {
            mongo: {"username": "admin", "password": f"{mongo}-pass"}
            for mongo in ("user-mongodb", "post-storage-mongodb", "media-mongodb",
                          "url-shorten-mongodb", "social-graph-mongodb",
                          "user-timeline-mongodb")
        }
        return {"mongo_credentials": creds, "tls": {"enabled": False}}

    def build_operations(self) -> dict[str, Operation]:
        post_storage_read = CallEdge("post-storage-service", "read_posts", children=[
            CallEdge("post-storage-memcached", "get"),
            CallEdge("post-storage-mongodb", "find"),
        ])
        compose = Operation(
            name="compose_post", entry="nginx-web-server", weight=0.1,
            tree=[
                CallEdge("compose-post-service", "compose", children=[
                    CallEdge("unique-id-service", "gen_id"),
                    CallEdge("text-service", "process_text", children=[
                        CallEdge("url-shorten-service", "shorten", children=[
                            CallEdge("url-shorten-memcached", "get"),
                            CallEdge("url-shorten-mongodb", "insert"),
                        ]),
                        CallEdge("user-mention-service", "mention", children=[
                            CallEdge("user-memcached", "get"),
                            CallEdge("user-mongodb", "find"),
                        ]),
                    ]),
                    CallEdge("media-service", "store_media", children=[
                        CallEdge("media-memcached", "get"),
                        CallEdge("media-mongodb", "insert"),
                    ]),
                    CallEdge("user-service", "check_user", children=[
                        CallEdge("user-memcached", "get"),
                        CallEdge("user-mongodb", "find"),
                    ]),
                    CallEdge("post-storage-service", "store_post", children=[
                        CallEdge("post-storage-memcached", "set"),
                        CallEdge("post-storage-mongodb", "insert"),
                    ]),
                    CallEdge("user-timeline-service", "write_timeline", children=[
                        CallEdge("user-timeline-redis", "set"),
                        CallEdge("user-timeline-mongodb", "insert"),
                    ]),
                    CallEdge("write-home-timeline-service", "fanout", children=[
                        CallEdge("home-timeline-redis", "set"),
                        CallEdge("social-graph-service", "get_followers", children=[
                            CallEdge("social-graph-redis", "get"),
                            CallEdge("social-graph-mongodb", "find"),
                        ]),
                    ]),
                ]),
            ],
        )
        read_home = Operation(
            name="read_home_timeline", entry="nginx-web-server", weight=0.6,
            tree=[
                CallEdge("home-timeline-service", "read", children=[
                    CallEdge("home-timeline-redis", "get"),
                    post_storage_read,
                ]),
            ],
        )
        read_user = Operation(
            name="read_user_timeline", entry="nginx-web-server", weight=0.3,
            tree=[
                CallEdge("user-timeline-service", "read", children=[
                    CallEdge("user-timeline-redis", "get"),
                    CallEdge("user-timeline-mongodb", "find"),
                    post_storage_read,
                ]),
            ],
        )
        return {op.name: op for op in (compose, read_home, read_user)}

    def workload_mix(self) -> dict[str, float]:
        return {"compose_post": 0.1, "read_home_timeline": 0.6,
                "read_user_timeline": 0.3}
