"""ChaosMesh-style chaos resources over the simulated cluster.

The real AIOpsLab integrates ChaosMesh for symptomatic faults; this module
models its two relevant experiment kinds as declarative resources you
apply/delete, so the symptomatic injector (and users extending the library)
get the same mental model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import App
from repro.simcore import InvalidAction


@dataclass
class NetworkChaos:
    """``NetworkChaos`` with ``action: loss`` — drop a fraction of packets
    to the selected services."""

    name: str
    services: list[str]
    loss: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss <= 1.0:
            raise InvalidAction(f"loss must be in [0,1], got {self.loss}")


@dataclass
class PodChaos:
    """``PodChaos`` with ``action: pod-failure`` — keep the selected
    services' pods in a failed (CrashLoopBackOff) state."""

    name: str
    services: list[str]


class ChaosMesh:
    """Applies and removes chaos resources against a deployed app."""

    def __init__(self, app: App) -> None:
        if app.runtime is None or app.cluster is None:
            raise InvalidAction("app must be deployed before applying chaos")
        self.app = app
        self.applied: dict[str, NetworkChaos | PodChaos] = {}

    def apply(self, resource: NetworkChaos | PodChaos) -> None:
        if resource.name in self.applied:
            raise InvalidAction(f'chaos resource "{resource.name}" already applied')
        if isinstance(resource, NetworkChaos):
            for svc in resource.services:
                self.app.runtime.network_loss[svc] = resource.loss
        elif isinstance(resource, PodChaos):
            for svc in resource.services:
                self._set_pod_failure(svc, failing=True)
        self.applied[resource.name] = resource

    def delete(self, name: str) -> None:
        resource = self.applied.pop(name, None)
        if resource is None:
            raise InvalidAction(f'chaos resource "{name}" not found')
        if isinstance(resource, NetworkChaos):
            for svc in resource.services:
                self.app.runtime.network_loss.pop(svc, None)
        elif isinstance(resource, PodChaos):
            for svc in resource.services:
                self._set_pod_failure(svc, failing=False)

    def _set_pod_failure(self, service: str, failing: bool) -> None:
        cluster = self.app.cluster
        ns = self.app.namespace
        for pod in cluster.pods_in(ns):
            if pod.owner == service:
                pod.crash_looping = failing
                if failing:
                    pod.restart_count += 3
                    cluster.record_event(
                        ns, "Pod", pod.name, "BackOff",
                        f"Back-off restarting failed container {service}",
                        event_type="Warning",
                    )
        cluster.reconcile()
