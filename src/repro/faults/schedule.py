"""Scheduled fault timelines: faults as events on the environment kernel.

A :class:`FaultSchedule` is a declarative timeline — inject *this* fault at
t=45, recover it at t=60, swap the workload's rate policy at t=120 — that
:meth:`FaultSchedule.arm` turns into scheduled events on an environment's
:class:`~repro.simcore.events.EventQueue`.  Because the environment only
moves through ``advance()`` (which runs the queue), the timeline fires
*while the agent is working*: delayed-onset faults appear mid-session,
flapping faults come and go between probes, and cascades unfold in stages.

*When* an entry fires is a first-class :class:`~repro.faults.triggers.Trigger`,
not just a float:

* :class:`~repro.faults.triggers.AtTime` — fixed offset from arm time
  (plain floats coerce to this, so time-based schedules read and behave
  exactly as before);
* :class:`~repro.faults.triggers.MetricAbove` /
  :class:`~repro.faults.triggers.MetricBelow` — telemetry thresholds
  evaluated at scrape time through the collector's
  :class:`~repro.telemetry.watch.MetricWatch` registry ("once the error
  rate crosses 5/s for 10 s");
* :class:`~repro.faults.triggers.AfterEvent` — chains off another entry's
  firing by ``tag``, whatever condition fired it.

Multi-app environments add a *where* dimension: every entry carries a
``namespace`` naming the app it acts on (empty → the environment's
primary app), and a metric trigger may watch a *different* app's
telemetry than the entry targets — the cross-app shapes (noisy neighbor,
load-triggered cross-app remediation) are built from exactly this split.

Builders cover the paper-motivated shapes:

* :meth:`FaultSchedule.delayed` — single fault with onset delay;
* :meth:`FaultSchedule.flapping` — intermittent inject/recover cycles;
* :meth:`FaultSchedule.cascade` — multiple faults at staggered times;
* :meth:`FaultSchedule.set_rate` — time-varying workload (diurnal/burst
  policies taking over at a scheduled moment);
* :meth:`FaultSchedule.when` / :meth:`FaultSchedule.after` — condition-
  triggered and chained entries ("inject network_loss on the frontend once
  p99 > 800 ms for 30 s, then cascade to geo when error rate crosses 5/s");
* :meth:`FaultSchedule.every_crossing` — a **repeating** condition-
  triggered entry: the armed watch re-arms itself after each firing
  (:meth:`~repro.telemetry.watch.MetricWatch.rearm`) and waits for the
  signal to drop back across the threshold before it may fire again, so
  the entry fires once per threshold *crossing* — the auto-remediation
  loop shape (inject/recover driven by telemetry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.faults.base import FaultInjector
from repro.faults.functional import ApplicationFaultInjector, VirtFaultInjector
from repro.faults.library import FAULT_LIBRARY, FaultSpec, get_fault_spec
from repro.faults.symptomatic import SymptomaticFaultInjector
from repro.faults.triggers import (
    AfterEvent,
    AtTime,
    MetricTrigger,
    Trigger,
    as_trigger,
)
from repro.simcore import RngStream
from repro.telemetry.watch import MetricWatch

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import App
    from repro.core.env import CloudEnvironment
    from repro.simcore import ScheduledEvent
    from repro.workload.policies import RatePolicy

#: the one injector-family → class mapping (problems and schedules share it)
INJECTOR_CLASSES: dict[str, type[FaultInjector]] = {
    "virt": VirtFaultInjector,
    "app": ApplicationFaultInjector,
    "symptomatic": SymptomaticFaultInjector,
}


def resolve_fault_spec(fault: str | int) -> FaultSpec:
    """Resolve a fault by Table-2 number, name, or injector ``fault_key``."""
    try:
        return get_fault_spec(fault)
    except KeyError:
        for spec in FAULT_LIBRARY:
            if spec.fault_key and spec.fault_key == fault:
                return spec
        raise


@dataclass(frozen=True)
class TimelineEntry:
    """One step of a fault timeline.

    ``trigger`` says *when* the entry fires — a :class:`Trigger`, or a
    plain number of seconds from arm time (coerced to :class:`AtTime`);
    ``kind`` is ``"inject"``, ``"recover"`` or ``"set_rate"``.
    ``namespace`` says *where* it acts: the namespace whose app the fault
    is injected into (or whose driver's rate policy is swapped); empty
    means the environment's primary app.  ``tag`` names the entry so
    later entries can chain off it with :class:`AfterEvent`.  ``repeat``
    (metric-triggered entries only) is the number of firings the entry is
    allowed across watch re-arms — ``1`` is the historical fire-once,
    ``0`` means unlimited (fire at every threshold crossing).

    ``fire_probability`` / ``jitter_s`` (metric-triggered entries only)
    make repeating entries *flap* probabilistically: each threshold
    crossing fires with ``fire_probability`` (a skipped crossing still
    consumes the crossing — the watch re-arms and waits for the next
    one), and a firing entry's action lands a seeded-uniform
    ``[0, jitter_s)`` seconds after the crossing.  Both draw from one
    dedicated ``faults/flap`` stream derived from the environment seed,
    so a timeline with flapping entries is exactly reproducible and a
    timeline without them draws nothing new.
    """

    trigger: Trigger
    kind: str
    fault: str | int = ""
    targets: tuple[str, ...] = ()
    policy: Optional["RatePolicy"] = None
    tag: str = ""
    namespace: str = ""
    repeat: int = 1
    fire_probability: float = 1.0
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "trigger", as_trigger(self.trigger))
        if self.repeat < 0:
            raise ValueError(f"repeat must be >= 0, got {self.repeat}")
        if self.repeat != 1 and not isinstance(self.trigger, MetricTrigger):
            raise ValueError(
                "repeat is only meaningful for metric-triggered entries "
                f"(got repeat={self.repeat} on {self.trigger.describe()})")
        if not 0.0 < self.fire_probability <= 1.0:
            raise ValueError(
                f"fire_probability must be in (0, 1], "
                f"got {self.fire_probability}")
        if self.jitter_s < 0.0:
            raise ValueError(f"jitter_s must be >= 0, got {self.jitter_s}")
        if (self.fire_probability != 1.0 or self.jitter_s > 0.0) \
                and not isinstance(self.trigger, MetricTrigger):
            raise ValueError(
                "fire_probability/jitter_s are only meaningful for "
                f"metric-triggered entries (on {self.trigger.describe()})")

    @property
    def at(self) -> Optional[float]:
        """The arm-relative offset for time-triggered entries, else None."""
        return self.trigger.at if isinstance(self.trigger, AtTime) else None

    def describe(self) -> str:
        where = f" @{self.namespace}" if self.namespace else ""
        if self.kind == "set_rate":
            return f"set_rate {type(self.policy).__name__}{where}"
        return f"{self.kind} {self.fault} -> {list(self.targets)}{where}"


class FaultSchedule:
    """A declarative, composable fault timeline (see module docstring)."""

    def __init__(self, entries: Sequence[TimelineEntry] = ()) -> None:
        self.entries: list[TimelineEntry] = []
        for entry in entries:  # pre-built entries get the builders' checks
            if entry.kind in ("inject", "recover"):
                self._check_injectable(entry.fault)
            elif entry.kind != "set_rate":
                raise ValueError(f"unknown timeline kind {entry.kind!r}")
            self._add(entry)

    # -- chainable builders --------------------------------------------
    def _add(self, entry: TimelineEntry) -> "FaultSchedule":
        if entry.tag and any(e.tag == entry.tag for e in self.entries):
            raise ValueError(f"duplicate timeline tag {entry.tag!r}")
        self.entries.append(entry)
        # Time entries stay time-sorted (presentation + duration); the
        # sort is stable, so condition-triggered entries keep insertion
        # order after them.
        self.entries.sort(
            key=lambda e: (0, e.at) if e.at is not None else (1, 0.0))
        return self

    @staticmethod
    def _check_injectable(fault: str | int) -> None:
        """Fail at build time, not event-fire time, for bad faults."""
        spec = resolve_fault_spec(fault)  # raises KeyError on unknown
        if spec.injector not in INJECTOR_CLASSES:
            raise ValueError(
                f"fault {spec.name!r} has no injector "
                f"(injector={spec.injector!r}) and cannot be scheduled")

    def inject(self, at: float | Trigger, fault: str | int,
               targets: Sequence[str], *, tag: str = "",
               namespace: str = "") -> "FaultSchedule":
        """Inject ``fault`` into ``targets`` when ``at`` trips (seconds
        after arming, or any :class:`Trigger`).  ``namespace`` picks the
        app acted on in a multi-app environment."""
        self._check_injectable(fault)
        return self._add(TimelineEntry(as_trigger(at), "inject", fault,
                                       tuple(targets), tag=tag,
                                       namespace=namespace))

    def recover(self, at: float | Trigger, fault: str | int,
                targets: Sequence[str], *, tag: str = "",
                namespace: str = "") -> "FaultSchedule":
        """Recover ``fault`` on ``targets`` when ``at`` trips."""
        self._check_injectable(fault)
        return self._add(TimelineEntry(as_trigger(at), "recover", fault,
                                       tuple(targets), tag=tag,
                                       namespace=namespace))

    def set_rate(self, at: float | Trigger, policy: "RatePolicy", *,
                 tag: str = "", namespace: str = "") -> "FaultSchedule":
        """Swap a workload driver's rate policy when ``at`` trips —
        ``namespace``'s driver in a multi-app environment (default: the
        primary app's)."""
        return self._add(TimelineEntry(as_trigger(at), "set_rate",
                                       policy=policy, tag=tag,
                                       namespace=namespace))

    def when(self, trigger: Trigger, fault: str | int,
             targets: Sequence[str], *, kind: str = "inject",
             tag: str = "", namespace: str = "",
             repeat: int = 1, fire_probability: float = 1.0,
             jitter_s: float = 0.0) -> "FaultSchedule":
        """Condition-triggered entry: fire ``kind`` when ``trigger`` trips.

        Sugar for ``inject``/``recover`` with an explicit trigger — reads
        as the scenario sentence: ``sched.when(MetricAbove("frontend",
        "latency_p99_ms", 800, sustain_s=30), "NetworkLoss", ("frontend",))``.
        The trigger may watch one app while the entry acts on another
        (``trigger.namespace`` vs ``namespace``).  ``repeat`` allows the
        entry to fire at up to that many threshold crossings (0 =
        unlimited) by re-arming the underlying watch after each firing.
        """
        if kind not in ("inject", "recover"):
            raise ValueError(f"when() supports inject/recover, got {kind!r}")
        self._check_injectable(fault)
        return self._add(TimelineEntry(trigger, kind, fault, tuple(targets),
                                       tag=tag, namespace=namespace,
                                       repeat=repeat,
                                       fire_probability=fire_probability,
                                       jitter_s=jitter_s))

    def after(self, tag: str, fault: str | int, targets: Sequence[str], *,
              delay: float = 0.0, kind: str = "inject",
              new_tag: str = "", namespace: str = "") -> "FaultSchedule":
        """Chain an entry ``delay`` seconds after the entry tagged ``tag``
        fires — however that entry was triggered.  (An entry chained off a
        *repeating* tag fires on the tag's first firing only.)"""
        return self.when(AfterEvent(tag, delay), fault, targets, kind=kind,
                         tag=new_tag, namespace=namespace)

    # -- canned shapes -------------------------------------------------
    @classmethod
    def delayed(cls, fault: str | int, targets: Sequence[str],
                delay: float, *, namespace: str = "") -> "FaultSchedule":
        """A single fault whose onset is ``delay`` seconds after arming."""
        return cls().inject(delay, fault, targets, namespace=namespace)

    @classmethod
    def flapping(cls, fault: str | int, targets: Sequence[str], *,
                 start: float = 0.0, period: float = 30.0,
                 on_for: float = 15.0, cycles: int = 4,
                 namespace: str = "") -> "FaultSchedule":
        """An intermittent fault: ``cycles`` inject/recover pairs, each
        cycle ``period`` seconds long with the fault live for ``on_for``."""
        if not 0 < on_for < period:
            raise ValueError(
                f"need 0 < on_for < period, got on_for={on_for}, "
                f"period={period}")
        if cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {cycles}")
        sched = cls()
        for k in range(cycles):
            t0 = start + k * period
            sched.inject(t0, fault, targets, namespace=namespace)
            sched.recover(t0 + on_for, fault, targets, namespace=namespace)
        return sched

    @classmethod
    def cascade(cls, steps: Sequence[tuple[float, str | int, Sequence[str]]],
                ) -> "FaultSchedule":
        """Multiple faults unfolding in stages: ``(at, fault, targets)``."""
        sched = cls()
        for at, fault, targets in steps:
            sched.inject(at, fault, targets)
        return sched

    @classmethod
    def load_triggered(cls, trigger: MetricTrigger, fault: str | int,
                       targets: Sequence[str], *,
                       namespace: str = "") -> "FaultSchedule":
        """A single fault that lands once the system crosses a telemetry
        threshold — the "fires because the system is already degraded"
        shape.  In a multi-app environment the watched metric
        (``trigger.namespace``) and the faulted app (``namespace``) may
        differ — the noisy-neighbor shape."""
        return cls().when(trigger, fault, targets, namespace=namespace)

    @classmethod
    def every_crossing(cls, trigger: MetricTrigger, fault: str | int,
                       targets: Sequence[str], *, kind: str = "inject",
                       namespace: str = "", max_fires: int = 0,
                       tag: str = "", fire_probability: float = 1.0,
                       jitter_s: float = 0.0) -> "FaultSchedule":
        """A repeating condition-triggered entry: fire ``kind`` every time
        the threshold is *crossed* (the armed watch re-arms after each
        firing and must see one non-satisfying scrape before it can fire
        again).  ``max_fires`` caps the loop (0 = unlimited).  This is the
        first schedule shape built on
        :meth:`~repro.telemetry.watch.MetricWatch.rearm` — composed in
        pairs it expresses telemetry-driven inject/recover loops
        (auto-remediation storylines).  ``fire_probability`` < 1 makes the
        loop *flap* — some crossings silently skip — and ``jitter_s``
        smears each firing's onset by a seeded uniform delay; see
        :class:`TimelineEntry`."""
        return cls().when(trigger, fault, targets, kind=kind, tag=tag,
                          namespace=namespace, repeat=max_fires,
                          fire_probability=fire_probability,
                          jitter_s=jitter_s)

    # -- properties ----------------------------------------------------
    @property
    def duration(self) -> float:
        """Offset of the last *time-triggered* entry (0 if none); metric
        and chained entries have no a-priori fire time."""
        ats = [e.at for e in self.entries if e.at is not None]
        return max(ats) if ats else 0.0

    def _validate_chains(self) -> None:
        """Arm-time validation: AfterEvent tags must resolve, acyclically."""
        tags = {e.tag for e in self.entries if e.tag}
        upstream: dict[int, str] = {}
        for i, e in enumerate(self.entries):
            if isinstance(e.trigger, AfterEvent):
                if e.trigger.tag not in tags:
                    raise ValueError(
                        f"AfterEvent references unknown tag "
                        f"{e.trigger.tag!r}")
                upstream[i] = e.trigger.tag
        # cycle check: follow tag → entry → its upstream tag
        by_tag = {e.tag: i for i, e in enumerate(self.entries) if e.tag}
        for start in upstream:
            seen = {start}
            i = start
            while i in upstream:
                i = by_tag[upstream[i]]
                if i in seen:
                    raise ValueError(
                        "AfterEvent chain forms a cycle through tag "
                        f"{self.entries[i].tag!r} — it could never fire")
                seen.add(i)

    def validate(self) -> "FaultSchedule":
        """Run arm-time timeline validation without an environment:
        AfterEvent tags must resolve to an entry, acyclically.  Returns
        ``self`` so it chains; raises ``ValueError`` with the same
        messages :meth:`arm` would.  (Per-trigger invariants — negative
        delays/offsets/sustains, empty tags — are rejected even earlier,
        at trigger construction.)"""
        self._validate_chains()
        return self

    def arm(self, env: "CloudEnvironment") -> "ArmedSchedule":
        """Bind the timeline to ``env``: time entries become queue events,
        metric entries become scrape-evaluated watches, chained entries
        wait for their upstream tag."""
        self._validate_chains()
        return ArmedSchedule(self, env)


class _EntryAction:
    """Picklable scheduled-event action: fire one timeline entry.

    A module-level callable (not a lambda) so armed timelines survive
    environment snapshots; it also gives the snapshot graph a path from
    the queue back to the :class:`ArmedSchedule`, keeping the schedule's
    state in the same pickle memo as the environment."""

    __slots__ = ("sched", "entry")

    def __init__(self, sched: "ArmedSchedule", entry: TimelineEntry) -> None:
        self.sched = sched
        self.entry = entry

    def __call__(self) -> None:
        self.sched._fire(self.entry)


class _WatchAction:
    """Picklable metric-watch callback: fire (and maybe re-arm) one
    watched timeline entry."""

    __slots__ = ("sched", "entry", "watch")

    def __init__(self, sched: "ArmedSchedule", entry: TimelineEntry,
                 watch: MetricWatch) -> None:
        self.sched = sched
        self.entry = entry
        self.watch = watch

    def __call__(self) -> None:
        self.sched._fire_watched(self.entry, self.watch)


class ArmedSchedule:
    """A :class:`FaultSchedule` bound to one environment's event queue.

    Keeps the per-(namespace, family) injectors it creates (so
    ``recover_all`` can undo exactly what was injected, app by app), the
    scheduled events and armed watches (so a problem teardown can cancel
    what hasn't fired yet), and a fired log for introspection.

    Arming is trigger-directed:

    * :class:`AtTime` entries are ``schedule_at`` events — byte-for-byte
      the pre-trigger behavior;
    * metric entries register a :class:`MetricWatch` with the collector
      (scrape-time evaluation, under the watched namespace's *qualified*
      metric name) **and** attach it to the queue, so span planners count
      the pending trigger as live activity.  Entries with ``repeat != 1``
      re-arm their watch from the firing callback, with crossing
      semantics (``require_clear``), until the repeat budget is spent or
      the schedule is torn down;
    * :class:`AfterEvent` entries are held as dependents of their tag and
      scheduled ``delay`` seconds after the tagged entry (first) fires.
    """

    def __init__(self, schedule: FaultSchedule, env: "CloudEnvironment") -> None:
        self.schedule = schedule
        self.env = env
        self.armed_at = env.clock.now
        self._injectors: dict[tuple[str, str], FaultInjector] = {}
        self.events: list["ScheduledEvent"] = []
        self.watches: list[MetricWatch] = []
        #: tag -> chained entries waiting on it
        self._dependents: dict[str, list[TimelineEntry]] = {}
        #: (virtual time, entry description) for every fired entry
        self.log: list[tuple[float, str]] = []
        #: set by cancel_pending so repeating watches stop re-arming
        self._torn_down = False
        #: seeded stream for probabilistic flapping (fire_probability /
        #: jitter_s); created only when an entry opts in, so ordinary
        #: timelines draw nothing new from any stream
        self._flap_rng: Optional[RngStream] = RngStream(
            env.seed, "faults/flap",
        ) if any(e.fire_probability < 1.0 or e.jitter_s > 0.0
                 for e in schedule.entries) else None
        for entry in schedule.entries:
            trigger = entry.trigger
            if isinstance(trigger, AtTime):
                self.events.append(env.queue.schedule_at(
                    self.armed_at + trigger.at,
                    _EntryAction(self, entry),
                    label=f"fault.{entry.kind}",
                ))
            elif isinstance(trigger, MetricTrigger):
                watch_ns = self._resolve_watch_namespace(trigger, env)
                watch = MetricWatch(
                    env.collector.qualify(watch_ns, trigger.service),
                    trigger.metric, trigger.threshold,
                    above=trigger.above, sustain_s=trigger.sustain_s,
                    label=f"fault.{entry.kind}.{trigger.service}",
                    require_clear=entry.repeat != 1,
                )
                watch.callback = _WatchAction(self, entry, watch)
                env.queue.attach_watch(watch)
                env.collector.add_watch(watch)
                self.watches.append(watch)
            elif isinstance(trigger, AfterEvent):
                self._dependents.setdefault(trigger.tag, []).append(entry)
            else:  # pragma: no cover - as_trigger rejects unknown kinds
                raise TypeError(f"unsupported trigger {trigger!r}")

    @staticmethod
    def _resolve_watch_namespace(trigger: MetricTrigger,
                                 env: "CloudEnvironment") -> str:
        """The namespace whose telemetry ``trigger`` watches.

        Fails at arm time, not silently-never-fire time: a typo'd
        service, metric or namespace would otherwise skip evaluation at
        every scrape forever (the collector cannot tell 'not scraped yet'
        from 'does not exist').  With no explicit ``trigger.namespace``
        the service name is resolved across every hosted app and must be
        unambiguous.
        """
        from repro.telemetry.metrics import MetricStore
        if trigger.metric not in MetricStore.STANDARD_METRICS:
            raise ValueError(
                f"metric trigger watches unknown metric {trigger.metric!r}; "
                f"scrapes record {MetricStore.STANDARD_METRICS}")
        if trigger.namespace:
            app = env.app_for(trigger.namespace)  # raises on unknown ns
            if trigger.service not in app.services:
                raise ValueError(
                    f"metric trigger watches unknown service "
                    f"{trigger.service!r} (not in {app.name}'s services)")
            return trigger.namespace
        owners = [a for a in env.apps if trigger.service in a.services]
        if not owners:
            raise ValueError(
                f"metric trigger watches unknown service "
                f"{trigger.service!r} (not in "
                f"{'/'.join(a.name for a in env.apps)}'s services)")
        if len(owners) > 1:
            raise ValueError(
                f"service {trigger.service!r} exists in several hosted "
                f"apps ({', '.join(a.namespace for a in owners)}); give "
                f"the trigger an explicit namespace")
        return owners[0].namespace

    # -- firing --------------------------------------------------------
    def _app_for_entry(self, entry: TimelineEntry) -> "App":
        ns = entry.namespace or self.env.namespace
        return self.env.app_for(ns)

    def _injector_for(self, spec: FaultSpec,
                      entry: TimelineEntry) -> FaultInjector:
        cls = INJECTOR_CLASSES[spec.injector]
        app = self._app_for_entry(entry)
        key = (app.namespace, spec.injector)
        if key not in self._injectors:
            self._injectors[key] = cls(app)
        return self._injectors[key]

    @staticmethod
    def _is_live(injector: FaultInjector, spec: FaultSpec,
                 targets: Sequence[str]) -> bool:
        return any(r.active and r.fault_name == spec.fault_key
                   and r.targets == list(targets) for r in injector.live)

    def _fire(self, entry: TimelineEntry) -> None:
        desc = entry.describe()
        if entry.kind == "set_rate":
            ns = entry.namespace or self.env.namespace
            self.env.driver_for(ns).policy = entry.policy
        else:
            spec = resolve_fault_spec(entry.fault)
            injector = self._injector_for(spec, entry)
            if entry.kind == "inject":
                if entry.repeat != 1 \
                        and self._is_live(injector, spec, entry.targets):
                    # a repeating entry's previous injection may still be
                    # live (nothing recovered it between crossings); the
                    # trigger firing is still logged, the injection is a
                    # no-op rather than a double-apply error
                    desc += " (still live)"
                else:
                    injector._inject(list(entry.targets), spec.fault_key)
            else:
                injector._recover(list(entry.targets), spec.fault_key)
        now = self.env.clock.now
        self.log.append((now, desc))
        if entry.tag:
            self._release_dependents(entry.tag, now)

    def _fire_watched(self, entry: TimelineEntry, watch: MetricWatch) -> None:
        """Fire a metric-triggered entry and, for repeating entries,
        re-arm the watch while the repeat budget allows and the schedule
        has not been torn down.  ``rearm`` re-registers with both the
        queue and the collector, and ``require_clear`` makes the next
        firing wait for a fresh threshold crossing.

        Probabilistic flapping hooks in here: a crossing is skipped with
        ``1 - fire_probability`` (it still counts against ``repeat`` and
        still requires a fresh crossing before the next chance), and a
        non-zero ``jitter_s`` defers the action by a seeded uniform
        delay rather than firing at scrape time."""
        fires = True
        if entry.fire_probability < 1.0:
            fires = self._flap_rng.bernoulli(entry.fire_probability)
        if fires:
            if entry.jitter_s > 0.0:
                delay = self._flap_rng.uniform(0.0, entry.jitter_s)
                self.events.append(self.env.queue.schedule_at(
                    self.env.clock.now + delay,
                    _EntryAction(self, entry),
                    label=f"fault.{entry.kind}.jitter",
                ))
            else:
                self._fire(entry)
        else:
            self.log.append((self.env.clock.now,
                             f"{entry.describe()} (crossing skipped)"))
        if self._torn_down or entry.repeat == 1:
            return
        if entry.repeat == 0 or watch.fire_count < entry.repeat:
            watch.rearm()

    def _release_dependents(self, tag: str, now: float) -> None:
        """Schedule every entry chained off ``tag`` at ``now + delay``.

        Dependents are popped, so a repeating tagged entry releases its
        chain on the first firing only."""
        for dep in self._dependents.pop(tag, ()):
            delay = dep.trigger.delay  # type: ignore[union-attr]
            self.events.append(self.env.queue.schedule_at(
                now + delay,
                _EntryAction(self, dep),
                label=f"fault.{dep.kind}",
            ))

    # -- teardown ------------------------------------------------------
    @property
    def pending(self) -> int:
        """Timeline entries that have not fired yet: unfired events,
        pending watches (a re-armed repeating watch counts as pending
        again), and chained entries still waiting on their tag."""
        events = sum(1 for ev in self.events
                     if not ev.fired and not ev.cancelled)
        watches = sum(1 for w in self.watches if w.pending)
        chained = sum(len(deps) for deps in self._dependents.values())
        return events + watches + chained

    def cancel_pending(self) -> None:
        """Cancel every entry that has not fired yet and stop repeating
        watches from re-arming (safe to call mid-loop)."""
        self._torn_down = True
        for ev in self.events:
            ev.cancel()
        for watch in self.watches:
            watch.cancel()
            self.env.collector.remove_watch(watch)
        self._dependents.clear()

    def recover_all(self) -> None:
        """Undo every live injection made by this schedule, in every
        namespace it touched."""
        for injector in self._injectors.values():
            injector.recover_all()
