"""Scheduled fault timelines: faults as events on the environment kernel.

A :class:`FaultSchedule` is a declarative timeline — inject *this* fault at
t=45, recover it at t=60, swap the workload's rate policy at t=120 — that
:meth:`FaultSchedule.arm` turns into scheduled events on an environment's
:class:`~repro.simcore.events.EventQueue`.  Because the environment only
moves through ``advance()`` (which runs the queue), the timeline fires
*while the agent is working*: delayed-onset faults appear mid-session,
flapping faults come and go between probes, and cascades unfold in stages.

*When* an entry fires is a first-class :class:`~repro.faults.triggers.Trigger`,
not just a float:

* :class:`~repro.faults.triggers.AtTime` — fixed offset from arm time
  (plain floats coerce to this, so time-based schedules read and behave
  exactly as before);
* :class:`~repro.faults.triggers.MetricAbove` /
  :class:`~repro.faults.triggers.MetricBelow` — telemetry thresholds
  evaluated at scrape time through the collector's
  :class:`~repro.telemetry.watch.MetricWatch` registry ("once the error
  rate crosses 5/s for 10 s");
* :class:`~repro.faults.triggers.AfterEvent` — chains off another entry's
  firing by ``tag``, whatever condition fired it.

Builders cover the paper-motivated shapes:

* :meth:`FaultSchedule.delayed` — single fault with onset delay;
* :meth:`FaultSchedule.flapping` — intermittent inject/recover cycles;
* :meth:`FaultSchedule.cascade` — multiple faults at staggered times;
* :meth:`FaultSchedule.set_rate` — time-varying workload (diurnal/burst
  policies taking over at a scheduled moment);
* :meth:`FaultSchedule.when` / :meth:`FaultSchedule.after` — condition-
  triggered and chained entries ("inject network_loss on the frontend once
  p99 > 800 ms for 30 s, then cascade to geo when error rate crosses 5/s").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.faults.base import FaultInjector
from repro.faults.functional import ApplicationFaultInjector, VirtFaultInjector
from repro.faults.library import FAULT_LIBRARY, FaultSpec, get_fault_spec
from repro.faults.symptomatic import SymptomaticFaultInjector
from repro.faults.triggers import (
    AfterEvent,
    AtTime,
    MetricTrigger,
    Trigger,
    as_trigger,
)
from repro.telemetry.watch import MetricWatch

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.env import CloudEnvironment
    from repro.simcore import ScheduledEvent
    from repro.workload.policies import RatePolicy

#: the one injector-family → class mapping (problems and schedules share it)
INJECTOR_CLASSES: dict[str, type[FaultInjector]] = {
    "virt": VirtFaultInjector,
    "app": ApplicationFaultInjector,
    "symptomatic": SymptomaticFaultInjector,
}


def resolve_fault_spec(fault: str | int) -> FaultSpec:
    """Resolve a fault by Table-2 number, name, or injector ``fault_key``."""
    try:
        return get_fault_spec(fault)
    except KeyError:
        for spec in FAULT_LIBRARY:
            if spec.fault_key and spec.fault_key == fault:
                return spec
        raise


@dataclass(frozen=True)
class TimelineEntry:
    """One step of a fault timeline.

    ``trigger`` says *when* the entry fires — a :class:`Trigger`, or a
    plain number of seconds from arm time (coerced to :class:`AtTime`);
    ``kind`` is ``"inject"``, ``"recover"`` or ``"set_rate"``.  ``tag``
    names the entry so later entries can chain off it with
    :class:`AfterEvent`.
    """

    trigger: Trigger
    kind: str
    fault: str | int = ""
    targets: tuple[str, ...] = ()
    policy: Optional["RatePolicy"] = None
    tag: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "trigger", as_trigger(self.trigger))

    @property
    def at(self) -> Optional[float]:
        """The arm-relative offset for time-triggered entries, else None."""
        return self.trigger.at if isinstance(self.trigger, AtTime) else None

    def describe(self) -> str:
        if self.kind == "set_rate":
            return f"set_rate {type(self.policy).__name__}"
        return f"{self.kind} {self.fault} -> {list(self.targets)}"


class FaultSchedule:
    """A declarative, composable fault timeline (see module docstring)."""

    def __init__(self, entries: Sequence[TimelineEntry] = ()) -> None:
        self.entries: list[TimelineEntry] = []
        for entry in entries:  # pre-built entries get the builders' checks
            if entry.kind in ("inject", "recover"):
                self._check_injectable(entry.fault)
            elif entry.kind != "set_rate":
                raise ValueError(f"unknown timeline kind {entry.kind!r}")
            self._add(entry)

    # -- chainable builders --------------------------------------------
    def _add(self, entry: TimelineEntry) -> "FaultSchedule":
        if entry.tag and any(e.tag == entry.tag for e in self.entries):
            raise ValueError(f"duplicate timeline tag {entry.tag!r}")
        self.entries.append(entry)
        # Time entries stay time-sorted (presentation + duration); the
        # sort is stable, so condition-triggered entries keep insertion
        # order after them.
        self.entries.sort(
            key=lambda e: (0, e.at) if e.at is not None else (1, 0.0))
        return self

    @staticmethod
    def _check_injectable(fault: str | int) -> None:
        """Fail at build time, not event-fire time, for bad faults."""
        spec = resolve_fault_spec(fault)  # raises KeyError on unknown
        if spec.injector not in INJECTOR_CLASSES:
            raise ValueError(
                f"fault {spec.name!r} has no injector "
                f"(injector={spec.injector!r}) and cannot be scheduled")

    def inject(self, at: float | Trigger, fault: str | int,
               targets: Sequence[str], *, tag: str = "") -> "FaultSchedule":
        """Inject ``fault`` into ``targets`` when ``at`` trips (seconds
        after arming, or any :class:`Trigger`)."""
        self._check_injectable(fault)
        return self._add(TimelineEntry(as_trigger(at), "inject", fault,
                                       tuple(targets), tag=tag))

    def recover(self, at: float | Trigger, fault: str | int,
                targets: Sequence[str], *, tag: str = "") -> "FaultSchedule":
        """Recover ``fault`` on ``targets`` when ``at`` trips."""
        self._check_injectable(fault)
        return self._add(TimelineEntry(as_trigger(at), "recover", fault,
                                       tuple(targets), tag=tag))

    def set_rate(self, at: float | Trigger, policy: "RatePolicy", *,
                 tag: str = "") -> "FaultSchedule":
        """Swap the workload's rate policy when ``at`` trips."""
        return self._add(TimelineEntry(as_trigger(at), "set_rate",
                                       policy=policy, tag=tag))

    def when(self, trigger: Trigger, fault: str | int,
             targets: Sequence[str], *, kind: str = "inject",
             tag: str = "") -> "FaultSchedule":
        """Condition-triggered entry: fire ``kind`` when ``trigger`` trips.

        Sugar for ``inject``/``recover`` with an explicit trigger — reads
        as the scenario sentence: ``sched.when(MetricAbove("frontend",
        "latency_p99_ms", 800, sustain_s=30), "NetworkLoss", ("frontend",))``.
        """
        if kind == "inject":
            return self.inject(trigger, fault, targets, tag=tag)
        if kind == "recover":
            return self.recover(trigger, fault, targets, tag=tag)
        raise ValueError(f"when() supports inject/recover, got {kind!r}")

    def after(self, tag: str, fault: str | int, targets: Sequence[str], *,
              delay: float = 0.0, kind: str = "inject",
              new_tag: str = "") -> "FaultSchedule":
        """Chain an entry ``delay`` seconds after the entry tagged ``tag``
        fires — however that entry was triggered."""
        return self.when(AfterEvent(tag, delay), fault, targets, kind=kind,
                         tag=new_tag)

    # -- canned shapes -------------------------------------------------
    @classmethod
    def delayed(cls, fault: str | int, targets: Sequence[str],
                delay: float) -> "FaultSchedule":
        """A single fault whose onset is ``delay`` seconds after arming."""
        return cls().inject(delay, fault, targets)

    @classmethod
    def flapping(cls, fault: str | int, targets: Sequence[str], *,
                 start: float = 0.0, period: float = 30.0,
                 on_for: float = 15.0, cycles: int = 4) -> "FaultSchedule":
        """An intermittent fault: ``cycles`` inject/recover pairs, each
        cycle ``period`` seconds long with the fault live for ``on_for``."""
        if not 0 < on_for < period:
            raise ValueError(
                f"need 0 < on_for < period, got on_for={on_for}, "
                f"period={period}")
        if cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {cycles}")
        sched = cls()
        for k in range(cycles):
            t0 = start + k * period
            sched.inject(t0, fault, targets)
            sched.recover(t0 + on_for, fault, targets)
        return sched

    @classmethod
    def cascade(cls, steps: Sequence[tuple[float, str | int, Sequence[str]]],
                ) -> "FaultSchedule":
        """Multiple faults unfolding in stages: ``(at, fault, targets)``."""
        sched = cls()
        for at, fault, targets in steps:
            sched.inject(at, fault, targets)
        return sched

    @classmethod
    def load_triggered(cls, trigger: MetricTrigger, fault: str | int,
                       targets: Sequence[str]) -> "FaultSchedule":
        """A single fault that lands once the system crosses a telemetry
        threshold — the "fires because the system is already degraded"
        shape the ROADMAP calls for."""
        return cls().when(trigger, fault, targets)

    # -- properties ----------------------------------------------------
    @property
    def duration(self) -> float:
        """Offset of the last *time-triggered* entry (0 if none); metric
        and chained entries have no a-priori fire time."""
        ats = [e.at for e in self.entries if e.at is not None]
        return max(ats) if ats else 0.0

    def _validate_chains(self) -> None:
        """Arm-time validation: AfterEvent tags must resolve, acyclically."""
        tags = {e.tag for e in self.entries if e.tag}
        upstream: dict[int, str] = {}
        for i, e in enumerate(self.entries):
            if isinstance(e.trigger, AfterEvent):
                if e.trigger.tag not in tags:
                    raise ValueError(
                        f"AfterEvent references unknown tag "
                        f"{e.trigger.tag!r}")
                upstream[i] = e.trigger.tag
        # cycle check: follow tag → entry → its upstream tag
        by_tag = {e.tag: i for i, e in enumerate(self.entries) if e.tag}
        for start in upstream:
            seen = {start}
            i = start
            while i in upstream:
                i = by_tag[upstream[i]]
                if i in seen:
                    raise ValueError(
                        "AfterEvent chain forms a cycle through tag "
                        f"{self.entries[i].tag!r} — it could never fire")
                seen.add(i)

    def arm(self, env: "CloudEnvironment") -> "ArmedSchedule":
        """Bind the timeline to ``env``: time entries become queue events,
        metric entries become scrape-evaluated watches, chained entries
        wait for their upstream tag."""
        self._validate_chains()
        return ArmedSchedule(self, env)


class ArmedSchedule:
    """A :class:`FaultSchedule` bound to one environment's event queue.

    Keeps the per-family injectors it creates (so ``recover_all`` can undo
    exactly what was injected), the scheduled events and armed watches (so
    a problem teardown can cancel what hasn't fired yet), and a fired log
    for introspection.

    Arming is trigger-directed:

    * :class:`AtTime` entries are ``schedule_at`` events — byte-for-byte
      the pre-trigger behavior;
    * metric entries register a :class:`MetricWatch` with the collector
      (scrape-time evaluation) **and** attach it to the queue, so span
      planners count the pending trigger as live activity;
    * :class:`AfterEvent` entries are held as dependents of their tag and
      scheduled ``delay`` seconds after the tagged entry fires.
    """

    def __init__(self, schedule: FaultSchedule, env: "CloudEnvironment") -> None:
        self.schedule = schedule
        self.env = env
        self.armed_at = env.clock.now
        self._injectors: dict[str, FaultInjector] = {}
        self.events: list["ScheduledEvent"] = []
        self.watches: list[MetricWatch] = []
        #: tag -> chained entries waiting on it
        self._dependents: dict[str, list[TimelineEntry]] = {}
        #: (virtual time, entry description) for every fired entry
        self.log: list[tuple[float, str]] = []
        for entry in schedule.entries:
            trigger = entry.trigger
            if isinstance(trigger, AtTime):
                self.events.append(env.queue.schedule_at(
                    self.armed_at + trigger.at,
                    lambda e=entry: self._fire(e),
                    label=f"fault.{entry.kind}",
                ))
            elif isinstance(trigger, MetricTrigger):
                self._check_watchable(trigger, env)
                watch = MetricWatch(
                    trigger.service, trigger.metric, trigger.threshold,
                    above=trigger.above, sustain_s=trigger.sustain_s,
                    callback=lambda e=entry: self._fire(e),
                    label=f"fault.{entry.kind}.{trigger.service}",
                )
                env.queue.attach_watch(watch)
                env.collector.add_watch(watch)
                self.watches.append(watch)
            elif isinstance(trigger, AfterEvent):
                self._dependents.setdefault(trigger.tag, []).append(entry)
            else:  # pragma: no cover - as_trigger rejects unknown kinds
                raise TypeError(f"unsupported trigger {trigger!r}")

    @staticmethod
    def _check_watchable(trigger: MetricTrigger, env: "CloudEnvironment") -> None:
        """Fail at arm time, not silently-never-fire time: a typo'd
        service or metric name would otherwise skip evaluation at every
        scrape forever (the collector cannot tell 'not scraped yet' from
        'does not exist')."""
        from repro.telemetry.metrics import MetricStore
        if trigger.service not in env.app.services:
            raise ValueError(
                f"metric trigger watches unknown service "
                f"{trigger.service!r} (not in {env.app.name}'s services)")
        if trigger.metric not in MetricStore.STANDARD_METRICS:
            raise ValueError(
                f"metric trigger watches unknown metric {trigger.metric!r}; "
                f"scrapes record {MetricStore.STANDARD_METRICS}")

    # -- firing --------------------------------------------------------
    def _injector_for(self, spec: FaultSpec) -> FaultInjector:
        cls = INJECTOR_CLASSES[spec.injector]
        key = spec.injector
        if key not in self._injectors:
            self._injectors[key] = cls(self.env.app)
        return self._injectors[key]

    def _fire(self, entry: TimelineEntry) -> None:
        if entry.kind == "set_rate":
            self.env.driver.policy = entry.policy
        else:
            spec = resolve_fault_spec(entry.fault)
            injector = self._injector_for(spec)
            if entry.kind == "inject":
                injector._inject(list(entry.targets), spec.fault_key)
            else:
                injector._recover(list(entry.targets), spec.fault_key)
        now = self.env.clock.now
        self.log.append((now, entry.describe()))
        if entry.tag:
            self._release_dependents(entry.tag, now)

    def _release_dependents(self, tag: str, now: float) -> None:
        """Schedule every entry chained off ``tag`` at ``now + delay``."""
        for dep in self._dependents.pop(tag, ()):
            delay = dep.trigger.delay  # type: ignore[union-attr]
            self.events.append(self.env.queue.schedule_at(
                now + delay,
                lambda e=dep: self._fire(e),
                label=f"fault.{dep.kind}",
            ))

    # -- teardown ------------------------------------------------------
    @property
    def pending(self) -> int:
        """Timeline entries that have not fired yet: unfired events,
        pending watches, and chained entries still waiting on their tag."""
        events = sum(1 for ev in self.events
                     if not ev.fired and not ev.cancelled)
        watches = sum(1 for w in self.watches if w.pending)
        chained = sum(len(deps) for deps in self._dependents.values())
        return events + watches + chained

    def cancel_pending(self) -> None:
        """Cancel every entry that has not fired yet."""
        for ev in self.events:
            ev.cancel()
        for watch in self.watches:
            watch.cancel()
            self.env.collector.remove_watch(watch)
        self._dependents.clear()

    def recover_all(self) -> None:
        """Undo every live injection made by this schedule."""
        for injector in self._injectors.values():
            injector.recover_all()
