"""Scheduled fault timelines: faults as events on the environment kernel.

A :class:`FaultSchedule` is a declarative timeline — inject *this* fault at
t=45, recover it at t=60, swap the workload's rate policy at t=120 — that
:meth:`FaultSchedule.arm` turns into scheduled events on an environment's
:class:`~repro.simcore.events.EventQueue`.  Because the environment only
moves through ``advance()`` (which runs the queue), the timeline fires
*while the agent is working*: delayed-onset faults appear mid-session,
flapping faults come and go between probes, and cascades unfold in stages.

Builders cover the paper-motivated shapes:

* :meth:`FaultSchedule.delayed` — single fault with onset delay;
* :meth:`FaultSchedule.flapping` — intermittent inject/recover cycles;
* :meth:`FaultSchedule.cascade` — multiple faults at staggered times;
* :meth:`FaultSchedule.set_rate` — time-varying workload (diurnal/burst
  policies taking over at a scheduled moment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.faults.base import FaultInjector
from repro.faults.functional import ApplicationFaultInjector, VirtFaultInjector
from repro.faults.library import FAULT_LIBRARY, FaultSpec, get_fault_spec
from repro.faults.symptomatic import SymptomaticFaultInjector

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.env import CloudEnvironment
    from repro.simcore import ScheduledEvent
    from repro.workload.policies import RatePolicy

#: the one injector-family → class mapping (problems and schedules share it)
INJECTOR_CLASSES: dict[str, type[FaultInjector]] = {
    "virt": VirtFaultInjector,
    "app": ApplicationFaultInjector,
    "symptomatic": SymptomaticFaultInjector,
}


def resolve_fault_spec(fault: str | int) -> FaultSpec:
    """Resolve a fault by Table-2 number, name, or injector ``fault_key``."""
    try:
        return get_fault_spec(fault)
    except KeyError:
        for spec in FAULT_LIBRARY:
            if spec.fault_key and spec.fault_key == fault:
                return spec
        raise


@dataclass(frozen=True)
class TimelineEntry:
    """One scheduled step of a fault timeline.

    ``at`` is the offset in virtual seconds from the moment the schedule
    is armed; ``kind`` is ``"inject"``, ``"recover"`` or ``"set_rate"``.
    """

    at: float
    kind: str
    fault: str | int = ""
    targets: tuple[str, ...] = ()
    policy: Optional["RatePolicy"] = None

    def describe(self) -> str:
        if self.kind == "set_rate":
            return f"set_rate {type(self.policy).__name__}"
        return f"{self.kind} {self.fault} -> {list(self.targets)}"


class FaultSchedule:
    """A declarative, composable fault timeline (see module docstring)."""

    def __init__(self, entries: Sequence[TimelineEntry] = ()) -> None:
        self.entries: list[TimelineEntry] = []
        for entry in entries:  # pre-built entries get the builders' checks
            if entry.kind in ("inject", "recover"):
                self._check_injectable(entry.fault)
            elif entry.kind != "set_rate":
                raise ValueError(f"unknown timeline kind {entry.kind!r}")
            self._add(entry)

    # -- chainable builders --------------------------------------------
    def _add(self, entry: TimelineEntry) -> "FaultSchedule":
        if entry.at < 0:
            raise ValueError(f"timeline offsets must be >= 0, got {entry.at}")
        self.entries.append(entry)
        self.entries.sort(key=lambda e: e.at)
        return self

    @staticmethod
    def _check_injectable(fault: str | int) -> None:
        """Fail at build time, not event-fire time, for bad faults."""
        spec = resolve_fault_spec(fault)  # raises KeyError on unknown
        if spec.injector not in INJECTOR_CLASSES:
            raise ValueError(
                f"fault {spec.name!r} has no injector "
                f"(injector={spec.injector!r}) and cannot be scheduled")

    def inject(self, at: float, fault: str | int,
               targets: Sequence[str]) -> "FaultSchedule":
        """Inject ``fault`` into ``targets`` ``at`` seconds after arming."""
        self._check_injectable(fault)
        return self._add(TimelineEntry(at, "inject", fault, tuple(targets)))

    def recover(self, at: float, fault: str | int,
                targets: Sequence[str]) -> "FaultSchedule":
        """Recover ``fault`` on ``targets`` ``at`` seconds after arming."""
        self._check_injectable(fault)
        return self._add(TimelineEntry(at, "recover", fault, tuple(targets)))

    def set_rate(self, at: float, policy: "RatePolicy") -> "FaultSchedule":
        """Swap the workload's rate policy ``at`` seconds after arming."""
        return self._add(TimelineEntry(at, "set_rate", policy=policy))

    # -- canned shapes -------------------------------------------------
    @classmethod
    def delayed(cls, fault: str | int, targets: Sequence[str],
                delay: float) -> "FaultSchedule":
        """A single fault whose onset is ``delay`` seconds after arming."""
        return cls().inject(delay, fault, targets)

    @classmethod
    def flapping(cls, fault: str | int, targets: Sequence[str], *,
                 start: float = 0.0, period: float = 30.0,
                 on_for: float = 15.0, cycles: int = 4) -> "FaultSchedule":
        """An intermittent fault: ``cycles`` inject/recover pairs, each
        cycle ``period`` seconds long with the fault live for ``on_for``."""
        if not 0 < on_for < period:
            raise ValueError(
                f"need 0 < on_for < period, got on_for={on_for}, "
                f"period={period}")
        if cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {cycles}")
        sched = cls()
        for k in range(cycles):
            t0 = start + k * period
            sched.inject(t0, fault, targets)
            sched.recover(t0 + on_for, fault, targets)
        return sched

    @classmethod
    def cascade(cls, steps: Sequence[tuple[float, str | int, Sequence[str]]],
                ) -> "FaultSchedule":
        """Multiple faults unfolding in stages: ``(at, fault, targets)``."""
        sched = cls()
        for at, fault, targets in steps:
            sched.inject(at, fault, targets)
        return sched

    # -- properties ----------------------------------------------------
    @property
    def duration(self) -> float:
        """Offset of the last timeline entry (0 for an empty schedule)."""
        return self.entries[-1].at if self.entries else 0.0

    def arm(self, env: "CloudEnvironment") -> "ArmedSchedule":
        """Schedule every entry on ``env.queue`` relative to ``env`` now."""
        return ArmedSchedule(self, env)


class ArmedSchedule:
    """A :class:`FaultSchedule` bound to one environment's event queue.

    Keeps the per-family injectors it creates (so ``recover_all`` can undo
    exactly what was injected), the scheduled events (so a problem teardown
    can cancel what hasn't fired yet), and a fired log for introspection.
    """

    def __init__(self, schedule: FaultSchedule, env: "CloudEnvironment") -> None:
        self.schedule = schedule
        self.env = env
        self.armed_at = env.clock.now
        self._injectors: dict[str, FaultInjector] = {}
        self.events: list["ScheduledEvent"] = []
        #: (virtual time, entry description) for every fired entry
        self.log: list[tuple[float, str]] = []
        for entry in schedule.entries:
            ev = env.queue.schedule_at(
                self.armed_at + entry.at,
                lambda e=entry: self._fire(e),
                label=f"fault.{entry.kind}",
            )
            self.events.append(ev)

    # -- firing --------------------------------------------------------
    def _injector_for(self, spec: FaultSpec) -> FaultInjector:
        cls = INJECTOR_CLASSES[spec.injector]
        key = spec.injector
        if key not in self._injectors:
            self._injectors[key] = cls(self.env.app)
        return self._injectors[key]

    def _fire(self, entry: TimelineEntry) -> None:
        if entry.kind == "set_rate":
            self.env.driver.policy = entry.policy
        else:
            spec = resolve_fault_spec(entry.fault)
            injector = self._injector_for(spec)
            if entry.kind == "inject":
                injector._inject(list(entry.targets), spec.fault_key)
            else:
                injector._recover(list(entry.targets), spec.fault_key)
        self.log.append((self.env.clock.now, entry.describe()))

    # -- teardown ------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of timeline entries that have not fired yet."""
        return sum(1 for ev in self.events
                   if not ev.fired and not ev.cancelled)

    def cancel_pending(self) -> None:
        """Cancel every entry that has not fired yet."""
        for ev in self.events:
            ev.cancel()

    def recover_all(self) -> None:
        """Undo every live injection made by this schedule."""
        for injector in self._injectors.values():
            injector.recover_all()
