"""Fault injector base class and bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.apps.base import App
from repro.simcore import InvalidAction


@dataclass
class InjectedFault:
    """A live injection, kept so ``recover`` can undo exactly what was done."""

    fault_name: str
    targets: list[str]
    injected_at: float
    saved_state: dict[str, Any] = field(default_factory=dict)
    active: bool = True


class FaultInjector:
    """Base class for all injectors.

    An injector is bound to a deployed :class:`App` and mutates the app,
    its cluster objects, or its backends.  Subclasses implement
    ``inject_<fault>`` / ``recover_<fault>`` method pairs; the generic
    :meth:`_inject` / :meth:`_recover` dispatchers resolve them by name —
    the interface Example 2.4 of the paper shows
    (``injector._inject(["mongodb-geo"], "revoke_auth")``).
    """

    def __init__(self, app: App) -> None:
        if app.cluster is None or app.runtime is None:
            raise InvalidAction(
                f"app {app.name!r} must be deployed before faults can be injected"
            )
        self.app = app
        self.cluster = app.cluster
        self.runtime = app.runtime
        self.live: list[InjectedFault] = []

    @property
    def namespace(self) -> str:
        return self.app.namespace

    # -- generic dispatch --------------------------------------------------
    def _inject(self, targets: list[str], fault_name: str) -> InjectedFault:
        method = getattr(self, f"inject_{fault_name}", None)
        if method is None:
            raise InvalidAction(
                f"{type(self).__name__} does not provide fault {fault_name!r}"
            )
        record = InjectedFault(
            fault_name=fault_name,
            targets=list(targets),
            injected_at=self.cluster.clock.now,
        )
        method(targets, record)
        self.live.append(record)
        return record

    def _recover(self, targets: list[str], fault_name: str) -> None:
        method = getattr(self, f"recover_{fault_name}", None)
        if method is None:
            raise InvalidAction(
                f"{type(self).__name__} cannot recover fault {fault_name!r}"
            )
        for record in self.live:
            if record.fault_name == fault_name and record.active \
                    and record.targets == list(targets):
                method(targets, record)
                record.active = False
                return
        # No matching live record: recover with an empty record (idempotent).
        method(targets, InjectedFault(fault_name, list(targets), 0.0))

    def recover_all(self) -> None:
        """Undo every live injection (newest first)."""
        for record in reversed(self.live):
            if record.active:
                method = getattr(self, f"recover_{record.fault_name}")
                method(record.targets, record)
                record.active = False

    # -- shared helpers -----------------------------------------------------
    def _restamp(self, deployment_name: str) -> None:
        """Recreate a deployment's pods from its (possibly edited) template."""
        dep = self.cluster.get_deployment(self.namespace, deployment_name)
        for pod in self.cluster.pods_for_deployment(dep):
            del self.cluster.pods[(pod.namespace, pod.name)]
        dep.generation += 1
        self.cluster.reconcile()
