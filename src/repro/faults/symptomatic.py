"""Symptomatic faults (§2.4.2): observable symptoms, no deeper root cause."""

from __future__ import annotations

from repro.faults.base import FaultInjector, InjectedFault
from repro.faults.chaosmesh import ChaosMesh, NetworkChaos, PodChaos


class SymptomaticFaultInjector(FaultInjector):
    """Network loss and pod failure, applied through :class:`ChaosMesh`."""

    DEFAULT_LOSS = 0.7

    def __init__(self, app) -> None:
        super().__init__(app)
        self.chaos = ChaosMesh(app)

    # -- network loss -------------------------------------------------------
    def inject_network_loss(self, targets: list[str],
                            record: InjectedFault) -> None:
        """Drop ~70% of packets destined for the target services."""
        name = f"network-loss-{'-'.join(targets)}"
        self.chaos.apply(NetworkChaos(name=name, services=list(targets),
                                      loss=self.DEFAULT_LOSS))
        record.saved_state["resource"] = name

    def recover_network_loss(self, targets: list[str],
                             record: InjectedFault) -> None:
        name = record.saved_state.get(
            "resource", f"network-loss-{'-'.join(targets)}")
        if name in self.chaos.applied:
            self.chaos.delete(name)
        else:  # recovery without a live record: clear state directly
            for svc in targets:
                self.runtime.network_loss.pop(svc, None)

    # -- pod failure ----------------------------------------------------------
    def inject_pod_failure(self, targets: list[str],
                           record: InjectedFault) -> None:
        """Force the targets' pods into CrashLoopBackOff."""
        name = f"pod-failure-{'-'.join(targets)}"
        self.chaos.apply(PodChaos(name=name, services=list(targets)))
        record.saved_state["resource"] = name

    def recover_pod_failure(self, targets: list[str],
                            record: InjectedFault) -> None:
        name = record.saved_state.get(
            "resource", f"pod-failure-{'-'.join(targets)}")
        if name in self.chaos.applied:
            self.chaos.delete(name)
        else:
            for svc in targets:
                self.chaos._set_pod_failure(svc, failing=False)
