"""Task-oriented fault library (§2.4).

Two families, mirroring Figure 3:

* **Symptomatic** faults (ChaosMesh-style): network loss, pod failure —
  observable symptoms without a deeper root cause; they instantiate
  detection/localization problems only.
* **Functional** faults: misconfigurations and operation errors with a
  fine-grained root cause — missing/revoked authentication, target-port
  misconfig, buggy images, bad scaling, impossible node assignment.  These
  instantiate problems at all four task levels, including mitigation.

Every fault provides both ``inject`` and ``recover`` (§2.4.3: "AIOpsLab
provides the injection function ... and offers the corresponding mitigation
mechanism").
"""

from repro.faults.base import FaultInjector, InjectedFault
from repro.faults.chaosmesh import ChaosMesh, NetworkChaos, PodChaos
from repro.faults.symptomatic import SymptomaticFaultInjector
from repro.faults.functional import (
    ApplicationFaultInjector,
    VirtFaultInjector,
)
from repro.faults.library import FaultSpec, FAULT_LIBRARY, get_fault_spec
from repro.faults.schedule import (
    INJECTOR_CLASSES,
    ArmedSchedule,
    FaultSchedule,
    TimelineEntry,
    resolve_fault_spec,
)
from repro.faults.triggers import (
    AfterEvent,
    AtTime,
    MetricAbove,
    MetricBelow,
    MetricTrigger,
    Trigger,
    as_trigger,
)

__all__ = [
    "INJECTOR_CLASSES",
    "ArmedSchedule",
    "FaultSchedule",
    "TimelineEntry",
    "resolve_fault_spec",
    "Trigger",
    "AtTime",
    "MetricTrigger",
    "MetricAbove",
    "MetricBelow",
    "AfterEvent",
    "as_trigger",
    "FaultInjector",
    "InjectedFault",
    "ChaosMesh",
    "NetworkChaos",
    "PodChaos",
    "SymptomaticFaultInjector",
    "ApplicationFaultInjector",
    "VirtFaultInjector",
    "FaultSpec",
    "FAULT_LIBRARY",
    "get_fault_spec",
]
