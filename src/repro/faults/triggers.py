"""Triggers: first-class "when does a timeline entry fire" conditions.

The original :class:`~repro.faults.schedule.FaultSchedule` could only fire
entries at wall-clock offsets — a float.  The paper's hardest incidents
are ones where symptoms and faults *interact*: a fault fires because the
system is already degraded.  That needs conditions, not timestamps, so
*when* an entry fires is now a :class:`Trigger`:

* :class:`AtTime` — a fixed offset from arm time (the original behavior;
  time-based schedules are bit-identical through this path);
* :class:`MetricAbove` / :class:`MetricBelow` — a telemetry threshold
  evaluated at scrape time via a
  :class:`~repro.telemetry.watch.MetricWatch` ("once frontend p99 exceeds
  800 ms for 30 s"), optionally sustained;
* :class:`AfterEvent` — chains off another entry's firing by tag ("20 s
  after the auth revocation landed"), regardless of *why* that entry
  fired.

Composed, these express closed-loop scenarios: *inject network loss on
the frontend once p99 > 800 ms for 30 s, then cascade to geo when the
error rate crosses 5/s*.
"""

from __future__ import annotations

from dataclasses import dataclass


class Trigger:
    """Base class for timeline firing conditions."""

    def describe(self) -> str:  # pragma: no cover - overridden
        return type(self).__name__


@dataclass(frozen=True)
class AtTime(Trigger):
    """Fire at a fixed offset (virtual seconds) after the schedule is armed."""

    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"timeline offsets must be >= 0, got {self.at}")

    def describe(self) -> str:
        return f"t+{self.at:g}s"


@dataclass(frozen=True)
class MetricTrigger(Trigger):
    """Base for scrape-evaluated threshold conditions.

    ``sustain_s`` demands the condition hold at every scrape across a
    window of at least that many virtual seconds before firing; ``0``
    fires at the first satisfying scrape.  Firing is scrape-bounded: the
    entry lands during the scrape whose values satisfied the condition.

    ``namespace`` names the application whose telemetry is watched — in a
    multi-app environment the *watched* app need not be the app the entry
    acts on (cross-app triggers: a threshold on app A's metrics firing a
    fault into app B).  Empty means "resolve at arm time": the service
    name is looked up across the environment's hosted apps and must be
    unambiguous.
    """

    service: str
    metric: str
    threshold: float
    sustain_s: float = 0.0
    namespace: str = ""

    #: direction of the comparison; fixed per subclass
    above: bool = True

    def __post_init__(self) -> None:
        if self.sustain_s < 0:
            raise ValueError(
                f"sustain_s must be >= 0, got {self.sustain_s}")

    def describe(self) -> str:
        op = ">" if self.above else "<"
        sustain = f" for {self.sustain_s:g}s" if self.sustain_s else ""
        where = f"{self.namespace}/" if self.namespace else ""
        return (f"when {where}{self.service}.{self.metric} {op} "
                f"{self.threshold:g}{sustain}")


@dataclass(frozen=True)
class MetricAbove(MetricTrigger):
    """Fire when ``service.metric`` rises strictly above ``threshold``."""

    above: bool = True


@dataclass(frozen=True)
class MetricBelow(MetricTrigger):
    """Fire when ``service.metric`` drops strictly below ``threshold``."""

    above: bool = False


@dataclass(frozen=True)
class AfterEvent(Trigger):
    """Fire ``delay`` seconds after the entry tagged ``tag`` fires.

    Chains are transitive (an :class:`AfterEvent` entry may itself carry a
    tag that further entries chain off) and condition-agnostic: the
    upstream entry may be time-, metric- or chain-triggered.  Unknown tags
    and cyclic chains are rejected when the schedule is armed.
    """

    tag: str
    delay: float = 0.0

    def __post_init__(self) -> None:
        if not self.tag:
            raise ValueError("AfterEvent needs a non-empty tag")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")

    def describe(self) -> str:
        suffix = f" + {self.delay:g}s" if self.delay else ""
        return f"after [{self.tag}]{suffix}"


def as_trigger(when: "float | int | Trigger") -> Trigger:
    """Coerce the schedule builders' ``at`` argument: floats stay the
    original offset semantics, triggers pass through."""
    if isinstance(when, Trigger):
        return when
    if isinstance(when, (int, float)) and not isinstance(when, bool):
        return AtTime(float(when))
    raise TypeError(
        f"expected a number of seconds or a Trigger, got {when!r}")
