"""The fault registry — Table 2 of the paper, as data.

Each :class:`FaultSpec` records which application the fault applies to,
which task levels it can instantiate, its category, its extensibility
rating, and the injector entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FaultSpec:
    """One row of Table 2."""

    number: int
    name: str
    fault_key: str               # injector method suffix ("" for noop)
    injector: str                # "virt" | "app" | "symptomatic" | "none"
    application: str             # "HotelReservation" | "SocialNetwork" | "both"
    task_levels: tuple[int, ...] # 1=detect, 2=localize, 3=rca, 4=mitigate
    category: str                # "Functional Virtualization" | ...
    extensibility: str           # "full" | "partial" | "none"
    description: str
    #: default injection targets per application
    targets: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: RCA ground truth: (system level, fault type)
    rca_system_level: str = ""
    rca_fault_type: str = ""


FAULT_LIBRARY: tuple[FaultSpec, ...] = (
    FaultSpec(
        number=1, name="AuthenticationMissing", fault_key="auth_missing",
        injector="virt", application="HotelReservation", task_levels=(1, 2, 3, 4),
        category="Functional Virtualization", extensibility="partial",
        description="Missing authentication credentials cause access denial "
                    "to MongoDB.",
        targets={"HotelReservation": ("mongodb-rate",)},
        rca_system_level="virtualization", rca_fault_type="misconfiguration",
    ),
    FaultSpec(
        number=2, name="TargetPortMisconfig", fault_key="misconfig_k8s",
        injector="virt", application="SocialNetwork", task_levels=(1, 2, 3, 4),
        category="Functional Virtualization", extensibility="full",
        description="The service cannot connect to the specified port due to "
                    "misconfiguration.",
        targets={"SocialNetwork": ("user-service", "text-service",
                                   "post-storage-service")},
        rca_system_level="virtualization", rca_fault_type="misconfiguration",
    ),
    FaultSpec(
        number=3, name="RevokeAuth", fault_key="revoke_auth",
        injector="app", application="HotelReservation", task_levels=(1, 2, 3, 4),
        category="Functional Application", extensibility="partial",
        description="Revoked authentication causes database connection failure.",
        targets={"HotelReservation": ("mongodb-geo", "mongodb-profile")},
        rca_system_level="application", rca_fault_type="operation_error",
    ),
    FaultSpec(
        number=4, name="UserUnregistered", fault_key="user_unregistered",
        injector="app", application="HotelReservation", task_levels=(1, 2, 3, 4),
        category="Functional Application", extensibility="partial",
        description="The database service has access failures after the user "
                    "was unregistered.",
        targets={"HotelReservation": ("mongodb-user", "mongodb-reservation")},
        rca_system_level="application", rca_fault_type="operation_error",
    ),
    FaultSpec(
        number=5, name="BuggyAppImage", fault_key="buggy_app_image",
        injector="app", application="HotelReservation", task_levels=(1, 2, 3, 4),
        category="Functional Application", extensibility="none",
        description="Connection code bug in the application image causes "
                    "access issues.",
        targets={"HotelReservation": ("geo",)},
        rca_system_level="application", rca_fault_type="code_bug",
    ),
    FaultSpec(
        number=6, name="ScalePod", fault_key="scale_pod_zero",
        injector="virt", application="SocialNetwork", task_levels=(1, 2, 3, 4),
        category="Functional Virtualization", extensibility="full",
        description="Incorrect scaling operation makes the number of pods "
                    "zero for a service.",
        targets={"SocialNetwork": ("compose-post-service",)},
        rca_system_level="virtualization", rca_fault_type="operation_error",
    ),
    FaultSpec(
        number=7, name="AssignNonExistentNode",
        fault_key="assign_to_non_existent_node",
        injector="virt", application="SocialNetwork", task_levels=(1, 2, 3, 4),
        category="Functional Virtualization", extensibility="full",
        description="Pod in a pending/failure status due to wrong assignment "
                    "to a non-existent node.",
        targets={"SocialNetwork": ("user-timeline-service",)},
        rca_system_level="virtualization", rca_fault_type="misconfiguration",
    ),
    FaultSpec(
        number=8, name="NetworkLoss", fault_key="network_loss",
        injector="symptomatic", application="HotelReservation",
        task_levels=(1, 2),
        category="Symptomatic", extensibility="full",
        description="Network loss causes communication failures for a "
                    "specific service.",
        targets={"HotelReservation": ("search",)},
        rca_system_level="network", rca_fault_type="network_loss",
    ),
    FaultSpec(
        number=9, name="PodFailure", fault_key="pod_failure",
        injector="symptomatic", application="HotelReservation",
        task_levels=(1, 2),
        category="Symptomatic", extensibility="full",
        description="Service interruption due to a pod failure.",
        targets={"HotelReservation": ("recommendation",)},
        rca_system_level="virtualization", rca_fault_type="pod_failure",
    ),
    FaultSpec(
        number=10, name="Noop", fault_key="", injector="none",
        application="both", task_levels=(1,),
        category="-", extensibility="full",
        description="No faults injected into the system.",
        targets={"HotelReservation": (), "SocialNetwork": ()},
    ),
)


def get_fault_spec(name_or_number: str | int) -> FaultSpec:
    """Look a fault up by its Table-2 number or name."""
    for spec in FAULT_LIBRARY:
        if spec.number == name_or_number or spec.name == name_or_number:
            return spec
    raise KeyError(f"no fault {name_or_number!r} in the library")
