"""Functional faults (§2.4.3): fine-grained root causes agents must diagnose.

Two injectors, matching the paper's split:

* :class:`VirtFaultInjector` — virtualization-level faults
  (Kubernetes misconfiguration/operation errors): target-port misconfig,
  scale-to-zero, assignment to a non-existent node, and the
  missing-authentication helm misconfiguration.
* :class:`ApplicationFaultInjector` — application-level faults:
  revoked MongoDB privileges, unregistered users, buggy container images.
"""

from __future__ import annotations

from repro.faults.base import FaultInjector, InjectedFault
from repro.services.backends import MongoBackend
from repro.simcore import InvalidAction


class VirtFaultInjector(FaultInjector):
    """Kubernetes-layer misconfigurations and operation errors."""

    NONEXISTENT_NODE = "node-7"  # never created by any app deployment

    # -- Fault 2: TargetPortMisconfig ------------------------------------
    def inject_misconfig_k8s(self, targets: list[str],
                             record: InjectedFault) -> None:
        """Point each target service's targetPort at a port nothing listens on."""
        saved = {}
        for name in targets:
            svc = self.cluster.get_service(self.namespace, name)
            saved[name] = [p.target_port for p in svc.ports]
            for p in svc.ports:
                p.target_port = p.target_port + 1000
        record.saved_state["target_ports"] = saved
        self.cluster.reconcile()

    def recover_misconfig_k8s(self, targets: list[str],
                              record: InjectedFault) -> None:
        saved = record.saved_state.get("target_ports", {})
        for name in targets:
            svc = self.cluster.get_service(self.namespace, name)
            original = saved.get(name)
            for i, p in enumerate(svc.ports):
                if original and i < len(original):
                    p.target_port = original[i]
                else:
                    # Fall back to the app's declared container port.
                    ms = self.app.services.get(name)
                    p.target_port = ms.port if ms else p.port
        self.cluster.reconcile()

    # -- Fault 6: ScalePod --------------------------------------------------
    def inject_scale_pod_zero(self, targets: list[str],
                              record: InjectedFault) -> None:
        """Incorrect scaling operation: replicas → 0."""
        saved = {}
        for name in targets:
            dep = self.cluster.get_deployment(self.namespace, name)
            saved[name] = dep.replicas
            self.cluster.scale_deployment(self.namespace, name, 0)
        record.saved_state["replicas"] = saved

    def recover_scale_pod_zero(self, targets: list[str],
                               record: InjectedFault) -> None:
        saved = record.saved_state.get("replicas", {})
        for name in targets:
            self.cluster.scale_deployment(self.namespace, name,
                                          saved.get(name, 1))

    # -- Fault 7: AssignNonExistentNode ------------------------------------
    def inject_assign_to_non_existent_node(self, targets: list[str],
                                           record: InjectedFault) -> None:
        """Pin the targets' pods to a node that does not exist → Pending."""
        saved = {}
        for name in targets:
            dep = self.cluster.get_deployment(self.namespace, name)
            saved[name] = dep.template.node_name
            dep.template.node_name = self.NONEXISTENT_NODE
            self._restamp(name)
        record.saved_state["node_names"] = saved

    def recover_assign_to_non_existent_node(self, targets: list[str],
                                            record: InjectedFault) -> None:
        saved = record.saved_state.get("node_names", {})
        for name in targets:
            dep = self.cluster.get_deployment(self.namespace, name)
            dep.template.node_name = saved.get(name)
            self._restamp(name)

    # -- Fault 1: AuthenticationMissing --------------------------------------
    def inject_auth_missing(self, targets: list[str],
                            record: InjectedFault) -> None:
        """Remove the Mongo credentials from the helm release values.

        The client services then connect with no credentials and every
        request fails the SCRAM handshake — access denial to MongoDB.
        """
        helm = self.app.helm
        if helm is None:
            raise InvalidAction("app has no helm release")
        release = helm.releases[self.app.release_name]
        saved = {}
        for name in targets:
            saved[name] = release.values.get("mongo_credentials", {}).get(name)
            release.values.setdefault("mongo_credentials", {})[name] = None
        record.saved_state["credentials"] = saved

    def recover_auth_missing(self, targets: list[str],
                             record: InjectedFault) -> None:
        helm = self.app.helm
        if helm is None:
            raise InvalidAction("app has no helm release")
        release = helm.releases[self.app.release_name]
        saved = record.saved_state.get("credentials", {})
        defaults = self.app.default_values().get("mongo_credentials", {})
        for name in targets:
            restored = saved.get(name) or defaults.get(name)
            release.values.setdefault("mongo_credentials", {})[name] = restored


class ApplicationFaultInjector(FaultInjector):
    """Application-layer faults against the simulated backends/images."""

    def _mongo(self, name: str) -> MongoBackend:
        backend = self.app.backends.get(name)
        if not isinstance(backend, MongoBackend):
            raise InvalidAction(f"{name!r} is not a MongoDB service")
        return backend

    def _admin_user(self, mongo_name: str) -> tuple[str, str]:
        entry = self.app.default_values().get("mongo_credentials", {}).get(mongo_name)
        if not entry:
            return ("admin", "admin")
        return (entry["username"], entry.get("password", ""))

    # -- Fault 3: RevokeAuth -----------------------------------------------
    def inject_revoke_auth(self, targets: list[str],
                           record: InjectedFault) -> None:
        """Revoke MongoDB admin privileges (Figure 4's fault)."""
        saved = {}
        for name in targets:
            backend = self._mongo(name)
            user, _ = self._admin_user(name)
            existing = backend.users.get(user)
            saved[name] = set(existing.roles) if existing else set()
            backend.revoke_roles(user)
        record.saved_state["roles"] = saved

    def recover_revoke_auth(self, targets: list[str],
                            record: InjectedFault) -> None:
        saved = record.saved_state.get("roles", {})
        for name in targets:
            backend = self._mongo(name)
            user, pw = self._admin_user(name)
            if user not in backend.users:
                backend.create_user(user, pw)
            backend.grant_roles(
                user, saved.get(name) or {"readWrite", "dbAdmin"})

    # -- Fault 4: UserUnregistered --------------------------------------------
    def inject_user_unregistered(self, targets: list[str],
                                 record: InjectedFault) -> None:
        """Drop the database user the application authenticates as."""
        saved = {}
        for name in targets:
            backend = self._mongo(name)
            user, pw = self._admin_user(name)
            existing = backend.users.get(user)
            saved[name] = {
                "username": user,
                "password": existing.password if existing else pw,
                "roles": sorted(existing.roles) if existing else ["readWrite"],
            }
            backend.drop_user(user)
        record.saved_state["users"] = saved

    def recover_user_unregistered(self, targets: list[str],
                                  record: InjectedFault) -> None:
        saved = record.saved_state.get("users", {})
        for name in targets:
            backend = self._mongo(name)
            info = saved.get(name)
            if info:
                backend.create_user(info["username"], info["password"],
                                    roles=set(info["roles"]))
            else:
                user, pw = self._admin_user(name)
                backend.create_user(user, pw, roles={"readWrite", "dbAdmin"})

    # -- Fault 5: BuggyAppImage -------------------------------------------------
    def inject_buggy_app_image(self, targets: list[str],
                               record: InjectedFault) -> None:
        """Swap the service's image for one with a connection-code bug."""
        saved = {}
        for name in targets:
            ms = self.app.services.get(name)
            if ms is None:
                raise InvalidAction(f"unknown service {name!r}")
            saved[name] = ms.image
            buggy = ms.image.replace(":latest", "") + ":buggy-v2"
            ms.image = buggy
            dep = self.cluster.get_deployment(self.namespace, name)
            for c in dep.template.containers:
                c.image = buggy
            self._restamp(name)
        record.saved_state["images"] = saved

    def recover_buggy_app_image(self, targets: list[str],
                                record: InjectedFault) -> None:
        saved = record.saved_state.get("images", {})
        for name in targets:
            ms = self.app.services.get(name)
            if ms is None:
                continue
            original = saved.get(name, ms.image.replace(":buggy-v2", ":latest"))
            ms.image = original
            dep = self.cluster.get_deployment(self.namespace, name)
            for c in dep.template.containers:
                c.image = original
            self._restamp(name)
