"""Jaeger-style distributed traces."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Span:
    """One timed unit of work in a trace."""

    span_id: str
    trace_id: str
    parent_id: Optional[str]
    service: str
    operation: str
    start: float
    duration_ms: float
    status: str = "OK"          # OK | ERROR
    error_message: str = ""

    def to_dict(self) -> dict:
        return {
            "spanID": self.span_id,
            "traceID": self.trace_id,
            "parentSpanID": self.parent_id,
            "serviceName": self.service,
            "operationName": self.operation,
            "startTime": self.start,
            "durationMs": self.duration_ms,
            "status": self.status,
            "error": self.error_message,
        }


@dataclass
class Trace:
    """A full request trace (a tree of spans)."""

    trace_id: str
    spans: list[Span] = field(default_factory=list)

    @property
    def root(self) -> Optional[Span]:
        for s in self.spans:
            if s.parent_id is None:
                return s
        return self.spans[0] if self.spans else None

    @property
    def has_error(self) -> bool:
        return any(s.status == "ERROR" for s in self.spans)

    def error_services(self) -> list[str]:
        """Services with error spans, deepest (most likely root cause) first."""
        depth: dict[str, int] = {}
        by_id = {s.span_id: s for s in self.spans}

        def depth_of(s: Span) -> int:
            d = 0
            cur = s
            while cur.parent_id and cur.parent_id in by_id:
                cur = by_id[cur.parent_id]
                d += 1
            return d

        for s in self.spans:
            if s.status == "ERROR":
                depth[s.service] = max(depth.get(s.service, -1), depth_of(s))
        return [svc for svc, _ in sorted(depth.items(), key=lambda kv: -kv[1])]

    def to_dict(self) -> dict:
        return {"traceID": self.trace_id, "spans": [s.to_dict() for s in self.spans]}


class TraceStore:
    """Holds traces with time-window retrieval (the Jaeger query API)."""

    def __init__(self, capacity: int = 50_000) -> None:
        self.capacity = capacity
        self._traces: list[Trace] = []
        self._id_counter = itertools.count(1)

    def __len__(self) -> int:
        return len(self._traces)

    def new_trace_id(self) -> str:
        return f"trace-{next(self._id_counter):08x}"

    def new_span_id(self) -> str:
        return f"span-{next(self._id_counter):08x}"

    def new_span_ids(self, n: int) -> list[str]:
        """``n`` fresh span ids in one call (the batched-exemplar path —
        same counter, same format, one method dispatch)."""
        counter = self._id_counter
        return [f"span-{next(counter):08x}" for _ in range(n)]

    def add(self, trace: Trace) -> None:
        self._traces.append(trace)
        if len(self._traces) > self.capacity:
            del self._traces[: self.capacity // 10]

    def query(
        self, since: Optional[float] = None, until: Optional[float] = None,
        only_errors: bool = False,
    ) -> list[Trace]:
        out = []
        for tr in self._traces:
            root = tr.root
            if root is None:
                continue
            if since is not None and root.start < since:
                continue
            if until is not None and root.start > until:
                continue
            if only_errors and not tr.has_error:
                continue
            out.append(tr)
        return out

    def error_rate_by_service(
        self, since: Optional[float] = None
    ) -> dict[str, float]:
        """Fraction of spans per service that errored in the window."""
        total: dict[str, int] = {}
        errors: dict[str, int] = {}
        for tr in self.query(since=since):
            for s in tr.spans:
                total[s.service] = total.get(s.service, 0) + 1
                if s.status == "ERROR":
                    errors[s.service] = errors.get(s.service, 0) + 1
        return {
            svc: errors.get(svc, 0) / n for svc, n in total.items() if n > 0
        }
