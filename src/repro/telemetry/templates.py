"""Log template mining — a Drain-style fixed-depth clusterer.

Log-based AIOps methods (RMLAD's anomaly detector, production pipelines
behind Logstash) work on *templates* ("failed to call <*> : <*>") rather
than raw lines.  This is a compact reimplementation of the core Drain idea:
group lines by token count and leading tokens, then merge lines whose
token-wise similarity exceeds a threshold, replacing divergent positions
with ``<*>``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Optional

_NUMERIC_RE = re.compile(r"^\d[\d.:%]*$")
WILDCARD = "<*>"


def tokenize(line: str) -> list[str]:
    """Whitespace tokens with bare numbers pre-masked (Drain's heuristic)."""
    return [WILDCARD if _NUMERIC_RE.match(t) else t for t in line.split()]


def similarity(a: list[str], b: list[str]) -> float:
    """Fraction of positions with equal tokens (same-length sequences)."""
    if len(a) != len(b) or not a:
        return 0.0
    return sum(x == y for x, y in zip(a, b)) / len(a)


@dataclass
class LogTemplate:
    """One mined template and its support count."""

    template_id: int
    tokens: list[str]
    count: int = 0

    def render(self) -> str:
        return " ".join(self.tokens)

    def merge(self, tokens: list[str]) -> None:
        """Absorb a line: divergent positions become wildcards."""
        self.tokens = [
            t if t == o else WILDCARD for t, o in zip(self.tokens, tokens)
        ]
        self.count += 1


class TemplateMiner:
    """Fixed-depth template clusterer.

    Parameters
    ----------
    similarity_threshold:
        Minimum token-similarity for a line to join an existing template.
    prefix_depth:
        Number of leading tokens used as the grouping key (Drain's tree
        depth, flattened to a dict key here).
    """

    def __init__(self, similarity_threshold: float = 0.6,
                 prefix_depth: int = 2) -> None:
        if not 0.0 < similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in (0, 1]")
        self.similarity_threshold = similarity_threshold
        self.prefix_depth = prefix_depth
        self._groups: dict[tuple, list[LogTemplate]] = {}
        self._next_id = 1
        self.templates: dict[int, LogTemplate] = {}

    def _key(self, tokens: list[str]) -> tuple:
        prefix = tuple(tokens[: self.prefix_depth])
        return (len(tokens), prefix)

    def add(self, line: str) -> Optional[LogTemplate]:
        """Cluster one line; returns the (possibly new) template.

        Blank lines are ignored (returns None).
        """
        tokens = tokenize(line)
        if not tokens:
            return None
        key = self._key(tokens)
        group = self._groups.setdefault(key, [])
        best: Optional[LogTemplate] = None
        best_sim = 0.0
        for tmpl in group:
            sim = similarity(tmpl.tokens, tokens)
            if sim > best_sim:
                best, best_sim = tmpl, sim
        if best is not None and best_sim >= self.similarity_threshold:
            best.merge(tokens)
            return best
        tmpl = LogTemplate(self._next_id, list(tokens), count=1)
        self._next_id += 1
        group.append(tmpl)
        self.templates[tmpl.template_id] = tmpl
        return tmpl

    def fit(self, lines: Iterable[str]) -> "TemplateMiner":
        for line in lines:
            self.add(line)
        return self

    def counts(self) -> dict[str, int]:
        """Rendered template → support count."""
        return {t.render(): t.count for t in self.templates.values()}

    def top(self, k: int = 10) -> list[tuple[str, int]]:
        return sorted(self.counts().items(), key=lambda kv: -kv[1])[:k]
