"""On-disk telemetry export (§2.5: offline data for traditional AIOps).

The ACI returns *paths* from ``get_logs``/``get_metrics``/``get_traces``
(like the paper's Example 2.2, which saves traces and returns the
directory); this module writes those files.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Optional

from repro.telemetry.collector import TelemetryCollector


class TelemetryExporter:
    """Writes the collector's stores to a directory tree.

    Layout::

        <root>/logs/<service>.log       rendered log lines
        <root>/logs/all.jsonl           structured records
        <root>/metrics/<metric>.csv     time,service,value rows
        <root>/traces/traces.json       Jaeger-style JSON
    """

    def __init__(self, collector: TelemetryCollector, root: str | Path) -> None:
        self.collector = collector
        self.root = Path(root)

    def export_logs(self, namespace: str,
                    since: Optional[float] = None) -> Path:
        out_dir = self.root / "logs"
        out_dir.mkdir(parents=True, exist_ok=True)
        records = self.collector.logs.query(namespace=namespace, since=since)
        by_service: dict[str, list] = {}
        for r in records:
            by_service.setdefault(r.service, []).append(r)
        for service, recs in by_service.items():
            (out_dir / f"{service}.log").write_text(
                "\n".join(r.render() for r in recs) + "\n"
            )
        with (out_dir / "all.jsonl").open("w") as f:
            for r in records:
                f.write(json.dumps({
                    "time": r.time, "namespace": r.namespace, "service": r.service,
                    "pod": r.pod, "level": r.level, "message": r.message,
                }) + "\n")
        return out_dir

    def export_metrics(self, since: Optional[float] = None) -> Path:
        out_dir = self.root / "metrics"
        out_dir.mkdir(parents=True, exist_ok=True)
        store = self.collector.metrics
        for metric in store.STANDARD_METRICS:
            rows = []
            for svc in store.services():
                series = store.series(svc, metric)
                if series is None:
                    continue
                t, v = series.window(since=since)
                rows.extend((float(ti), svc, float(vi)) for ti, vi in zip(t, v))
            rows.sort()
            with (out_dir / f"{metric}.csv").open("w", newline="") as f:
                writer = csv.writer(f)
                writer.writerow(["time", "service", "value"])
                writer.writerows(rows)
        return out_dir

    def export_traces(self, since: Optional[float] = None) -> Path:
        out_dir = self.root / "traces"
        out_dir.mkdir(parents=True, exist_ok=True)
        traces = self.collector.traces.query(since=since)
        payload = {"data": [t.to_dict() for t in traces]}
        (out_dir / "traces.json").write_text(json.dumps(payload, indent=1))
        return out_dir

    def export_all(self, namespace: str, since: Optional[float] = None) -> Path:
        self.export_logs(namespace, since)
        self.export_metrics(since)
        self.export_traces(since)
        return self.root
