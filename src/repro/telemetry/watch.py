"""Metric watches: scrape-time-evaluated threshold conditions.

A :class:`MetricWatch` is the telemetry half of the trigger layer (see
``repro.faults.triggers``): a condition over one ``(service, metric)``
series — "error rate above 5/s", "p99 over 800 ms sustained for 30 s" —
that the :class:`~repro.telemetry.collector.TelemetryCollector` evaluates
at every scrape against the value it just recorded.  When the condition
has held for ``sustain_s`` seconds of scrape history, the watch fires its
callback once and resolves.

Firing is **scrape-bounded** by construction: metrics only exist at scrape
timestamps, so a watch can trip no earlier than the first scrape at which
its condition holds and no later than one scrape interval after the
underlying signal crossed the threshold.  This is what makes trigger times
comparable across execution fidelities — ``per_request`` and ``aggregate``
runs scrape at the same timestamps, so a watch on an exact-count metric
(request/error rates) fires at the same simulated time in both.

Watches subclass :class:`repro.simcore.Watch` so they can be registered on
the environment's :class:`~repro.simcore.events.EventQueue` as live
activity: a pending watch keeps span planners (idle fast-forward, the
aggregate driver) from coalescing past the next scrape — the earliest
point the condition could possibly be evaluated.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simcore.events import Watch

#: metrics whose scrape values come from a bounded exemplar reservoir in
#: aggregate mode (not exact counts) — a pending watch on one of these
#: asks the runtime for a larger reservoir (see
#: ``ServiceRuntime.BATCH_TRACE_EXEMPLARS_TAIL``)
TAIL_METRICS = ("latency_p50_ms", "latency_p99_ms")


class MetricWatch(Watch):
    """One threshold condition over a ``(service, metric)`` series.

    Parameters
    ----------
    above:
        ``True`` fires when ``value > threshold`` (strict), ``False`` when
        ``value < threshold``.
    sustain_s:
        The condition must hold continuously — at every scrape — for at
        least this many virtual seconds before the watch fires.  ``0``
        fires at the first satisfying scrape.  A single non-satisfying
        scrape resets the window.
    callback:
        Invoked exactly once per firing, during the scrape at which the
        watch fires (after all of that scrape's metrics are recorded).
    require_clear:
        Edge-trigger semantics for rearmed watches: after a
        :meth:`rearm`, the condition must first be observed *not*
        holding at some scrape before the watch may fire again — so a
        rearm-in-callback loop fires once per threshold **crossing**,
        not once per scrape while the signal stays past the threshold.
        The first firing is unaffected (a fresh watch starts clear).
    """

    def __init__(
        self,
        service: str,
        metric: str,
        threshold: float,
        *,
        above: bool = True,
        sustain_s: float = 0.0,
        callback: Optional[Callable[[], None]] = None,
        label: str = "",
        require_clear: bool = False,
    ) -> None:
        if sustain_s < 0:
            raise ValueError(f"sustain_s must be >= 0, got {sustain_s}")
        super().__init__(label=label or f"watch.{service}.{metric}")
        self.service = service
        self.metric = metric
        self.threshold = threshold
        self.above = above
        self.sustain_s = sustain_s
        self.callback = callback
        self.require_clear = require_clear
        #: scrape timestamp at which the condition started holding
        self.satisfied_since: Optional[float] = None
        #: scrape timestamp at which the watch (last) fired
        self.fired_at: Optional[float] = None
        #: times the watch has fired across rearm cycles
        self.fire_count: int = 0
        #: True between a rearm and the first non-satisfying scrape when
        #: ``require_clear`` is set — the watch is waiting for the signal
        #: to drop back across the threshold
        self._blocked: bool = False
        #: the collector evaluating this watch (set by ``add_watch``) so
        #: ``rearm`` can re-register after the post-fire sweep dropped it
        self.collector = None

    @property
    def needs_tail(self) -> bool:
        """Whether this watch reads a reservoir-estimated tail metric."""
        return self.metric in TAIL_METRICS

    def satisfied(self, value: float) -> bool:
        return value > self.threshold if self.above else value < self.threshold

    def evaluate(self, now: float, value: float) -> bool:
        """One scrape's evaluation; returns True iff the watch fired.

        Draws no randomness and mutates only the watch itself (plus
        whatever the callback does), so evaluation order is deterministic.
        """
        if not self.pending:
            return False
        if not self.satisfied(value):
            self.satisfied_since = None
            self._blocked = False
            return False
        if self._blocked:
            return False
        if self.satisfied_since is None:
            self.satisfied_since = now
        if now - self.satisfied_since < self.sustain_s:
            return False
        self.fired_at = now
        self.fire_count += 1
        self.resolve()
        if self.callback is not None:
            self.callback()
        return True

    def rearm(self) -> None:
        """Reset fire/sustain state so the condition can trip again,
        re-registering with both the queue and the collector (the
        collector sweeps resolved watches after each scrape).  With
        ``require_clear`` the rearmed watch first waits for a scrape at
        which the condition does *not* hold (crossing semantics)."""
        self.satisfied_since = None
        self.fired_at = None
        if self.require_clear:
            self._blocked = True
        super().rearm()
        if self.collector is not None:
            self.collector.add_watch(self)

    def describe(self) -> str:
        op = ">" if self.above else "<"
        sustain = f" for {self.sustain_s:g}s" if self.sustain_s else ""
        return f"{self.service}.{self.metric} {op} {self.threshold:g}{sustain}"
