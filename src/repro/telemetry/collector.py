"""The telemetry collector: single sink for logs, metrics and traces.

One collector serves every application in a :class:`~repro.core.env.
CloudEnvironment` — with multi-app environments (several namespaces on one
cluster/clock), metric series are keyed by a *qualified* service name:
the bare service name for the environment's default (first) namespace,
``"<namespace>/<service>"`` for every other namespace.  Single-app
environments therefore see exactly the historical bare names, which is
what keeps their telemetry bit-identical, while two apps that happen to
share a service name (both DeathStarBench apps ship a ``jaeger``) can
never collide in the metric store, the baseline RNG or a metric watch.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Optional

from repro.simcore import RngStream, SimClock
from repro.telemetry.logs import LogStore
from repro.telemetry.metrics import MetricStore
from repro.telemetry.traces import Trace, TraceStore
from repro.telemetry.watch import MetricWatch

if TYPE_CHECKING:  # pragma: no cover
    from repro.kubesim.cluster import Cluster


class TelemetryCollector:
    """Aggregates the three telemetry stores and scrapes cluster metrics.

    The service runtime pushes logs/traces/request outcomes as requests
    execute; :meth:`scrape` periodically samples per-service resource
    metrics (with realistic baseline noise) plus the request-derived rates
    accumulated since the previous scrape — equivalent to a Prometheus
    scrape interval.  Scrapes are per namespace: a multi-app environment
    schedules one scrape event per app, and each clears only its own
    namespace's request window.
    """

    def __init__(self, clock: SimClock, seed: int = 0) -> None:
        self.clock = clock
        self.rng = RngStream(seed, "telemetry")
        self.logs = LogStore()
        self.metrics = MetricStore()
        self.traces = TraceStore()
        #: the namespace whose services keep bare metric names (set by the
        #: environment to its first app's namespace); None means "qualify
        #: nothing" — the historical single-tenant behavior
        self.default_namespace: Optional[str] = None
        # request accounting between scrapes, keyed by qualified name:
        # service -> [count, errors, latencies]
        self._window_requests: dict[str, int] = defaultdict(int)
        self._window_errors: dict[str, int] = defaultdict(int)
        self._window_latencies: dict[str, list[float]] = defaultdict(list)
        #: per-namespace previous-scrape timestamps (scrape windows must
        #: not bleed across namespaces scraped at the same instant)
        self._last_scrape: dict[str, float] = {}
        self._created_at: float = clock.now
        #: per-service synthetic resource baselines, stable across scrapes
        self._cpu_baseline: dict[str, float] = {}
        self._mem_baseline: dict[str, float] = {}
        #: registered metric watches, evaluated at scrape time in
        #: registration order (deterministic); resolved/cancelled watches
        #: are swept lazily after each scrape
        self._watches: list[MetricWatch] = []

    # -- namespace qualification ------------------------------------------
    def qualify(self, namespace: str, service: str) -> str:
        """The metric-store key for ``service`` in ``namespace``.

        Bare for the default namespace (and when no default is set), so
        single-app telemetry keeps its historical names bit-for-bit;
        ``"<namespace>/<service>"`` for every other namespace.
        """
        if not namespace or self.default_namespace is None \
                or namespace == self.default_namespace:
            return service
        return f"{namespace}/{service}"

    def split(self, qualified: str) -> tuple[str, str]:
        """Invert :meth:`qualify`: ``(namespace, service)`` of a key."""
        if "/" in qualified:
            ns, service = qualified.split("/", 1)
            return ns, service
        return self.default_namespace or "", qualified

    # -- metric watches ----------------------------------------------------
    def add_watch(self, watch: MetricWatch) -> MetricWatch:
        """Register ``watch`` for scrape-time evaluation.

        ``watch.service`` must be a *qualified* name (see :meth:`qualify`)
        when it targets a non-default namespace.
        """
        watch.collector = self
        if watch not in self._watches:
            self._watches.append(watch)
        return watch

    def remove_watch(self, watch: MetricWatch) -> None:
        try:
            self._watches.remove(watch)
        except ValueError:
            pass

    def pending_watches(self) -> list[MetricWatch]:
        return [w for w in self._watches if w.pending]

    def tail_watch_services(self) -> frozenset[str]:
        """Qualified names of services with a pending watch on a
        reservoir-estimated tail metric (p50/p99) — the runtime grows its
        per-batch exemplar reservoir for operations touching these
        (adaptive fidelity)."""
        return frozenset(w.service for w in self._watches
                         if w.pending and w.needs_tail)

    def _evaluate_watches(self, now: float) -> None:
        """Evaluate every pending watch against this scrape's values.

        Runs after the scrape recorded all services' metrics, so a watch
        sees a consistent snapshot and its callback (which may inject
        faults or swap rate policies) cannot perturb the scrape that fired
        it.  A watch whose series has no sample at ``now`` is skipped —
        its sustain window neither extends nor resets; this is also what
        scopes evaluation per namespace when several apps scrape at the
        same instant (a watch re-seen after another namespace's scrape at
        the same ``now`` re-evaluates idempotently).
        """
        fired_any = False
        for watch in self._watches:
            if not watch.pending:
                fired_any = True  # sweep stale entries below
                continue
            series = self.metrics.series(watch.service, watch.metric)
            if series is None or not series.times or series.times[-1] != now:
                continue
            fired_any |= watch.evaluate(now, series.values[-1])
        if fired_any:
            self._watches = [w for w in self._watches if w.pending]

    # -- sink methods used by the service runtime -------------------------
    def emit_log(self, namespace: str, service: str, pod: str,
                 level: str, message: str) -> None:
        self.logs.emit(self.clock.now, namespace, service, pod, level, message)

    def record_trace(self, trace: Trace) -> None:
        self.traces.add(trace)

    def record_request(self, service: str, latency_ms: float, error: bool) -> None:
        """Account one request under a (qualified) service name."""
        self._window_requests[service] += 1
        if error:
            self._window_errors[service] += 1
        self._window_latencies[service].append(latency_ms)

    def record_request_bulk(
        self, service: str, count: int, errors: int = 0,
        latencies=(),
    ) -> None:
        """Aggregate-mode sink: account ``count`` requests in one call.

        Counts feed ``request_rate``/``error_rate`` exactly as ``count``
        individual :meth:`record_request` calls would; ``latencies`` is a
        *bounded exemplar sample* of the batch (not all ``count`` values),
        so scrape percentiles in aggregate mode are estimates from a small
        reservoir rather than the full population.
        """
        if count <= 0:
            return
        self._window_requests[service] += int(count)
        if errors:
            self._window_errors[service] += int(errors)
        if latencies:
            self._window_latencies[service].extend(latencies)

    # -- scraping ---------------------------------------------------------
    def _baseline(self, service: str) -> tuple[float, float]:
        if service not in self._cpu_baseline:
            rng = self.rng.child(f"baseline/{service}")
            self._cpu_baseline[service] = rng.uniform(30.0, 120.0)   # mcores
            self._mem_baseline[service] = rng.uniform(80.0, 400.0)   # MiB
        return self._cpu_baseline[service], self._mem_baseline[service]

    def scrape(self, cluster: "Cluster", namespace: str) -> None:
        """Sample one scrape's worth of metrics for every service in ``namespace``."""
        now = self.clock.now
        last = self._last_scrape.get(namespace, self._created_at)
        window = max(now - last, 1e-9)
        for svc in cluster.services_in(namespace):
            name = self.qualify(namespace, svc.name)
            cpu_base, mem_base = self._baseline(name)
            pods = cluster.pods_matching(namespace, svc.selector)
            running = [p for p in pods if p.ready and not p.crash_looping]
            reqs = self._window_requests.get(name, 0)
            errs = self._window_errors.get(name, 0)
            lats = self._window_latencies.get(name, [])

            # CPU is dominated by the service's steady-state footprint;
            # request-driven load moves it by only a couple of percent at
            # the benchmark's offered rates (so resource-KPI detectors see
            # functional faults only when pods actually stop running).
            load_factor = 1.0 + 0.0005 * (reqs / window)
            if running:
                cpu = cpu_base * load_factor * (1 + self.rng.normal(0, 0.05))
                mem = mem_base * (1 + self.rng.normal(0, 0.02))
            else:
                cpu, mem = 0.0, 0.0
            self.metrics.record(now, name, "cpu_usage", max(cpu, 0.0))
            self.metrics.record(now, name, "memory_usage", max(mem, 0.0))
            self.metrics.record(now, name, "request_rate", reqs / window)
            self.metrics.record(now, name, "error_rate", errs / window)
            if lats:
                lats_sorted = sorted(lats)
                p50 = lats_sorted[len(lats_sorted) // 2]
                p99 = lats_sorted[min(int(len(lats_sorted) * 0.99), len(lats_sorted) - 1)]
            else:
                p50 = p99 = 0.0
            self.metrics.record(now, name, "latency_p50_ms", p50)
            self.metrics.record(now, name, "latency_p99_ms", p99)
        self._clear_window(namespace)
        self._last_scrape[namespace] = now
        if self._watches:
            self._evaluate_watches(now)

    def _clear_window(self, namespace: str) -> None:
        """Drop the scraped namespace's request window — and only its own.

        Another app's window may be mid-accumulation when this namespace
        scrapes (multi-app environments scrape per namespace, possibly at
        the same instant), so a blanket ``clear()`` would eat its counts.
        With no default namespace configured (standalone collectors) every
        bare key belongs to whichever namespace is scraping — the
        historical single-tenant behavior.
        """
        def owned(key: str) -> bool:
            if "/" in key:
                return key.split("/", 1)[0] == namespace
            return self.default_namespace is None \
                or self.default_namespace == namespace

        for store in (self._window_requests, self._window_errors,
                      self._window_latencies):
            for key in [k for k in store if owned(k)]:
                del store[key]

    # -- adapters for kubectl ----------------------------------------------
    def kubectl_log_source(self, namespace: str, pod: str, tail: int) -> str:
        return self.logs.tail(namespace, pod, tail)

    def kubectl_metrics_source(self, cluster: "Cluster"):
        """Build the ``kubectl top pods`` callback bound to ``cluster``."""
        return _PodMetricsSource(self, cluster)


class _PodMetricsSource:
    """Picklable ``kubectl top pods`` callback (a closure would break
    environment snapshots)."""

    __slots__ = ("collector", "cluster")

    def __init__(self, collector: "TelemetryCollector",
                 cluster: "Cluster") -> None:
        self.collector = collector
        self.cluster = cluster

    def __call__(self, namespace: str) -> list[tuple[str, float, float]]:
        metrics = self.collector.metrics
        rows = []
        for pod in self.cluster.pods_in(namespace):
            svc = self.collector.qualify(namespace, pod.owner or pod.name)
            cpu = metrics.snapshot_latest("cpu_usage").get(svc, 0.0)
            mem = metrics.snapshot_latest("memory_usage").get(svc, 0.0)
            rows.append((pod.name, cpu, mem))
        return rows
