"""Telemetry stack: logs (Filebeat/Logstash), metrics (Prometheus), traces (Jaeger).

The :class:`TelemetryCollector` is the single sink the service runtime and
the cluster write into.  The ACI's ``get_logs`` / ``get_metrics`` /
``get_traces`` read from it, and :mod:`repro.telemetry.export` dumps it to
disk for offline (non-LLM) AIOps baselines, mirroring §2.5 of the paper.
"""

from repro.telemetry.logs import LogRecord, LogStore
from repro.telemetry.metrics import MetricStore, MetricSeries
from repro.telemetry.traces import Span, Trace, TraceStore
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.export import TelemetryExporter
from repro.telemetry.watch import MetricWatch

__all__ = [
    "MetricWatch",
    "LogRecord",
    "LogStore",
    "MetricStore",
    "MetricSeries",
    "Span",
    "Trace",
    "TraceStore",
    "TelemetryCollector",
    "TelemetryExporter",
]
