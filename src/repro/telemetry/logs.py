"""Structured application logs (the Filebeat/Logstash pipeline equivalent)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class LogRecord:
    """One structured log line from a pod."""

    time: float
    namespace: str
    service: str
    pod: str
    level: str       # INFO / WARN / ERROR
    message: str

    def render(self) -> str:
        """Render the line the way ``kubectl logs`` would show it."""
        mins = int(self.time // 60)
        secs = self.time - mins * 60
        ts = f"2026-06-12T10:{mins % 60:02d}:{secs:06.3f}Z"
        return f"{ts} {self.level:<5} [{self.service}] {self.message}"


class LogStore:
    """Append-only log store with per-service and per-pod retrieval."""

    def __init__(self, capacity: int = 200_000) -> None:
        self.capacity = capacity
        self._records: list[LogRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def append(self, record: LogRecord) -> None:
        self._records.append(record)
        if len(self._records) > self.capacity:
            # Drop the oldest 10% in one slice to amortize the cost.
            del self._records[: self.capacity // 10]

    def emit(
        self, time: float, namespace: str, service: str, pod: str,
        level: str, message: str,
    ) -> LogRecord:
        rec = LogRecord(time, namespace, service, pod, level, message)
        self.append(rec)
        return rec

    # -- queries ---------------------------------------------------------
    def query(
        self,
        namespace: Optional[str] = None,
        service: Optional[str] = None,
        pod: Optional[str] = None,
        level: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> list[LogRecord]:
        """Filter records; all criteria are ANDed, None means no filter."""
        out = []
        for r in self._records:
            if namespace is not None and r.namespace != namespace:
                continue
            if service is not None and r.service != service:
                continue
            if pod is not None and r.pod != pod:
                continue
            if level is not None and r.level != level:
                continue
            if since is not None and r.time < since:
                continue
            if until is not None and r.time > until:
                continue
            out.append(r)
        return out

    def tail(self, namespace: str, pod: str, n: int = 50) -> str:
        """Last ``n`` rendered lines for one pod (the ``kubectl logs`` view)."""
        records = self.query(namespace=namespace, pod=pod)
        return "\n".join(r.render() for r in records[-n:])

    def tail_service(self, namespace: str, service: str, n: int = 50) -> str:
        records = self.query(namespace=namespace, service=service)
        return "\n".join(r.render() for r in records[-n:])

    def error_counts(self, namespace: str,
                     since: Optional[float] = None) -> dict[str, int]:
        """ERROR-line count per service — the coarse signal detectors use."""
        counts: dict[str, int] = {}
        for r in self.query(namespace=namespace, level="ERROR", since=since):
            counts[r.service] = counts.get(r.service, 0) + 1
        return counts

    def services_seen(self, namespace: str) -> set[str]:
        return {r.service for r in self._records if r.namespace == namespace}
