"""Prometheus-style metric time series."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class MetricSeries:
    """One time series: ``(service, metric)`` → arrays of (t, value)."""

    service: str
    metric: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def add(self, t: float, v: float) -> None:
        self.times.append(t)
        self.values.append(float(v))

    def window(self, since: Optional[float] = None,
               until: Optional[float] = None) -> tuple[np.ndarray, np.ndarray]:
        """Return (times, values) arrays restricted to [since, until]."""
        t = np.asarray(self.times)
        v = np.asarray(self.values)
        mask = np.ones(len(t), dtype=bool)
        if since is not None:
            mask &= t >= since
        if until is not None:
            mask &= t <= until
        return t[mask], v[mask]

    def latest(self) -> Optional[float]:
        return self.values[-1] if self.values else None


class MetricStore:
    """All metric series for a namespace's services.

    Standard metrics the collector records:

    * ``cpu_usage`` (millicores), ``memory_usage`` (MiB) — per service;
    * ``request_rate`` (req/s), ``error_rate`` (errors/s),
      ``latency_p50_ms`` / ``latency_p99_ms`` — per service per scrape.
    """

    STANDARD_METRICS = (
        "cpu_usage", "memory_usage", "request_rate", "error_rate",
        "latency_p50_ms", "latency_p99_ms",
    )

    def __init__(self) -> None:
        self._series: dict[tuple[str, str], MetricSeries] = {}

    def record(self, t: float, service: str, metric: str, value: float) -> None:
        key = (service, metric)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = MetricSeries(service, metric)
        series.add(t, value)

    def series(self, service: str, metric: str) -> Optional[MetricSeries]:
        return self._series.get((service, metric))

    def services(self) -> list[str]:
        return sorted({s for s, _ in self._series})

    def metrics_for(self, service: str) -> list[str]:
        return sorted(m for s, m in self._series if s == service)

    def matrix(
        self,
        services: list[str],
        metric: str,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stack one metric across services into a (T, S) matrix.

        Series are aligned by index (scrapes are synchronized); ragged
        series are truncated to the shortest length.  Returns
        ``(times, matrix)`` — times come from the first non-empty series.
        """
        cols = []
        times = None
        for svc in services:
            s = self.series(svc, metric)
            if s is None:
                cols.append(np.zeros(0))
                continue
            t, v = s.window(since, until)
            if times is None and len(t):
                times = t
            cols.append(v)
        if times is None:
            return np.zeros(0), np.zeros((0, len(services)))
        n = min((len(c) for c in cols if len(c)), default=0)
        n = min(n, len(times))
        stacked = np.stack(
            [c[:n] if len(c) >= n else np.zeros(n) for c in cols], axis=1
        ) if n else np.zeros((0, len(services)))
        return times[:n], stacked

    def snapshot_latest(self, metric: str) -> dict[str, float]:
        """Latest value of one metric for every service."""
        out = {}
        for (svc, m), series in self._series.items():
            if m == metric and series.values:
                out[svc] = series.values[-1]
        return out
