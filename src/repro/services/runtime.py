"""Request execution over the call graph — where faults become observable."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.simcore import RngStream, SimClock
from repro.kubesim.cluster import Cluster
from repro.services import errors as err
from repro.services.backends import MemcachedBackend, MongoBackend, RedisBackend
from repro.services.errors import RpcError, RpcErrorKind
from repro.services.model import CallEdge, Microservice, Operation
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.traces import Span, Trace

#: ``(caller, callee) -> (user, password) | None``; None means the caller has
#: no credentials configured for that backend (AuthenticationMissing).
CredentialsProvider = Callable[[str, str], Optional[tuple[str, str]]]


@dataclass
class RequestResult:
    """Outcome of one end-to-end request."""

    operation: str
    ok: bool
    latency_ms: float
    error: Optional[RpcError] = None
    trace_id: str = ""
    #: services that logged an error while handling this request
    error_services: list[str] = field(default_factory=list)


class ServiceRuntime:
    """Executes operations against the deployed application.

    Parameters
    ----------
    cluster:
        The kubesim cluster the app is deployed on (reachability checks).
    namespace:
        Namespace the app lives in.
    services:
        ``name -> Microservice`` for every service in the app.
    operations:
        ``name -> Operation`` call trees.
    collector:
        Telemetry sink (logs, traces, request metrics).
    credentials_provider:
        Resolves the credentials a caller uses against a backend; reading
        them lazily means helm upgrades take effect immediately.
    seed:
        RNG seed for latency sampling and drop decisions.
    """

    #: probability a healthy hop emits an INFO log line (keeps volume sane)
    INFO_SAMPLE = 0.03
    #: probability of a benign transient WARN anywhere (background noise)
    NOISE_WARN = 0.01

    def __init__(
        self,
        cluster: Cluster,
        namespace: str,
        services: dict[str, Microservice],
        operations: dict[str, Operation],
        collector: TelemetryCollector,
        credentials_provider: Optional[CredentialsProvider] = None,
        seed: int = 0,
    ) -> None:
        self.cluster = cluster
        self.namespace = namespace
        self.services = services
        self.operations = operations
        self.collector = collector
        self.credentials_provider = credentials_provider or (lambda c, b: ("admin", "admin"))
        self.rng = RngStream(seed, f"runtime/{namespace}")
        #: chaos state: callee service -> packet drop probability
        self.network_loss: dict[str, float] = {}

    # ------------------------------------------------------------------
    @property
    def clock(self) -> SimClock:
        return self.cluster.clock

    def _image_of(self, svc: Microservice) -> str:
        """The image the service currently runs — read from the live
        deployment template so ``kubectl set image`` mitigations count."""
        try:
            dep = self.cluster.get_deployment(self.namespace, svc.name)
        except Exception:
            return svc.image
        return dep.template.containers[0].image if dep.template.containers else svc.image

    def _pod_for(self, service: str) -> str:
        pods = [
            p for p in self.cluster.pods_in(self.namespace)
            if p.owner == service and p.ready and not p.crash_looping
        ]
        return pods[0].name if pods else f"{service}-<none>"

    def _log(self, service: str, level: str, message: str) -> None:
        self.collector.emit_log(
            self.namespace, service, self._pod_for(service), level, message
        )

    def _latency(self, svc: Microservice) -> float:
        import math
        mean_log = math.log(max(svc.base_latency_ms, 0.1))
        return self.rng.lognormal(mean_log, svc.latency_sigma)

    # ------------------------------------------------------------------
    # hop checks
    # ------------------------------------------------------------------
    def _check_network(self, caller: str, callee: str) -> Optional[RpcError]:
        p = self.network_loss.get(callee, 0.0)
        if p > 0 and self.rng.bernoulli(p):
            return err.network_drop(callee)
        return None

    def _check_reachable(self, callee: Microservice) -> Optional[RpcError]:
        try:
            self.cluster.get_service(self.namespace, callee.name)
        except Exception:
            return err.unavailable(callee.name, f'service "{callee.name}" not found')
        if not self.cluster.service_reachable(self.namespace, callee.name):
            return err.connection_refused(callee.name, callee.port)
        return None

    def _check_handler(
        self, caller: Microservice, callee: Microservice, command: str
    ) -> Optional[RpcError]:
        """Application-level behaviour of the callee."""
        image = self._image_of(callee)
        if "buggy" in image:
            return err.app_bug(callee.name, image)
        backend = callee.backend
        if isinstance(backend, MongoBackend):
            if not backend.up:
                return err.unavailable(callee.name, "mongod is shutting down")
            creds = self.credentials_provider(caller.name, callee.name)
            user, pw = creds if creds else (None, None)
            reason = backend.authenticate(user, pw)
            if reason in ("no_credentials", "bad_password"):
                return err.auth_failed(callee.name, backend.db_name)
            if reason == "user_not_found":
                return err.user_not_found(callee.name, backend.db_name, user or "<none>")
            reason = backend.authorize(user, command)
            if reason == "not_authorized":
                return err.not_authorized(callee.name, backend.db_name, command)
            if reason == "user_not_found":
                return err.user_not_found(callee.name, backend.db_name, user or "<none>")
        elif isinstance(backend, (RedisBackend, MemcachedBackend)):
            if not backend.up:
                return err.unavailable(callee.name, f"{callee.kind} instance down")
        return None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, op_name: str) -> RequestResult:
        """Run one request for ``op_name`` through the call graph."""
        op = self.operations.get(op_name)
        if op is None:
            raise KeyError(f"unknown operation {op_name!r}")
        entry = self.services[op.entry]
        trace = Trace(trace_id=self.collector.traces.new_trace_id())
        error_services: list[str] = []

        root_error = self._check_reachable(entry)
        start = self.clock.now
        if root_error is not None:
            # The client (workload generator) observes the frontend down.
            span = Span(
                span_id=self.collector.traces.new_span_id(),
                trace_id=trace.trace_id, parent_id=None,
                service="wrk-client", operation=op.name,
                start=start, duration_ms=1.0,
                status="ERROR", error_message=root_error.message,
            )
            trace.spans.append(span)
            self.collector.record_trace(trace)
            self.collector.record_request(entry.name, 1.0, error=True)
            return RequestResult(op.name, False, 1.0, root_error,
                                 trace.trace_id, [entry.name])

        latency, error = self._run_service(
            caller=None, svc=entry, command="handle", children=op.tree,
            op=op, trace=trace, parent_span=None, error_services=error_services,
        )
        self.collector.record_trace(trace)
        ok = error is None
        if not ok and entry.name not in error_services:
            error_services.append(entry.name)
        return RequestResult(op.name, ok, latency, error, trace.trace_id,
                             error_services)

    def _run_service(
        self,
        caller: Optional[Microservice],
        svc: Microservice,
        command: str,
        children: list[CallEdge],
        op: Operation,
        trace: Trace,
        parent_span: Optional[Span],
        error_services: list[str],
    ) -> tuple[float, Optional[RpcError]]:
        """Execute ``svc``'s part of the operation; returns (latency, error)."""
        span = Span(
            span_id=self.collector.traces.new_span_id(),
            trace_id=trace.trace_id,
            parent_id=parent_span.span_id if parent_span else None,
            service=svc.name, operation=f"{op.name}/{command}",
            start=self.clock.now, duration_ms=0.0,
        )
        trace.spans.append(span)
        own_latency = self._latency(svc)
        total = own_latency
        failure: Optional[RpcError] = None

        # own handler (for the entry this is trivially OK unless buggy image)
        handler_err = None
        if caller is not None:
            handler_err = self._check_handler(caller, svc, command)
        elif "buggy" in self._image_of(svc):
            handler_err = err.app_bug(svc.name, self._image_of(svc))
        if handler_err is not None:
            failure = handler_err
            if handler_err.kind is RpcErrorKind.APP_BUG:
                self._log(svc.name, "ERROR", handler_err.message)
                error_services.append(svc.name)
            elif handler_err.kind in (
                RpcErrorKind.AUTH_FAILED,
                RpcErrorKind.NOT_AUTHORIZED,
                RpcErrorKind.USER_NOT_FOUND,
            ):
                # mongod itself also records the access failure
                self._log(svc.name, "WARN",
                          f"ACCESS [conn42] {handler_err.message}")
                error_services.append(svc.name)
        else:
            # fan out to children
            for edge in children:
                callee = self.services.get(edge.callee)
                if callee is None:
                    continue
                hop_err = self._check_network(svc.name, edge.callee)
                if hop_err is None:
                    hop_err = self._check_reachable(callee)
                if hop_err is not None:
                    child_span = Span(
                        span_id=self.collector.traces.new_span_id(),
                        trace_id=trace.trace_id, parent_id=span.span_id,
                        service=callee.name, operation=f"{op.name}/{edge.command}",
                        start=self.clock.now, duration_ms=0.5,
                        status="ERROR", error_message=hop_err.message,
                    )
                    trace.spans.append(child_span)
                    self.collector.record_request(callee.name, 0.5, error=True)
                    failure = hop_err
                else:
                    child_latency, child_err = self._run_service(
                        caller=svc, svc=callee, command=edge.command,
                        children=edge.children, op=op, trace=trace,
                        parent_span=span, error_services=error_services,
                    )
                    total += child_latency
                    failure = child_err
                if failure is not None:
                    self._log(
                        svc.name, "ERROR",
                        f"failed to call {edge.callee}.{edge.command}: {failure.message}",
                    )
                    error_services.append(svc.name)
                    break

        if failure is None and self.rng.bernoulli(self.NOISE_WARN):
            self._log(svc.name, "WARN",
                      f"slow {command} request: retrying idempotent call once")
        if failure is None and self.rng.bernoulli(self.INFO_SAMPLE):
            self._log(svc.name, "INFO",
                      f"{op.name}/{command} handled in {total:.1f}ms")

        span.duration_ms = total
        if failure is not None:
            span.status = "ERROR"
            span.error_message = failure.message
        self.collector.record_request(svc.name, total, error=failure is not None)
        return total, failure
