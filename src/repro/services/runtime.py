"""Request execution over the call graph — where faults become observable.

Two execution tiers share the same fault semantics:

* :meth:`ServiceRuntime.execute` — the per-request reference path: one
  recursive walk per request, full-fidelity telemetry.  Bit-identical to
  the seed.
* :meth:`ServiceRuntime.execute_many` — the aggregate path: compiles the
  current call graph + fault state into a cached
  :class:`~repro.services.profile.PathProfile` and samples ``n`` requests'
  outcomes in O(outcome branches) — binomial/multinomial error splits,
  normal-approximated lognormal latency sums, and bounded exemplar
  traces/logs.  Statistically equivalent, orders of magnitude faster.

The aggregate path has two sampling engines sharing one deterministic
batch stream: the default **vectorized engine** draws fused numpy arrays
(one latency-sum vector per ``execute_many_all`` call, one lognormal
matrix per outcome branch covering every exemplar), and a **scalar
fallback** (no numpy, or ``REPRO_SCALAR_SAMPLING=1``) that draws value by
value.  Each engine is deterministic in (seed, n); their sample values
differ because they consume the stream in different shapes.  Compiled
profiles are additionally shared across sessions through
:data:`repro.services.profile.SHARED_PROFILES`, keyed by a value-based
fingerprint so a mutated session can never observe a co-tenant's stale
profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.simcore import RngStream, SimClock
from repro.kubesim.cluster import Cluster
from repro.services import errors as err
from repro.services import vectorized
from repro.services.backends import MemcachedBackend, MongoBackend, RedisBackend
from repro.services.errors import RpcError, RpcErrorKind
from repro.services.model import CallEdge, Microservice, Operation
from repro.services.profile import (
    SHARED_PROFILES,
    Outcome,
    PathProfile,
    ProfileStore,
    compile_profile,
    value_fingerprint,
)
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.traces import Span, Trace

#: ``(caller, callee) -> (user, password) | None``; None means the caller has
#: no credentials configured for that backend (AuthenticationMissing).
CredentialsProvider = Callable[[str, str], Optional[tuple[str, str]]]


def _default_credentials(caller: str, backend: str) -> tuple[str, str]:
    """Default open-access credentials; a module function (not a lambda)
    so runtimes pickle for environment snapshots."""
    return ("admin", "admin")


@dataclass
class RequestResult:
    """Outcome of one end-to-end request."""

    operation: str
    ok: bool
    latency_ms: float
    error: Optional[RpcError] = None
    trace_id: str = ""
    #: services that logged an error while handling this request
    error_services: list[str] = field(default_factory=list)


@dataclass
class BatchResult:
    """Aggregate outcome of ``execute_many(op, n)`` — the batch analogue of
    :class:`RequestResult`, with counts where the per-request path has
    booleans."""

    operation: str
    n: int
    errors: int = 0
    latency_sum_ms: float = 0.0
    #: service → number of requests that attributed an error to it
    error_services: dict[str, int] = field(default_factory=dict)
    #: RpcErrorKind.value → failed-request count
    error_kinds: dict[str, int] = field(default_factory=dict)
    #: bounded per-outcome exemplar requests (full traces were recorded)
    exemplars: list[RequestResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.errors == 0

    @property
    def error_rate(self) -> float:
        return self.errors / self.n if self.n else 0.0

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_sum_ms / self.n if self.n else 0.0


class ServiceRuntime:
    """Executes operations against the deployed application.

    Parameters
    ----------
    cluster:
        The kubesim cluster the app is deployed on (reachability checks).
    namespace:
        Namespace the app lives in.
    services:
        ``name -> Microservice`` for every service in the app.
    operations:
        ``name -> Operation`` call trees.
    collector:
        Telemetry sink (logs, traces, request metrics).
    credentials_provider:
        Resolves the credentials a caller uses against a backend; reading
        them lazily means helm upgrades take effect immediately.
    seed:
        RNG seed for latency sampling and drop decisions.
    """

    #: probability a healthy hop emits an INFO log line (keeps volume sane)
    INFO_SAMPLE = 0.03
    #: probability of a benign transient WARN anywhere (background noise)
    NOISE_WARN = 0.01
    #: cross-session compiled-profile store (value-fingerprint keyed);
    #: override on an instance — or set None — to opt a runtime out
    profile_store: Optional[ProfileStore] = SHARED_PROFILES

    def __init__(
        self,
        cluster: Cluster,
        namespace: str,
        services: dict[str, Microservice],
        operations: dict[str, Operation],
        collector: TelemetryCollector,
        credentials_provider: Optional[CredentialsProvider] = None,
        seed: int = 0,
    ) -> None:
        self.cluster = cluster
        self.namespace = namespace
        self.services = services
        self.operations = operations
        self.collector = collector
        self.credentials_provider = credentials_provider or _default_credentials
        self.rng = RngStream(seed, f"runtime/{namespace}")
        #: chaos state: callee service -> packet drop probability
        self.network_loss: dict[str, float] = {}
        #: the environment's ResourcePlane when resource coupling is on;
        #: None (the default) leaves every path bit-identical to the seed
        self.resources = None
        #: dedicated stream for the aggregate path, derived from the seed
        #: (not from the per-request generator's state), so batch results
        #: are deterministic in (seed, n) regardless of interleaved
        #: ``execute`` calls — and per-request draws stay bit-identical.
        self._batch_rng: Optional[RngStream] = None
        #: op name -> compiled PathProfile (possibly shared with co-tenant
        #: runtimes via the cross-session store)
        self._profiles: dict[str, PathProfile] = {}
        #: op name -> this runtime's counter fingerprint at install time
        #: (install validity; kept outside the profile so store-served
        #: objects need no per-runtime re-keying copy)
        self._profile_keys: dict[str, tuple] = {}
        #: op name -> static fingerprint inputs (services, backend edges)
        self._op_static: dict[str, tuple] = {}
        #: op name -> structural call-tree signature (for the value key)
        self._op_sigs: dict[str, tuple] = {}
        #: observability for tests/benchmarks of the profile cache:
        #: ``compiles`` counts profile installs for *this* runtime (cold
        #: compiles and cross-session fetches alike — either way the old
        #: profile was invalid and replaced), ``hits`` counts per-runtime
        #: key hits, ``shared_hits`` the installs served by the store
        self.profile_stats = {"compiles": 0, "hits": 0, "shared_hits": 0}
        #: sampling engine: fused numpy kernels when available, scalar
        #: draws otherwise (or when forced via REPRO_SCALAR_SAMPLING=1)
        self.vectorize = vectorized.enabled()
        self._latency_moments_cache: dict[tuple, tuple[float, float]] = {}
        #: (pods.version, state_version)-keyed service -> pod-name memo
        self._pod_cache_key: tuple[int, int] = (-1, -1)
        self._pod_cache: dict[str, str] = {}

    # ------------------------------------------------------------------
    @property
    def clock(self) -> SimClock:
        return self.cluster.clock

    def _image_of(self, svc: Microservice) -> str:
        """The image the service currently runs — read from the live
        deployment template so ``kubectl set image`` mitigations count."""
        try:
            dep = self.cluster.get_deployment(self.namespace, svc.name)
        except Exception:
            return svc.image
        return dep.template.containers[0].image if dep.template.containers else svc.image

    def _pod_for(self, service: str) -> str:
        """The pod log lines for ``service`` are attributed to.

        Memoized per (pods.version, state_version) so emitting a log line
        is O(1) instead of an O(pods) scan: the dict version catches pod
        create/delete, the cluster's state version catches in-place pod
        mutations (crash-loop flags flip inside ``reconcile``).
        """
        key = (self.cluster.pods.version, self.cluster.state_version)
        if key != self._pod_cache_key:
            self._pod_cache_key = key
            self._pod_cache = {}
        name = self._pod_cache.get(service)
        if name is None:
            pods = [
                p for p in self.cluster.pods_in(self.namespace)
                if p.owner == service and p.ready and not p.crash_looping
            ]
            name = pods[0].name if pods else f"{service}-<none>"
            self._pod_cache[service] = name
        return name

    def _q(self, service: str) -> str:
        """The collector's qualified metric key for one of this app's
        services — bare in single-app environments, namespace-prefixed
        for non-default namespaces in multi-app environments."""
        return self.collector.qualify(self.namespace, service)

    def _log(self, service: str, level: str, message: str) -> None:
        self.collector.emit_log(
            self.namespace, service, self._pod_for(service), level, message
        )

    def _mult(self, svc: Microservice) -> float:
        """Effective latency multiplier from node CPU pressure (1.0 when
        resource coupling is off — no plane attached)."""
        if self.resources is None:
            return 1.0
        return self.resources.multiplier_for(self.namespace, svc.name)

    def _overload_p(self, service: str) -> float:
        """Per-hop ``ResourceExhausted`` shed probability (0.0 off-plane)."""
        if self.resources is None:
            return 0.0
        return self.resources.overload_p(self.namespace, service)

    def _account(self, service: str, count: int = 1) -> None:
        """Push offered demand to the resource plane (no-op off-plane)."""
        if self.resources is not None:
            self.resources.account(self.namespace, service, count)

    def _latency(self, svc: Microservice) -> float:
        mean_log = math.log(max(svc.base_latency_ms * self._mult(svc), 0.1))
        return self.rng.lognormal(mean_log, svc.latency_sigma)

    def _latency_from(self, rng: RngStream, svc: Microservice) -> float:
        """One service-time draw from an explicit stream (the batch path)."""
        mean_log = math.log(max(svc.base_latency_ms * self._mult(svc), 0.1))
        return rng.lognormal(mean_log, svc.latency_sigma)

    def _latency_moments(self, svc: Microservice) -> tuple[float, float]:
        """(mean, variance) of the service's lognormal hop time.

        Keyed on the parameters themselves (pressure multiplier included),
        so an in-place change to a service's latency profile or a plane
        rollup can never serve stale moments."""
        m = self._mult(svc)
        key = (svc.name, svc.base_latency_ms, svc.latency_sigma, m)
        cached = self._latency_moments_cache.get(key)
        if cached is None:
            mu = math.log(max(svc.base_latency_ms * m, 0.1))
            sigma2 = svc.latency_sigma ** 2
            mean = math.exp(mu + sigma2 / 2.0)
            var = (math.exp(sigma2) - 1.0) * math.exp(2.0 * mu + sigma2)
            cached = (mean, var)
            self._latency_moments_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # hop checks
    # ------------------------------------------------------------------
    def _check_network(self, caller: str, callee: str) -> Optional[RpcError]:
        p = self.network_loss.get(callee, 0.0)
        if p > 0 and self.rng.bernoulli(p):
            return err.network_drop(callee)
        return None

    def _check_overload(self, callee: Microservice) -> Optional[RpcError]:
        """Node-pressure load shedding: a hop into a pod on a node past
        the overload knee fails with ``ResourceExhausted``.  Guarded so
        the common (unloaded / coupling-off) case draws no RNG."""
        p = self._overload_p(callee.name)
        if p > 0 and self.rng.bernoulli(p):
            return err.resource_exhausted(callee.name)
        return None

    def _check_reachable(self, callee: Microservice) -> Optional[RpcError]:
        try:
            self.cluster.get_service(self.namespace, callee.name)
        except Exception:
            return err.unavailable(callee.name, f'service "{callee.name}" not found')
        if not self.cluster.service_reachable(self.namespace, callee.name):
            return err.connection_refused(callee.name, callee.port)
        return None

    def _check_handler(
        self, caller: Microservice, callee: Microservice, command: str
    ) -> Optional[RpcError]:
        """Application-level behaviour of the callee."""
        image = self._image_of(callee)
        if "buggy" in image:
            return err.app_bug(callee.name, image)
        backend = callee.backend
        if isinstance(backend, MongoBackend):
            if not backend.up:
                return err.unavailable(callee.name, "mongod is shutting down")
            creds = self.credentials_provider(caller.name, callee.name)
            user, pw = creds if creds else (None, None)
            reason = backend.authenticate(user, pw)
            if reason in ("no_credentials", "bad_password"):
                return err.auth_failed(callee.name, backend.db_name)
            if reason == "user_not_found":
                return err.user_not_found(callee.name, backend.db_name, user or "<none>")
            reason = backend.authorize(user, command)
            if reason == "not_authorized":
                return err.not_authorized(callee.name, backend.db_name, command)
            if reason == "user_not_found":
                return err.user_not_found(callee.name, backend.db_name, user or "<none>")
        elif isinstance(backend, (RedisBackend, MemcachedBackend)):
            if not backend.up:
                return err.unavailable(callee.name, f"{callee.kind} instance down")
        return None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, op_name: str) -> RequestResult:
        """Run one request for ``op_name`` through the call graph."""
        op = self.operations.get(op_name)
        if op is None:
            raise KeyError(f"unknown operation {op_name!r}")
        entry = self.services[op.entry]
        trace = Trace(trace_id=self.collector.traces.new_trace_id())
        error_services: list[str] = []

        root_error = self._check_reachable(entry)
        start = self.clock.now
        if root_error is not None:
            # The client (workload generator) observes the frontend down.
            span = Span(
                span_id=self.collector.traces.new_span_id(),
                trace_id=trace.trace_id, parent_id=None,
                service="wrk-client", operation=op.name,
                start=start, duration_ms=1.0,
                status="ERROR", error_message=root_error.message,
            )
            trace.spans.append(span)
            self.collector.record_trace(trace)
            self.collector.record_request(self._q(entry.name), 1.0, error=True)
            self._account(entry.name)
            return RequestResult(op.name, False, 1.0, root_error,
                                 trace.trace_id, [entry.name])

        latency, error = self._run_service(
            caller=None, svc=entry, command="handle", children=op.tree,
            op=op, trace=trace, parent_span=None, error_services=error_services,
        )
        self.collector.record_trace(trace)
        ok = error is None
        if not ok and entry.name not in error_services:
            error_services.append(entry.name)
        return RequestResult(op.name, ok, latency, error, trace.trace_id,
                             error_services)

    def _run_service(
        self,
        caller: Optional[Microservice],
        svc: Microservice,
        command: str,
        children: list[CallEdge],
        op: Operation,
        trace: Trace,
        parent_span: Optional[Span],
        error_services: list[str],
    ) -> tuple[float, Optional[RpcError]]:
        """Execute ``svc``'s part of the operation; returns (latency, error)."""
        span = Span(
            span_id=self.collector.traces.new_span_id(),
            trace_id=trace.trace_id,
            parent_id=parent_span.span_id if parent_span else None,
            service=svc.name, operation=f"{op.name}/{command}",
            start=self.clock.now, duration_ms=0.0,
        )
        trace.spans.append(span)
        own_latency = self._latency(svc)
        total = own_latency
        failure: Optional[RpcError] = None

        # own handler (for the entry this is trivially OK unless buggy image)
        handler_err = None
        if caller is not None:
            handler_err = self._check_handler(caller, svc, command)
        elif "buggy" in self._image_of(svc):
            handler_err = err.app_bug(svc.name, self._image_of(svc))
        if handler_err is not None:
            failure = handler_err
            if handler_err.kind is RpcErrorKind.APP_BUG:
                self._log(svc.name, "ERROR", handler_err.message)
                error_services.append(svc.name)
            elif handler_err.kind in (
                RpcErrorKind.AUTH_FAILED,
                RpcErrorKind.NOT_AUTHORIZED,
                RpcErrorKind.USER_NOT_FOUND,
            ):
                # mongod itself also records the access failure
                self._log(svc.name, "WARN",
                          f"ACCESS [conn42] {handler_err.message}")
                error_services.append(svc.name)
        else:
            # fan out to children
            for edge in children:
                callee = self.services.get(edge.callee)
                if callee is None:
                    continue
                hop_err = self._check_network(svc.name, edge.callee)
                if hop_err is None:
                    hop_err = self._check_overload(callee)
                if hop_err is None:
                    hop_err = self._check_reachable(callee)
                if hop_err is not None:
                    child_span = Span(
                        span_id=self.collector.traces.new_span_id(),
                        trace_id=trace.trace_id, parent_id=span.span_id,
                        service=callee.name, operation=f"{op.name}/{edge.command}",
                        start=self.clock.now, duration_ms=0.5,
                        status="ERROR", error_message=hop_err.message,
                    )
                    trace.spans.append(child_span)
                    self.collector.record_request(self._q(callee.name), 0.5,
                                                  error=True)
                    self._account(callee.name)
                    failure = hop_err
                else:
                    child_latency, child_err = self._run_service(
                        caller=svc, svc=callee, command=edge.command,
                        children=edge.children, op=op, trace=trace,
                        parent_span=span, error_services=error_services,
                    )
                    total += child_latency
                    failure = child_err
                if failure is not None:
                    self._log(
                        svc.name, "ERROR",
                        f"failed to call {edge.callee}.{edge.command}: {failure.message}",
                    )
                    error_services.append(svc.name)
                    break

        if failure is None and self.rng.bernoulli(self.NOISE_WARN):
            self._log(svc.name, "WARN",
                      f"slow {command} request: retrying idempotent call once")
        if failure is None and self.rng.bernoulli(self.INFO_SAMPLE):
            self._log(svc.name, "INFO",
                      f"{op.name}/{command} handled in {total:.1f}ms")

        span.duration_ms = total
        if failure is not None:
            span.status = "ERROR"
            span.error_message = failure.message
        self.collector.record_request(self._q(svc.name), total,
                                      error=failure is not None)
        self._account(svc.name)
        return total, failure

    # ------------------------------------------------------------------
    # aggregate execution (the batched tier)
    # ------------------------------------------------------------------

    #: exemplar traces recorded per outcome branch per execute_many call
    BATCH_TRACE_EXEMPLARS = 2
    #: grown reservoir used when a pending tail-metric watch (latency
    #: p50/p99 trigger) reads one of this operation's services: scrape
    #: percentiles come from these exemplars, so a p99 trigger at high
    #: rates needs more of them for its fire time to converge on the
    #: per-request fire time (see tests/services/test_execute_many.py)
    BATCH_TRACE_EXEMPLARS_TAIL = 24
    #: copies of each outcome's deterministic log lines emitted per call
    BATCH_LOG_EXEMPLARS = 2
    #: cap on emitted WARN/INFO noise exemplar lines per call
    BATCH_NOISE_EXEMPLARS = 3

    def _batch_stream(self) -> RngStream:
        if self._batch_rng is None:
            self._batch_rng = self.rng.child("batch")
        return self._batch_rng

    def _op_fingerprint_inputs(self, op: Operation) -> tuple:
        """Static, state-independent inputs of ``op``'s fingerprint:
        (involved services, (caller, callee) edges over backend services).
        Call trees never mutate, so this is computed once per op."""
        cached = self._op_static.get(op.name)
        if cached is not None:
            return cached
        involved: list[str] = []
        backend_edges: list[tuple[str, str]] = []

        def walk(caller: str, edges: list[CallEdge]) -> None:
            for e in edges:
                callee = self.services.get(e.callee)
                if callee is None:
                    continue
                if callee.name not in involved:
                    involved.append(callee.name)
                if callee.backend is not None:
                    backend_edges.append((caller, callee.name))
                walk(callee.name, e.children)

        involved.append(op.entry)
        walk(op.entry, op.tree)
        cached = (tuple(involved), tuple(backend_edges))
        self._op_static[op.name] = cached
        return cached

    def _op_tree_signature(self, op: Operation) -> tuple:
        """Structural signature of ``op``'s call tree (entry, nested
        (callee, command) tuples) — part of the cross-session value key,
        so two ops that merely share involved services can't collide."""
        sig = self._op_sigs.get(op.name)
        if sig is None:
            def walk(edges: list[CallEdge]) -> tuple:
                return tuple((e.callee, e.command, walk(e.children))
                             for e in edges)
            sig = (op.entry, walk(op.tree))
            self._op_sigs[op.name] = sig
        return sig

    def _profile_key(self, op: Operation) -> tuple:
        """Fingerprint of everything the path-profile compiler reads.

        Cheap counters (cluster state/membership versions, backend
        versions) catch every mutation that flows through cluster CRUD,
        ``reconcile`` or a backend method; the value snapshots (resolved
        credentials, images, ``network_loss``) additionally catch in-place
        edits that bypass them (helm values surgery, direct template
        pokes) — the ``_dirty``-style staleness bug class.
        """
        involved, backend_edges = self._op_fingerprint_inputs(op)
        creds = tuple(
            self.credentials_provider(caller, callee)
            if isinstance(self.services[callee].backend, MongoBackend) else None
            for caller, callee in backend_edges
        )
        backend_versions = tuple(
            getattr(self.services[callee].backend, "version", 0)
            for _, callee in backend_edges
        )
        images = tuple(self._image_of(self.services[s]) for s in involved)
        latencies = tuple(
            (self.services[s].base_latency_ms, self.services[s].latency_sigma)
            for s in involved
        )
        return (
            self.cluster.state_version_for(self.namespace),
            self.cluster.pods.ns_version(self.namespace),
            self.cluster.services.ns_version(self.namespace),
            tuple(sorted(self.network_loss.items())),
            backend_versions,
            creds,
            images,
            latencies,
            # resource-plane regime: node placement changes already flow
            # through the versions above (reconcile bumps them); this
            # catches rollups that shift any quantized multiplier / shed
            # probability in this namespace.  Constant 0 when coupling is
            # off, so seed profile keys are unchanged.
            0 if self.resources is None
            else self.resources.fingerprint(self.namespace),
        )

    def _profile_for(self, op: Operation) -> PathProfile:
        """The valid compiled profile for ``op`` — per-runtime cache first
        (cheap counter key), then the cross-session store (value key), and
        only then an actual compile.  Install validity is tracked in
        ``_profile_keys`` (this runtime's counter fingerprint at install
        time), so a store-served profile object is shared as-is — its
        outcome objects are read-only after compilation, and its own
        ``key`` field records the compiling runtime's counters, not
        ours."""
        key = self._profile_key(op)
        profile = self._profiles.get(op.name)
        if profile is not None and self._profile_keys.get(op.name) == key:
            self.profile_stats["hits"] += 1
            return profile
        store = self.profile_store
        if store is not None:
            vkey = value_fingerprint(self, op)
            shared = store.get(vkey)
            if shared is not None:
                profile = shared
                self.profile_stats["shared_hits"] += 1
            else:
                profile = compile_profile(self, op, key)
                store.put(vkey, profile)
        else:
            profile = compile_profile(self, op, key)
        self._profiles[op.name] = profile
        self._profile_keys[op.name] = key
        self.profile_stats["compiles"] += 1
        return profile

    def _kernel_for(self, outcome: Outcome) -> "vectorized.OutcomeKernel":
        """The outcome's cached vectorized sampling kernel (built on first
        use; every kernel input is pinned by the profile's fingerprint, so
        caching on the shared outcome object is safe across sessions)."""
        kernel = getattr(outcome, "_kernel", None)
        if kernel is None:
            def mu_sigma(service: str) -> tuple[float, float]:
                svc = self.services[service]
                return (math.log(max(svc.base_latency_ms * self._mult(svc),
                                     0.1)),
                        svc.latency_sigma)
            kernel = vectorized.OutcomeKernel(outcome, mu_sigma)
            outcome._kernel = kernel
        return kernel

    def _sample_exemplar(
        self, op: Operation, outcome: Outcome, rng: RngStream,
    ) -> tuple[RequestResult, dict[str, list[float]]]:
        """Scalar-engine exemplar: materialize one full-fidelity trace for
        an outcome branch, drawing each entered span's lognormal service
        time individually and recording the trace to the store.  Returns
        the equivalent RequestResult plus per-service subtree latencies
        (honest samples for the collector's percentile window).  The
        vectorized engine replaces the per-span draws with one fused
        matrix per branch (:meth:`_emit_exemplars_vec`); this path remains
        as the numpy-free fallback.
        """
        spans = outcome.spans
        durations = [0.0] * len(spans)
        for i, sn in enumerate(spans):
            if sn.entered:
                durations[i] = self._latency_from(rng, self.services[sn.service])
            else:
                durations[i] = sn.const_ms
        # Subtree sums: children are appended after their parent, so one
        # reverse pass accumulates bottom-up.  Failure stubs keep their
        # fixed cost and (like the per-request path) don't add to the
        # caller's total.
        for i in range(len(spans) - 1, 0, -1):
            if spans[i].entered and spans[i].parent >= 0:
                durations[spans[i].parent] += durations[i]
        trace = Trace(trace_id=self.collector.traces.new_trace_id())
        now = self.clock.now
        span_ids: list[str] = []
        for i, sn in enumerate(spans):
            span_ids.append(self.collector.traces.new_span_id())
            trace.spans.append(Span(
                span_id=span_ids[i], trace_id=trace.trace_id,
                parent_id=span_ids[sn.parent] if sn.parent >= 0 else None,
                service=sn.service, operation=sn.operation,
                start=now, duration_ms=durations[i],
                status=sn.status, error_message=sn.error_message,
            ))
        self.collector.record_trace(trace)
        per_service: dict[str, list[float]] = {}
        for i, sn in enumerate(spans):
            if sn.entered:
                per_service.setdefault(sn.service, []).append(durations[i])
        result = RequestResult(
            op.name, outcome.ok, durations[0], outcome.error,
            trace.trace_id, list(outcome.error_services),
        )
        return result, per_service

    def _sample_tail(
        self, op: Operation, outcome: Outcome, rng: RngStream,
    ) -> tuple[RequestResult, dict[str, list[float]]]:
        """Scalar-engine latency-only exemplar for the grown tail
        reservoir.

        Draws the same per-span lognormals as :meth:`_sample_exemplar` but
        skips Trace/Span construction and the trace store entirely —
        objects nothing read: the tail watch only consumes the latency
        samples.  Under the vectorized engine tail rows are just extra
        rows of the branch's fused sample matrix; this scalar path exists
        for the numpy-free fallback.
        """
        spans = outcome.spans
        durations = [0.0] * len(spans)
        for i, sn in enumerate(spans):
            if sn.entered:
                durations[i] = self._latency_from(rng, self.services[sn.service])
            else:
                durations[i] = sn.const_ms
        for i in range(len(spans) - 1, 0, -1):
            if spans[i].entered and spans[i].parent >= 0:
                durations[spans[i].parent] += durations[i]
        per_service: dict[str, list[float]] = {}
        for i, sn in enumerate(spans):
            if sn.entered:
                per_service.setdefault(sn.service, []).append(durations[i])
        result = RequestResult(
            op.name, outcome.ok, durations[0], outcome.error,
            "", list(outcome.error_services),
        )
        return result, per_service

    def execute_many(self, op_name: str, n: int) -> BatchResult:
        """Simulate ``n`` requests for ``op_name`` in aggregate.

        Statistically equivalent to ``n`` calls of :meth:`execute` under a
        frozen cluster state — same outcome probabilities, same error
        attribution, same latency distribution — but O(outcome branches)
        instead of O(n · call-tree): a multinomial split over the compiled
        :class:`PathProfile`, normal-approximated lognormal latency sums
        (one fused draw per branch under the vectorized engine), and
        bounded exemplar traces/logs feeding the usual telemetry surfaces.
        Deterministic given (seed, n) per engine — the batch stream is
        derived from the runtime seed, independent of per-request draws.
        """
        [batch] = self.execute_many_all([(op_name, n)])
        return batch

    def execute_many_all(
        self, requests: Sequence[tuple[str, int]],
    ) -> list[BatchResult]:
        """Simulate several operations' batches in one fused pass.

        This is the span-level batching entry point the aggregate workload
        driver uses: a whole span's (op → count) split becomes *one* call,
        and under the vectorized engine the end-to-end latency sums of
        every (op, branch) pair are drawn as a single fused numpy sample
        instead of one draw per branch per call.  Results come back in
        request order.  Deterministic given (seed, ordered request list);
        note the fused draw order means a multi-op call consumes the batch
        stream differently than the same ops issued one
        :meth:`execute_many` at a time — each shape is individually
        reproducible.

        The scalar fallback engine interleaves plan and emit per op, which
        keeps single-op calls bit-identical to the historical scalar draw
        order.
        """
        rng = self._batch_stream()
        use_vec = self.vectorize
        results: list[BatchResult] = []
        plans: list[Optional[tuple]] = []
        for op_name, n in requests:
            op = self.operations.get(op_name)
            if op is None:
                raise KeyError(f"unknown operation {op_name!r}")
            if n < 0:
                raise ValueError(f"n must be >= 0, got {n}")
            batch = BatchResult(op.name, n)
            results.append(batch)
            if n == 0:
                plans.append(None)
                continue
            profile = self._profile_for(op)
            counts = rng.multinomial(n, profile.probs)
            if use_vec:
                plans.append((op, profile, counts, batch))
            else:
                plans.append(None)
                self._emit_batch(op, profile, counts, batch, rng, None)
        if use_vec:
            # one fused normal draw over every stochastic (op, branch)
            # latency sum in this call
            keyed: list[tuple[int, int]] = []
            locs: list[float] = []
            scales: list[float] = []
            for pi, plan in enumerate(plans):
                if plan is None:
                    continue
                _, profile, counts, _ = plan
                for oi, (outcome, k) in enumerate(
                        zip(profile.outcomes, counts)):
                    if k and outcome.var_ms > 0.0:
                        keyed.append((pi, oi))
                        locs.append(k * outcome.mean_ms)
                        scales.append(math.sqrt(k * outcome.var_ms))
            totals: list[dict[int, float]] = [{} for _ in plans]
            if keyed:
                sums = vectorized.branch_latency_sums(
                    rng.generator, locs, scales)
                for (pi, oi), total in zip(keyed, sums):
                    totals[pi][oi] = total
            for pi, plan in enumerate(plans):
                if plan is None:
                    continue
                op, profile, counts, batch = plan
                self._emit_batch(op, profile, counts, batch, rng, totals[pi])
        return results

    def _emit_batch(
        self,
        op: Operation,
        profile: PathProfile,
        counts: Sequence[int],
        batch: BatchResult,
        rng: RngStream,
        totals: Optional[dict[int, float]],
    ) -> None:
        """Emit one planned batch: error accounting, latency sums, bounded
        exemplars/logs/noise, and bulk telemetry.  ``totals`` carries the
        vectorized engine's pre-drawn per-branch latency sums (indexed by
        outcome position); ``None`` means scalar engine — draw them inline
        per branch, in the historical order."""
        # adaptive exemplar reservoir: a pending p50/p99 watch on any
        # service this operation touches asks for tail fidelity
        trace_exemplars = self.BATCH_TRACE_EXEMPLARS
        tail_services = self.collector.tail_watch_services()
        if tail_services:
            involved, _ = self._op_fingerprint_inputs(op)
            if not tail_services.isdisjoint(self._q(s) for s in involved):
                trace_exemplars = max(trace_exemplars,
                                      self.BATCH_TRACE_EXEMPLARS_TAIL)
        #: service -> [requests, errors, latency exemplars]
        bulk: dict[str, list] = {}

        def bulk_entry(service: str) -> list:
            entry = bulk.get(service)
            if entry is None:
                entry = [0, 0, []]
                bulk[service] = entry
            return entry

        noise_pool = 0
        noise_sites: tuple[tuple[str, str, float], ...] = ()
        for oi, (outcome, k) in enumerate(zip(profile.outcomes, counts)):
            k = int(k)
            if k == 0:
                continue
            if not outcome.ok:
                batch.errors += k
                for s in outcome.error_services:
                    batch.error_services[s] = batch.error_services.get(s, 0) + k
                kind = outcome.error.kind.value
                batch.error_kinds[kind] = batch.error_kinds.get(kind, 0) + k
            # end-to-end latency: sum of k iid lognormal-sum samples →
            # normal approximation (exact mean/variance, CLT shape)
            if totals is not None:
                total = totals.get(oi)
                if total is None:  # var == 0: deterministic sum
                    total = k * outcome.mean_ms
            elif outcome.var_ms > 0.0:
                total = max(rng.normal(k * outcome.mean_ms,
                                       math.sqrt(k * outcome.var_ms)), 0.0)
            else:
                total = k * outcome.mean_ms
            batch.latency_sum_ms += total
            noise_pool += k * outcome.noise_eligible
            if outcome.noise_sites and not noise_sites:
                noise_sites = outcome.noise_sites
            # per-service request accounting (counts are exact)
            for s, c in outcome.visit_counts.items():
                bulk_entry(s)[0] += k * c
            for s, c in outcome.error_visit_counts.items():
                bulk_entry(s)[1] += k * c
            for s, c in outcome.hop_fail_counts.items():
                e = bulk_entry(s)
                e[0] += k * c
                e[1] += k * c
                e[2].extend([0.5] * min(k * c, 2))
            if outcome.client_fail:
                e = bulk_entry(profile.entry)
                e[0] += k
                e[1] += k
                e[2].extend([1.0] * min(k, 2))
            # bounded full-fidelity exemplars, plus (when a tail watch
            # grew the reservoir) cheap latency-only ones: the watch needs
            # the samples, not more stored traces
            n_ex = min(k, trace_exemplars)
            n_full = min(n_ex, self.BATCH_TRACE_EXEMPLARS)
            if totals is not None:
                self._emit_exemplars_vec(op, outcome, rng, n_ex, n_full,
                                         batch, bulk_entry)
            else:
                for j in range(n_ex):
                    sample = (self._sample_exemplar if j < n_full
                              else self._sample_tail)
                    result, per_service = sample(op, outcome, rng)
                    batch.exemplars.append(result)
                    for s, lats in per_service.items():
                        bulk_entry(s)[2].extend(lats)
            for _ in range(min(k, self.BATCH_LOG_EXEMPLARS)):
                for svc_name, level, message in outcome.logs:
                    self._log(svc_name, level, message)
        # background noise logs: exact count distribution, capped emission,
        # worded exactly as the per-request path words them at each site
        if noise_pool and noise_sites:
            warns = rng.binomial(noise_pool, self.NOISE_WARN)
            infos = rng.binomial(noise_pool, self.INFO_SAMPLE)
            for i in range(min(warns, self.BATCH_NOISE_EXEMPLARS)):
                svc_name, command, _ = noise_sites[i % len(noise_sites)]
                self._log(svc_name, "WARN",
                          f"slow {command} request: "
                          f"retrying idempotent call once")
            for i in range(min(infos, self.BATCH_NOISE_EXEMPLARS)):
                svc_name, command, site_mean = noise_sites[i % len(noise_sites)]
                self._log(svc_name, "INFO",
                          f"{op.name}/{command} handled in {site_mean:.1f}ms")
        for s, (count, errors, lats) in bulk.items():
            self.collector.record_request_bulk(self._q(s), count, errors, lats)
            self._account(s, count)

    def _emit_exemplars_vec(
        self,
        op: Operation,
        outcome: Outcome,
        rng: RngStream,
        n_ex: int,
        n_full: int,
        batch: BatchResult,
        bulk_entry: Callable[[str], list],
    ) -> None:
        """Vectorized exemplar block for one branch: a single fused
        lognormal matrix covers every exemplar — full-fidelity rows
        (materialized traces, recorded to the store) first, then
        latency-only tail rows when a pending tail watch grew the
        reservoir (the watch consumes latency samples, not traces)."""
        if n_ex <= 0:
            return
        kernel = self._kernel_for(outcome)
        durations = kernel.sample(rng.generator, n_ex)
        spans = outcome.spans
        now = self.clock.now
        traces = self.collector.traces
        for j in range(n_full):
            row = durations[j]
            trace = Trace(trace_id=traces.new_trace_id())
            span_ids = traces.new_span_ids(len(spans))
            for i, sn in enumerate(spans):
                trace.spans.append(Span(
                    span_id=span_ids[i], trace_id=trace.trace_id,
                    parent_id=span_ids[sn.parent] if sn.parent >= 0 else None,
                    service=sn.service, operation=sn.operation,
                    start=now, duration_ms=float(row[i]),
                    status=sn.status, error_message=sn.error_message,
                ))
            self.collector.record_trace(trace)
            batch.exemplars.append(RequestResult(
                op.name, outcome.ok, float(row[0]), outcome.error,
                trace.trace_id, list(outcome.error_services)))
        for j in range(n_full, n_ex):
            batch.exemplars.append(RequestResult(
                op.name, outcome.ok, float(durations[j, 0]), outcome.error,
                "", list(outcome.error_services)))
        # per-service latency exemplars: one column slice per entered span
        # hands all n_ex subtree samples to the collector at once
        for i in kernel.entered_idx:
            bulk_entry(spans[i].service)[2].extend(durations[:, i].tolist())
