"""Path-profile compiler: call graph + fault state → an aggregate outcome model.

Per-request execution (:meth:`ServiceRuntime.execute`) walks the call tree
once per request, drawing RNG at every hop.  For a *fixed* cluster/fault
state, though, the set of distinct things that can happen to a request is
tiny: every check except network loss is deterministic, so the execution
tree collapses into a handful of **outcome branches** — "all hops succeed",
"dropped on the search→geo edge", "auth fails at mongodb-rate", … — each
with a closed-form probability and per-service latency moments.

:func:`compile_profile` enumerates those branches symbolically, mirroring
``_run_service``'s semantics exactly (handler checks, failure propagation,
log attribution, per-service request records).  The resulting
:class:`PathProfile` lets ``execute_many(op, n)`` simulate ``n`` requests
with O(branches) work: a multinomial split over outcomes, normal-
approximated latency sums, and bounded exemplar traces/logs — instead of
``n`` recursive walks.

The profile is a pure function of (call tree, cluster state, backend
state, helm credentials, ``network_loss``); the runtime caches it keyed on
a fingerprint of exactly those inputs (see ``ServiceRuntime._profile_key``).
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.services import errors as err
from repro.services.errors import RpcError, RpcErrorKind
from repro.services.model import CallEdge, Microservice, Operation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.services.runtime import ServiceRuntime

#: handler-error kinds that log (and attribute error_services) at the
#: failing node itself, mirroring ``_run_service``
_AUTH_KINDS = (
    RpcErrorKind.AUTH_FAILED,
    RpcErrorKind.NOT_AUTHORIZED,
    RpcErrorKind.USER_NOT_FOUND,
)


@dataclass
class SpanNode:
    """One span in an outcome's trace skeleton.

    ``entered`` spans correspond to services that actually executed (one
    lognormal service-time draw each); stubs model the fixed-cost failure
    spans the per-request path emits (0.5 ms hop failures, the 1.0 ms
    wrk-client span when the frontend is down).
    """

    service: str
    operation: str
    parent: int  # index into Outcome.spans; -1 for the root
    entered: bool
    status: str = "OK"
    error_message: str = ""
    const_ms: float = 0.0


@dataclass
class Outcome:
    """One terminal branch of an operation under the compiled state."""

    prob: float
    ok: bool
    error: Optional[RpcError]
    #: RequestResult.error_services attribution order (deepest first)
    error_services: tuple[str, ...]
    #: entered services → number of request records (error + ok)
    visit_counts: dict[str, int]
    #: entered services → number of *error* request records
    error_visit_counts: dict[str, int]
    #: callees recorded via the 0.5 ms hop-failure path
    hop_fail_counts: dict[str, int]
    #: entry unreachable: the 1.0 ms wrk-client fast-fail
    client_fail: bool
    #: deterministic log lines this branch emits, in emission order
    logs: tuple[tuple[str, str, str], ...]
    #: entered nodes that finished with no failure (noise-log eligible)
    noise_eligible: int
    #: the noise-eligible (service, command, mean subtree ms) sites —
    #: exactly the entered spans that ended OK, so exemplar WARN/INFO
    #: noise lines carry the same command/latency text per-request
    #: execution would emit there
    noise_sites: tuple[tuple[str, str, float], ...]
    #: end-to-end latency moments (sum of entered services' lognormals)
    mean_ms: float
    var_ms: float
    spans: list[SpanNode] = field(default_factory=list)


@dataclass
class PathProfile:
    """The compiled aggregate model of one operation."""

    op_name: str
    entry: str
    key: tuple
    outcomes: list[Outcome]
    probs: list[float]

    @property
    def n_outcomes(self) -> int:
        return len(self.outcomes)


def value_fingerprint(rt: "ServiceRuntime", op: Operation) -> tuple:
    """Value-based fingerprint of everything :func:`compile_profile` reads.

    The runtime's per-env cache key (``ServiceRuntime._profile_key``) leans
    on cheap *counter* versions, which only mean "something changed" within
    one environment — two different environments can reach the same counter
    values through different mutation histories, so counters must never be
    compared across sessions.  This fingerprint instead snapshots the
    *values* the compiler consumes: the op's tree signature, every involved
    service's image / latency parameters / pressure multiplier / overload
    probability / network loss / reachability verdict, and the handler
    verdict of every tree edge (credentials, backend liveness, auth and
    role state all fold into that verdict, message text included).  Two
    runtimes with equal fingerprints compile byte-equal profiles by
    construction, which is what makes the cross-session
    :class:`ProfileStore` safe.

    Profiles are namespace-agnostic (qualification happens at telemetry
    emission, not compile time), so sessions of the same problem — and
    even co-tenant apps of the same shape in different namespaces — share
    entries.
    """
    involved, _ = rt._op_fingerprint_inputs(op)
    svc_state = []
    for name in involved:
        svc = rt.services[name]
        reach = rt._check_reachable(svc)
        svc_state.append((
            name,
            rt._image_of(svc),
            svc.base_latency_ms,
            svc.latency_sigma,
            rt._mult(svc),
            rt._overload_p(name),
            rt.network_loss.get(name, 0.0),
            (reach.kind.value, reach.message) if reach is not None else None,
        ))
    edge_checks: list[tuple] = []

    def walk(caller: Microservice, edges: list[CallEdge]) -> None:
        for e in edges:
            callee = rt.services.get(e.callee)
            if callee is None:
                continue
            herr = rt._check_handler(caller, callee, e.command)
            edge_checks.append((
                caller.name, callee.name, e.command,
                (herr.kind.value, herr.message) if herr is not None else None,
            ))
            walk(callee, e.children)

    walk(rt.services[op.entry], op.tree)
    return (op.name, rt._op_tree_signature(op), tuple(svc_state),
            tuple(edge_checks))


class ProfileStore:
    """Cross-session cache of compiled profiles, keyed by value fingerprint.

    One store (:data:`SHARED_PROFILES`) is shared by every runtime in the
    process, so a 4-agents × 48-problems suite compiles each (op, state)
    profile once instead of once per session.  Safety comes from the key,
    not from invalidation: a mutated session computes a different
    :func:`value_fingerprint` and can never observe a co-tenant's stale
    entry, and the stored outcomes are read-only after compilation.
    Entries are evicted LRU past ``maxsize``; access is lock-guarded
    because batch sessions run in worker threads.  Process-pool workers
    each own their (forked or fresh) copy — profiles never cross process
    boundaries.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, PathProfile] = OrderedDict()
        self.stats = {"hits": 0, "misses": 0, "stores": 0}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> Optional[PathProfile]:
        with self._lock:
            profile = self._entries.get(key)
            if profile is not None:
                self._entries.move_to_end(key)
                self.stats["hits"] += 1
            else:
                self.stats["misses"] += 1
            return profile

    def put(self, key: tuple, profile: PathProfile) -> None:
        with self._lock:
            self._entries[key] = profile
            self._entries.move_to_end(key)
            self.stats["stores"] += 1
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = {"hits": 0, "misses": 0, "stores": 0}

    def __getstate__(self) -> dict:
        """Locks don't pickle; drop it so a store that ends up in an
        environment snapshot (instance-level override) survives the trip."""
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def hit_rate(self) -> float:
        looked = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / looked if looked else 0.0


#: the process-wide store every runtime uses by default (see
#: ``ServiceRuntime.profile_store`` for the opt-out)
SHARED_PROFILES = ProfileStore()


class _Branch:
    """Mutable state threaded through the symbolic walk; forks at each
    stochastic (network-drop) decision point."""

    __slots__ = ("prob", "spans", "visits", "error_visits", "hop_fails",
                 "logs", "error_services", "noise", "failure")

    def __init__(self, prob: float = 1.0) -> None:
        self.prob = prob
        self.spans: list[SpanNode] = []
        self.visits: dict[str, int] = {}
        self.error_visits: dict[str, int] = {}
        self.hop_fails: dict[str, int] = {}
        self.logs: list[tuple[str, str, str]] = []
        self.error_services: list[str] = []
        self.noise = 0
        self.failure: Optional[RpcError] = None

    def clone(self) -> "_Branch":
        b = _Branch(self.prob)
        b.spans = [replace(s) for s in self.spans]
        b.visits = dict(self.visits)
        b.error_visits = dict(self.error_visits)
        b.hop_fails = dict(self.hop_fails)
        b.logs = list(self.logs)
        b.error_services = list(self.error_services)
        b.noise = self.noise
        return b


def _bump(d: dict[str, int], key: str, by: int = 1) -> None:
    d[key] = d.get(key, 0) + by


def _fail_edge(branch: _Branch, op: Operation, edge: CallEdge,
               caller: str, caller_idx: int, hop_err: RpcError) -> None:
    """A hop to ``edge.callee`` failed before the callee executed: emit the
    0.5 ms error stub, log at the caller, and mark the branch failed."""
    branch.spans.append(SpanNode(
        service=edge.callee, operation=f"{op.name}/{edge.command}",
        parent=caller_idx, entered=False, status="ERROR",
        error_message=hop_err.message, const_ms=0.5,
    ))
    _bump(branch.hop_fails, edge.callee)
    branch.failure = hop_err
    branch.logs.append((
        caller, "ERROR",
        f"failed to call {edge.callee}.{edge.command}: {hop_err.message}",
    ))
    branch.error_services.append(caller)
    span = branch.spans[caller_idx]
    span.status = "ERROR"
    span.error_message = hop_err.message
    _bump(branch.error_visits, caller)


def _propagate(branch: _Branch, op: Operation, edge: CallEdge,
               caller: str, caller_idx: int) -> None:
    """A recursive callee failed: the caller logs, attributes itself, and
    re-raises — the per-request path's unwind, applied symbolically."""
    assert branch.failure is not None
    branch.logs.append((
        caller, "ERROR",
        f"failed to call {edge.callee}.{edge.command}: {branch.failure.message}",
    ))
    branch.error_services.append(caller)
    span = branch.spans[caller_idx]
    span.status = "ERROR"
    span.error_message = branch.failure.message
    _bump(branch.error_visits, caller)


def _enter(rt: "ServiceRuntime", op: Operation, svc: Microservice,
           caller: Optional[Microservice], command: str,
           children: list[CallEdge], branch: _Branch,
           parent_idx: int) -> tuple[Optional[_Branch], list[_Branch]]:
    """Symbolically execute ``svc``; returns (success branch | None,
    failure branches).  Mirrors ``_run_service`` decision-for-decision."""
    idx = len(branch.spans)
    branch.spans.append(SpanNode(
        service=svc.name, operation=f"{op.name}/{command}",
        parent=parent_idx, entered=True,
    ))
    _bump(branch.visits, svc.name)

    if caller is not None:
        handler_err = rt._check_handler(caller, svc, command)
    elif "buggy" in rt._image_of(svc):
        handler_err = err.app_bug(svc.name, rt._image_of(svc))
    else:
        handler_err = None
    if handler_err is not None:
        branch.failure = handler_err
        span = branch.spans[idx]
        span.status = "ERROR"
        span.error_message = handler_err.message
        _bump(branch.error_visits, svc.name)
        if handler_err.kind is RpcErrorKind.APP_BUG:
            branch.logs.append((svc.name, "ERROR", handler_err.message))
            branch.error_services.append(svc.name)
        elif handler_err.kind in _AUTH_KINDS:
            branch.logs.append((svc.name, "WARN",
                                f"ACCESS [conn42] {handler_err.message}"))
            branch.error_services.append(svc.name)
        return None, [branch]

    failures: list[_Branch] = []
    for edge in children:
        callee = rt.services.get(edge.callee)
        if callee is None:
            continue
        p = rt.network_loss.get(edge.callee, 0.0)
        if p > 0:
            dropped = branch.clone()
            dropped.prob *= p
            _fail_edge(dropped, op, edge, svc.name, idx,
                       err.network_drop(edge.callee))
            failures.append(dropped)
            branch.prob *= (1.0 - p)
            if branch.prob <= 0.0:  # p == 1: no surviving path
                return None, failures
        p_over = rt._overload_p(edge.callee)
        if p_over > 0:
            shed = branch.clone()
            shed.prob *= p_over
            _fail_edge(shed, op, edge, svc.name, idx,
                       err.resource_exhausted(edge.callee))
            failures.append(shed)
            branch.prob *= (1.0 - p_over)
            if branch.prob <= 0.0:
                return None, failures
        reach_err = rt._check_reachable(callee)
        if reach_err is not None:
            _fail_edge(branch, op, edge, svc.name, idx, reach_err)
            failures.append(branch)
            return None, failures
        sub_ok, sub_failures = _enter(rt, op, callee, svc, edge.command,
                                      edge.children, branch, idx)
        for fb in sub_failures:
            _propagate(fb, op, edge, svc.name, idx)
        failures.extend(sub_failures)
        if sub_ok is None:
            return None, failures
        branch = sub_ok
    branch.noise += 1
    return branch, failures


def _finalize(rt: "ServiceRuntime", op: Operation, branch: _Branch,
              ok: bool) -> Outcome:
    mean = var = 0.0
    for svc_name, count in branch.visits.items():
        m, v = rt._latency_moments(rt.services[svc_name])
        mean += count * m
        var += count * v
    error_services = list(branch.error_services)
    if not ok and op.entry not in error_services:
        error_services.append(op.entry)
    # Per-span mean subtree latency (entered children roll up to parents,
    # failure stubs don't) — gives noise exemplars realistic "handled in
    # X ms" figures per site.
    spans = branch.spans
    subtree_mean = [
        rt._latency_moments(rt.services[sn.service])[0] if sn.entered else 0.0
        for sn in spans
    ]
    for i in range(len(spans) - 1, 0, -1):
        if spans[i].entered and spans[i].parent >= 0:
            subtree_mean[spans[i].parent] += subtree_mean[i]
    noise_sites = tuple(
        (sn.service, sn.operation.split("/", 1)[-1], subtree_mean[i])
        for i, sn in enumerate(spans) if sn.entered and sn.status == "OK"
    )
    return Outcome(
        prob=branch.prob,
        ok=ok,
        error=branch.failure,
        error_services=tuple(error_services),
        visit_counts=branch.visits,
        error_visit_counts=branch.error_visits,
        hop_fail_counts=branch.hop_fails,
        client_fail=False,
        logs=tuple(branch.logs),
        noise_eligible=branch.noise,
        noise_sites=noise_sites,
        mean_ms=mean,
        var_ms=var,
        spans=branch.spans,
    )


def compile_profile(rt: "ServiceRuntime", op: Operation, key: tuple) -> PathProfile:
    """Enumerate every outcome branch of ``op`` under the current state."""
    entry = rt.services[op.entry]
    root_err = rt._check_reachable(entry)
    if root_err is not None:
        outcome = Outcome(
            prob=1.0, ok=False, error=root_err,
            error_services=(entry.name,),
            visit_counts={}, error_visit_counts={}, hop_fail_counts={},
            client_fail=True, logs=(), noise_eligible=0, noise_sites=(),
            mean_ms=1.0, var_ms=0.0,
            spans=[SpanNode(service="wrk-client", operation=op.name,
                            parent=-1, entered=False, status="ERROR",
                            error_message=root_err.message, const_ms=1.0)],
        )
        return PathProfile(op.name, entry.name, key, [outcome], [1.0])

    success, failures = _enter(rt, op, entry, None, "handle", op.tree,
                               _Branch(1.0), -1)
    outcomes = [_finalize(rt, op, fb, ok=False) for fb in failures]
    if success is not None and success.prob > 0.0:
        outcomes.append(_finalize(rt, op, success, ok=True))
    total = sum(o.prob for o in outcomes)
    if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-12):
        raise AssertionError(
            f"path profile for {op.name!r} does not cover the outcome "
            f"space: probabilities sum to {total!r}")
    probs = [o.prob / total for o in outcomes]
    return PathProfile(op.name, entry.name, key, outcomes, probs)
