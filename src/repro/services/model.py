"""Microservice and call-graph model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.services.backends import MemcachedBackend, MongoBackend, RedisBackend


@dataclass
class Microservice:
    """One microservice in an application.

    Attributes
    ----------
    name:
        Also the Kubernetes service/deployment name.
    port:
        The container port the service listens on.
    kind:
        ``"stateless"`` (business logic), ``"mongodb"``, ``"redis"``,
        ``"memcached"`` or ``"frontend"``.
    backend:
        The simulated store for database/cache kinds.
    base_latency_ms / latency_sigma:
        Lognormal per-hop service time parameters.
    credentials:
        For stateless services that talk to a database: the
        ``{backend_service: (username, password)}`` map rendered from helm
        values.  ``None`` credentials model the *AuthenticationMissing*
        fault.
    """

    name: str
    port: int
    kind: str = "stateless"
    image: str = ""
    backend: Optional[MongoBackend | RedisBackend | MemcachedBackend] = None
    base_latency_ms: float = 2.0
    latency_sigma: float = 0.3
    credentials: dict[str, Optional[tuple[str, str]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.image:
            self.image = f"deathstarbench/{self.name}:latest"

    @property
    def busy_mcores_per_rps(self) -> float:
        """CPU demand (millicores) one request/second of load adds.

        The resource plane's first-principles demand model: a request that
        keeps the service busy for ``base_latency_ms`` milliseconds holds
        one core for that fraction of each second, i.e. ``base_latency_ms``
        millicores per rps.
        """
        return self.base_latency_ms


@dataclass
class CallEdge:
    """A directed RPC in an operation's call tree."""

    callee: str
    command: str = "rpc"
    children: list["CallEdge"] = field(default_factory=list)


@dataclass
class Operation:
    """A user-facing operation and its call tree rooted at the entry service."""

    name: str
    entry: str
    tree: list[CallEdge] = field(default_factory=list)
    weight: float = 1.0

    def all_services(self) -> set[str]:
        """Every service the operation touches (entry included)."""
        seen = {self.entry}

        def walk(edges: list[CallEdge]) -> None:
            for e in edges:
                seen.add(e.callee)
                walk(e.children)

        walk(self.tree)
        return seen
