"""RPC error taxonomy for the microservice runtime.

Error messages mirror the strings real systems emit (gRPC, the MongoDB Go
driver, Kubernetes), because agents diagnose by reading exactly these
strings out of logs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RpcErrorKind(str, enum.Enum):
    """Classes of RPC failure, each with a distinctive log signature."""

    CONNECTION_REFUSED = "connection_refused"
    TIMEOUT = "timeout"
    NETWORK_DROP = "network_drop"
    AUTH_FAILED = "auth_failed"
    NOT_AUTHORIZED = "not_authorized"
    USER_NOT_FOUND = "user_not_found"
    APP_BUG = "app_bug"
    UNAVAILABLE = "unavailable"
    INTERNAL = "internal"
    RESOURCE_EXHAUSTED = "resource_exhausted"


@dataclass
class RpcError:
    """A failure observed on one RPC hop.

    Attributes
    ----------
    kind:
        Machine-readable class of the failure.
    service:
        The callee whose invocation failed.
    message:
        Human-readable message, written to the caller's logs.
    """

    kind: RpcErrorKind
    service: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.kind.value}] {self.service}: {self.message}"


def connection_refused(service: str, port: int) -> RpcError:
    return RpcError(
        RpcErrorKind.CONNECTION_REFUSED,
        service,
        f'dial tcp: connect: connection refused (service "{service}" port {port} '
        f"has no ready endpoints)",
    )


def network_drop(service: str) -> RpcError:
    return RpcError(
        RpcErrorKind.NETWORK_DROP,
        service,
        f'rpc error: code = Unavailable desc = transport: connection to "{service}" '
        f"lost: packet dropped",
    )


def timeout(service: str, deadline_ms: float) -> RpcError:
    return RpcError(
        RpcErrorKind.TIMEOUT,
        service,
        f"rpc error: code = DeadlineExceeded desc = context deadline exceeded "
        f"after {deadline_ms:.0f}ms calling {service}",
    )


def auth_failed(service: str, db: str) -> RpcError:
    return RpcError(
        RpcErrorKind.AUTH_FAILED,
        service,
        f"connection() error occurred during connection handshake: auth error: "
        f'sasl conversation error: unable to authenticate using mechanism '
        f'"SCRAM-SHA-1": (AuthenticationFailed) Authentication failed on db "{db}"',
    )


def not_authorized(service: str, db: str, command: str) -> RpcError:
    return RpcError(
        RpcErrorKind.NOT_AUTHORIZED,
        service,
        f"(Unauthorized) not authorized on {db} to execute command "
        f'{{ {command}: "{db}" }}',
    )


def user_not_found(service: str, db: str, user: str) -> RpcError:
    return RpcError(
        RpcErrorKind.USER_NOT_FOUND,
        service,
        f'(UserNotFound) Could not find user "{user}" for db "{db}"',
    )


def app_bug(service: str, image: str) -> RpcError:
    return RpcError(
        RpcErrorKind.APP_BUG,
        service,
        f"panic: failed to initialize connection pool: invalid connection URI "
        f"(image {image}): malformed host string",
    )


def resource_exhausted(service: str) -> RpcError:
    return RpcError(
        RpcErrorKind.RESOURCE_EXHAUSTED,
        service,
        f'rpc error: code = ResourceExhausted desc = "{service}" overloaded: '
        f"node CPU pressure, request shed by server",
    )


def unavailable(service: str, reason: str) -> RpcError:
    return RpcError(
        RpcErrorKind.UNAVAILABLE,
        service,
        f"rpc error: code = Unavailable desc = {reason}",
    )
