"""Simulated storage backends: MongoDB, Redis, Memcached.

Only the control-plane behaviour that faults exercise is modelled — user
accounts, roles, authentication and authorization for Mongo; liveness for
the caches.  Data-plane reads/writes are abstract successful operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class MongoUser:
    """A MongoDB user account with its granted roles."""

    username: str
    password: str
    roles: set[str] = field(default_factory=lambda: {"readWrite"})


class MongoBackend:
    """A simulated MongoDB instance backing one ``mongodb-*`` microservice.

    Faults manipulate this state directly:

    * **RevokeAuth** removes the ``readWrite``/``dbAdmin`` roles →
      subsequent commands fail with *(Unauthorized) not authorized on <db>*.
    * **UserUnregistered** drops the user entirely → *(UserNotFound)*.
    * **AuthenticationMissing** is a client-side fault (the caller has no
      credentials configured), surfaced by :meth:`authenticate` receiving
      ``None``.
    """

    #: Roles that allow running read/write commands against the database.
    WRITE_ROLES = frozenset({"readWrite", "dbAdmin", "root"})

    def __init__(self, db_name: str, require_auth: bool = True) -> None:
        self.db_name = db_name
        self.require_auth = require_auth
        self.users: dict[str, MongoUser] = {}
        #: control-plane mutation counter (user/role changes, liveness
        #: toggles); derived caches (path profiles) fingerprint on it
        self.version = 0
        self._up = True

    @property
    def up(self) -> bool:
        return self._up

    @up.setter
    def up(self, value: bool) -> None:
        self._up = bool(value)
        self.version += 1

    # -- administration -------------------------------------------------
    def create_user(self, username: str, password: str,
                    roles: Optional[set[str]] = None) -> MongoUser:
        user = MongoUser(username, password, set(roles or {"readWrite"}))
        self.users[username] = user
        self.version += 1
        return user

    def drop_user(self, username: str) -> bool:
        """Remove a user; returns True if it existed."""
        self.version += 1
        return self.users.pop(username, None) is not None

    def revoke_roles(self, username: str, roles: Optional[set[str]] = None) -> bool:
        """Revoke roles (all write roles by default); True if user existed."""
        self.version += 1
        user = self.users.get(username)
        if user is None:
            return False
        user.roles -= set(roles) if roles else set(self.WRITE_ROLES)
        return True

    def grant_roles(self, username: str, roles: set[str]) -> bool:
        self.version += 1
        user = self.users.get(username)
        if user is None:
            return False
        user.roles |= set(roles)
        return True

    # -- access checks (what the data path exercises) --------------------
    def authenticate(self, username: Optional[str], password: Optional[str]) -> str:
        """Returns '' on success or a failure reason.

        Reasons: ``no_credentials``, ``user_not_found``, ``bad_password``.
        """
        if not self.require_auth:
            return ""
        if not username or password is None:
            return "no_credentials"
        user = self.users.get(username)
        if user is None:
            return "user_not_found"
        if user.password != password:
            return "bad_password"
        return ""

    def authorize(self, username: Optional[str], command: str = "find") -> str:
        """Returns '' if the user may run ``command``, else ``not_authorized``."""
        if not self.require_auth:
            return ""
        user = self.users.get(username or "")
        if user is None:
            return "user_not_found"
        if not (user.roles & self.WRITE_ROLES):
            return "not_authorized"
        return ""


class RedisBackend:
    """A simulated Redis: a keyed store with a liveness flag."""

    def __init__(self, name: str) -> None:
        self.name = name
        #: liveness-toggle counter (the only control-plane state here)
        self.version = 0
        self._up = True
        self._store: dict[str, str] = {}

    @property
    def up(self) -> bool:
        return self._up

    @up.setter
    def up(self, value: bool) -> None:
        self._up = bool(value)
        self.version += 1

    def set(self, key: str, value: str) -> None:
        self._store[key] = value

    def get(self, key: str) -> Optional[str]:
        return self._store.get(key)

    def __len__(self) -> int:
        return len(self._store)


class MemcachedBackend:
    """A simulated Memcached: an LRU-less cache with a liveness flag."""

    def __init__(self, name: str) -> None:
        self.name = name
        #: liveness-toggle counter (the only control-plane state here)
        self.version = 0
        self._up = True
        self._store: dict[str, str] = {}

    @property
    def up(self) -> bool:
        return self._up

    @up.setter
    def up(self, value: bool) -> None:
        self._up = bool(value)
        self.version += 1

    def set(self, key: str, value: str) -> None:
        self._store[key] = value

    def get(self, key: str) -> Optional[str]:
        return self._store.get(key)

    def flush(self) -> None:
        self._store.clear()
