"""Numpy sampling kernels for the aggregate execution tier.

``ServiceRuntime.execute_many`` spends its time drawing samples: one
latency-sum per outcome branch, and per-span lognormal service times for
every exemplar request.  The scalar engine draws each of those through a
Python call per value; these kernels draw them as fused array operations
on the batch stream's underlying :class:`numpy.random.Generator` — one
``normal`` over all (op, branch) latency sums of a span, and one
``lognormal`` matrix per branch covering every exemplar at once.

numpy is imported behind a clean gate so the scalar fallback in
``services/runtime.py`` keeps working without it (and can be forced for
testing with ``REPRO_SCALAR_SAMPLING=1``).  The two engines consume the
same deterministic batch stream but in different shapes, so each is
reproducible in (seed, n) while their sample values differ — see
``docs/design/fidelity.md`` for the RNG stream policy.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

try:  # pragma: no cover - exercised via the explicit fallback test
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.services.profile import Outcome

#: numpy importable at all (the package itself runs without it)
AVAILABLE = np is not None


def enabled() -> bool:
    """Whether new runtimes should use the vectorized engine: numpy is
    importable and the scalar engine was not forced via the
    ``REPRO_SCALAR_SAMPLING=1`` environment variable (the CI fallback
    gate)."""
    return AVAILABLE and os.environ.get("REPRO_SCALAR_SAMPLING") != "1"


class OutcomeKernel:
    """Precomputed sampling arrays for one compiled outcome branch.

    Built lazily from an :class:`~repro.services.profile.Outcome`'s span
    skeleton the first time the branch needs exemplars, then cached on the
    outcome — the profile's validity fingerprint already pins every input
    (latency parameters, pressure multipliers), so the kernel can never
    outlive the state it encodes, including when the outcome is shared
    across sessions through the profile store.
    """

    __slots__ = ("n_spans", "entered_idx", "const", "mu", "sigma", "acc")

    def __init__(self, outcome: "Outcome", mu_sigma) -> None:
        """``mu_sigma(service) -> (mu, sigma)`` supplies each entered
        span's lognormal parameters (the runtime's pressure-adjusted
        moments source)."""
        spans = outcome.spans
        self.n_spans = len(spans)
        self.entered_idx = np.array(
            [i for i, sn in enumerate(spans) if sn.entered], dtype=np.intp)
        self.const = np.array([sn.const_ms for sn in spans])
        params = [mu_sigma(spans[i].service) for i in self.entered_idx]
        self.mu = np.array([p[0] for p in params])
        self.sigma = np.array([p[1] for p in params])
        #: bottom-up subtree accumulation order: children are appended
        #: after their parent, so one reverse pass rolls entered spans up;
        #: failure stubs keep their fixed cost (same rule as the scalar
        #: engine and the per-request path)
        self.acc = [(i, spans[i].parent)
                    for i in range(len(spans) - 1, 0, -1)
                    if spans[i].entered and spans[i].parent >= 0]

    def sample(self, gen, n_ex: int):
        """``(n_ex, n_spans)`` subtree-summed durations: one fused
        lognormal draw covers every exemplar's entered spans, then the
        reverse pass accumulates child subtrees into parents — vectorized
        across exemplars, so the per-span Python loop runs once per branch
        instead of once per exemplar."""
        out = np.empty((n_ex, self.n_spans))
        out[:, :] = self.const
        if len(self.entered_idx):
            out[:, self.entered_idx] = gen.lognormal(
                self.mu, self.sigma, size=(n_ex, len(self.entered_idx)))
        for i, parent in self.acc:
            out[:, parent] += out[:, i]
        return out


def branch_latency_sums(gen, locs: list, scales: list) -> list:
    """One fused draw of every branch's end-to-end latency sum.

    Each entry is the total latency of ``k`` iid requests on one outcome
    branch — normal-approximated with exact mean/variance (CLT shape),
    clamped at zero exactly like the scalar engine.
    """
    draws = gen.normal(np.asarray(locs), np.asarray(scales))
    return [max(float(d), 0.0) for d in np.atleast_1d(draws)]
