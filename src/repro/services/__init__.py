"""Microservice runtime: call-graph request execution over the kubesim cluster.

An application is a set of microservices plus a call graph per operation
(e.g. ``compose_post`` fans out from the nginx frontend through a dozen
services).  Executing a request walks that graph:

1. the caller resolves the callee's Kubernetes service — empty endpoints
   mean **connection refused**;
2. chaos rules (network loss, pod failure) may drop the hop;
3. the callee's application handler runs — database proxies check
   authentication/authorization against their simulated backend stores,
   buggy images fail with code-level errors;
4. failures propagate upward, writing error logs at the observing service
   and error spans on the trace — the same observable chain a real
   incident produces.
"""

from repro.services.errors import (
    RpcError,
    RpcErrorKind,
)
from repro.services.backends import MongoBackend, RedisBackend, MemcachedBackend
from repro.services.model import Microservice, CallEdge, Operation
from repro.services.profile import Outcome, PathProfile, compile_profile
from repro.services.runtime import BatchResult, ServiceRuntime, RequestResult

__all__ = [
    "RpcError",
    "RpcErrorKind",
    "MongoBackend",
    "RedisBackend",
    "MemcachedBackend",
    "Microservice",
    "CallEdge",
    "Operation",
    "ServiceRuntime",
    "RequestResult",
    "BatchResult",
    "Outcome",
    "PathProfile",
    "compile_profile",
]
