"""Evaluates the non-LLM baselines over the benchmark problems (Table 4a/4b).

The baselines are batch algorithms: for each problem we stand the
environment up (warmup → inject → soak) exactly as the Orchestrator would,
then hand the *telemetry* — not the ACI — to the algorithm.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.baselines.mksmc import MKSMC
from repro.baselines.pdiagnose import PDiagnose
from repro.baselines.rmlad import RMLAD
from repro.problems import get_problem, list_problems


def _prepared_env(pid: str, seed: int):
    problem = get_problem(pid)
    env = problem.create_environment(seed=seed)
    problem.start_workload(env)
    inject_t = env.clock.now
    problem.inject_fault(env)
    # extra observation window after the soak, like an agent's first steps
    env.advance(30.0)
    return problem, env, inject_t


def run_baseline_suite(
    name: str,
    pids: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> dict[str, float]:
    """Run one baseline over its task's problems.

    Returns a Table-4-style row: ``{"task", "accuracy", "accuracy@1",
    "time_s"}`` (accuracy@1 == accuracy for single-answer detection).
    """
    name = name.lower()
    if name == "mksmc":
        return _run_mksmc(pids, seed)
    if name == "rmlad":
        return _run_localizer(RMLAD(), "rmlad", pids, seed)
    if name == "pdiagnose":
        return _run_localizer(PDiagnose(), "pdiagnose", pids, seed)
    raise KeyError(f"unknown baseline {name!r}")


def _run_mksmc(pids: Optional[Sequence[str]], seed: int) -> dict[str, float]:
    pid_list = list(pids) if pids is not None else list_problems("detection")
    correct = 0
    elapsed = 0.0
    for pid in pid_list:
        problem, env, inject_t = _prepared_env(pid, seed)
        services = sorted(env.app.services)
        t0 = time.perf_counter()
        detector = MKSMC(seed=seed)
        detector.fit(env.collector.metrics, services, until=inject_t)
        verdict = detector.detect(env.collector.metrics, services,
                                  since=inject_t)
        elapsed += time.perf_counter() - t0
        expected_fault = problem.spec is not None
        if verdict.anomalous == expected_fault:
            correct += 1
    n = len(pid_list)
    return {"task": "detection", "accuracy": correct / n if n else 0.0,
            "accuracy@1": correct / n if n else 0.0,
            "time_s": elapsed / n if n else 0.0}


def _run_localizer(algo, label: str, pids: Optional[Sequence[str]],
                   seed: int) -> dict[str, float]:
    pid_list = list(pids) if pids is not None else list_problems("localization")
    top1 = top3 = 0
    elapsed = 0.0
    for pid in pid_list:
        problem, env, inject_t = _prepared_env(pid, seed)
        t0 = time.perf_counter()
        if isinstance(algo, RMLAD):
            result = algo.localize(env.collector, env.namespace,
                                   healthy_until=inject_t,
                                   observe_until=env.clock.now)
        else:
            result = algo.localize(env.collector, env.namespace,
                                   since=inject_t)
        elapsed += time.perf_counter() - t0
        truth = problem.ans
        if result.ranking[:1] == [truth]:
            top1 += 1
        if truth in result.ranking[:3]:
            top3 += 1
    n = len(pid_list)
    # The paper reports a single accuracy for these methods (Acc@3 == Acc@1
    # in Table 4b): they emit one root-cause candidate.  We grade top-1 as
    # the headline and keep top-3 as supplementary information.
    return {"task": "localization", "accuracy": top1 / n if n else 0.0,
            "accuracy@1": top1 / n if n else 0.0,
            "accuracy@3": top3 / n if n else 0.0,
            "time_s": elapsed / n if n else 0.0}
