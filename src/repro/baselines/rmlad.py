"""RMLAD: root-cause metric location via log anomaly detection.

Following Wang et al. (2020): detect anomalies in per-service log behaviour
(here: log-volume deviation between a reference and an observation window,
the classic template-count formulation), then rank services by the
correlation of their *metric* deviations with the log anomaly onset.

It keys on volume shifts rather than log content, so faults whose error
messages replace (rather than add to) normal log flow score weakly —
matching its poor showing in the paper's localization column.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.collector import TelemetryCollector


@dataclass
class RmladResult:
    """Ranked localization output."""

    ranking: list[str] = field(default_factory=list)
    scores: dict[str, float] = field(default_factory=dict)

    def top(self, k: int = 3) -> list[str]:
        return self.ranking[:k]


class RMLAD:
    """Log-anomaly-driven root-cause localization.

    Parameters
    ----------
    bucket_seconds:
        Time-bucket width for log-volume series.
    """

    def __init__(self, bucket_seconds: float = 10.0) -> None:
        self.bucket_seconds = bucket_seconds

    def _volume_series(self, collector: TelemetryCollector, namespace: str,
                       since: float, until: float,
                       service: str) -> np.ndarray:
        records = collector.logs.query(namespace=namespace, service=service,
                                       since=since, until=until)
        n_buckets = max(int((until - since) / self.bucket_seconds), 1)
        counts = np.zeros(n_buckets)
        for r in records:
            idx = min(int((r.time - since) / self.bucket_seconds), n_buckets - 1)
            counts[idx] += 1
        return counts

    def localize(
        self,
        collector: TelemetryCollector,
        namespace: str,
        healthy_until: float,
        observe_until: float,
    ) -> RmladResult:
        """Rank services by log-volume anomaly between the two windows."""
        services = sorted(collector.logs.services_seen(namespace))
        scores: dict[str, float] = {}
        span = healthy_until  # reference window [0, healthy_until)
        for svc in services:
            ref = self._volume_series(collector, namespace, 0.0, span, svc)
            obs = self._volume_series(collector, namespace, span,
                                      observe_until, svc)
            mu, sd = ref.mean(), ref.std() + 1e-9
            # anomaly = mean absolute deviation of observed volume, in sigmas
            scores[svc] = float(np.abs(obs - mu).mean() / sd)
        ranking = [s for s, _ in sorted(scores.items(), key=lambda kv: -kv[1])]
        return RmladResult(ranking=ranking, scores=scores)
