"""MKSMC: multivariate K-sigma score anomaly detection with Monte Carlo.

Following Çetin & Tasgin (2020): fit a per-dimension Gaussian on a
reference (healthy) window of the metric matrix, score observation windows
by their maximum K-sigma deviation, and calibrate the alarm threshold by
Monte-Carlo sampling from the fitted model (the score quantile that a
healthy system would only exceed with probability ``alpha``).

The method sees only resource/traffic KPIs — functional faults that barely
move CPU or memory are largely invisible to it, which is exactly why the
paper reports it near 15% detection accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.telemetry.metrics import MetricStore


@dataclass
class MksmcResult:
    """Outcome of one detection decision."""

    anomalous: bool
    score: float
    threshold: float


class MKSMC:
    """Multivariate K-sigma + Monte Carlo detector over the metric store.

    Parameters
    ----------
    metrics:
        KPI names to stack into the multivariate series.  Defaults to the
        resource KPIs the method targets (CPU, memory); traffic- or
        error-derived KPIs would leak the fault signal the paper shows
        these detectors miss.
    alpha:
        Target false-alarm probability for the Monte-Carlo threshold.
    n_samples:
        Monte-Carlo sample count.
    """

    #: relative floor on per-dimension sigma — short training windows
    #: (a handful of scrapes) badly underestimate variance otherwise and
    #: turn the detector into a false-alarm machine
    SIGMA_FLOOR_REL = 0.05

    def __init__(
        self,
        metrics: tuple[str, ...] = ("cpu_usage", "memory_usage"),
        alpha: float = 0.01,
        n_samples: int = 2000,
        window_len: int = 12,
        seed: int = 0,
    ) -> None:
        self.metrics = metrics
        self.alpha = alpha
        self.n_samples = n_samples
        self.window_len = window_len
        self._rng = np.random.default_rng(seed)
        self._mu: Optional[np.ndarray] = None
        self._sigma: Optional[np.ndarray] = None
        self.threshold: Optional[float] = None

    # ------------------------------------------------------------------
    def _matrix(self, store: MetricStore, services: list[str],
                since: Optional[float], until: Optional[float]) -> np.ndarray:
        """Stack all KPIs for all services into a (T, S*M) matrix."""
        blocks = []
        n_rows = None
        for metric in self.metrics:
            _, m = store.matrix(services, metric, since=since, until=until)
            blocks.append(m)
            n_rows = m.shape[0] if n_rows is None else min(n_rows, m.shape[0])
        if not blocks or n_rows is None or n_rows == 0:
            return np.zeros((0, 0))
        return np.concatenate([b[:n_rows] for b in blocks], axis=1)

    def fit(self, store: MetricStore, services: list[str],
            since: Optional[float] = None, until: Optional[float] = None) -> "MKSMC":
        """Fit the healthy-window Gaussian and the Monte-Carlo threshold."""
        X = self._matrix(store, services, since, until)
        if X.size == 0:
            raise ValueError("no metric samples in the training window")
        self._mu = X.mean(axis=0)
        raw_sigma = X.std(axis=0)
        self._sigma = np.maximum(
            raw_sigma, self.SIGMA_FLOOR_REL * np.abs(self._mu) + 1e-6)
        # Monte Carlo: healthy-like *windows* (window_len rows) -> the
        # distribution of window-max scores; the threshold accounts for the
        # max being taken over both time and dimensions.
        sims = self._rng.normal(
            self._mu, self._sigma,
            size=(self.n_samples, self.window_len, X.shape[1]),
        )
        scores = np.abs((sims - self._mu) / self._sigma).max(axis=(1, 2))
        self.threshold = float(np.quantile(scores, 1.0 - self.alpha))
        return self

    def score(self, store: MetricStore, services: list[str],
              since: Optional[float] = None,
              until: Optional[float] = None) -> float:
        """Max K-sigma deviation of the observation window."""
        if self._mu is None or self._sigma is None:
            raise RuntimeError("call fit() before score()")
        X = self._matrix(store, services, since, until)
        if X.size == 0:
            return 0.0
        z = np.abs((X - self._mu[: X.shape[1]]) / self._sigma[: X.shape[1]])
        return float(z.max())

    def detect(self, store: MetricStore, services: list[str],
               since: Optional[float] = None,
               until: Optional[float] = None) -> MksmcResult:
        s = self.score(store, services, since=since, until=until)
        assert self.threshold is not None
        return MksmcResult(anomalous=s > self.threshold, score=s,
                           threshold=self.threshold)
