"""PDiagnose: heterogeneous-data vote-based diagnosis of performance issues.

Following Hou et al. (2021): convert each data source — KPIs (latency),
logs (volume bursts) and traces (span latency) — into per-service anomaly
votes, then aggregate with a weighted vote to pick the culprit.

PDiagnose targets *performance* degradation; the functional faults in the
benchmark surface as error responses with *lower* latency (fail-fast), so
its latency-oriented votes often point at the wrong tier — consistent with
its ~15% accuracy in Table 4b.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.collector import TelemetryCollector


@dataclass
class PDiagnoseResult:
    """Ranked localization output with per-source votes."""

    ranking: list[str] = field(default_factory=list)
    votes: dict[str, float] = field(default_factory=dict)

    def top(self, k: int = 3) -> list[str]:
        return self.ranking[:k]


class PDiagnose:
    """Weighted vote over KPI, log and trace anomaly signals.

    Parameters
    ----------
    kpi_weight / log_weight / trace_weight:
        Vote weights for the three modalities (defaults follow the paper's
        equal-ish weighting with KPIs slightly favoured).
    """

    def __init__(self, kpi_weight: float = 1.2, log_weight: float = 1.0,
                 trace_weight: float = 1.0) -> None:
        self.kpi_weight = kpi_weight
        self.log_weight = log_weight
        self.trace_weight = trace_weight

    # -- per-modality anomaly scores (0..1-ish) ---------------------------
    def _kpi_votes(self, collector: TelemetryCollector, since: float
                   ) -> dict[str, float]:
        votes: dict[str, float] = {}
        store = collector.metrics
        for svc in store.services():
            series = store.series(svc, "latency_p99_ms")
            if series is None or len(series.values) < 4:
                continue
            t = np.asarray(series.times)
            v = np.asarray(series.values)
            ref = v[t < since]
            obs = v[t >= since]
            if len(ref) < 2 or len(obs) == 0:
                continue
            mu, sd = ref.mean(), ref.std() + 1e-9
            votes[svc] = float(np.clip((obs.mean() - mu) / (3 * sd), 0, 1))
        return votes

    def _log_votes(self, collector: TelemetryCollector, namespace: str,
                   since: float) -> dict[str, float]:
        votes: dict[str, float] = {}
        for svc in collector.logs.services_seen(namespace):
            before = len(collector.logs.query(namespace=namespace, service=svc,
                                              until=since))
            after = len(collector.logs.query(namespace=namespace, service=svc,
                                             since=since))
            if before + after == 0:
                continue
            votes[svc] = float(np.clip(
                (after - before) / (before + 1.0), 0, 1))
        return votes

    def _trace_votes(self, collector: TelemetryCollector, since: float
                     ) -> dict[str, float]:
        votes: dict[str, float] = {}
        durations: dict[str, list[float]] = {}
        baselines: dict[str, list[float]] = {}
        for trace in collector.traces.query():
            for span in trace.spans:
                bucket = durations if span.start >= since else baselines
                bucket.setdefault(span.service, []).append(span.duration_ms)
        for svc, obs in durations.items():
            ref = baselines.get(svc)
            if not ref or len(ref) < 3:
                continue
            mu, sd = float(np.mean(ref)), float(np.std(ref)) + 1e-9
            votes[svc] = float(np.clip(
                (float(np.mean(obs)) - mu) / (3 * sd), 0, 1))
        return votes

    # ------------------------------------------------------------------
    def localize(self, collector: TelemetryCollector, namespace: str,
                 since: float) -> PDiagnoseResult:
        """Vote across modalities; ``since`` is the suspected onset time."""
        kpi = self._kpi_votes(collector, since)
        logs = self._log_votes(collector, namespace, since)
        traces = self._trace_votes(collector, since)
        services = set(kpi) | set(logs) | set(traces)
        votes = {
            svc: (self.kpi_weight * kpi.get(svc, 0.0)
                  + self.log_weight * logs.get(svc, 0.0)
                  + self.trace_weight * traces.get(svc, 0.0))
            for svc in services
        }
        ranking = [s for s, _ in sorted(votes.items(), key=lambda kv: -kv[1])]
        return PDiagnoseResult(ranking=ranking, votes=votes)
