"""Traditional (non-LLM) AIOps baselines evaluated in Table 4 (§3.1).

* :class:`MKSMC` — multivariate K-sigma anomaly detection with Monte-Carlo
  thresholding (Çetin & Tasgin, 2020) — detection.
* :class:`RMLAD` — root-cause metric location via log anomaly detection
  (Wang et al., 2020) — localization.
* :class:`PDiagnose` — heterogeneous-data (KPI + log + trace) vote-based
  diagnosis of performance issues (Hou et al., 2021) — localization.

All three consume the offline telemetry export (§2.5) rather than the ACI:
they are batch algorithms, not agents.
"""

from repro.baselines.mksmc import MKSMC
from repro.baselines.rmlad import RMLAD
from repro.baselines.pdiagnose import PDiagnose
from repro.baselines.runner import run_baseline_suite

__all__ = ["MKSMC", "RMLAD", "PDiagnose", "run_baseline_suite"]
