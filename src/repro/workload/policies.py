"""Request-rate policies: constant, diurnal, bursty, spiky, replayed."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol, Sequence


class RatePolicy(Protocol):
    """Maps virtual time to an offered request rate (req/s).

    Policies may additionally implement ``zero_until(t) -> float | None``:
    if the rate is *exactly* zero everywhere on ``[t, u)`` return ``u``
    (``math.inf`` for "forever"), else return ``None``.  The event kernel
    uses this hint to fast-forward across provably idle spans instead of
    evaluating every tick; a policy without the hint is simply never
    fast-forwarded.
    """

    def rate(self, t: float) -> float:  # pragma: no cover - protocol
        ...


@dataclass
class ConstantRate:
    """A fixed offered load."""

    rps: float = 100.0

    def rate(self, t: float) -> float:
        if self.rps < 0:
            raise ValueError(f"rate must be >= 0, got {self.rps}")
        return self.rps

    def zero_until(self, t: float) -> float | None:
        return math.inf if self.rps == 0 else None


@dataclass
class DiurnalRate:
    """Sinusoidal day/night pattern around a base rate.

    ``rate(t) = base * (1 + amplitude * sin(2π t / period))``, clamped at 0.
    """

    base: float = 100.0
    amplitude: float = 0.5
    period: float = 86_400.0

    def rate(self, t: float) -> float:
        r = self.base * (1.0 + self.amplitude * math.sin(2 * math.pi * t / self.period))
        return max(r, 0.0)


@dataclass
class BurstRate:
    """Base load with recurring bursts (e.g. marketing pushes).

    Every ``interval`` seconds the rate multiplies by ``burst_factor`` for
    ``burst_duration`` seconds.
    """

    base: float = 100.0
    burst_factor: float = 4.0
    interval: float = 300.0
    burst_duration: float = 30.0

    def rate(self, t: float) -> float:
        phase = t % self.interval
        return self.base * (self.burst_factor if phase < self.burst_duration else 1.0)


@dataclass
class SpikeRate:
    """A single one-off spike at ``at`` lasting ``duration`` seconds."""

    base: float = 100.0
    spike_factor: float = 10.0
    at: float = 60.0
    duration: float = 10.0

    def rate(self, t: float) -> float:
        if self.at <= t < self.at + self.duration:
            return self.base * self.spike_factor
        return self.base

    def zero_until(self, t: float) -> float | None:
        if self.base != 0:
            return None
        # base 0: idle except (possibly) during the spike window
        if t < self.at:
            return self.at
        if t < self.at + self.duration:
            return None if self.spike_factor != 0 else math.inf
        return math.inf


@dataclass
class ReplayTrace:
    """Replays an industry trace: a step function over (time, rate) points."""

    points: Sequence[tuple[float, float]] = field(default_factory=tuple)

    def rate(self, t: float) -> float:
        current = 0.0
        for ts, r in self.points:
            if ts <= t:
                current = r
            else:
                break
        return current

    def zero_until(self, t: float) -> float | None:
        if self.rate(t) != 0.0:
            return None
        for ts, r in self.points:
            if ts > t and r != 0.0:
                return ts
        return math.inf
