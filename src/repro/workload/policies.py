"""Request-rate policies: constant, diurnal, bursty, spiky, replayed."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol, Sequence


class RatePolicy(Protocol):
    """Maps virtual time to an offered request rate (req/s).

    Policies may additionally implement two optional hints:

    ``zero_until(t) -> float | None``
        If the rate is *exactly* zero everywhere on ``[t, u)`` return
        ``u`` (``math.inf`` for "forever"), else ``None``.  The event
        kernel uses this to fast-forward across provably idle spans
        instead of evaluating every tick; a policy without the hint is
        simply never fast-forwarded.  Because the kernel trusts the hint
        bit-for-bit, implementations must be conservative about float
        rounding near span edges (shrink, never stretch).

    ``next_change(t) -> float | None``
        The earliest time strictly after ``t`` at which the rate *may*
        change: ``math.inf`` for "constant forever", ``None`` for
        "continuously varying / unknown".  The aggregate workload driver
        coalesces the whole constant span ``[t, next_change(t))`` into a
        single ``execute_many`` batch; without the hint (or with
        ``None``) it falls back to one-second spans.

    ``span_rate(t0, t1) -> float``
        The average offered rate over ``[t0, t1)``, for policies whose
        rate varies *within* a ``next_change`` span (a continuously-
        varying policy approximated piecewise, like :class:`DiurnalRate`).
        The aggregate driver bills a span as ``span_rate(t0, t1) ·
        (t1 - t0)`` when the hint exists, else ``rate(t0) · (t1 - t0)``
        (exact for piecewise-constant policies).  Only called with spans
        that do not straddle a ``next_change`` boundary.
    """

    def rate(self, t: float) -> float:  # pragma: no cover - protocol
        ...


@dataclass
class ConstantRate:
    """A fixed offered load."""

    rps: float = 100.0

    def rate(self, t: float) -> float:
        if self.rps < 0:
            raise ValueError(f"rate must be >= 0, got {self.rps}")
        return self.rps

    def zero_until(self, t: float) -> float | None:
        return math.inf if self.rps == 0 else None

    def next_change(self, t: float) -> float | None:
        return math.inf


@dataclass
class DiurnalRate:
    """Sinusoidal day/night pattern around a base rate.

    ``rate(t) = base * (1 + amplitude * sin(2π t / period))``, clamped at 0.

    For aggregate-mode span coalescing the continuous sinusoid is
    approximated piecewise-linearly on a grid of ``segments`` equal knots
    per period: :meth:`next_change` announces the next knot (so spans
    never straddle one) and :meth:`span_rate` bills a span at the chord
    average between its endpoints.  With ``segments = S`` the chord error
    within a smooth segment is bounded by ``max|f''|·h²/8`` with
    ``h = period/S``, i.e. ``base·|amplitude|·(2π/S)²/8`` — at the default
    ``S = 96`` (15-minute segments on a 24 h period) that is ~0.054% of
    ``base·|amplitude|``; a segment containing a clamp crossing
    (``amplitude > 1``) additionally errs by at most that segment's total
    rate change.  Per-request mode never reads these hints, so its
    per-tick arithmetic is untouched.
    """

    base: float = 100.0
    amplitude: float = 0.5
    period: float = 86_400.0
    #: piecewise-linear approximation knots per period (aggregate mode)
    segments: int = 96

    #: phase margin (radians) shaved off both ends of the zero span so
    #: float rounding near the sin crossings can never make the hint
    #: claim zero where ``rate`` evaluates non-zero
    _ZERO_PHASE_MARGIN = 1e-6

    def __post_init__(self) -> None:
        if self.segments < 1:
            raise ValueError(
                f"segments must be >= 1, got {self.segments}")

    def rate(self, t: float) -> float:
        r = self.base * (1.0 + self.amplitude * math.sin(2 * math.pi * t / self.period))
        return max(r, 0.0)

    def next_change(self, t: float) -> float | None:
        """The next piecewise-linear knot strictly after ``t``."""
        h = self.period / self.segments
        return (math.floor(t / h) + 1) * h

    def span_rate(self, t0: float, t1: float) -> float:
        """Chord-average rate on ``[t0, t1)`` (within one segment)."""
        return 0.5 * (self._chord(t0) + self._chord(t1))

    def _chord(self, t: float) -> float:
        """The piecewise-linear approximation: interpolate the true
        (clamped) rate between the surrounding grid knots."""
        h = self.period / self.segments
        k = math.floor(t / h)
        lo, hi = k * h, (k + 1) * h
        if t <= lo:
            return self.rate(lo)
        frac = (t - lo) / h
        return (1.0 - frac) * self.rate(lo) + frac * self.rate(hi)

    def zero_until(self, t: float) -> float | None:
        """Night clipping: with ``amplitude > 1`` the clamped rate is
        exactly 0 while ``sin`` is below ``-1/amplitude`` — a piecewise
        zero span once per period the kernel can fast-forward across."""
        if self.base == 0:
            return math.inf
        if self.base < 0:  # clamp inverts: zero where sin is *high*; no hint
            return None
        if self.amplitude <= 1.0:  # never clamps (negative A: no hint)
            return None
        two_pi = 2.0 * math.pi
        theta = math.asin(1.0 / self.amplitude)
        lo = math.pi + theta + self._ZERO_PHASE_MARGIN
        hi = two_pi - theta - self._ZERO_PHASE_MARGIN
        if lo >= hi:
            return None
        x = (t % self.period) / self.period * two_pi
        if lo <= x < hi:
            return t + (hi - x) * self.period / two_pi
        return None


@dataclass
class BurstRate:
    """Base load with recurring bursts (e.g. marketing pushes).

    Every ``interval`` seconds the rate multiplies by ``burst_factor`` for
    ``burst_duration`` seconds.
    """

    base: float = 100.0
    burst_factor: float = 4.0
    interval: float = 300.0
    burst_duration: float = 30.0

    def rate(self, t: float) -> float:
        phase = t % self.interval
        return self.base * (self.burst_factor if phase < self.burst_duration else 1.0)

    def _boundary_margin(self) -> float:
        """Float modulo isn't linear, so a span end computed as
        ``t + (boundary - phase)`` can land an ulp past the true phase
        boundary; shrinking hints by this margin keeps them sound."""
        return 1e-9 * max(self.interval, 1.0)

    def zero_until(self, t: float) -> float | None:
        if self.base == 0:
            return math.inf
        if self.burst_factor == 0:
            phase = t % self.interval
            if phase < self.burst_duration:
                u = t + (self.burst_duration - phase) - self._boundary_margin()
                return u if u > t else None
        return None

    def next_change(self, t: float) -> float | None:
        phase = t % self.interval
        if phase < self.burst_duration:
            return t + (self.burst_duration - phase)
        return t + (self.interval - phase)


@dataclass
class SpikeRate:
    """A single one-off spike at ``at`` lasting ``duration`` seconds."""

    base: float = 100.0
    spike_factor: float = 10.0
    at: float = 60.0
    duration: float = 10.0

    def rate(self, t: float) -> float:
        if self.at <= t < self.at + self.duration:
            return self.base * self.spike_factor
        return self.base

    def zero_until(self, t: float) -> float | None:
        if self.base != 0:
            return None
        # base 0: idle except (possibly) during the spike window
        if t < self.at:
            return self.at
        if t < self.at + self.duration:
            return None if self.spike_factor != 0 else math.inf
        return math.inf

    def next_change(self, t: float) -> float | None:
        if t < self.at:
            return self.at
        if t < self.at + self.duration:
            return self.at + self.duration
        return math.inf


@dataclass
class ReplayTrace:
    """Replays an industry trace: a step function over (time, rate) points."""

    points: Sequence[tuple[float, float]] = field(default_factory=tuple)

    def rate(self, t: float) -> float:
        current = 0.0
        for ts, r in self.points:
            if ts <= t:
                current = r
            else:
                break
        return current

    def zero_until(self, t: float) -> float | None:
        if self.rate(t) != 0.0:
            return None
        for ts, r in self.points:
            if ts > t and r != 0.0:
                return ts
        return math.inf

    def next_change(self, t: float) -> float | None:
        for ts, _ in self.points:
            if ts > t:
                return ts
        return math.inf
