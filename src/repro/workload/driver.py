"""Drives the service runtime: issues requests as virtual time advances.

Two execution paths share the same per-tick arithmetic:

* the **event kernel** path (:meth:`WorkloadDriver.run_events`): arrival
  ticks are :class:`~repro.simcore.events.ScheduledEvent`\\ s on the
  environment's :class:`~repro.simcore.events.EventQueue`, interleaved with
  telemetry, controller-resync and fault-timeline events, and provably idle
  spans are fast-forwarded instead of ticked through;
* the **legacy tick loop** (:meth:`WorkloadDriver.run_for`): the seed's
  hand-rolled 1-second loop, kept as the bit-exact reference
  implementation and for standalone drivers without a queue.

Both produce identical :class:`WorkloadStats`, RNG draw order and scrape
timestamps for any window sequence — the kernel-equivalence regression
test asserts this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.simcore import EventQueue, RngStream
from repro.services.runtime import RequestResult, ServiceRuntime
from repro.workload.policies import ConstantRate, RatePolicy


@dataclass
class WorkloadStats:
    """Aggregate outcome counters for a driver's lifetime."""

    requests: int = 0
    errors: int = 0
    latency_sum_ms: float = 0.0
    per_operation: dict[str, int] = field(default_factory=dict)

    @property
    def error_rate(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_sum_ms / self.requests if self.requests else 0.0


class WorkloadDriver:
    """Open-loop load generator over the shared virtual clock.

    Each virtual second issues ``policy.rate(t)`` requests (fractional
    rates accumulate), with operations drawn from the app's weighted mix,
    and telemetry is scraped every ``scrape_interval`` seconds.

    The orchestrator advances the environment between agent actions, so the
    system keeps "living" while the agent thinks — the dynamic-environment
    property the paper contrasts against static-dataset benchmarks.

    Parameters
    ----------
    queue:
        The environment's event queue.  When set, :meth:`run_events`
        schedules arrival ticks as events (the kernel path); without it
        only the legacy :meth:`run_for` loop is available.
    """

    #: execution modes; re-exported as ``repro.core.env.FIDELITY_TIERS``
    MODES = ("per_request", "aggregate")

    def __init__(
        self,
        runtime: ServiceRuntime,
        mix: dict[str, float],
        policy: Optional[RatePolicy] = None,
        scrape_interval: float = 5.0,
        seed: int = 0,
        max_requests_per_tick: int = 200,
        queue: Optional[EventQueue] = None,
        mode: str = "per_request",
    ) -> None:
        if not mix:
            raise ValueError("workload mix must not be empty")
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.runtime = runtime
        self.mode = mode
        self._policy: RatePolicy = policy or ConstantRate(100.0)
        self._zero_hint: Optional[Callable[[float], Optional[float]]] = \
            getattr(self._policy, "zero_until", None)
        self._change_hint: Optional[Callable[[float], Optional[float]]] = \
            getattr(self._policy, "next_change", None)
        self.scrape_interval = scrape_interval
        self.rng = RngStream(seed, "workload")
        self.stats = WorkloadStats()
        self.max_requests_per_tick = max_requests_per_tick
        self._ops = list(mix)
        total = sum(mix.values())
        self._weights = [w / total for w in mix.values()]
        self._carry = 0.0
        self._last_scrape = runtime.clock.now
        self.recent_results: list[RequestResult] = []
        self.queue = queue
        self._window_start = runtime.clock.now
        self._window_end = runtime.clock.now

    # ------------------------------------------------------------------
    # policy (kept a property so the idle-span hint stays in sync when a
    # scheduled rate-change event swaps the policy mid-run)
    # ------------------------------------------------------------------
    @property
    def policy(self) -> RatePolicy:
        return self._policy

    @policy.setter
    def policy(self, policy: RatePolicy) -> None:
        self._policy = policy
        self._zero_hint = getattr(policy, "zero_until", None)
        self._change_hint = getattr(policy, "next_change", None)

    def attach_queue(self, queue: EventQueue) -> None:
        """Bind the driver to an event queue (enables :meth:`run_events`)."""
        self.queue = queue

    # ------------------------------------------------------------------
    # shared per-request work
    # ------------------------------------------------------------------
    def _issue_one(self) -> RequestResult:
        op = self.rng.choice(self._ops, p=self._weights)
        result = self.runtime.execute(op)
        self.stats.requests += 1
        self.stats.latency_sum_ms += result.latency_ms
        self.stats.per_operation[op] = self.stats.per_operation.get(op, 0) + 1
        if not result.ok:
            self.stats.errors += 1
        self.recent_results.append(result)
        if len(self.recent_results) > 500:
            del self.recent_results[:250]
        return result

    def _scrape(self) -> None:
        self.runtime.collector.scrape(
            self.runtime.cluster, self.runtime.namespace
        )
        self._last_scrape = self.runtime.clock.now

    # ------------------------------------------------------------------
    # event-kernel path
    # ------------------------------------------------------------------
    def run_events(self, seconds: float) -> WorkloadStats:
        """Advance ``seconds`` of virtual time through the event queue.

        Schedules this window's arrival-tick chain and runs the queue, so
        fault timelines, controller resync and any other scheduled events
        interleave with the workload on one timeline.  Produces the same
        stats, RNG draw order and scrape times as :meth:`run_for`.
        """
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        if self.queue is None:
            raise RuntimeError(
                "driver has no event queue; use attach_queue() or run_for()")
        clock = self.runtime.clock
        self._window_start = clock.now
        self._window_end = clock.now + seconds
        if self.mode == "aggregate":
            self.queue.schedule_at(clock.now, self._tick_batch,
                                   label="workload.batch")
        else:
            self.queue.schedule_at(clock.now, self._tick, label="workload.tick")
        self.queue.run_until(self._window_end)
        return self.stats

    def _tick(self) -> None:
        """One arrival tick: scrape if due, issue this second's load, and
        schedule the next boundary (fast-forwarding idle spans)."""
        clock = self.runtime.clock
        now = clock.now
        end = self._window_end
        # The scrape check mirrors the legacy loop: it runs at every
        # post-advance boundary, i.e. never at the window's start.
        if now > self._window_start \
                and now - self._last_scrape >= self.scrape_interval:
            self._scrape()
        if now >= end:
            return
        step = min(1.0, end - now)
        want = self._policy.rate(now) * step + self._carry
        n = int(want)
        self._carry = want - n
        # Cap per-tick volume so pathological policies can't stall a run;
        # the cap is generous relative to the paper's wrk rate of 100/s.
        for _ in range(min(n, self.max_requests_per_tick)):
            self._issue_one()
        self._schedule_next_tick(now + step)

    def _schedule_next_tick(self, at: float) -> None:
        """Schedule the next tick, skipping boundaries that are provably
        no-ops: while the policy's rate is exactly zero no requests arrive
        and the carry cannot change, so only boundaries where a scrape is
        due (or the window/zero-span ends) need an event.  Boundary times
        are walked with the same float additions the legacy loop performs,
        keeping scrape timestamps bit-identical.

        The walk never passes a queued event: any event may mutate the
        driver (a ``set_rate`` timeline entry swaps the policy), so the
        zero-rate proof only holds up to the next event's fire time — the
        tick resumes at the first boundary at or after it."""
        end = self._window_end
        if self._zero_hint is not None and at < end:
            horizon = self._zero_hint(at)
            if horizon is not None and horizon > at:
                next_event = self.queue.next_active_time()
                b = at
                while b < end \
                        and not (b - self._last_scrape >= self.scrape_interval):
                    if next_event is not None and b >= next_event:
                        break
                    nb = b + min(1.0, end - b)
                    if nb > horizon:
                        break
                    b = nb
                at = b
        self.queue.schedule_at(at, self._tick, label="workload.tick")

    # ------------------------------------------------------------------
    # aggregate mode: coalesced spans over execute_many
    # ------------------------------------------------------------------
    def _tick_batch(self) -> None:
        """One aggregate span: scrape if due, issue the whole span's load
        as ``execute_many`` batches, schedule the next span boundary.

        A span runs from ``now`` to the earliest of: the window end, the
        next scrape due time, the policy's ``next_change(now)`` hint
        (falling back to one-second steps for continuously-varying
        policies), and the next queued non-passive event (which may swap
        the policy mid-run).  The rate is constant on the span by
        construction, so the span's request count uses the same
        ``rate·span + carry`` accumulator arithmetic as the per-request
        tick — counts match the per-request mode to within float rounding
        of the span product (±1 per span); outcomes are statistically
        equivalent, not bit-identical.
        """
        clock = self.runtime.clock
        now = clock.now
        end = self._window_end
        if now > self._window_start \
                and now - self._last_scrape >= self.scrape_interval:
            self._scrape()
        if now >= end:
            return
        span_end = min(end, self._last_scrape + self.scrape_interval)
        change = self._change_hint(now) if self._change_hint else None
        span_end = min(span_end, now + 1.0 if change is None else change)
        next_event = self.queue.next_active_time()
        if next_event is not None and next_event > now:
            span_end = min(span_end, next_event)
        if span_end <= now:  # scrape was just overdue-adjacent; take a step
            span_end = min(end, now + 1.0)
        span = span_end - now
        want = self._policy.rate(now) * span + self._carry
        n = int(want)
        self._carry = want - n
        # No per-tick volume cap here: the cap exists to stop pathological
        # policies stalling the per-request walk, but execute_many is
        # O(outcome branches) regardless of n — high offered rates are
        # exactly what this mode is for.
        if n > 0:
            self._issue_batch(n)
        self.queue.schedule_at(span_end, self._tick_batch,
                               label="workload.batch")

    def _issue_batch(self, n: int) -> None:
        """Split ``n`` arrivals across the operation mix (multinomially —
        the exact distribution of ``n`` weighted choices) and run one
        ``execute_many`` per operation."""
        counts = self.rng.multinomial(n, self._weights)
        for op, k in zip(self._ops, counts):
            if k <= 0:
                continue
            batch = self.runtime.execute_many(op, k)
            self.stats.requests += batch.n
            self.stats.errors += batch.errors
            self.stats.latency_sum_ms += batch.latency_sum_ms
            self.stats.per_operation[op] = \
                self.stats.per_operation.get(op, 0) + batch.n
            self.recent_results.extend(batch.exemplars)
        if len(self.recent_results) > 500:
            del self.recent_results[:250]

    # ------------------------------------------------------------------
    # legacy tick loop
    # ------------------------------------------------------------------
    def run_for(self, seconds: float) -> WorkloadStats:
        """Advance virtual time by ``seconds``, issuing load along the way.

        .. deprecated:: 2.1
            The seed's hand-rolled 1-second tick loop.  It advances the
            clock directly and fires **no** scheduled events: fault
            timelines and resync events stall under it until the next
            queue run, where anything now overdue fires (late) at the
            then-current time.  It is kept as the bit-exact reference
            implementation for the kernel-equivalence test and for
            standalone drivers; everything environment-level goes through
            ``CloudEnvironment.advance`` (the event kernel) instead.
        """
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        clock = self.runtime.clock
        end = clock.now + seconds
        while clock.now < end:
            step = min(1.0, end - clock.now)
            t = clock.now
            want = self._policy.rate(t) * step + self._carry
            n = int(want)
            self._carry = want - n
            for _ in range(min(n, self.max_requests_per_tick)):
                self._issue_one()
            clock.advance(step)
            if clock.now - self._last_scrape >= self.scrape_interval:
                self._scrape()
        return self.stats
