"""Drives the service runtime: issues requests as virtual time advances.

Everything runs on the event kernel: arrival ticks are
:class:`~repro.simcore.events.ScheduledEvent`\\ s on the environment's
:class:`~repro.simcore.events.EventQueue`, interleaved with telemetry,
controller-resync and fault-timeline events, and provably idle spans are
fast-forwarded instead of ticked through.  An environment calls
:meth:`WorkloadDriver.begin_window` on each of its drivers (a multi-app
environment hosts one driver per app, all on the shared queue) and then
runs the queue once; :meth:`WorkloadDriver.run_events` bundles the two
for standalone drivers, which lazily own a private queue on the
runtime's clock.

The kernel's per-tick arithmetic is bit-identical to the reference
1-second tick loop — same :class:`WorkloadStats`, RNG draw order and
scrape timestamps for any window sequence.  That reference loop lives
only as a private fixture inside
``tests/core/test_kernel_equivalence.py``, which asserts the equivalence.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.simcore import EventQueue, RngStream
from repro.services.runtime import RequestResult, ServiceRuntime
from repro.workload.policies import ConstantRate, RatePolicy


@dataclass
class WorkloadStats:
    """Aggregate outcome counters for a driver's lifetime."""

    requests: int = 0
    errors: int = 0
    latency_sum_ms: float = 0.0
    per_operation: dict[str, int] = field(default_factory=dict)

    @property
    def error_rate(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_sum_ms / self.requests if self.requests else 0.0


class WorkloadDriver:
    """Open-loop load generator over the shared virtual clock.

    Each virtual second issues ``policy.rate(t)`` requests (fractional
    rates accumulate), with operations drawn from the app's weighted mix,
    and telemetry is scraped every ``scrape_interval`` seconds.

    The orchestrator advances the environment between agent actions, so the
    system keeps "living" while the agent thinks — the dynamic-environment
    property the paper contrasts against static-dataset benchmarks.

    Parameters
    ----------
    queue:
        The environment's event queue.  When omitted the driver creates a
        private queue on the runtime's clock, so standalone drivers (tests,
        offline baselines) run the same kernel path as environments.
    rng_stream:
        Name of the driver's RNG stream.  The default (``"workload"``) is
        the historical single-driver stream; a multi-app environment gives
        each co-hosted app's driver a namespace-qualified stream so two
        drivers sharing one seed draw independent arrival sequences.
    """

    #: execution modes; re-exported as ``repro.core.env.FIDELITY_TIERS``
    MODES = ("per_request", "aggregate")

    def __init__(
        self,
        runtime: ServiceRuntime,
        mix: dict[str, float],
        policy: Optional[RatePolicy] = None,
        scrape_interval: float = 5.0,
        seed: int = 0,
        max_requests_per_tick: int = 200,
        queue: Optional[EventQueue] = None,
        mode: str = "per_request",
        rng_stream: str = "workload",
    ) -> None:
        if not mix:
            raise ValueError("workload mix must not be empty")
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.runtime = runtime
        self.mode = mode
        self._policy: RatePolicy = policy or ConstantRate(100.0)
        self._zero_hint: Optional[Callable[[float], Optional[float]]] = \
            getattr(self._policy, "zero_until", None)
        self._change_hint: Optional[Callable[[float], Optional[float]]] = \
            getattr(self._policy, "next_change", None)
        self._span_hint: Optional[Callable[[float, float], float]] = \
            getattr(self._policy, "span_rate", None)
        self.scrape_interval = scrape_interval
        self.rng = RngStream(seed, rng_stream)
        self.stats = WorkloadStats()
        self.max_requests_per_tick = max_requests_per_tick
        self._ops = list(mix)
        total = sum(mix.values())
        self._weights = [w / total for w in mix.values()]
        self._carry = 0.0
        self._warned_clipping = False
        self._last_scrape = runtime.clock.now
        self.recent_results: list[RequestResult] = []
        # standalone drivers own a private queue; environments share theirs
        self.queue = queue if queue is not None else EventQueue(runtime.clock)
        self._window_start = runtime.clock.now
        self._window_end = runtime.clock.now

    # ------------------------------------------------------------------
    # policy (kept a property so the idle-span hint stays in sync when a
    # scheduled rate-change event swaps the policy mid-run)
    # ------------------------------------------------------------------
    @property
    def policy(self) -> RatePolicy:
        return self._policy

    @policy.setter
    def policy(self, policy: RatePolicy) -> None:
        self._policy = policy
        self._zero_hint = getattr(policy, "zero_until", None)
        self._change_hint = getattr(policy, "next_change", None)
        self._span_hint = getattr(policy, "span_rate", None)

    # ------------------------------------------------------------------
    # shared per-request work
    # ------------------------------------------------------------------
    def _issue_one(self) -> RequestResult:
        op = self.rng.choice(self._ops, p=self._weights)
        result = self.runtime.execute(op)
        self.stats.requests += 1
        self.stats.latency_sum_ms += result.latency_ms
        self.stats.per_operation[op] = self.stats.per_operation.get(op, 0) + 1
        if not result.ok:
            self.stats.errors += 1
        self.recent_results.append(result)
        if len(self.recent_results) > 500:
            del self.recent_results[:250]
        return result

    def _scrape(self) -> None:
        self.runtime.collector.scrape(
            self.runtime.cluster, self.runtime.namespace
        )
        self._last_scrape = self.runtime.clock.now

    # ------------------------------------------------------------------
    # event-kernel path
    # ------------------------------------------------------------------
    def begin_window(self, end: float) -> None:
        """Schedule this driver's arrival-tick chain for a window ending
        at absolute virtual time ``end``.

        The caller still has to run the queue (``queue.run_until(end)``);
        a multi-app environment begins every driver's window first, so all
        apps' ticks interleave deterministically on the shared queue, then
        runs the queue once.
        """
        clock = self.runtime.clock
        if end < clock.now:
            raise ValueError(
                f"window end {end} precedes the clock ({clock.now})")
        self._window_start = clock.now
        self._window_end = end
        if self.mode == "aggregate":
            self.queue.schedule_at(clock.now, self._tick_batch,
                                   label="workload.batch")
        else:
            self.queue.schedule_at(clock.now, self._tick, label="workload.tick")

    def run_events(self, seconds: float) -> WorkloadStats:
        """Advance ``seconds`` of virtual time through the event queue.

        Schedules this window's arrival-tick chain and runs the queue, so
        fault timelines, controller resync and any other scheduled events
        interleave with the workload on one timeline.  Bit-identical to
        the reference 1-second tick loop (stats, RNG draw order, scrape
        times).
        """
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self.begin_window(self.runtime.clock.now + seconds)
        self.queue.run_until(self._window_end)
        return self.stats

    def _tick(self) -> None:
        """One arrival tick: scrape if due, issue this second's load, and
        schedule the next boundary (fast-forwarding idle spans)."""
        clock = self.runtime.clock
        now = clock.now
        end = self._window_end
        # The scrape check mirrors the legacy loop: it runs at every
        # post-advance boundary, i.e. never at the window's start.
        if now > self._window_start \
                and now - self._last_scrape >= self.scrape_interval:
            self._scrape()
        if now >= end:
            return
        step = min(1.0, end - now)
        want = self._policy.rate(now) * step + self._carry
        n = int(want)
        self._carry = want - n
        # Cap per-tick volume so pathological policies can't stall a run;
        # the cap is generous relative to the paper's wrk rate of 100/s.
        # Capping silently would misreport the offered load, so the first
        # clipped tick warns loudly (once per driver).
        if n > self.max_requests_per_tick and not self._warned_clipping:
            self._warned_clipping = True
            warnings.warn(
                f"per_request workload clipped: {n} requests offered in "
                f"one tick but max_requests_per_tick="
                f"{self.max_requests_per_tick}; served load will fall "
                f"short of the policy's rate. For >= 1k rps workloads "
                f"use fidelity=\"aggregate\" (no per-tick cap), or raise "
                f"max_requests_per_tick.",
                RuntimeWarning, stacklevel=2)
        for _ in range(min(n, self.max_requests_per_tick)):
            self._issue_one()
        self._schedule_next_tick(now + step)

    def _schedule_next_tick(self, at: float) -> None:
        """Schedule the next tick, skipping boundaries that are provably
        no-ops: while the policy's rate is exactly zero no requests arrive
        and the carry cannot change, so only boundaries where a scrape is
        due (or the window/zero-span ends) need an event.  Boundary times
        are walked with the same float additions the legacy loop performs,
        keeping scrape timestamps bit-identical.

        The walk never passes a queued event: any event may mutate the
        driver (a ``set_rate`` timeline entry swaps the policy), so the
        zero-rate proof only holds up to the next event's fire time — the
        tick resumes at the first boundary at or after it.  Pending metric
        watches need no extra cap: they can only fire at a scrape, and the
        walk already stops at every scrape-due boundary."""
        end = self._window_end
        if self._zero_hint is not None and at < end:
            horizon = self._zero_hint(at)
            if horizon is not None and horizon > at:
                next_event = self.queue.next_active_time()
                b = at
                while b < end \
                        and not (b - self._last_scrape >= self.scrape_interval):
                    if next_event is not None and b >= next_event:
                        break
                    nb = b + min(1.0, end - b)
                    if nb > horizon:
                        break
                    b = nb
                at = b
        self.queue.schedule_at(at, self._tick, label="workload.tick")

    # ------------------------------------------------------------------
    # aggregate mode: coalesced spans over execute_many
    # ------------------------------------------------------------------
    def _tick_batch(self) -> None:
        """One aggregate span: scrape if due, issue the whole span's load
        as ``execute_many`` batches, schedule the next span boundary.

        A span runs from ``now`` to the earliest of: the window end, the
        next scrape due time, the policy's ``next_change(now)`` hint
        (falling back to one-second steps for continuously-varying
        policies without one), and the next queued non-passive event
        (which may swap the policy mid-run).  The scrape bound doubles as
        the trigger bound: a pending :class:`~repro.simcore.events.Watch`
        (metric-triggered timeline entry) can only be evaluated — and can
        only fire — at a scrape, so no span ever coalesces past the
        earliest possible watch evaluation, and triggers land within one
        scrape interval of where per-request fidelity lands them.

        The span's request count uses the same ``rate·span + carry``
        accumulator arithmetic as the per-request tick, billed at
        ``span_rate(now, span_end)`` when the policy provides the hint
        (piecewise-approximated continuous policies) and ``rate(now)``
        otherwise (exact for piecewise-constant policies) — counts match
        the per-request mode to within float rounding of the span product
        (±1 per span, plus the policy's documented approximation error for
        ``span_rate`` policies); outcomes are statistically equivalent,
        not bit-identical.
        """
        clock = self.runtime.clock
        now = clock.now
        end = self._window_end
        if now > self._window_start \
                and now - self._last_scrape >= self.scrape_interval:
            self._scrape()
        if now >= end:
            return
        next_scrape = self._last_scrape + self.scrape_interval
        span_end = min(end, next_scrape)
        change = self._change_hint(now) if self._change_hint else None
        span_end = min(span_end, now + 1.0 if change is None else change)
        if self.queue.pending_watch_count:
            # redundant with the unconditional scrape bound above today,
            # but load-bearing if that bound is ever relaxed: a pending
            # watch is evaluable no earlier than the next scrape, and no
            # span may coalesce past its earliest possible evaluation
            span_end = min(span_end, next_scrape)
        next_event = self.queue.next_active_time()
        if next_event is not None and next_event > now:
            span_end = min(span_end, next_event)
        if span_end <= now:  # scrape was just overdue-adjacent; take a step
            span_end = min(end, now + 1.0)
        span = span_end - now
        r = self._span_hint(now, span_end) if self._span_hint is not None \
            else self._policy.rate(now)
        want = r * span + self._carry
        n = int(want)
        self._carry = want - n
        # No per-tick volume cap here: the cap exists to stop pathological
        # policies stalling the per-request walk, but execute_many is
        # O(outcome branches) regardless of n — high offered rates are
        # exactly what this mode is for.
        if n > 0:
            self._issue_batch(n)
        self.queue.schedule_at(span_end, self._tick_batch,
                               label="workload.batch")

    def _issue_batch(self, n: int) -> None:
        """Split ``n`` arrivals across the operation mix (multinomially —
        the exact distribution of ``n`` weighted choices) and run the whole
        span as one fused ``execute_many_all`` call, so the vectorized
        engine draws every operation's branch latency sums in a single
        numpy sample."""
        counts = self.rng.multinomial(n, self._weights)
        requests = [(op, k) for op, k in zip(self._ops, counts) if k > 0]
        for batch in self.runtime.execute_many_all(requests):
            self.stats.requests += batch.n
            self.stats.errors += batch.errors
            self.stats.latency_sum_ms += batch.latency_sum_ms
            self.stats.per_operation[batch.operation] = \
                self.stats.per_operation.get(batch.operation, 0) + batch.n
            self.recent_results.extend(batch.exemplars)
        if len(self.recent_results) > 500:
            del self.recent_results[:250]

