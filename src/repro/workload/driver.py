"""Drives the service runtime: issues requests as virtual time advances."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.simcore import RngStream
from repro.services.runtime import RequestResult, ServiceRuntime
from repro.workload.policies import ConstantRate, RatePolicy


@dataclass
class WorkloadStats:
    """Aggregate outcome counters for a driver's lifetime."""

    requests: int = 0
    errors: int = 0
    latency_sum_ms: float = 0.0
    per_operation: dict[str, int] = field(default_factory=dict)

    @property
    def error_rate(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_sum_ms / self.requests if self.requests else 0.0


class WorkloadDriver:
    """Open-loop load generator over the shared virtual clock.

    Each call to :meth:`run_for` advances time in 1-second ticks; every tick
    issues ``policy.rate(t)`` requests (fractional rates accumulate), with
    operations drawn from the app's weighted mix, and scrapes telemetry
    every ``scrape_interval`` seconds.

    The orchestrator calls ``run_for`` between agent actions, so the system
    keeps "living" while the agent thinks — the dynamic-environment property
    the paper contrasts against static-dataset benchmarks.
    """

    def __init__(
        self,
        runtime: ServiceRuntime,
        mix: dict[str, float],
        policy: Optional[RatePolicy] = None,
        scrape_interval: float = 5.0,
        seed: int = 0,
        max_requests_per_tick: int = 200,
    ) -> None:
        if not mix:
            raise ValueError("workload mix must not be empty")
        self.runtime = runtime
        self.policy = policy or ConstantRate(100.0)
        self.scrape_interval = scrape_interval
        self.rng = RngStream(seed, "workload")
        self.stats = WorkloadStats()
        self.max_requests_per_tick = max_requests_per_tick
        self._ops = list(mix)
        total = sum(mix.values())
        self._weights = [w / total for w in mix.values()]
        self._carry = 0.0
        self._last_scrape = runtime.clock.now
        self.recent_results: list[RequestResult] = []

    def _issue_one(self) -> RequestResult:
        op = self.rng.choice(self._ops, p=self._weights)
        result = self.runtime.execute(op)
        self.stats.requests += 1
        self.stats.latency_sum_ms += result.latency_ms
        self.stats.per_operation[op] = self.stats.per_operation.get(op, 0) + 1
        if not result.ok:
            self.stats.errors += 1
        self.recent_results.append(result)
        if len(self.recent_results) > 500:
            del self.recent_results[:250]
        return result

    def run_for(self, seconds: float) -> WorkloadStats:
        """Advance virtual time by ``seconds``, issuing load along the way."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        clock = self.runtime.clock
        end = clock.now + seconds
        while clock.now < end:
            step = min(1.0, end - clock.now)
            t = clock.now
            want = self.policy.rate(t) * step + self._carry
            n = int(want)
            self._carry = want - n
            # Cap per-tick volume so pathological policies can't stall a run;
            # the cap is generous relative to the paper's wrk rate of 100/s.
            for _ in range(min(n, self.max_requests_per_tick)):
                self._issue_one()
            clock.advance(step)
            if clock.now - self._last_scrape >= self.scrape_interval:
                self.runtime.collector.scrape(
                    self.runtime.cluster, self.runtime.namespace
                )
                self._last_scrape = clock.now
        return self.stats
