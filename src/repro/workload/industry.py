"""Synthetic industry workload traces (§2.2.3: "replays industry workloads").

Real cluster traces are proprietary; these builders synthesize traces with
the statistical features the AIOps literature reports for production
request streams — diurnal cycles, weekday/weekend asymmetry, random bursts
and long-tailed spikes — as ``(time, rate)`` step functions consumable by
:class:`~repro.workload.policies.ReplayTrace`.
"""

from __future__ import annotations

import math

from repro.simcore import RngStream
from repro.workload.policies import ReplayTrace


def ecommerce_day(
    base: float = 80.0,
    peak_factor: float = 2.5,
    burst_rate: float = 0.05,
    step_seconds: float = 300.0,
    seed: int = 0,
) -> ReplayTrace:
    """One synthetic day of e-commerce traffic.

    A diurnal sinusoid (nightly trough, evening peak) with multiplicative
    noise and occasional flash-sale bursts.

    Parameters
    ----------
    base:
        Mean request rate (req/s).
    peak_factor:
        Evening peak over the nightly trough.
    burst_rate:
        Per-step probability of a 3–6× flash burst.
    step_seconds:
        Trace resolution.
    """
    rng = RngStream(seed, "industry/ecommerce")
    points: list[tuple[float, float]] = []
    day = 86_400.0
    steps = int(day / step_seconds)
    amplitude = (peak_factor - 1.0) / (peak_factor + 1.0)
    for i in range(steps):
        t = i * step_seconds
        # trough at 04:00, peak at 20:00 (phase-shifted sinusoid)
        phase = 2 * math.pi * (t / day - 20 / 24.0)
        rate = base * (1.0 + amplitude * math.cos(phase))
        rate *= max(1.0 + rng.normal(0.0, 0.08), 0.1)
        if rng.bernoulli(burst_rate):
            rate *= rng.uniform(3.0, 6.0)
        points.append((t, max(rate, 0.0)))
    return ReplayTrace(points=points)


def batch_processing_window(
    base: float = 20.0,
    batch_rate: float = 300.0,
    window_start: float = 3_600.0,
    window_length: float = 1_800.0,
    step_seconds: float = 60.0,
    total: float = 7_200.0,
    seed: int = 0,
) -> ReplayTrace:
    """Quiet interactive traffic with one heavy nightly batch window."""
    rng = RngStream(seed, "industry/batch")
    points: list[tuple[float, float]] = []
    t = 0.0
    while t < total:
        in_window = window_start <= t < window_start + window_length
        rate = batch_rate if in_window else base
        rate *= max(1.0 + rng.normal(0.0, 0.05), 0.1)
        points.append((t, rate))
        t += step_seconds
    return ReplayTrace(points=points)


def incident_ramp(
    base: float = 60.0,
    ramp_start: float = 120.0,
    ramp_factor: float = 5.0,
    ramp_seconds: float = 180.0,
    total: float = 600.0,
    step_seconds: float = 15.0,
) -> ReplayTrace:
    """A retry-storm shape: load ramps up after an incident begins (clients
    retrying), the classic confounder for detection tasks."""
    points: list[tuple[float, float]] = []
    t = 0.0
    while t < total:
        if t < ramp_start:
            rate = base
        else:
            progress = min((t - ramp_start) / ramp_seconds, 1.0)
            rate = base * (1.0 + (ramp_factor - 1.0) * progress)
        points.append((t, rate))
        t += step_seconds
    return ReplayTrace(points=points)
