"""The paper-facing ``Wrk`` wrapper (Example 2.1's workload API)."""

from __future__ import annotations

from typing import Optional

from repro.workload.driver import WorkloadDriver, WorkloadStats
from repro.workload.policies import ConstantRate, RatePolicy


class Wrk:
    """wrk2-compatible facade: ``Wrk(rate=100, duration=10).start_workload(url)``.

    The URL argument is accepted for interface parity with the paper's
    examples; routing is resolved from the app the driver was built for.
    """

    def __init__(self, rate: float = 100.0, duration: float = 10.0,
                 policy: Optional[RatePolicy] = None) -> None:
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        self.rate = rate
        self.duration = duration
        self.policy = policy or ConstantRate(rate)
        self._driver: Optional[WorkloadDriver] = None

    def bind(self, driver: WorkloadDriver) -> "Wrk":
        """Attach the driver built for the target application."""
        driver.policy = self.policy
        self._driver = driver
        return self

    def start_workload(self, url: str = "") -> WorkloadStats:
        """Generate ``duration`` seconds of load (blocking in virtual time)."""
        if self._driver is None:
            raise RuntimeError("Wrk is not bound to an application driver; "
                               "call bind(driver) first")
        return self._driver.run_events(self.duration)
