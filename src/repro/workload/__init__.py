"""Workload generation (the wrk2 equivalent).

:class:`Wrk` reproduces the paper's API (``Wrk(rate=100, duration=10)``)
on top of :class:`WorkloadDriver`, which advances virtual time, issues
requests per a :class:`RatePolicy`, and scrapes telemetry on a fixed
interval.
"""

from repro.workload.policies import (
    RatePolicy,
    ConstantRate,
    DiurnalRate,
    BurstRate,
    SpikeRate,
    ReplayTrace,
)
from repro.workload.driver import WorkloadDriver
from repro.workload.wrk import Wrk

__all__ = [
    "RatePolicy",
    "ConstantRate",
    "DiurnalRate",
    "BurstRate",
    "SpikeRate",
    "ReplayTrace",
    "WorkloadDriver",
    "Wrk",
]
