"""Concurrent batch execution of sessions (the v2 fan-out layer).

:func:`run_sessions` drives many independent :class:`SessionHandle`\\ s
under an ``asyncio.Semaphore``, so a 4-agents × 48-problems suite is no
longer strictly serial.  :func:`run_sessions_process` fans the same specs
out over a :class:`concurrent.futures.ProcessPoolExecutor` instead —
true multi-core parallelism for CPU-bound sweeps.  Determinism is
preserved by construction under *every* executor: each spec carries its
own seed (derived upstream from ``(seed, agent, pid)``), every handle
owns a private environment, and results come back in spec order
regardless of completion order — so serial, any asyncio concurrency
level, and the process pool all produce bit-identical results.
"""

from __future__ import annotations

import asyncio
import multiprocessing
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Union

from repro.core.env import EnvSnapshot
from repro.core.orchestrator import (
    Orchestrator,
    SessionContext,
    SessionHandle,
    run_coroutine_sync,
)
from repro.core.problem import Problem
from repro.core.session import Session

#: builds the agent once the session's environment (and thus its context)
#: exists: (context, task_type, seed) -> agent
AgentFactory = Callable[[SessionContext, str, int], Any]


@dataclass(frozen=True)
class SessionSpec:
    """Everything needed to run one session independently.

    ``agent`` is either a ready agent object (anything with ``get_action``)
    or an :data:`AgentFactory` called after the environment is set up —
    factories are the common case, since agent prompts are built from the
    session context.
    """

    problem: Union[Problem, str]
    agent: Union[Any, AgentFactory]
    agent_name: str = "agent"
    seed: int = 0
    max_steps: int = 20
    metadata: dict[str, Any] = field(default_factory=dict)


@dataclass
class SessionOutcome:
    """One spec's result: the evaluation dict and trajectory, plus the
    handle (env and all) unless the batch released it, or the error that
    aborted the session."""

    spec: SessionSpec
    handle: Optional[SessionHandle] = None
    session: Optional[Session] = None
    result: Optional[dict] = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


#: per-completion hook (progress reporting); called in completion order
ProgressHook = Callable[[SessionOutcome], None]


async def _run_one(orch: Optional[Orchestrator], spec: SessionSpec,
                   semaphore: asyncio.Semaphore,
                   fail_fast: bool, release_handles: bool,
                   progress: Optional[ProgressHook]) -> SessionOutcome:
    outcome = SessionOutcome(spec=spec)
    async with semaphore:
        try:
            if orch is not None:
                handle = await asyncio.to_thread(
                    orch.create_session,
                    spec.problem, seed=spec.seed, agent_name=spec.agent_name)
            else:  # untracked: the handle (and its env) dies with the case
                # setup (deploy + warmup + inject) is sync CPU work; run it
                # off-loop so in-flight sessions keep being serviced.  Each
                # problem/env is private to its case, so this stays
                # deterministic.
                handle = await asyncio.to_thread(
                    lambda: SessionHandle(
                        Orchestrator._resolve_problem(spec.problem),
                        seed=spec.seed, agent_name=spec.agent_name))
            outcome.handle = handle
            agent = spec.agent
            if callable(agent) and not hasattr(agent, "get_action"):
                agent = agent(handle.context, handle.problem.task_type,
                              spec.seed)
            handle.bind_agent(agent, name=spec.agent_name)
            outcome.result = await handle.run(max_steps=spec.max_steps)
            outcome.session = handle.session
        except Exception as e:  # isolate failures to their own case
            if fail_fast:
                raise
            outcome.error = e
        finally:
            if release_handles and outcome.handle is not None:
                # free the environment as soon as the case is done (failed
                # or not) instead of pinning every env until the batch
                # returns; close it (untracking it from the orchestrator,
                # if any) so its temp export dir is removed, not leaked per
                # case — keeping the (possibly partial) trajectory
                # reachable on the outcome
                if outcome.session is None:
                    outcome.session = outcome.handle.session
                if orch is not None:
                    orch.release(outcome.handle)
                else:
                    outcome.handle.close()
                outcome.handle = None
        if progress is not None:
            progress(outcome)
    return outcome


async def run_sessions(specs: Sequence[SessionSpec],
                       concurrency: int = 4,
                       orchestrator: Optional[Orchestrator] = None,
                       fail_fast: bool = False,
                       release_handles: bool = False,
                       progress: Optional[ProgressHook] = None,
                       ) -> list[SessionOutcome]:
    """Run every spec, at most ``concurrency`` sessions in flight.

    Returns outcomes in spec order.  By default a failing session never
    takes the batch down — its outcome carries the exception instead;
    ``fail_fast=True`` propagates the first failure immediately instead of
    spending the rest of the batch's budget.  ``release_handles=True``
    closes and drops each handle (environment, telemetry stores, exported
    artifact files under its temp export root) as its case finishes,
    keeping only the in-memory trajectory and result — essential for
    paper-scale suites where 288 live environments would otherwise
    coexist.  Passing an ``orchestrator`` additionally tracks every handle
    on it (``orchestrator.handles``), which pins their environments for
    the batch's lifetime — leave it None unless you want that.  With
    ``release_handles=True`` each handle is released from the
    orchestrator again as its case finishes, so the two options compose.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    semaphore = asyncio.Semaphore(concurrency)
    tasks = [
        asyncio.ensure_future(
            _run_one(orchestrator, spec, semaphore, fail_fast,
                     release_handles, progress))
        for spec in specs
    ]
    try:
        return list(await asyncio.gather(*tasks))
    except BaseException:
        # fail_fast (or cancellation): don't leave sibling sessions running
        # in the caller's loop; cancel and drain them before re-raising
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        raise


def run_sessions_sync(specs: Sequence[SessionSpec],
                      concurrency: int = 4,
                      orchestrator: Optional[Orchestrator] = None,
                      fail_fast: bool = False,
                      release_handles: bool = False,
                      progress: Optional[ProgressHook] = None,
                      executor: str = "async",
                      ) -> list[SessionOutcome]:
    """Synchronous, loop-safe wrapper around :func:`run_sessions`.

    ``executor`` selects the fan-out backend: ``"async"`` (default) runs
    the semaphore-bounded asyncio batch in this process;  ``"process"``
    delegates to :func:`run_sessions_process` with ``concurrency``
    workers.  Both return bit-identical outcomes in spec order.
    """
    if executor == "process":
        if orchestrator is not None:
            raise ValueError(
                "the process executor cannot track handles on an "
                "orchestrator; pass orchestrator=None")
        return run_sessions_process(specs, processes=concurrency,
                                    fail_fast=fail_fast, progress=progress)
    if executor != "async":
        raise ValueError(
            f"unknown executor {executor!r}; expected 'async' or 'process'")
    return run_coroutine_sync(
        run_sessions(specs, concurrency=concurrency,
                     orchestrator=orchestrator, fail_fast=fail_fast,
                     release_handles=release_handles, progress=progress))


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _run_spec_in_worker(spec: SessionSpec,
                        fail_fast: bool = False) -> SessionOutcome:
    """Process-pool worker: run one spec start-to-finish in this process.

    Always releases the handle — environments cannot (and should not)
    cross the process boundary; the outcome carries the pickled session
    trajectory and result only.  The spec's own seed fully determines the
    run, so a worker process needs no shared state with its siblings.
    """
    [outcome] = run_sessions_sync([spec], concurrency=1,
                                  fail_fast=fail_fast,
                                  release_handles=True)
    return outcome


def run_sessions_process(specs: Sequence[SessionSpec],
                         processes: int = 4,
                         fail_fast: bool = False,
                         progress: Optional[ProgressHook] = None,
                         ) -> list[SessionOutcome]:
    """Fan specs out over a process pool (opt-in true parallelism).

    Each spec runs start-to-finish inside one worker process with its own
    private environment, seeded entirely by the spec — so outcomes are
    bit-identical to :func:`run_sessions_sync` at any concurrency,
    including serial.  Specs must be picklable: use
    ``repro.agents.registry.agent_factory`` (or any module-level factory)
    rather than a lambda/closure agent.  Handles are always released
    (environments never cross the process boundary); outcomes carry the
    session trajectory and evaluation result.

    ``fail_fast=True`` propagates the first failure after cancelling
    undispatched work; otherwise failures stay isolated on their outcome
    like the asyncio batch.  ``progress`` is called in the parent process,
    in spec order, once the batch has drained.
    """
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    specs = list(specs)
    if not specs:
        return []
    # fork keeps worker start cheap and inherits the warmed import state;
    # spawn is the portable fallback (and the only option on some
    # platforms) — determinism is seed-carried either way
    ctx = _pool_context()
    results: list[Optional[SessionOutcome]] = [None] * len(specs)
    with ProcessPoolExecutor(max_workers=min(processes, len(specs)),
                             mp_context=ctx) as pool:
        futures = {pool.submit(_run_spec_in_worker, spec, fail_fast): i
                   for i, spec in enumerate(specs)}
        if fail_fast:
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            for future in not_done:
                future.cancel()
        first_error: Optional[BaseException] = None
        for future, i in futures.items():
            if future.cancelled():  # fail_fast tripped before dispatch
                continue
            error = future.exception()
            if error is not None:
                # under fail_fast session errors propagate out of the
                # worker; otherwise only worker-level failures (e.g. an
                # unpicklable spec) surface here — session errors already
                # live on the outcome
                if fail_fast:
                    if first_error is None:
                        first_error = error
                    continue
                outcome = SessionOutcome(spec=specs[i], error=error)
            else:
                outcome = future.result()
            results[i] = outcome
            if progress is not None:
                progress(outcome)
        if first_error is not None:
            raise first_error
    return [r for r in results if r is not None]


# ----------------------------------------------------------------------
# snapshot grids: warm workers amortize one prepared environment across
# every (agent × seed × step-limit) cell
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GridCell:
    """One cell of a snapshot sweep grid.

    Cells are tiny and picklable (an :data:`AgentFactory` plus three
    scalars), so shipping thousands of them to warm workers costs
    nothing next to the one-time snapshot transfer.  ``seed`` seeds the
    *agent* — the environment seed is frozen into the snapshot.
    """

    agent: Union[Any, AgentFactory]
    agent_name: str = "agent"
    seed: int = 0
    max_steps: int = 20


def run_grid_cell(snapshot: EnvSnapshot, cell: GridCell) -> dict:
    """Run one grid cell against a fresh fork of ``snapshot``.

    The snapshot must have been taken with its
    :class:`~repro.core.problem.Problem` as ``extras``
    (``env.snapshot(extras=problem)``) — the fork then resumes at the
    prepared point (deployed, warmed up, fault injected) and the session
    skips all of that setup.  Returns the evaluation result dict, the
    only thing a 1000-cell grid keeps per cell.
    """
    env, problem = snapshot.fork_with_extras()
    if not isinstance(problem, Problem):
        env.close()
        raise ValueError(
            "grid snapshots must co-capture their problem: take them "
            "with env.snapshot(extras=problem)")
    handle = SessionHandle(problem, seed=cell.seed,
                           agent_name=cell.agent_name, env=env)
    try:
        agent = cell.agent
        if callable(agent) and not hasattr(agent, "get_action"):
            agent = agent(handle.context, problem.task_type, cell.seed)
        handle.bind_agent(agent, name=cell.agent_name)
        return handle.run_sync(max_steps=cell.max_steps)
    finally:
        handle.close()


#: the warm worker's inherited snapshot (set once per worker by the pool
#: initializer — by fork inheritance where available, so the payload is
#: never re-shipped per cell)
_WARM_SNAPSHOT: Optional[EnvSnapshot] = None


def _init_warm_worker(snapshot: EnvSnapshot) -> None:
    global _WARM_SNAPSHOT
    _WARM_SNAPSHOT = snapshot


def _run_cell_in_worker(cell: GridCell) -> dict:
    return run_grid_cell(_WARM_SNAPSHOT, cell)


def run_grid(snapshot: EnvSnapshot, cells: Sequence[GridCell],
             processes: int = 1,
             progress: Optional[Callable[[dict], None]] = None,
             ) -> list[dict]:
    """Run every cell against forks of one snapshot; results in cell order.

    ``processes=1`` forks and runs each cell serially in this process.
    ``processes>1`` is the warm-worker pool: each worker receives the
    snapshot exactly once at startup (inherited on fork, along with the
    parent's warmed profile store and import state) and then rehydrates
    per cell — no per-cell environment setup, no per-cell snapshot
    transfer.  Every executor produces bit-identical results because each
    cell's evolution is fully determined by (snapshot, cell).
    """
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    cells = list(cells)
    if not cells:
        return []
    if processes == 1:
        results = []
        for cell in cells:
            result = run_grid_cell(snapshot, cell)
            results.append(result)
            if progress is not None:
                progress(result)
        return results
    with ProcessPoolExecutor(max_workers=min(processes, len(cells)),
                             mp_context=_pool_context(),
                             initializer=_init_warm_worker,
                             initargs=(snapshot,)) as pool:
        chunksize = max(1, len(cells) // (processes * 8))
        results = list(pool.map(_run_cell_in_worker, cells,
                                chunksize=chunksize))
    if progress is not None:
        for result in results:
            progress(result)
    return results
