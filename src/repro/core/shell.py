"""``exec_shell``: the security-filtered shell behind the ACI.

Routes ``kubectl`` to the Kubectl facade, ``helm`` to a small helm CLI
parser, and blocks anything destructive or out of scope — the paper's
"execute shell commands after applying security policy filters".
"""

from __future__ import annotations

import re
import shlex
from typing import TYPE_CHECKING

from repro.simcore import PolicyViolation

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.env import CloudEnvironment

#: commands the policy always refuses, with the regexes that catch them
_DENY_PATTERNS = [
    (re.compile(r"\brm\s+-rf\s+/"), "recursive delete of filesystem root"),
    (re.compile(r"\b(shutdown|reboot|halt)\b"), "host power control"),
    (re.compile(r"\bmkfs\b"), "filesystem formatting"),
    (re.compile(r"\bdd\s+if="), "raw disk writes"),
    (re.compile(r":\(\)\s*\{.*\};\s*:"), "fork bomb"),
    (re.compile(r"\bcurl\b|\bwget\b"), "external network access"),
    (re.compile(r"\bkubectl\s+delete\s+(namespace|ns)\b"),
     "namespace deletion would destroy the environment"),
]

#: binaries the policy allows as entry points
_ALLOW_BINARIES = {"kubectl", "helm", "cat", "ls", "grep", "head", "tail", "echo"}


class ShellExecutor:
    """Executes shell command strings against the simulated environment."""

    def __init__(self, env: "CloudEnvironment") -> None:
        self.env = env

    def check_policy(self, command: str) -> None:
        """Raise :class:`PolicyViolation` if the command is disallowed."""
        for pattern, why in _DENY_PATTERNS:
            if pattern.search(command):
                raise PolicyViolation(f"command blocked by security policy: {why}")
        try:
            argv = shlex.split(command)
        except ValueError as e:
            raise PolicyViolation(f"unparseable command: {e}") from None
        if not argv:
            raise PolicyViolation("empty command")
        if argv[0] not in _ALLOW_BINARIES:
            raise PolicyViolation(
                f'binary "{argv[0]}" is not in the allowed set '
                f"({', '.join(sorted(_ALLOW_BINARIES))})"
            )

    def run(self, command: str) -> str:
        """Execute one command; policy violations come back as error text."""
        try:
            self.check_policy(command)
        except PolicyViolation as e:
            return f"PolicyError: {e}"
        argv = shlex.split(command)
        binary = argv[0]
        if binary == "kubectl":
            return self.env.kubectl.run(command)
        if binary == "helm":
            return self._run_helm(argv[1:])
        if binary == "echo":
            return " ".join(argv[1:])
        if binary in ("cat", "ls", "grep", "head", "tail"):
            return self._run_file_tool(argv)
        return f"sh: command not found: {binary}"

    # -- helm CLI -----------------------------------------------------------
    def _run_helm(self, argv: list[str]) -> str:
        helm = self.env.helm
        if not argv:
            return "helm: usage: helm [list|upgrade|get] ..."
        verb = argv[0]
        if verb in ("list", "ls"):
            rows = [
                f"{r.name}\t{r.namespace}\t{r.revision}\t{r.chart.name}-{r.chart.version}"
                for r in helm.releases.values()
            ]
            return "NAME\tNAMESPACE\tREVISION\tCHART\n" + "\n".join(rows)
        if verb == "upgrade":
            rest = [a for a in argv[1:] if not a.startswith("-")]
            sets = self._collect_set_flags(argv[1:])
            if not rest:
                return "Error: helm upgrade needs a release name"
            release_name = rest[0]
            if release_name not in helm.releases:
                return f'Error: release "{release_name}" not found'
            values = self._sets_to_values(sets)
            helm.upgrade(release_name, values)
            rel = helm.releases[release_name]
            return (f'Release "{release_name}" has been upgraded. Happy Helming!\n'
                    f"REVISION: {rel.revision}")
        if verb == "get":
            if len(argv) >= 3 and argv[1] == "values":
                rel = helm.releases.get(argv[2])
                if rel is None:
                    return f'Error: release "{argv[2]}" not found'
                return f"USER-SUPPLIED VALUES:\n{rel.values}"
            return "helm get: supported: helm get values RELEASE"
        return f'Error: unknown command "{verb}" for "helm"'

    @staticmethod
    def _collect_set_flags(argv: list[str]) -> list[str]:
        sets = []
        i = 0
        while i < len(argv):
            if argv[i] == "--set" and i + 1 < len(argv):
                sets.append(argv[i + 1])
                i += 2
            elif argv[i].startswith("--set="):
                sets.append(argv[i].split("=", 1)[1])
                i += 1
            else:
                i += 1
        return sets

    @staticmethod
    def _sets_to_values(sets: list[str]) -> dict:
        """``a.b.c=v`` strings → nested dict (helm --set semantics, dotted)."""
        values: dict = {}
        for assignment in sets:
            if "=" not in assignment:
                continue
            path, raw = assignment.split("=", 1)
            value: object = raw
            if raw.lower() in ("true", "false"):
                value = raw.lower() == "true"
            node = values
            keys = path.split(".")
            for key in keys[:-1]:
                node = node.setdefault(key, {})
            node[keys[-1]] = value
        return values

    # -- read-only file tools over exported telemetry --------------------------
    def _run_file_tool(self, argv: list[str]) -> str:
        """cat/ls/grep/head/tail restricted to the telemetry export root."""
        import pathlib

        root = self.env.exporter.root.resolve()
        binary = argv[0]
        paths = [a for a in argv[1:] if not a.startswith("-")]
        if binary == "grep" and len(paths) >= 2:
            pattern, files = paths[0], paths[1:]
        else:
            pattern, files = "", paths
        if not files:
            if binary == "ls":
                files = [str(root)]
            else:
                return f"{binary}: missing file operand"
        out: list[str] = []
        for f in files:
            p = pathlib.Path(f)
            if not p.is_absolute():
                p = root / p
            p = p.resolve()
            if not str(p).startswith(str(root)):
                return (f"PolicyError: {binary} may only access the telemetry "
                        f"export directory {root}")
            if binary == "ls":
                if p.is_dir():
                    out.append("\n".join(sorted(x.name for x in p.iterdir())))
                elif p.exists():
                    out.append(p.name)
                else:
                    return f"ls: cannot access '{f}': No such file or directory"
                continue
            if not p.exists():
                return f"{binary}: {f}: No such file or directory"
            text = p.read_text()
            if binary == "cat":
                out.append(text)
            elif binary == "head":
                out.append("\n".join(text.splitlines()[:10]))
            elif binary == "tail":
                out.append("\n".join(text.splitlines()[-10:]))
            elif binary == "grep":
                out.append("\n".join(
                    line for line in text.splitlines() if pattern in line))
        return "\n".join(out)
